module github.com/smartmeter/smartbench

go 1.22
