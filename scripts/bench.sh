#!/usr/bin/env bash
# bench.sh runs the repo's two A/B benchmark pairs and distills each
# into a JSON artifact CI can upload, so regressions show up as a
# number, not a feeling:
#
#   1. BenchmarkKernelSimilarityBlocked / BenchmarkKernelSimilarityNaive
#      (the §5.3.4 stress test at n=64 consumers) -> BENCH_similarity.json
#      with mean ns/op, B/op, allocs/op per variant plus the
#      blocked-over-naive speedup.
#   2. BenchmarkPipelineThreeLine / BenchmarkLegacyThreeLine (the
#      cursor execution layer vs the direct core.RunParallel baseline)
#      -> BENCH_pipeline.json with mean ns/op per variant plus the
#      pipeline-over-legacy overhead ratio.
#
# For a statistical A/B over two checkouts, feed the raw output files
# to benchstat (golang.org/x/perf) instead.
#
#   COUNT=6 ./scripts/bench.sh        # repetitions (default 6)
#   OUT=BENCH_similarity.json         # similarity output path override
#   PIPE_OUT=BENCH_pipeline.json      # pipeline output path override
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
OUT="${OUT:-BENCH_similarity.json}"
PIPE_OUT="${PIPE_OUT:-BENCH_pipeline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench 'BenchmarkKernelSimilarity(Blocked|Naive)' -count $COUNT -benchmem"
go test -run '^$' -bench 'BenchmarkKernelSimilarity(Blocked|Naive)$' \
  -count "$COUNT" -benchmem -timeout 20m . | tee "$RAW"

awk -v out="$OUT" '
  /^BenchmarkKernelSimilarity(Blocked|Naive)/ {
    name = $1
    sub(/^BenchmarkKernelSimilarity/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; bytes[name] += $5; allocs[name] += $7; runs[name]++
  }
  END {
    if (runs["Blocked"] == 0 || runs["Naive"] == 0) {
      print "bench.sh: missing Blocked or Naive benchmark output" > "/dev/stderr"
      exit 1
    }
    bn = ns["Blocked"] / runs["Blocked"]
    nn = ns["Naive"] / runs["Naive"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkKernelSimilarity\",\n" >> out
    printf "  \"consumers\": 64,\n" >> out
    printf "  \"count\": %d,\n", runs["Blocked"] >> out
    printf "  \"blocked\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      bn, bytes["Blocked"] / runs["Blocked"], allocs["Blocked"] / runs["Blocked"] >> out
    printf "  \"naive\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      nn, bytes["Naive"] / runs["Naive"], allocs["Naive"] / runs["Naive"] >> out
    printf "  \"speedup\": %.2f\n", nn / bn >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $OUT"
cat "$OUT"

echo "== go test -bench 'Benchmark(Pipeline|Legacy)ThreeLine' -count $COUNT"
go test -run '^$' -bench 'Benchmark(Pipeline|Legacy)ThreeLine$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$PIPE_OUT" '
  /^Benchmark(Pipeline|Legacy)ThreeLine/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/ThreeLine-[0-9]+$/, "", name)
    sub(/ThreeLine$/, "", name)
    ns[name] += $3; runs[name]++
  }
  END {
    if (runs["Pipeline"] == 0 || runs["Legacy"] == 0) {
      print "bench.sh: missing Pipeline or Legacy benchmark output" > "/dev/stderr"
      exit 1
    }
    pn = ns["Pipeline"] / runs["Pipeline"]
    ln = ns["Legacy"] / runs["Legacy"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkThreeLinePipelineVsLegacy\",\n" >> out
    printf "  \"count\": %d,\n", runs["Pipeline"] >> out
    printf "  \"pipeline\": {\"ns_per_op\": %.1f},\n", pn >> out
    printf "  \"legacy\": {\"ns_per_op\": %.1f},\n", ln >> out
    printf "  \"overhead\": %.3f\n", pn / ln >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $PIPE_OUT"
cat "$PIPE_OUT"
