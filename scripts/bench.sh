#!/usr/bin/env bash
# bench.sh runs the blocked-vs-naive similarity kernel A/B pair
# (BenchmarkKernelSimilarityBlocked / BenchmarkKernelSimilarityNaive in
# bench_test.go, the §5.3.4 stress test at n=64 consumers) with
# -count repetitions and -benchmem, and distills the runs into
# BENCH_similarity.json: mean ns/op, B/op, allocs/op per variant plus
# the blocked-over-naive speedup. CI uploads the JSON as an artifact so
# regressions show up as a number, not a feeling; for a statistical
# A/B over two checkouts, feed the raw output files to benchstat
# (golang.org/x/perf) instead.
#
#   COUNT=6 ./scripts/bench.sh        # repetitions (default 6)
#   OUT=BENCH_similarity.json         # output path override
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
OUT="${OUT:-BENCH_similarity.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench 'BenchmarkKernelSimilarity(Blocked|Naive)' -count $COUNT -benchmem"
go test -run '^$' -bench 'BenchmarkKernelSimilarity(Blocked|Naive)$' \
  -count "$COUNT" -benchmem -timeout 20m . | tee "$RAW"

awk -v out="$OUT" '
  /^BenchmarkKernelSimilarity(Blocked|Naive)/ {
    name = $1
    sub(/^BenchmarkKernelSimilarity/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; bytes[name] += $5; allocs[name] += $7; runs[name]++
  }
  END {
    if (runs["Blocked"] == 0 || runs["Naive"] == 0) {
      print "bench.sh: missing Blocked or Naive benchmark output" > "/dev/stderr"
      exit 1
    }
    bn = ns["Blocked"] / runs["Blocked"]
    nn = ns["Naive"] / runs["Naive"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkKernelSimilarity\",\n" >> out
    printf "  \"consumers\": 64,\n" >> out
    printf "  \"count\": %d,\n", runs["Blocked"] >> out
    printf "  \"blocked\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      bn, bytes["Blocked"] / runs["Blocked"], allocs["Blocked"] / runs["Blocked"] >> out
    printf "  \"naive\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      nn, bytes["Naive"] / runs["Naive"], allocs["Naive"] / runs["Naive"] >> out
    printf "  \"speedup\": %.2f\n", nn / bn >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $OUT"
cat "$OUT"
