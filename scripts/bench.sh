#!/usr/bin/env bash
# bench.sh runs the repo's two A/B benchmark pairs and distills each
# into a JSON artifact CI can upload, so regressions show up as a
# number, not a feeling:
#
#   1. BenchmarkKernelSimilarityBlocked / BenchmarkKernelSimilarityNaive
#      (the §5.3.4 stress test at n=64 consumers) -> BENCH_similarity.json
#      with mean ns/op, B/op, allocs/op per variant plus the
#      blocked-over-naive speedup.
#   2. BenchmarkPipelineThreeLine / BenchmarkLegacyThreeLine (the
#      cursor execution layer vs the direct core.RunParallel baseline)
#      -> BENCH_pipeline.json with mean ns/op per variant plus the
#      pipeline-over-legacy overhead ratio.
#   3. BenchmarkExtract{Filestore,Rowstore}{Serial,Prefetch} (cold
#      3-line runs at 4 workers, 200 consumers, prefetcher pinned off
#      vs live partitioned cursors) -> BENCH_extract.json with mean
#      ns/op per variant plus the per-engine prefetch-over-serial
#      speedup. The speedup scales with available cores: on a
#      single-CPU host the overlapped path can only match the serial
#      one (expect ~1.0), so read the JSON's "cpus" field alongside
#      the ratio.
#   4. BenchmarkFault{Baseline,QuarantineZero,QuarantineInjected}
#      (fail-fast with no fault wrapper vs the full containment
#      machinery at a zero injection rate vs a 5% mixed rate)
#      -> BENCH_fault.json with mean ns/op per variant plus the
#      zero-rate-over-baseline overhead ratio. Containment that nobody
#      triggers should be nearly free: the no-fault overhead target is
#      <3% (ratio <= 1.03).
#   5. BenchmarkScaleupPaged{ThreeLine,Histogram,PAR} (tasks over the
#      compressed, paged column store under a quarter-of-raw memory
#      budget) plus BenchmarkScaleupEncode{Serial,Parallel} (the
#      segment-encode pool A/B) -> BENCH_scale.json. The "ci_run" and
#      optional "large_run" objects share one schema: consumers, days,
#      cpus, encoders, raw/stored/budget MB, compression ratio, encode
#      throughput (generate+encode consumers/s and readings/s) and
#      ns_per_op + rows_per_s per task (threeline, histogram, par).
#      The ratio target is >= 4x on Wh-quantized synthetic data; the
#      encode pool's speedup target is >= 1.8x at 4 cores (on a 1-CPU
#      host expect parity — read "cpus" alongside it). Set
#      SCALE_CONSUMERS (and optionally SCALE_DAYS, default 365, and
#      SCALE_ENCODERS, default nproc) to add a single-shot large run —
#      e.g. SCALE_CONSUMERS=1000000 streams a 1M-consumer x 365-day
#      year through the same paged path and records it as "large_run".
#   6. BenchmarkIngest{Colstore,Rowstore}[WAL{Batch,Always}] (4 sharded
#      writers appending 3 live days onto the loaded base through the
#      core.Appender contract, swept over wal=off/batch/always)
#      -> BENCH_ingest.json with sustained append records/s and the
#      freshness lag (last append -> histogram over a read-isolated
#      snapshot) per engine and wal mode, plus the batch-over-off
#      wal_batch_overhead ratio. The durable modes fsync before acking,
#      so the ratio is bounded below by the host's fsync latency times
#      the hour-batch count — read it against "fsync_ns" in the JSON,
#      not against an in-memory ideal.
#   7. BenchmarkRecovery{Colstore,Rowstore} (kill the engine with the
#      live tail only in the wal=batch log, then time reopen + replay +
#      first verified histogram) -> BENCH_recovery.json with
#      crash-to-first-answer ns/op and replay records/s per engine.
#
# For a statistical A/B over two checkouts, feed the raw output files
# to benchstat (golang.org/x/perf) instead.
#
#   COUNT=6 ./scripts/bench.sh        # repetitions (default 6)
#   OUT=BENCH_similarity.json         # similarity output path override
#   PIPE_OUT=BENCH_pipeline.json      # pipeline output path override
#   EXTRACT_OUT=BENCH_extract.json    # extraction output path override
#   FAULT_OUT=BENCH_fault.json        # fault output path override
#   SCALE_OUT=BENCH_scale.json        # scale-up output path override
#   SCALE_CONSUMERS=1000000           # add a paper-scale single-shot run
#   SCALE_DAYS=365                    # days for the large run (default 365)
#   SCALE_ENCODERS=4                  # encode workers for the large run (default nproc)
#   INGEST_OUT=BENCH_ingest.json      # ingest output path override
#   RECOVERY_OUT=BENCH_recovery.json  # recovery output path override
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
OUT="${OUT:-BENCH_similarity.json}"
PIPE_OUT="${PIPE_OUT:-BENCH_pipeline.json}"
EXTRACT_OUT="${EXTRACT_OUT:-BENCH_extract.json}"
FAULT_OUT="${FAULT_OUT:-BENCH_fault.json}"
SCALE_OUT="${SCALE_OUT:-BENCH_scale.json}"
INGEST_OUT="${INGEST_OUT:-BENCH_ingest.json}"
RECOVERY_OUT="${RECOVERY_OUT:-BENCH_recovery.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench 'BenchmarkKernelSimilarity(Blocked|Naive)' -count $COUNT -benchmem"
go test -run '^$' -bench 'BenchmarkKernelSimilarity(Blocked|Naive)$' \
  -count "$COUNT" -benchmem -timeout 20m . | tee "$RAW"

awk -v out="$OUT" '
  /^BenchmarkKernelSimilarity(Blocked|Naive)/ {
    name = $1
    sub(/^BenchmarkKernelSimilarity/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; bytes[name] += $5; allocs[name] += $7; runs[name]++
  }
  END {
    if (runs["Blocked"] == 0 || runs["Naive"] == 0) {
      print "bench.sh: missing Blocked or Naive benchmark output" > "/dev/stderr"
      exit 1
    }
    bn = ns["Blocked"] / runs["Blocked"]
    nn = ns["Naive"] / runs["Naive"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkKernelSimilarity\",\n" >> out
    printf "  \"consumers\": 64,\n" >> out
    printf "  \"count\": %d,\n", runs["Blocked"] >> out
    printf "  \"blocked\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      bn, bytes["Blocked"] / runs["Blocked"], allocs["Blocked"] / runs["Blocked"] >> out
    printf "  \"naive\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f},\n", \
      nn, bytes["Naive"] / runs["Naive"], allocs["Naive"] / runs["Naive"] >> out
    printf "  \"speedup\": %.2f\n", nn / bn >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $OUT"
cat "$OUT"

echo "== go test -bench 'Benchmark(Pipeline|Legacy)ThreeLine' -count $COUNT"
go test -run '^$' -bench 'Benchmark(Pipeline|Legacy)ThreeLine$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$PIPE_OUT" '
  /^Benchmark(Pipeline|Legacy)ThreeLine/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/ThreeLine-[0-9]+$/, "", name)
    sub(/ThreeLine$/, "", name)
    ns[name] += $3; runs[name]++
  }
  END {
    if (runs["Pipeline"] == 0 || runs["Legacy"] == 0) {
      print "bench.sh: missing Pipeline or Legacy benchmark output" > "/dev/stderr"
      exit 1
    }
    pn = ns["Pipeline"] / runs["Pipeline"]
    ln = ns["Legacy"] / runs["Legacy"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkThreeLinePipelineVsLegacy\",\n" >> out
    printf "  \"count\": %d,\n", runs["Pipeline"] >> out
    printf "  \"pipeline\": {\"ns_per_op\": %.1f},\n", pn >> out
    printf "  \"legacy\": {\"ns_per_op\": %.1f},\n", ln >> out
    printf "  \"overhead\": %.3f\n", pn / ln >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $PIPE_OUT"
cat "$PIPE_OUT"

echo "== go test -bench 'BenchmarkExtract(Filestore|Rowstore)(Serial|Prefetch)' -count $COUNT"
go test -run '^$' -bench 'BenchmarkExtract(Filestore|Rowstore)(Serial|Prefetch)$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$EXTRACT_OUT" -v cpus="$(nproc 2>/dev/null || echo 1)" '
  /^BenchmarkExtract(Filestore|Rowstore)(Serial|Prefetch)/ {
    name = $1
    sub(/^BenchmarkExtract/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
  }
  END {
    if (runs["FilestoreSerial"] == 0 || runs["FilestorePrefetch"] == 0 ||
        runs["RowstoreSerial"] == 0 || runs["RowstorePrefetch"] == 0) {
      print "bench.sh: missing extract benchmark output" > "/dev/stderr"
      exit 1
    }
    fs = ns["FilestoreSerial"] / runs["FilestoreSerial"]
    fp = ns["FilestorePrefetch"] / runs["FilestorePrefetch"]
    rs = ns["RowstoreSerial"] / runs["RowstoreSerial"]
    rp = ns["RowstorePrefetch"] / runs["RowstorePrefetch"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkExtractSerialVsPrefetch\",\n" >> out
    printf "  \"consumers\": 200,\n" >> out
    printf "  \"workers\": 4,\n" >> out
    printf "  \"cpus\": %d,\n", cpus >> out
    printf "  \"count\": %d,\n", runs["FilestoreSerial"] >> out
    printf "  \"filestore\": {\"serial_ns_per_op\": %.1f, \"prefetch_ns_per_op\": %.1f, \"speedup\": %.2f},\n", \
      fs, fp, fs / fp >> out
    printf "  \"rowstore\": {\"serial_ns_per_op\": %.1f, \"prefetch_ns_per_op\": %.1f, \"speedup\": %.2f}\n", \
      rs, rp, rs / rp >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $EXTRACT_OUT"
cat "$EXTRACT_OUT"

echo "== go test -bench 'BenchmarkFault(Baseline|QuarantineZero|QuarantineInjected)' -count $COUNT"
go test -run '^$' -bench 'BenchmarkFault(Baseline|QuarantineZero|QuarantineInjected)$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$FAULT_OUT" '
  /^BenchmarkFault(Baseline|QuarantineZero|QuarantineInjected)/ {
    name = $1
    sub(/^BenchmarkFault/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
  }
  END {
    if (runs["Baseline"] == 0 || runs["QuarantineZero"] == 0 ||
        runs["QuarantineInjected"] == 0) {
      print "bench.sh: missing fault benchmark output" > "/dev/stderr"
      exit 1
    }
    bn = ns["Baseline"] / runs["Baseline"]
    qz = ns["QuarantineZero"] / runs["QuarantineZero"]
    qi = ns["QuarantineInjected"] / runs["QuarantineInjected"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkFaultContainmentOverhead\",\n" >> out
    printf "  \"count\": %d,\n", runs["Baseline"] >> out
    printf "  \"baseline\": {\"ns_per_op\": %.1f},\n", bn >> out
    printf "  \"quarantine_zero\": {\"ns_per_op\": %.1f},\n", qz >> out
    printf "  \"quarantine_injected_5pct\": {\"ns_per_op\": %.1f},\n", qi >> out
    printf "  \"no_fault_overhead\": %.3f,\n", qz / bn >> out
    printf "  \"no_fault_overhead_target\": 1.03\n" >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $FAULT_OUT"
cat "$FAULT_OUT"
echo "== go test -bench 'BenchmarkScaleup(Paged(ThreeLine|Histogram|PAR)|Encode(Serial|Parallel))' -count $COUNT"
go test -run '^$' -bench 'BenchmarkScaleup(Paged(ThreeLine|Histogram|PAR)|Encode(Serial|Parallel))$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

# Optional paper-scale pass: one shot at SCALE_CONSUMERS x SCALE_DAYS
# through the same paged benchmarks (encode throughput rides along in
# the ThreeLine build phase, so the big population is encoded once, not
# re-benchmarked). Streaming generation means the raw matrix (8
# bytes/reading) never materializes; only the compressed segment file
# and the quarter-of-raw page cache are resident.
RAW_BIG=""
CPUS="$(nproc 2>/dev/null || echo 1)"
if [ -n "${SCALE_CONSUMERS:-}" ]; then
  RAW_BIG="$(mktemp)"
  trap 'rm -f "$RAW" "$RAW_BIG"' EXIT
  echo "== large run: $SCALE_CONSUMERS consumers x ${SCALE_DAYS:-365} days, ${SCALE_ENCODERS:-$CPUS} encoders (single shot)"
  SMARTBENCH_SCALE_CONSUMERS="$SCALE_CONSUMERS" SMARTBENCH_SCALE_DAYS="${SCALE_DAYS:-365}" \
    SMARTBENCH_SCALE_ENCODERS="${SCALE_ENCODERS:-$CPUS}" \
    go test -run '^$' -bench 'BenchmarkScaleupPaged(ThreeLine|Histogram|PAR)$' \
    -benchtime 1x -count 1 -timeout 600m . | tee "$RAW_BIG"
fi

awk -v out="$SCALE_OUT" -v cpus="$CPUS" -v bigc="${SCALE_CONSUMERS:-0}" -v bigd="${SCALE_DAYS:-365}" '
  # taskline emits one task sub-object of a run block.
  function taskline(ind, label, key, tail) {
    printf "%s\"%s\": {\"ns_per_op\": %.1f, \"rows_per_s\": %.1f}%s\n", \
      ind, label, ns[key] / runs[key], rows[key] / runs[key], tail >> out
  }
  # runblock emits the uniform per-run schema shared by the CI-scale
  # block and the optional large run: population, host, storage and
  # encode-throughput fields, then one sub-object per task. pfx keys
  # into the arrays ("" for the CI file, "Big" for the large run).
  function runblock(pfx, c, d, ind,   t) {
    t = pfx "ThreeLine"
    printf "%s\"consumers\": %d,\n", ind, c >> out
    printf "%s\"days\": %d,\n", ind, d >> out
    printf "%s\"cpus\": %d,\n", ind, cpus >> out
    printf "%s\"encoders\": %d,\n", ind, enc[t] / runs[t] >> out
    printf "%s\"raw_mb\": %.3f,\n", ind, raw[t] / runs[t] >> out
    printf "%s\"stored_mb\": %.3f,\n", ind, stored[t] / runs[t] >> out
    printf "%s\"budget_mb\": %.3f,\n", ind, budget[t] / runs[t] >> out
    printf "%s\"compression_ratio\": %.2f,\n", ind, ratio[t] / runs[t] >> out
    printf "%s\"encode\": {\"consumers_per_s\": %.1f, \"readings_per_s\": %.0f},\n", \
      ind, encrows[t] / runs[t], encread[t] / runs[t] >> out
    taskline(ind, "threeline", t, ",")
    taskline(ind, "histogram", pfx "Histogram", ",")
    taskline(ind, "par", pfx "PAR", "")
  }
  /^BenchmarkScaleup(Paged(ThreeLine|Histogram|PAR)|Encode(Serial|Parallel))/ {
    name = $1
    sub(/^BenchmarkScaleupPaged/, "", name)
    sub(/^BenchmarkScaleup/, "", name)
    sub(/-[0-9]+$/, "", name)
    # Records from the second input file (the large run) land in their
    # own arrays, keyed the same way.
    if (ARGC > 2 && FILENAME == ARGV[2]) { name = "Big" name }
    ns[name] += $3; runs[name]++
    # Custom metrics follow ns/op as value-unit pairs (budgetMB,
    # enc-readings/s, enc-rows/s, encoders, ratio, rawMB, readings/s,
    # rows/s, storedMB), alphabetically ordered by go test.
    for (i = 4; i < NF; i += 2) {
      v = $(i + 1); u = $(i + 2)
      if (u == "ratio")          { ratio[name] += v; }
      if (u == "rawMB")          { raw[name] += v; }
      if (u == "storedMB")       { stored[name] += v; }
      if (u == "budgetMB")       { budget[name] += v; }
      if (u == "rows/s")         { rows[name] += v; }
      if (u == "enc-rows/s")     { encrows[name] += v; }
      if (u == "enc-readings/s") { encread[name] += v; }
      if (u == "encoders")       { enc[name] += v; }
    }
  }
  END {
    if (runs["ThreeLine"] == 0 || runs["Histogram"] == 0 || runs["PAR"] == 0 ||
        runs["EncodeSerial"] == 0 || runs["EncodeParallel"] == 0) {
      print "bench.sh: missing scaleup benchmark output" > "/dev/stderr"
      exit 1
    }
    es = ns["EncodeSerial"] / runs["EncodeSerial"]
    ep = ns["EncodeParallel"] / runs["EncodeParallel"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkScaleup\",\n" >> out
    printf "  \"budget_fraction_of_raw\": 0.25,\n" >> out
    printf "  \"compression_ratio_target\": 4.0,\n" >> out
    printf "  \"count\": %d,\n", runs["ThreeLine"] >> out
    printf "  \"ci_run\": {\n" >> out
    runblock("", 64, 60, "    ")
    printf "  },\n" >> out
    printf "  \"encode_parallel\": {\n" >> out
    printf "    \"consumers\": 32,\n" >> out
    printf "    \"workers\": 4,\n" >> out
    printf "    \"cpus\": %d,\n", cpus >> out
    printf "    \"serial_ns_per_op\": %.1f,\n", es >> out
    printf "    \"parallel_ns_per_op\": %.1f,\n", ep >> out
    printf "    \"speedup\": %.2f,\n", es / ep >> out
    printf "    \"expected_speedup_at_4_cores\": 1.8\n" >> out
    sep = (runs["BigThreeLine"] > 0) ? "," : ""
    printf "  }%s\n", sep >> out
    if (runs["BigThreeLine"] > 0) {
      printf "  \"large_run\": {\n" >> out
      runblock("Big", bigc, bigd, "    ")
      printf "  }\n" >> out
    }
    printf "}\n" >> out
  }
' "$RAW" ${RAW_BIG:+"$RAW_BIG"}

echo "== wrote $SCALE_OUT"
cat "$SCALE_OUT"

echo "== go test -bench 'BenchmarkIngest(Colstore|Rowstore)(WAL(Batch|Always))?|BenchmarkFsync' -count $COUNT"
go test -run '^$' -bench '(BenchmarkIngest(Colstore|Rowstore)(WAL(Batch|Always))?|BenchmarkFsync)$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$INGEST_OUT" '
  # modeline emits one wal-mode sub-object of an engine block.
  function modeline(ind, label, key, tail) {
    printf "%s\"%s\": {\"ns_per_op\": %.1f, \"records_per_s\": %.0f, \"freshness_lag_ms\": %.3f}%s\n", \
      ind, label, ns[key] / runs[key], rate[key] / runs[key], lag[key] / runs[key] / 1e6, tail >> out
  }
  # engineblock emits the off/batch/always sweep for one engine plus
  # the batch-over-off overhead ratio.
  function engineblock(pfx, ind) {
    modeline(ind, "off", pfx, ",")
    modeline(ind, "batch", pfx "WALBatch", ",")
    modeline(ind, "always", pfx "WALAlways", ",")
    printf "%s\"wal_batch_overhead\": %.2f\n", ind, \
      (ns[pfx "WALBatch"] / runs[pfx "WALBatch"]) / (ns[pfx] / runs[pfx]) >> out
  }
  /^BenchmarkFsync/ {
    fsns += $3; fsruns++
  }
  /^BenchmarkIngest(Colstore|Rowstore)/ {
    name = $1
    sub(/^BenchmarkIngest/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
    # Custom metrics follow ns/op as value-unit pairs, alphabetically
    # ordered by go test: lagNs then records/s.
    for (i = 4; i < NF; i += 2) {
      v = $(i + 1); u = $(i + 2)
      if (u == "lagNs")     { lag[name] += v; }
      if (u == "records/s") { rate[name] += v; }
    }
  }
  END {
    if (runs["Colstore"] == 0 || runs["Rowstore"] == 0 ||
        runs["ColstoreWALBatch"] == 0 || runs["ColstoreWALAlways"] == 0 ||
        runs["RowstoreWALBatch"] == 0 || runs["RowstoreWALAlways"] == 0 ||
        fsruns == 0) {
      print "bench.sh: missing ingest or fsync benchmark output" > "/dev/stderr"
      exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkIngest\",\n" >> out
    printf "  \"consumers\": 16,\n" >> out
    printf "  \"live_days\": 3,\n" >> out
    printf "  \"workers\": 4,\n" >> out
    printf "  \"count\": %d,\n", runs["Colstore"] >> out
    printf "  \"fsync_ns\": %.0f,\n", fsns / fsruns >> out
    printf "  \"colstore\": {\n" >> out
    engineblock("Colstore", "    ")
    printf "  },\n" >> out
    printf "  \"rowstore\": {\n" >> out
    engineblock("Rowstore", "    ")
    printf "  },\n" >> out
    printf "  \"wal_batch_overhead_note\": \"durable modes fsync before acking each hour batch; the floor is fsync_ns x 72 hour rounds against an in-memory baseline, so compare overhead against fsync_ns, not 1.0\"\n" >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $INGEST_OUT"
cat "$INGEST_OUT"

echo "== go test -bench 'BenchmarkRecovery(Colstore|Rowstore)' -count $COUNT"
go test -run '^$' -bench 'BenchmarkRecovery(Colstore|Rowstore)$' \
  -count "$COUNT" -timeout 20m . | tee "$RAW"

awk -v out="$RECOVERY_OUT" '
  /^BenchmarkRecovery(Colstore|Rowstore)/ {
    name = $1
    sub(/^BenchmarkRecovery/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
    # Custom metric follows ns/op as a value-unit pair: replay-records/s.
    for (i = 4; i < NF; i += 2) {
      v = $(i + 1); u = $(i + 2)
      if (u == "replay-records/s") { rate[name] += v; }
    }
  }
  END {
    if (runs["Colstore"] == 0 || runs["Rowstore"] == 0) {
      print "bench.sh: missing recovery benchmark output" > "/dev/stderr"
      exit 1
    }
    cr = runs["Colstore"]; rr = runs["Rowstore"]
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkRecovery\",\n" >> out
    printf "  \"consumers\": 16,\n" >> out
    printf "  \"live_days\": 3,\n" >> out
    printf "  \"wal\": \"batch\",\n" >> out
    printf "  \"count\": %d,\n", cr >> out
    printf "  \"colstore\": {\"ns_per_op\": %.1f, \"replay_records_per_s\": %.0f},\n", \
      ns["Colstore"] / cr, rate["Colstore"] / cr >> out
    printf "  \"rowstore\": {\"ns_per_op\": %.1f, \"replay_records_per_s\": %.0f}\n", \
      ns["Rowstore"] / rr, rate["Rowstore"] / rr >> out
    printf "}\n" >> out
  }
' "$RAW"

echo "== wrote $RECOVERY_OUT"
cat "$RECOVERY_OUT"
