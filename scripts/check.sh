#!/usr/bin/env bash
# check.sh is the single verification entrypoint for the repo: build,
# vet, the repo-native smlint analyzers, then the full test suite under
# the race detector. CI runs exactly this script; run it locally before
# sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/smlint ./..."
go run ./cmd/smlint ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all green"
