#!/usr/bin/env bash
# check.sh is the single verification entrypoint for the repo: build,
# vet, the repo-native smlint analyzers, then the full test suite under
# the race detector. CI runs exactly this script; run it locally before
# sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/smlint ./..."
go run ./cmd/smlint ./...

# The execution layer and the engines under it are the concurrency
# hot spots (the prefetcher's extract/compute goroutine fan-out, the
# partition cursors' shared state — refcounted indexes, latched buffer
# pools, shared RDD jobs — and block scheduling); surface a race there
# as its own failure before the full suite runs. Engine layering (and
# every other analyzer) is covered by the single smlint sweep above —
# ./... includes ./internal/engine/..., so a second invocation would
# only repeat the same findings.
echo "== go test -race ./internal/exec/... ./internal/engine/... (prefetcher + partition cursors)"
go test -race ./internal/exec/... ./internal/engine/...

# Chaos conformance: every engine cursor under injected faults and
# mid-extract cancellation, raced. These tests also run inside the full
# suite below, but a containment or leak regression should fail here
# under its own name rather than somewhere inside "go test ./...".
echo "== go test -race -run 'Chaos|Cancel|Fault' ./... (fault containment + cancellation)"
go test -race -run 'Chaos|Cancel|Fault' ./...

# Recovery conformance: the deterministic crash-injection sweep (kill
# ingestion at every counted disk op, reopen, demand bit-exact acked
# prefixes), torn-tail truncation and the wal unit suite, raced. Same
# rationale as the chaos step: a durability regression fails under its
# own name.
echo "== go test -race -run 'Recovery|Crash|WAL' ./... (crash recovery + wal)"
go test -race -run 'Recovery|Crash|WAL' ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all green"
