package smartbench

// Cross-engine integration test: every platform analogue must produce
// identical analytics for the same source data — the five platforms in
// the paper compute the same benchmark, only differently.

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/filestore"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// buildWorkload generates data via the full pipeline (seed -> paper
// generator -> CSV) so the integration test also exercises the data
// generator end to end.
func buildWorkload(t *testing.T) (*meterdata.Source, *timeseries.Dataset) {
	t.Helper()
	seedDS, err := seed.Generate(seed.Config{Consumers: 10, Days: 60, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := generator.New(seedDS, generator.Config{Clusters: 4, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := gen.Dataset(8, seedDS.Temperature)
	if err != nil {
		t.Fatal(err)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	return src, ref
}

func allFiveEngines(t *testing.T) []core.Engine {
	t.Helper()
	cluster, err := distsim.New(distsim.Config{
		Nodes: 4, SlotsPerNode: 4,
		TransferLatency: 10 * time.Microsecond, BytesPerSecond: 1 << 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := dfs.New(cluster, dfs.WithBlockSize(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	rowE := rowstore.New(t.TempDir())
	t.Cleanup(func() { rowE.Close() })
	return []core.Engine{
		filestore.New(filestore.WithSplitDir(t.TempDir() + "/split")),
		rowE,
		colstore.New(t.TempDir()),
		rdd.New(fsys),
		mapreduce.New(fsys),
	}
}

func TestAllEnginesAgree(t *testing.T) {
	src, ref := buildWorkload(t)
	engines := allFiveEngines(t)
	for _, e := range engines {
		if _, err := e.Load(src); err != nil {
			t.Fatalf("%s load: %v", e.Name(), err)
		}
	}
	// Each task runs twice per engine: once with the prefetcher free to
	// overlap extraction over partitioned cursors, once pinned to the
	// serial path. Both must match the single-threaded reference — the
	// reorder stage makes the overlapped path indistinguishable from
	// serial in its output.
	modes := []struct {
		name     string
		prefetch core.PrefetchMode
	}{
		{"prefetch", core.PrefetchAuto},
		{"serial", core.PrefetchOff},
	}
	for _, task := range core.Tasks {
		want, err := core.RunReference(ref, core.Spec{Task: task, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			spec := core.Spec{Task: task, K: 3, Workers: 4, Prefetch: m.prefetch}
			for _, e := range engines {
				got, err := e.Run(spec)
				if err != nil {
					t.Fatalf("%s %v (%s): %v", e.Name(), task, m.name, err)
				}
				if got.Count() != want.Count() {
					t.Fatalf("%s %v (%s): count %d vs %d", e.Name(), task, m.name, got.Count(), want.Count())
				}
				assertResultsEqual(t, e.Name(), got, want)
			}
		}
	}
}

func assertResultsEqual(t *testing.T, engine string, got, want *core.Results) {
	t.Helper()
	const tol = 1e-9
	switch want.Task {
	case core.TaskHistogram:
		for i := range want.Histograms {
			g, w := got.Histograms[i], want.Histograms[i]
			if g.ID != w.ID {
				t.Fatalf("%s histogram %d: ID %d vs %d", engine, i, g.ID, w.ID)
			}
			for b := range w.Histogram.Counts {
				if g.Histogram.Counts[b] != w.Histogram.Counts[b] {
					t.Fatalf("%s histogram %d bucket %d: %d vs %d",
						engine, i, b, g.Histogram.Counts[b], w.Histogram.Counts[b])
				}
			}
		}
	case core.TaskThreeLine:
		for i := range want.ThreeLines {
			g, w := got.ThreeLines[i], want.ThreeLines[i]
			if g.ID != w.ID ||
				math.Abs(g.HeatingGradient-w.HeatingGradient) > tol ||
				math.Abs(g.CoolingGradient-w.CoolingGradient) > tol ||
				math.Abs(g.BaseLoad-w.BaseLoad) > tol {
				t.Fatalf("%s 3-line %d: %+v vs %+v", engine, i, g, w)
			}
		}
	case core.TaskPAR:
		for i := range want.Profiles {
			g, w := got.Profiles[i], want.Profiles[i]
			if g.ID != w.ID {
				t.Fatalf("%s PAR %d: ID mismatch", engine, i)
			}
			for h := range w.Profile {
				if math.Abs(g.Profile[h]-w.Profile[h]) > tol {
					t.Fatalf("%s PAR %d hour %d: %g vs %g",
						engine, i, h, g.Profile[h], w.Profile[h])
				}
			}
		}
	case core.TaskSimilarity:
		for i := range want.Similar {
			g, w := got.Similar[i], want.Similar[i]
			if g.ID != w.ID || len(g.Matches) != len(w.Matches) {
				t.Fatalf("%s similarity %d: shape mismatch", engine, i)
			}
			for j := range w.Matches {
				if g.Matches[j].ID != w.Matches[j].ID ||
					math.Abs(g.Matches[j].Score-w.Matches[j].Score) > tol {
					t.Fatalf("%s similarity %d match %d: %+v vs %+v",
						engine, i, j, g.Matches[j], w.Matches[j])
				}
			}
		}
	}
}

// TestErrNotLoadedConsistency verifies that every engine reports a
// wrapped core.ErrNotLoaded from Run, NewCursor, and Temperature
// before any data has been loaded, so callers can branch on the
// sentinel with errors.Is regardless of platform.
func TestErrNotLoadedConsistency(t *testing.T) {
	for _, e := range allFiveEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			checks := []struct {
				op  string
				err func() error
			}{
				{"Run", func() error {
					_, err := e.Run(core.Spec{Task: core.TaskHistogram})
					return err
				}},
				{"NewCursor", func() error {
					_, err := e.NewCursor()
					return err
				}},
				{"Temperature", func() error {
					_, err := e.Temperature()
					return err
				}},
			}
			for _, c := range checks {
				err := c.err()
				if err == nil {
					t.Errorf("%s on unloaded engine: no error", c.op)
					continue
				}
				if !errors.Is(err, core.ErrNotLoaded) {
					t.Errorf("%s on unloaded engine: %v does not wrap core.ErrNotLoaded", c.op, err)
				}
			}
		})
	}
}

// TestColdWarmConsistency verifies that warm runs return the same
// analytics as cold runs on every engine that supports warming.
func TestColdWarmConsistency(t *testing.T) {
	src, _ := buildWorkload(t)
	type warmable interface {
		core.Engine
		Warm() error
	}
	rowE := rowstore.New(t.TempDir())
	defer rowE.Close()
	engines := []warmable{
		filestore.New(filestore.WithSplitDir(t.TempDir() + "/split")),
		rowE,
		colstore.New(t.TempDir()),
	}
	spec := core.Spec{Task: core.TaskThreeLine}
	for _, e := range engines {
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Release(); err != nil {
			t.Fatal(err)
		}
		cold, err := e.Run(spec)
		if err != nil {
			t.Fatalf("%s cold: %v", e.Name(), err)
		}
		if err := e.Release(); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatalf("%s warm: %v", e.Name(), err)
		}
		warm, err := e.Run(spec)
		if err != nil {
			t.Fatalf("%s warm run: %v", e.Name(), err)
		}
		assertResultsEqual(t, e.Name(), warm, cold)
	}
}

// TestBudgetedColstoreAgrees runs every task on a colstore whose
// decoded-block cache is capped well below the raw matrix size, so
// blocks page in and out of the compressed segment file mid-run, and
// demands the same answers as the single-threaded reference at 4
// workers. This is the out-of-core contract: a memory budget changes
// residency, never results.
func TestBudgetedColstoreAgrees(t *testing.T) {
	src, ref := buildWorkload(t)
	raw := int64(len(ref.Series)) * int64(len(ref.Series[0].Readings)) * 8
	budget := raw / 8
	eng := colstore.New(t.TempDir(), colstore.WithMemBudget(budget))
	st, err := eng.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = eng.Release() }()
	if st.RawBytes != raw {
		t.Fatalf("load stats raw bytes %d, want %d", st.RawBytes, raw)
	}
	if st.StorageBytes >= raw {
		t.Fatalf("segments not compressed: %d stored vs %d raw", st.StorageBytes, raw)
	}
	for _, task := range core.Tasks {
		want, err := core.RunReference(ref, core.Spec{Task: task, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Run(core.Spec{Task: task, K: 3, Workers: 4})
		if err != nil {
			t.Fatalf("%v under budget: %v", task, err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("%v: count %d vs %d", task, got.Count(), want.Count())
		}
		assertResultsEqual(t, "colstore-budgeted", got, want)
	}
}
