// Package smartbench is a from-scratch Go reproduction of
// "Benchmarking Smart Meter Data Analytics" (Liu, Golab, Golab, Ilyas;
// EDBT 2015): the four-task smart meter analytics benchmark, the
// realistic data generator, and analogues of the five evaluated
// platforms (Matlab, PostgreSQL/MADLib, the "System C" main-memory
// column store, Spark and Hive) built on pure-Go substrates — a slotted
// heap/B+tree row store, a binary columnar store, and a simulated
// cluster with an HDFS-like file system, a MapReduce engine and an
// RDD engine.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record of every
// regenerated table and figure. The bench_test.go file in this
// directory carries one testing.B benchmark per paper table/figure;
// cmd/smbench runs the full experiment suite.
package smartbench
