// Command smquery runs one benchmark task on one engine over a data
// directory and prints a summary of the results — the quickest way to
// poke at a data set or sanity-check an engine.
//
// Usage:
//
//	smquery -data DIR -engine colstore -task 3line
//	smquery -data DIR -engine hive -task similarity -k 5
//	smquery -data SEGDIR -engine colstore -membudget 64MiB -task histogram
//
// When -engine colstore is given a directory that already holds a
// sealed segment file (segments.col), it is opened in place with
// OpenExisting — optionally under a -membudget page-cache cap — rather
// than re-loaded from raw meter files. With -fsync batch or always the
// write-ahead log is armed on that open, so a log left behind by a
// crashed writer is replayed before the query answers:
//
//	smquery -data SEGDIR -engine colstore -fsync batch -task histogram
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/filestore"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/impute"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/wal"

	"github.com/smartmeter/smartbench/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("smquery", flag.ContinueOnError)
	dataDir := fs.String("data", "", "data directory (required; written by smgen)")
	engineName := fs.String("engine", "colstore", "engine: filestore, rowstore, rowstore-array, colstore, spark, hive")
	taskName := fs.String("task", "histogram", "task: histogram, 3line, par, similarity")
	k := fs.Int("k", 10, "similarity top-k")
	workers := fs.Int("workers", 1, "intra-engine parallelism")
	limit := fs.Int("limit", 5, "max consumers to print")
	imputeGaps := fs.Bool("impute", false, "fill missing readings (hybrid imputation) before running")
	policyName := fs.String("failpolicy", "failfast", "per-consumer failure policy: failfast, quarantine or repair")
	timeout := fs.Duration("timeout", 0, "per-run deadline (0 = none), e.g. 30s")
	memBudgetStr := fs.String("membudget", "", "column-store decoded-block cache cap, e.g. 64MiB (colstore only; default: unbudgeted in-core)")
	fsyncName := fs.String("fsync", "off", "write-ahead-log policy when opening engine-native colstore storage: off, batch or always; batch/always replay any log a crashed writer left behind before answering (colstore only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		fs.Usage()
		return fmt.Errorf("-data is required")
	}
	policy, err := core.ParseFailPolicy(*policyName)
	if err != nil {
		return err
	}
	if *timeout < 0 {
		return fmt.Errorf("negative timeout %v", *timeout)
	}
	memBudget, err := core.ParseByteSize(*memBudgetStr)
	if err != nil {
		return fmt.Errorf("bad -membudget %q (want e.g. 64MiB, 1GiB)", *memBudgetStr)
	}
	if memBudget > 0 && *engineName != "colstore" {
		return fmt.Errorf("-membudget applies only to -engine colstore")
	}
	walPolicy, walOn, err := parseFsync(*fsyncName)
	if err != nil {
		return err
	}
	if walOn && *engineName != "colstore" {
		return fmt.Errorf("-fsync applies only to -engine colstore")
	}

	var task core.Task
	switch *taskName {
	case "histogram":
		task = core.TaskHistogram
	case "3line", "threeline":
		task = core.TaskThreeLine
	case "par":
		task = core.TaskPAR
	case "similarity":
		task = core.TaskSimilarity
	default:
		return fmt.Errorf("unknown task %q", *taskName)
	}

	var eng core.Engine
	var cleanup func()
	var st *core.LoadStats
	segPath := filepath.Join(*dataDir, colstore.SegmentFileName)
	if _, serr := os.Stat(segPath); *engineName == "colstore" && serr == nil {
		// The directory is already engine-native storage: open the
		// sealed segment in place, paging under the budget if one is
		// set, instead of bulk-loading raw meter files.
		if *imputeGaps {
			return fmt.Errorf("-impute needs raw meter files, not a sealed segment dir")
		}
		var opts []colstore.Option
		if memBudget > 0 {
			opts = append(opts, colstore.WithMemBudget(memBudget))
		}
		if walOn {
			opts = append(opts, colstore.WithWAL(walPolicy))
		}
		e := colstore.New(*dataDir, opts...)
		eng, cleanup = e, func() { _ = e.Release() }
		st, err = e.OpenExisting()
		if err != nil {
			cleanup()
			return err
		}
		fmt.Printf("opened %d consumers (%d readings) from %s\n", st.Consumers, st.Readings, segPath)
	} else {
		src, err := meterdata.DiscoverSource(*dataDir)
		if err != nil {
			return err
		}
		if *imputeGaps {
			if err := cleanSource(src); err != nil {
				return err
			}
		}
		eng, cleanup, err = makeEngine(*engineName, memBudget, walOn, walPolicy)
		if err != nil {
			return err
		}
		st, err = eng.Load(src)
		if err != nil {
			cleanup()
			return err
		}
		fmt.Printf("loaded %d consumers (%d readings) into %s\n", st.Consumers, st.Readings, eng.Name())
	}
	defer cleanup()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := eng.RunContext(ctx, core.Spec{Task: task, K: *k, Workers: *workers, FailPolicy: policy})
	if err != nil {
		return err
	}
	printResults(res, *limit)
	for _, f := range res.Failed {
		fmt.Printf("  quarantined consumer %d: %s\n", f.ID, f.Err)
	}
	return nil
}

// cleanSource rewrites the data directory with missing readings filled
// in (readings parse as NaN only via explicit "NaN" tokens; zero-filled
// gaps are left alone).
func cleanSource(src *meterdata.Source) error {
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return err
	}
	cleaned := 0
	for _, s := range ds.Series {
		frac := impute.Fraction(s.Readings)
		if stats.IsZero(frac) {
			continue
		}
		if err := impute.CleanSeries(s, 3); err != nil {
			return err
		}
		cleaned++
	}
	if cleaned == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "smquery: imputed gaps in %d series\n", cleaned)
	if src.Partitioned {
		_, err = meterdata.WritePartitioned(src.Dir, ds, src.Format)
	} else {
		_, err = meterdata.WriteUnpartitioned(src.Dir, ds, src.Format)
	}
	return err
}

// parseFsync maps the -fsync flag to a wal policy. "off" leaves the
// log unarmed (the historical behavior); batch/always arm it, which
// also replays any log a crashed writer left in the data directory.
func parseFsync(s string) (wal.SyncPolicy, bool, error) {
	if s == "off" {
		return wal.SyncBatch, false, nil
	}
	p, err := wal.ParsePolicy(s)
	if err != nil {
		return p, false, fmt.Errorf("bad -fsync %q (want off, batch or always)", s)
	}
	return p, true, nil
}

func makeEngine(name string, memBudget int64, walOn bool, walPolicy wal.SyncPolicy) (core.Engine, func(), error) {
	noop := func() {}
	switch name {
	case "filestore":
		return filestore.New(), noop, nil
	case "rowstore", "rowstore-array":
		dir, err := os.MkdirTemp("", "smquery-rowstore-*")
		if err != nil {
			return nil, noop, err
		}
		layout := rowstore.LayoutRows
		if name == "rowstore-array" {
			layout = rowstore.LayoutArrays
		}
		e := rowstore.New(dir, rowstore.WithLayout(layout))
		return e, func() { _ = e.Close(); _ = os.RemoveAll(dir) }, nil
	case "colstore":
		dir, err := os.MkdirTemp("", "smquery-colstore-*")
		if err != nil {
			return nil, noop, err
		}
		var opts []colstore.Option
		if memBudget > 0 {
			opts = append(opts, colstore.WithMemBudget(memBudget))
		}
		if walOn {
			opts = append(opts, colstore.WithWAL(walPolicy))
		}
		e := colstore.New(dir, opts...)
		return e, func() { _ = e.Release(); _ = os.RemoveAll(dir) }, nil
	case "spark", "hive":
		cluster, err := distsim.New(distsim.DefaultConfig())
		if err != nil {
			return nil, noop, err
		}
		fsys, err := dfs.New(cluster)
		if err != nil {
			return nil, noop, err
		}
		if name == "spark" {
			return rdd.New(fsys), noop, nil
		}
		return mapreduce.New(fsys), noop, nil
	default:
		return nil, noop, fmt.Errorf("unknown engine %q", name)
	}
}

func printResults(res *core.Results, limit int) {
	fmt.Printf("task %s: %d results\n", res.Task, res.Count())
	switch res.Task {
	case core.TaskHistogram:
		for i, h := range res.Histograms {
			if i >= limit {
				break
			}
			fmt.Printf("  consumer %d: range [%.3f, %.3f] kWh, counts %v\n",
				h.ID, h.Histogram.Min, h.Histogram.Max, h.Histogram.Counts)
		}
	case core.TaskThreeLine:
		for i, r := range res.ThreeLines {
			if i >= limit {
				break
			}
			fmt.Printf("  consumer %d: heating %.4f kWh/C, cooling %.4f kWh/C, base load %.3f kWh, breaks (%.1f, %.1f)\n",
				r.ID, r.HeatingGradient, r.CoolingGradient, r.BaseLoad, r.High.Break1, r.High.Break2)
		}
	case core.TaskPAR:
		for i, r := range res.Profiles {
			if i >= limit {
				break
			}
			fmt.Printf("  consumer %d profile:", r.ID)
			for _, v := range r.Profile {
				fmt.Printf(" %.2f", v)
			}
			fmt.Println()
		}
	case core.TaskSimilarity:
		for i, r := range res.Similar {
			if i >= limit {
				break
			}
			fmt.Printf("  consumer %d top matches:", r.ID)
			for _, m := range r.Matches {
				fmt.Printf(" %d(%.4f)", m.ID, m.Score)
			}
			fmt.Println()
		}
	}
}
