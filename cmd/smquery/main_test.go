package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestData shells through smgen's sibling logic by writing a tiny
// dataset with the library directly.
func writeTestData(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "d")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Reuse smgen's run for a realistic directory.
	if err := runGen(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runGen(dir string) error {
	// A minimal dataset via the meterdata/seed packages through smquery's
	// own imports would duplicate smgen; instead call the generator CLI
	// logic indirectly by writing with the libraries it uses.
	return genData(dir)
}

func TestRunAllEnginesSmoke(t *testing.T) {
	dir := writeTestData(t)
	for _, engine := range []string{"filestore", "rowstore", "rowstore-array", "colstore", "spark", "hive"} {
		if err := run([]string{"-data", dir, "-engine", engine, "-task", "histogram", "-limit", "1"}); err != nil {
			t.Errorf("%s: %v", engine, err)
		}
	}
}

func TestRunTasksSmoke(t *testing.T) {
	dir := writeTestData(t)
	for _, task := range []string{"histogram", "3line", "par", "similarity"} {
		if err := run([]string{"-data", dir, "-task", task, "-k", "2", "-limit", "1"}); err != nil {
			t.Errorf("%s: %v", task, err)
		}
	}
	if err := run([]string{"-data", dir, "-impute", "-task", "histogram"}); err != nil {
		t.Errorf("impute: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	dir := writeTestData(t)
	cases := [][]string{
		{},
		{"-data", dir, "-task", "bogus"},
		{"-data", dir, "-engine", "bogus"},
		{"-data", filepath.Join(dir, "missing")},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
