package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// writeTestData shells through smgen's sibling logic by writing a tiny
// dataset with the library directly.
func writeTestData(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "d")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Reuse smgen's run for a realistic directory.
	if err := runGen(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runGen(dir string) error {
	// A minimal dataset via the meterdata/seed packages through smquery's
	// own imports would duplicate smgen; instead call the generator CLI
	// logic indirectly by writing with the libraries it uses.
	return genData(dir)
}

func TestRunAllEnginesSmoke(t *testing.T) {
	dir := writeTestData(t)
	for _, engine := range []string{"filestore", "rowstore", "rowstore-array", "colstore", "spark", "hive"} {
		if err := run([]string{"-data", dir, "-engine", engine, "-task", "histogram", "-limit", "1"}); err != nil {
			t.Errorf("%s: %v", engine, err)
		}
	}
}

func TestRunTasksSmoke(t *testing.T) {
	dir := writeTestData(t)
	for _, task := range []string{"histogram", "3line", "par", "similarity"} {
		if err := run([]string{"-data", dir, "-task", task, "-k", "2", "-limit", "1"}); err != nil {
			t.Errorf("%s: %v", task, err)
		}
	}
	if err := run([]string{"-data", dir, "-impute", "-task", "histogram"}); err != nil {
		t.Errorf("impute: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	dir := writeTestData(t)
	cases := [][]string{
		{},
		{"-data", dir, "-task", "bogus"},
		{"-data", dir, "-engine", "bogus"},
		{"-data", filepath.Join(dir, "missing")},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	dir := writeTestData(t)
	cases := [][]string{
		{"-data", dir, "-failpolicy", "maybe"},
		{"-data", dir, "-timeout", "-3s"},
		{"-data", dir, "-membudget", "lots"},
		{"-data", dir, "-engine", "rowstore", "-membudget", "64KiB"},
		{"-data", dir, "-fsync", "sometimes"},
		{"-data", dir, "-engine", "rowstore", "-fsync", "batch"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestRunWithPolicyTimeoutAndBudget(t *testing.T) {
	dir := writeTestData(t)
	err := run([]string{"-data", dir, "-engine", "colstore", "-task", "histogram",
		"-failpolicy", "quarantine", "-timeout", "2m", "-membudget", "64KiB", "-limit", "1"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunOpensSealedSegmentDir points smquery at a directory that is
// already colstore-native storage: it must open the segment in place
// (under a budget) instead of looking for raw meter files.
func TestRunOpensSealedSegmentDir(t *testing.T) {
	raw := writeTestData(t)
	src, err := meterdata.DiscoverSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	segDir := t.TempDir()
	e := colstore.New(segDir)
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	if err := e.Release(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", segDir, "-task", "histogram",
		"-membudget", "64KiB", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
	// Imputation needs the raw files; a sealed dir must refuse it.
	if err := run([]string{"-data", segDir, "-impute"}); err == nil {
		t.Error("impute over sealed segment dir: want error")
	}
}

// TestRunFsyncRecoversCrashedDir crashes a wal-backed column store with
// a live tail only in the log, then queries the directory with -fsync
// batch: smquery must replay the log before answering.
func TestRunFsyncRecoversCrashedDir(t *testing.T) {
	raw := writeTestData(t)
	src, err := meterdata.DiscoverSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	segDir := t.TempDir()
	e := colstore.New(segDir, colstore.WithWAL(wal.SyncBatch))
	st, err := e.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	hours := int(st.Readings) / st.Consumers
	batch := make([]core.Reading, 0, st.Consumers)
	for id := 1; id <= st.Consumers; id++ {
		batch = append(batch, core.Reading{
			ID: timeseries.ID(id), Hour: hours, Consumption: 1.5, Temperature: 12,
		})
	}
	if err := e.Append(batch); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	// The tail lives only in the log; -fsync batch must replay it.
	if err := run([]string{"-data", segDir, "-fsync", "batch", "-task", "histogram", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
	// Without the flag the sealed base still answers (tail forfeited).
	if err := run([]string{"-data", segDir, "-task", "histogram", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
}
