package main

import (
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
)

// genData writes a small dataset for the CLI smoke tests.
func genData(dir string) error {
	ds, err := seed.Generate(seed.Config{Consumers: 4, Days: 10, Seed: 3})
	if err != nil {
		return err
	}
	_, err = meterdata.WriteUnpartitioned(dir, ds, meterdata.FormatReadingPerLine)
	return err
}
