package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGeneratesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data")
	err := run([]string{"-out", out, "-n", "6", "-seed-size", "5", "-days", "10", "-clusters", "3"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 { // data.csv + temperature.csv
		t.Errorf("entries = %d", len(entries))
	}
}

func TestRunGrouped(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g")
	if err := run([]string{"-out", out, "-n", "6", "-seed-size", "5", "-days", "10", "-group-files", "2", "-clusters", "3"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(out)
	if len(entries) != 3 { // 2 groups + temperature
		t.Errorf("entries = %d", len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                       // missing -out
		{"-out", "x", "-n", "0"}, // bad n
		{"-out", "x", "-format", "bogus"},
		{"-out", "x", "-partitioned", "-group-files", "2"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
