package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
)

func TestRunGeneratesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data")
	err := run([]string{"-out", out, "-n", "6", "-seed-size", "5", "-days", "10", "-clusters", "3"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 { // data.csv + temperature.csv
		t.Errorf("entries = %d", len(entries))
	}
}

func TestRunGrouped(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g")
	if err := run([]string{"-out", out, "-n", "6", "-seed-size", "5", "-days", "10", "-group-files", "2", "-clusters", "3"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(out)
	if len(entries) != 3 { // 2 groups + temperature
		t.Errorf("entries = %d", len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                       // missing -out
		{"-out", "x", "-n", "0"}, // bad n
		{"-out", "x", "-format", "bogus"},
		{"-out", "x", "-partitioned", "-group-files", "2"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunSegments(t *testing.T) {
	out := filepath.Join(t.TempDir(), "seg")
	err := run([]string{"-out", out, "-n", "6", "-seed-size", "5", "-days", "10",
		"-clusters", "3", "-format", "segments"})
	if err != nil {
		t.Fatal(err)
	}
	eng := colstore.New(out)
	st, err := eng.OpenExisting()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = eng.Release() }()
	if st.Consumers != 6 {
		t.Fatalf("consumers = %d, want 6", st.Consumers)
	}
	if want := int64(6 * 10 * 24 * 8); st.RawBytes != want {
		t.Fatalf("raw bytes = %d, want %d", st.RawBytes, want)
	}
	if st.StorageBytes >= st.RawBytes {
		t.Fatalf("segments not compressed: %d stored vs %d raw", st.StorageBytes, st.RawBytes)
	}
	res, err := eng.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histograms) != 6 {
		t.Fatalf("histograms = %d, want 6", len(res.Histograms))
	}
}

func TestRunSegmentsRejectsLayoutFlags(t *testing.T) {
	if err := run([]string{"-out", "x", "-format", "segments", "-partitioned"}); err == nil {
		t.Fatal("segments with -partitioned accepted")
	}
}

// TestRunSegmentsEncodersIdentical checks -encoders produces the same
// segment file byte-for-byte as the serial writer, with -flat-rate
// mixing constant consumers into the stream.
func TestRunSegmentsEncodersIdentical(t *testing.T) {
	dir := t.TempDir()
	serial, pooled := filepath.Join(dir, "serial"), filepath.Join(dir, "pooled")
	common := []string{"-n", "20", "-seed-size", "5", "-days", "10",
		"-clusters", "3", "-format", "segments", "-flat-rate", "0.3"}
	if err := run(append([]string{"-out", serial, "-encoders", "1"}, common...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", pooled, "-encoders", "4"}, common...)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(serial, colstore.SegmentFileName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(pooled, colstore.SegmentFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("segment files differ: %d vs %d bytes", len(a), len(b))
	}
}
