// Command smgen is the paper's data generator (§4): it creates large
// realistic smart meter data sets from a small seed of data.
//
// Since the paper's real Ontario seed is private, smgen first
// synthesizes a structurally equivalent seed (archetype households over
// a synthetic southern-Ontario weather year), disaggregates it with PAR
// + k-means + 3-line exactly as the paper describes, and re-aggregates
// new consumers on demand.
//
// Usage:
//
//	smgen -out DIR -n 1000 [-seed-size 100] [-clusters 8] [-noise 0.1]
//	      [-days 365] [-format reading|series|segments] [-partitioned] [-group-files N]
//	      [-encoders N] [-flat-rate P]
//
// The segments format streams straight into the column store's
// compressed segment file (out/segments.col, quantized to Wh
// resolution): generation reuses one row buffer, so arbitrarily many
// consumers are generable without ever holding the raw matrix in
// memory, and -encoders fans block encoding out over a worker pool
// (byte-identical output; default: the machine's CPU count). The other
// formats materialize the dataset and write CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("smgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	n := fs.Int("n", 100, "number of synthetic consumers to generate")
	seedSize := fs.Int("seed-size", 50, "number of consumers in the synthetic seed")
	clusters := fs.Int("clusters", 8, "k for the activity-profile clustering")
	noise := fs.Float64("noise", 0.1, "white noise standard deviation (kWh)")
	days := fs.Int("days", 365, "days per series")
	format := fs.String("format", "reading", "row format: reading (per line) or series (per line)")
	partitioned := fs.Bool("partitioned", false, "write one file per consumer")
	groupFiles := fs.Int("group-files", 0, "write the paper's third format with this many files")
	encoders := fs.Int("encoders", runtime.GOMAXPROCS(0), "segment-encode workers for -format segments")
	flatRate := fs.Float64("flat-rate", 0, "probability a consumer is a flat (constant) load")
	seedVal := fs.Int64("seed", 42, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	var f meterdata.Format
	switch *format {
	case "reading":
		f = meterdata.FormatReadingPerLine
	case "series":
		f = meterdata.FormatSeriesPerLine
	case "segments":
		if *partitioned || *groupFiles > 0 {
			return fmt.Errorf("-format segments is a single-file layout; drop -partitioned/-group-files")
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *partitioned && *groupFiles > 0 {
		return fmt.Errorf("-partitioned and -group-files are mutually exclusive")
	}

	fmt.Fprintf(os.Stderr, "smgen: synthesizing %d-consumer seed (%d days)...\n", *seedSize, *days)
	seedDS, err := seed.Generate(seed.Config{Consumers: *seedSize, Days: *days, Seed: *seedVal})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smgen: disaggregating seed (PAR + %d-means + 3-line)...\n", *clusters)
	gen, err := generator.New(seedDS, generator.Config{
		Clusters:    *clusters,
		NoiseStdDev: *noise,
		Seed:        *seedVal,
		FlatRate:    *flatRate,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smgen: generating %d synthetic consumers...\n", *n)
	if *format == "segments" {
		return writeSegments(*out, *n, *encoders, gen, seedDS.Temperature)
	}
	ds, err := gen.Dataset(*n, seedDS.Temperature)
	if err != nil {
		return err
	}

	var src *meterdata.Source
	switch {
	case *partitioned:
		src, err = meterdata.WritePartitioned(*out, ds, f)
	case *groupFiles > 0:
		src, err = meterdata.WriteGrouped(*out, ds, *groupFiles)
	default:
		src, err = meterdata.WriteUnpartitioned(*out, ds, f)
	}
	if err != nil {
		return err
	}
	bytes, err := src.TotalBytes()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smgen: wrote %d consumers, %d files, %.2f MiB to %s\n",
		*n, len(src.DataFiles), float64(bytes)/(1<<20), *out)
	return nil
}

// writeSegments streams n synthetic consumers into a compressed column
// store segment file, quantized to Wh resolution, reusing a single row
// buffer so memory stays O(series length) regardless of n. The result
// is directly loadable with colstore's OpenExisting / smbench's
// -engine colstore.
func writeSegments(out string, n, encoders int, gen *generator.Generator, temp *timeseries.Temperature) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if encoders < 1 {
		encoders = 1
	}
	path := filepath.Join(out, colstore.SegmentFileName)
	opts := []colstore.WriterOption{colstore.WithQuantize(3)}
	if encoders > 1 {
		opts = append(opts, colstore.WithEncoders(encoders))
	}
	w, err := colstore.NewSegmentWriter(path, temp.Values, opts...)
	if err != nil {
		return err
	}
	buf := make([]float64, len(temp.Values))
	began := time.Now()
	lastReport, lastCount := began, 0
	for i := 0; i < n; i++ {
		if err := gen.SeriesInto(buf, temp); err != nil {
			_ = w.Close()
			return err
		}
		if err := w.Append(timeseries.ID(i+1), buf); err != nil {
			_ = w.Close()
			return err
		}
		// Progress every ~5s of wall clock (checked every 4096
		// consumers so the hot loop stays cheap), with instantaneous
		// and cumulative throughput.
		if (i+1)%4096 == 0 {
			if now := time.Now(); now.Sub(lastReport) >= 5*time.Second {
				inst := float64(i+1-lastCount) / now.Sub(lastReport).Seconds()
				avg := float64(i+1) / now.Sub(began).Seconds()
				fmt.Fprintf(os.Stderr, "smgen: %d/%d consumers (%.0f/s, %.0f/s avg)\n",
					i+1, n, inst, avg)
				lastReport, lastCount = now, i+1
			}
		}
	}
	raw := w.RawBytes()
	if err := w.Close(); err != nil {
		return err
	}
	elapsed := time.Since(began)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smgen: wrote %d consumers in %s (%.0f consumers/s, %d encoders), %.2f MiB compressed (%.2f MiB raw, %.1fx) to %s\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), encoders,
		float64(st.Size())/(1<<20), float64(raw)/(1<<20),
		float64(raw)/float64(st.Size()), path)
	return nil
}
