package main

// refbalanceAnalyzer enforces the repo's paired acquire/release
// disciplines on every control-flow path: Dataset.Flat → ReleaseFlat,
// rdd Persist → Unpersist, the rowstore buffer pool's fetch/allocate →
// unpin. The pairs live in a small table, so a new resource is one
// line. Two shapes exist:
//
//   - receiver-tracked: the acquire pins state on its receiver
//     (ds.Persist()); the same receiver must reach the release
//     (ds.Unpersist()) or escape to an owner. Acquires on parameters
//     and captured variables are exempt — the caller owns those.
//   - value-tracked: the acquire returns the resource
//     (fr, err := bp.fetch(page)); the returned value must reach the
//     release (bp.unpin(fr, …)) or escape.
//
// Escapes and in-package summaries follow the same rules as
// cursorleak (flow.go): handing the resource to a function that the
// package summary says releases or keeps it settles the path; an
// in-package function that only reads it does not.
//
// The analyzer also enforces the revive protocol: when a type's Close
// latches a bool field before releasing shared state
// (`if !c.closed { c.closed = true; c.idx.release() }`), that latch is
// what makes the release exactly-once. A Reset on the same type that
// clears the latch (`c.closed = false`) revives the cursor, and the
// next Close releases the shared state a second time — a refcount
// underflow. Inner Close calls are exempt from the release set (the
// Cursor contract makes Close idempotent), so pure delegating wrappers
// may legitimately revive.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var refbalanceAnalyzer = &Analyzer{
	Name: "refbalance",
	Doc:  "flags acquire calls (Flat, Persist, fetch, allocate) whose paired release does not cover every path",
	Run:  runRefbalance,
}

// refPair is one acquire/release discipline. ownerSuffix anchors the
// method to its defining type (package-path-qualified suffix), so an
// unrelated method that shares the name is not matched.
type refPair struct {
	acquire, release string
	// valueTracked: the acquire call's first non-error result is the
	// resource; the release takes it as an argument. Otherwise the
	// acquire's receiver is the resource and the release is a method on
	// it.
	valueTracked bool
	ownerSuffix  string
}

// refPairs is the discipline table. Adding a resource is one line.
var refPairs = []refPair{
	{acquire: "Flat", release: "ReleaseFlat", ownerSuffix: "internal/timeseries.Dataset"},
	{acquire: "Persist", release: "Unpersist", ownerSuffix: "internal/engine/rdd.Dataset"},
	{acquire: "fetch", release: "unpin", valueTracked: true, ownerSuffix: "internal/engine/rowstore.bufferPool"},
	{acquire: "allocate", release: "unpin", valueTracked: true, ownerSuffix: "internal/engine/rowstore.bufferPool"},
	{acquire: "fetch", release: "unpin", valueTracked: true, ownerSuffix: "internal/engine/colstore.pager"},
}

func runRefbalance(p *Pass) {
	pf := p.Facts()
	for _, ff := range pf.funcs {
		if isTestFile(p.Fset, ff.decl.Pos()) {
			continue
		}
		for _, u := range flowUnits(ff.decl) {
			checkUnitBalance(p, pf, u)
		}
	}
	checkReviveProtocol(p, pf)
}

// reviveReleaseNames is the set of method names that count as releasing
// shared state under a Close latch: the table's releases plus the
// refcount idiom "release". Close itself is excluded — the Cursor
// contract makes Close idempotent, so a wrapper that merely forwards
// Close may revive without double-releasing.
func reviveReleaseNames() map[string]bool {
	names := map[string]bool{"release": true}
	for _, pr := range refPairs {
		names[pr.release] = true
	}
	return names
}

// checkReviveProtocol flags Reset methods that clear the latch field
// their type's Close releases under.
func checkReviveProtocol(p *Pass, pf *packageFacts) {
	releases := reviveReleaseNames()
	latches := map[string]string{} // receiver type name -> latch field
	var resets []*funcFacts
	for _, ff := range pf.funcs {
		if ff.decl.Recv == nil || isTestFile(p.Fset, ff.decl.Pos()) {
			continue
		}
		switch ff.decl.Name.Name {
		case "Close":
			if field := closeLatchField(ff.decl, releases); field != "" {
				latches[recvTypeName(ff.decl)] = field
			}
		case "Reset":
			resets = append(resets, ff)
		}
	}
	for _, ff := range resets {
		typeName := recvTypeName(ff.decl)
		field := latches[typeName]
		if field == "" {
			continue
		}
		if as := latchClearAssign(ff.decl, field); as != nil {
			p.Reportf(as.Pos(),
				"Reset revives a closed %s by clearing %s; Close released shared state under that latch, so the revived cursor's next Close double-releases it — leave closed cursors closed (rewind only)",
				typeName, field)
		}
	}
}

// recvTypeName returns the receiver's (pointer-stripped) type name, or
// "" when the method has an exotic receiver.
func recvTypeName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvIdentName returns the receiver variable's name, or "".
func recvIdentName(decl *ast.FuncDecl) string {
	if len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// closeLatchField looks for the exactly-once release shape inside a
// Close body — `if !recv.F { recv.F = true; …release call… }` — and
// returns the latch field F, or "".
func closeLatchField(decl *ast.FuncDecl, releases map[string]bool) string {
	recv := recvIdentName(decl)
	if recv == "" || decl.Body == nil {
		return ""
	}
	var field string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if field != "" {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		not, ok := ifStmt.Cond.(*ast.UnaryExpr)
		if !ok || not.Op != token.NOT {
			return true
		}
		f := recvField(not.X, recv)
		if f == "" {
			return true
		}
		var latched, released bool
		ast.Inspect(ifStmt.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, lhs := range m.Lhs {
					if recvField(lhs, recv) == f && i < len(m.Rhs) && isIdent(m.Rhs[i], "true") {
						latched = true
					}
				}
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && releases[sel.Sel.Name] {
					released = true
				}
			}
			return true
		})
		if latched && released {
			field = f
		}
		return true
	})
	return field
}

// latchClearAssign finds `recv.field = false` in a Reset body.
func latchClearAssign(decl *ast.FuncDecl, field string) *ast.AssignStmt {
	recv := recvIdentName(decl)
	if recv == "" || decl.Body == nil {
		return nil
	}
	var found *ast.AssignStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if recvField(lhs, recv) == field && i < len(as.Rhs) && isIdent(as.Rhs[i], "false") {
				found = as
				return false
			}
		}
		return true
	})
	return found
}

// recvField returns the field name when e is `recv.F`, else "".
func recvField(e ast.Expr, recv string) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !isIdent(sel.X, recv) {
		return ""
	}
	return sel.Sel.Name
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func checkUnitBalance(p *Pass, pf *packageFacts, u *flowUnit) {
	u.eachStmt(func(s ast.Stmt) {
		for i := range refPairs {
			pair := &refPairs[i]
			if pair.valueTracked {
				checkValueAcquire(p, pf, u, s, pair)
			} else {
				checkReceiverAcquire(p, pf, u, s, pair)
			}
		}
	})
}

// checkValueAcquire handles `x, err := owner.acquire(...)`.
func checkValueAcquire(p *Pass, pf *packageFacts, u *flowUnit, s ast.Stmt, pair *refPair) {
	acq := assignAcquisition(p, s, func(types.Type) bool { return true })
	if acq == nil || !isPairCall(p, acq.call, pair) {
		return
	}
	if acq.obj.Pos() < u.body.Pos() || acq.obj.Pos() > u.body.End() {
		return
	}
	q := &flowQuery{
		p:      p,
		pf:     pf,
		obj:    acq.obj,
		errObj: acq.err,
		isRelease: func(sel *ast.SelectorExpr, asReceiver bool) bool {
			return sel.Sel.Name == pair.release
		},
		calleeSettles: func(gf *funcFacts, i int) bool {
			return gf.releasesParams[i][pair.release]
		},
	}
	if bad := q.run(u, s); bad != nil {
		p.Reportf(s.Pos(),
			"%s from %s does not reach %s on the path leaving via %s; release it on every path or defer the release",
			acq.obj.Name(), pair.acquire, pair.release, describeExit(p, bad))
	}
}

// checkReceiverAcquire handles `res.acquire(...)` pinning state on res.
func checkReceiverAcquire(p *Pass, pf *packageFacts, u *flowUnit, s ast.Stmt, pair *refPair) {
	call := stmtCall(s)
	if call == nil || !isPairCall(p, call, pair) {
		return
	}
	sel := call.Fun.(*ast.SelectorExpr) // isPairCall guarantees the shape
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return // res.field.Acquire(): owner is not a trackable local
	}
	obj := p.Info.Uses[recv]
	if obj == nil {
		return
	}
	// Only locals declared in this unit: a parameter, receiver or
	// captured variable is owned (and released) by someone else.
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if obj.Pos() < u.body.Pos() || obj.Pos() > u.body.End() {
		return
	}
	q := &flowQuery{
		p:   p,
		pf:  pf,
		obj: obj,
		isRelease: func(sel *ast.SelectorExpr, asReceiver bool) bool {
			return asReceiver && sel.Sel.Name == pair.release
		},
		calleeSettles: func(gf *funcFacts, i int) bool {
			return gf.releasesParams[i][pair.release]
		},
	}
	if bad := q.run(u, s); bad != nil {
		p.Reportf(s.Pos(),
			"%s.%s is not balanced by %s on the path leaving via %s; release it on every path or defer the release",
			recv.Name, pair.acquire, pair.release, describeExit(p, bad))
	}
}

// stmtCall extracts a call evaluated by a plain statement: an
// expression statement or a single-call assignment.
func stmtCall(s ast.Stmt) *ast.CallExpr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return call
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				return call
			}
		}
	}
	return nil
}

// isPairCall reports whether the call invokes pair.acquire on the
// pair's owner type.
func isPairCall(p *Pass, call *ast.CallExpr, pair *refPair) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != pair.acquire {
		return false
	}
	recvType := p.Info.TypeOf(sel.X)
	return typeHasSuffix(recvType, pair.ownerSuffix)
}

// typeHasSuffix matches a (possibly pointer) named type against a
// package-path-qualified suffix like "internal/timeseries.Dataset".
func typeHasSuffix(t types.Type, suffix string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return strings.HasSuffix(full, suffix)
}
