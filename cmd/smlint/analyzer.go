// smlint is the repo-native static-analysis driver for the smart meter
// benchmark. It enforces, by construction, the properties the paper's
// numbers depend on: deterministic randomness, epsilon-audited
// floating-point comparisons, race-free goroutine fan-out and no
// silently dropped errors.
//
// It is built only on the standard library (go/ast, go/parser,
// go/types) — no golang.org/x/tools dependency — so it runs anywhere
// the Go toolchain does.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the registry, in reporting order.
var analyzers = []*Analyzer{
	floatcmpAnalyzer,
	globalrandAnalyzer,
	goroutinecaptureAnalyzer,
	errdropAnalyzer,
	enginelayeringAnalyzer,
	timenowAnalyzer,
	ctxpollAnalyzer,
}

// runAnalyzers applies every analyzer to the package and returns the
// findings sorted by position.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			analyzer: a.Name,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}
