// smlint is the repo-native static-analysis driver for the smart meter
// benchmark. It enforces, by construction, the properties the paper's
// numbers depend on: deterministic randomness, epsilon-audited
// floating-point comparisons, race-free goroutine fan-out, no silently
// dropped errors, and — through the interprocedural dataflow analyzers
// (cursorleak, refbalance, ctxflow, hotalloc) — resource lifecycles,
// cancellation plumbing and allocation-free hot loops.
//
// It is built only on the standard library (go/ast, go/parser,
// go/types) — no golang.org/x/tools dependency — so it runs anywhere
// the Go toolchain does.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	diags    *[]Diagnostic
	// facts is the package's interprocedural substrate (call graph +
	// per-function summaries), computed once per package and shared by
	// every analyzer via Facts().
	facts *packageFacts
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the registry, in reporting order.
var analyzers = []*Analyzer{
	floatcmpAnalyzer,
	globalrandAnalyzer,
	goroutinecaptureAnalyzer,
	errdropAnalyzer,
	synccloseAnalyzer,
	enginelayeringAnalyzer,
	timenowAnalyzer,
	ctxpollAnalyzer,
	cursorleakAnalyzer,
	refbalanceAnalyzer,
	ctxflowAnalyzer,
	hotallocAnalyzer,
}

func knownAnalyzer(name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// runAnalyzers applies every analyzer to the package, honors
// //smlint:ignore directives and returns the findings sorted by
// position.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	var facts *packageFacts
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			analyzer: a.Name,
			diags:    &diags,
			facts:    facts,
		}
		a.Run(pass)
		facts = pass.facts // first analyzer to ask computes; the rest share
	}
	diags = applySuppressions(fset, files, diags)
	sortDiags(diags)
	return diags
}

// sortDiags orders findings by file, line, column, analyzer — the
// deterministic order the driver also applies globally across packages
// so output and CI diffs are stable.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// applySuppressions drops diagnostics covered by a
// `//smlint:ignore <analyzer> <reason>` comment on the same line or the
// line above, and reports malformed directives (unknown analyzer,
// missing reason) as findings of their own — a suppression without a
// written reason is not a suppression.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	covered := map[string]map[int]map[string]bool{} // file -> line -> analyzer
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//smlint:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				malformed := func(format string, args ...any) {
					out = append(out, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf(format, args...),
					})
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed("smlint:ignore needs an analyzer name and a reason: //smlint:ignore <analyzer> <reason>")
					continue
				}
				if !knownAnalyzer(fields[0]) {
					malformed("smlint:ignore names unknown analyzer %q", fields[0])
					continue
				}
				if len(fields) < 2 {
					malformed("smlint:ignore %s needs a reason explaining why the finding is acceptable", fields[0])
					continue
				}
				if covered[pos.Filename] == nil {
					covered[pos.Filename] = map[int]map[string]bool{}
				}
				if covered[pos.Filename][pos.Line] == nil {
					covered[pos.Filename][pos.Line] = map[string]bool{}
				}
				covered[pos.Filename][pos.Line][fields[0]] = true
			}
		}
	}
	for _, d := range diags {
		lines := covered[d.Pos.Filename]
		if lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}
