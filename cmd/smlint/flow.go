package main

// flow.go is the shared must-reach engine for the resource-lifecycle
// analyzers (cursorleak, refbalance): given a local variable bound to a
// resource at an acquisition statement, walk every control-flow path to
// the function exit and require each one to settle the resource — by
// releasing it, deferring a release, or letting it escape to an owner
// (returned, stored, captured, or handed to a function whose summary
// says it releases or keeps it).
//
// Escapes are deliberately one-way: once the value leaves the local
// scope the caller/callee owns it and the path is satisfied. That keeps
// the analyzers at near-zero false positives while still catching the
// classic early-return-between-acquire-and-defer bug. The per-package
// summaries (facts.go) sharpen the call-argument case: handing the
// resource to an in-package function that neither releases nor keeps it
// does NOT settle the path.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowUnit is one analyzable body: a declared function or a function
// literal (engines acquire resources inside lazy-cursor closures, so
// literals get their own CFG and query).
type flowUnit struct {
	body *ast.BlockStmt
	cfg  *funcCFG
}

// flowUnits collects the top-level unit of decl plus one unit per
// function literal, at any nesting depth.
func flowUnits(decl *ast.FuncDecl) []*flowUnit {
	units := []*flowUnit{{body: decl.Body, cfg: buildCFG(decl.Body)}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, &flowUnit{body: lit.Body, cfg: buildCFG(lit.Body)})
		}
		return true
	})
	return units
}

// eachStmt visits the statements that belong to this unit itself,
// skipping statements inside nested function literals (their own
// units).
func (u *flowUnit) eachStmt(fn func(ast.Stmt)) {
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			return lit.Body == u.body // descend only into our own body
		}
		if s, ok := n.(ast.Stmt); ok {
			if _, tracked := u.cfg.nodes[s]; tracked {
				fn(s)
			}
		}
		return true
	})
}

// flowQuery is one tracked-resource must-reach question.
type flowQuery struct {
	p  *Pass
	pf *packageFacts
	// obj is the tracked local: the acquired closer (value-tracked) or
	// the receiver the acquire method pinned (receiver-tracked).
	obj types.Object
	// errObj, when non-nil, is the error assigned alongside the
	// acquisition; branches guarded by `errObj != nil` are pruned (the
	// resource is invalid there by Go convention).
	errObj types.Object
	// isRelease reports whether a selector call settles the resource:
	// asReceiver when obj is the method receiver (x.Close(),
	// ds.Unpersist()), otherwise obj is an argument (bp.unpin(fr, …)).
	isRelease func(sel *ast.SelectorExpr, asReceiver bool) bool
	// calleeSettles reports whether passing obj as callee's paramIdx-th
	// parameter settles the resource per the callee's summary.
	calleeSettles func(gf *funcFacts, paramIdx int) bool
}

// run walks every path from the acquisition statement and returns the
// terminal node of the first unsettled path, or nil when every path
// settles or escapes the resource.
func (q *flowQuery) run(u *flowUnit, acquire ast.Stmt) *cfgNode {
	start := u.cfg.nodes[acquire]
	if start == nil {
		return nil
	}
	return u.cfg.firstUnsatisfiedExit(start, func(n *cfgNode) pathVerdict {
		return q.classify(n)
	}, q.pruneErrGuard)
}

// classify scans the expressions a node evaluates for uses of the
// tracked object.
func (q *flowQuery) classify(n *cfgNode) pathVerdict {
	verdict := pathContinue
	for _, root := range shallowExprs(n.stmt) {
		if q.scan(root) == pathSatisfied {
			verdict = pathSatisfied
		}
	}
	return verdict
}

// scan walks one expression tree with a parent stack, classifying each
// occurrence of the tracked object.
func (q *flowQuery) scan(root ast.Node) pathVerdict {
	verdict := pathContinue
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if lit, ok := n.(*ast.FuncLit); ok {
			// A literal capturing the object escapes it (the closure may
			// release it later — defers and lazy onClose hooks do).
			if q.captures(lit) {
				verdict = pathSatisfied
			}
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || q.p.Info.Uses[id] != q.obj {
			return true
		}
		if q.useSettles(stack, id) {
			verdict = pathSatisfied
		}
		return true
	})
	return verdict
}

// captures reports whether the literal's body mentions the tracked
// object.
func (q *flowQuery) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && q.p.Info.Uses[id] == q.obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// useSettles classifies one occurrence of the tracked object given its
// ancestor stack (innermost last, the ident itself on top).
func (q *flowQuery) useSettles(stack []ast.Node, id *ast.Ident) bool {
	parent := ancestor(stack, 1)

	// x.Method(...): release settles; other methods are neutral reads.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		if call, ok := ancestor(stack, 2).(*ast.CallExpr); ok && call.Fun == sel {
			return q.isRelease != nil && q.isRelease(sel, true)
		}
		return false // bare field/method read
	}

	// Comparisons (x == nil) are neutral reads.
	if be, ok := parent.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
		return false
	}

	// x as a call argument.
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun != ast.Node(id) {
		return q.argSettles(call, id)
	}

	// A type assertion result, return value, assignment source, struct
	// or slice literal element, channel send, address-of, map/index
	// store: the value escapes to another owner.
	switch parent.(type) {
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr,
		*ast.SendStmt, *ast.UnaryExpr, *ast.TypeAssertExpr, *ast.IndexExpr:
		return true
	case *ast.AssignStmt:
		as := parent.(*ast.AssignStmt)
		for _, rhs := range as.Rhs {
			if rhs == ast.Expr(id) {
				return true // aliased or stored
			}
		}
		return false // reassignment target: neutral here
	}
	return false
}

// argSettles classifies passing the object to a call: a release by
// name, an in-package callee whose summary settles the parameter, or a
// conservative escape for callees we cannot see into.
func (q *flowQuery) argSettles(call *ast.CallExpr, id *ast.Ident) bool {
	argIdx := -1
	for i, a := range call.Args {
		if a == ast.Expr(id) {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return true // inside a nested expression we did not model: escape
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && q.isRelease != nil && q.isRelease(sel, false) {
		return true
	}
	if callee := staticCallee(q.p.Info, call); callee != nil && callee.Pkg() == q.p.Pkg {
		if gf := q.pf.funcs[callee]; gf != nil {
			if q.calleeSettles != nil && argIdx < len(gf.closesParams) && q.calleeSettles(gf, argIdx) {
				return true
			}
			if argIdx < len(gf.escapesParams) && gf.escapesParams[argIdx] {
				return true // callee keeps it: ownership transferred
			}
			return false // callee only reads it: still ours to settle
		}
	}
	// Cross-package or dynamic call: assume ownership may transfer.
	return true
}

// pruneErrGuard suppresses the error branch of `if err != nil` (and the
// success branch of `if err == nil`'s else) for the acquisition's error
// sibling: by convention the resource is not live when its constructor
// errored.
func (q *flowQuery) pruneErrGuard(n *cfgNode, succIdx int) bool {
	if q.errObj == nil || !n.isIf {
		return false
	}
	ifStmt, ok := n.stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	be, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var errSide ast.Expr
	switch {
	case isNilIdent(be.Y):
		errSide = be.X
	case isNilIdent(be.X):
		errSide = be.Y
	default:
		return false
	}
	id, ok := errSide.(*ast.Ident)
	if !ok || q.p.Info.Uses[id] != q.errObj {
		return false
	}
	switch be.Op {
	case token.NEQ:
		return succIdx == 0 // prune the err != nil (then) branch
	case token.EQL:
		return succIdx == 1 // prune the err == nil else branch
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// ancestor returns the n-th ancestor from the top of the stack (1 =
// parent of the current node), or nil.
func ancestor(stack []ast.Node, n int) ast.Node {
	if len(stack) <= n {
		return nil
	}
	return stack[len(stack)-1-n]
}

// acquisition describes a statement that binds a tracked resource.
type acquisition struct {
	stmt ast.Stmt
	obj  types.Object // the tracked local
	err  types.Object // error assigned alongside, or nil
	call *ast.CallExpr
}

// assignAcquisitions matches `x := f(...)` / `x, err := f(...)` forms
// where wantObj selects which result binding to track. It returns nil
// when the statement is not an assignment from a single call.
func assignAcquisition(p *Pass, s ast.Stmt, wantType func(types.Type) bool) *acquisition {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	// Conversions look like calls but transfer nothing.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	acq := &acquisition{stmt: s, call: call}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id] // plain `=` assignment to an existing var
		}
		if obj == nil {
			continue
		}
		if isErrorType(obj.Type()) {
			acq.err = obj
			continue
		}
		if acq.obj == nil && wantType(obj.Type()) {
			acq.obj = obj
		}
	}
	if acq.obj == nil {
		return nil
	}
	return acq
}
