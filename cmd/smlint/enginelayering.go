package main

import (
	"strconv"
	"strings"
)

// enginelayeringAnalyzer enforces the execution-layer boundary: engine
// packages (internal/engine/...) model *storage platforms* — how bytes
// are laid out and extracted — while the analytics live in the task
// packages (histogram, threeline, par, similarity) and are dispatched
// by internal/exec. An engine that imports a task package is
// re-growing a per-engine task switch, which is exactly the
// duplication the cursor pipeline removed.
var enginelayeringAnalyzer = &Analyzer{
	Name: "enginelayering",
	Doc:  "forbids internal/engine packages from importing task packages; analytics dispatch belongs to internal/exec",
	Run:  runEnginelayering,
}

// taskPackages are the analytics packages an engine must not see.
// Matched by import-path suffix so the check is module-path agnostic.
var taskPackages = []string{
	"/internal/histogram",
	"/internal/threeline",
	"/internal/par",
	"/internal/similarity",
}

func runEnginelayering(p *Pass) {
	if !strings.Contains(p.Pkg.Path()+"/", "/internal/engine/") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, task := range taskPackages {
				if strings.HasSuffix(path, task) {
					p.Reportf(imp.Pos(), "engine package imports task package %q; route analytics through internal/exec instead", path)
				}
			}
		}
	}
}
