package main

// ctxflowAnalyzer enforces the repo's cancellation discipline
// interprocedurally: a function that (transitively) reaches an
// uncancellable sleep must accept a context.Context and honor it, and a
// function that already has a context must forward it instead of
// minting context.Background(). It composes three rules on the
// packageFacts substrate:
//
//  1. has-ctx-but-sleeps: the function accepts ctx yet calls a bare
//     time.Sleep in its own body — the wait ignores cancellation.
//  2. drops-ctx-at-call: the function accepts ctx and calls an
//     in-package function that transitively bottoms out in time.Sleep
//     but takes no context — cancellation dies at that edge.
//  3. blocks-without-ctx: a non-test function with no ctx parameter
//     sleeps directly — callers have no way to cancel it. main, init
//     and function literals spawned via go are exempt (a goroutine's
//     sleep does not block its spawner).
//
// A bare sleep under a nil-context guard (`if ctx == nil { time.Sleep }`,
// `if ctx.Done() == nil { ... }`) is the sanctioned fallback for
// optional contexts — distsim.SleepCtx and the fault injector's bound
// sleep — and is exempt from all three rules.
//
// Channel operations feed the blocking fact (facts.go) but do not
// trigger reports on their own: a receive in a loop is usually already
// racing a ctx.Done() arm in a select, and flagging it would drown the
// signal.

import (
	"go/ast"
)

var ctxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags functions that reach an uncancellable time.Sleep without accepting a context, and contexts dropped instead of forwarded",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	pf := p.Facts()
	for _, ff := range pf.funcs {
		if isTestFile(p.Fset, ff.decl.Pos()) {
			continue
		}
		if ff.ctxParam >= 0 {
			checkCtxBearer(p, pf, ff)
		} else {
			checkCtxless(p, ff)
		}
	}
}

// checkCtxBearer applies rules 1 and 2 plus the Background()-drop check
// to a function that accepts a context.
func checkCtxBearer(p *Pass, pf *packageFacts, ff *funcFacts) {
	for _, oc := range ownCalls(p, ff.decl) {
		call := oc.call
		if isBareSleep(p, call) {
			if !oc.ctxGuarded {
				p.Reportf(call.Pos(),
					"%s accepts a context but waits in bare time.Sleep; select on the context (or use a ctx-aware sleep) so cancellation interrupts the wait",
					ff.obj.Name())
			}
			continue
		}
		if arg := freshContextArg(p, call); arg != nil {
			p.Reportf(arg.Pos(),
				"%s accepts a context but passes a fresh one here; forward the caller's context so cancellation propagates",
				ff.obj.Name())
		}
		callee := staticCallee(p.Info, call)
		if callee == nil || callee.Pkg() != p.Pkg {
			continue
		}
		gf := pf.funcs[callee]
		if gf == nil || gf.ctxParam >= 0 {
			continue
		}
		if root := rootBlock(pf, gf); root != nil && isSleepBlock(root) {
			p.Reportf(call.Pos(),
				"%s has a context but calls %s, which reaches time.Sleep and takes none; thread the context through so the sleep can be cancelled",
				ff.obj.Name(), callee.Name())
		}
	}
}

// checkCtxless applies rule 3: a function with no context parameter
// that sleeps in its own body.
func checkCtxless(p *Pass, ff *funcFacts) {
	name := ff.obj.Name()
	if ff.decl.Recv == nil && (name == "main" || name == "init") {
		return
	}
	for _, oc := range ownCalls(p, ff.decl) {
		if isBareSleep(p, oc.call) && !oc.ctxGuarded {
			p.Reportf(oc.call.Pos(),
				"%s blocks in time.Sleep but accepts no context.Context; accept one and honor cancellation, or push the wait up to a caller that does",
				name)
		}
	}
}

// ownCall is one call evaluated by the function's own body, with
// whether an enclosing if condition consults a context (the nil-ctx
// fallback shape).
type ownCall struct {
	call       *ast.CallExpr
	ctxGuarded bool
}

// ownCalls collects the calls of the function's own body, skipping
// function literals: a literal spawned via go (or stashed for later)
// blocks its eventual runner, not this function.
func ownCalls(p *Pass, decl *ast.FuncDecl) []ownCall {
	var out []ownCall
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, ownCall{call: call, ctxGuarded: underCtxGuard(p, stack)})
		}
		return true
	})
	return out
}

// underCtxGuard reports whether any enclosing if statement's condition
// consults a context value (ctx == nil, c.ctx != nil, ctx.Done() ==
// nil): the function is dispatching on context availability, so a bare
// sleep inside is the deliberate no-context fallback.
func underCtxGuard(p *Pass, stack []ast.Node) bool {
	for _, anc := range stack {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condMentionsContext(p, ifStmt.Cond) {
			return true
		}
	}
	return false
}

func condMentionsContext(p *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if isContextType(p.Info.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBareSleep reports whether the call is time.Sleep.
func isBareSleep(p *Pass, call *ast.CallExpr) bool {
	callee := staticCallee(p.Info, call)
	return callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "time" && callee.Name() == "Sleep"
}

// freshContextArg returns the argument expression when the call passes
// a context minted on the spot — context.Background() or context.TODO()
// — and nil otherwise.
func freshContextArg(p *Pass, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		callee := staticCallee(p.Info, inner)
		if callee == nil || callee.Pkg() == nil {
			continue
		}
		if callee.Pkg().Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			return arg
		}
	}
	return nil
}

// rootBlock follows a blocking fact's via chain to the function that
// blocks directly, returning its site (nil on a cycle or missing link).
func rootBlock(pf *packageFacts, ff *funcFacts) *blockSite {
	seen := map[*funcFacts]bool{}
	for ff != nil && ff.block != nil {
		if ff.block.via == nil {
			return ff.block
		}
		if seen[ff] {
			return nil
		}
		seen[ff] = true
		ff = pf.funcs[ff.block.via]
	}
	return nil
}

// isSleepBlock reports whether a direct block site is a time.Sleep (as
// opposed to a channel operation, which is usually select-guarded).
func isSleepBlock(b *blockSite) bool {
	return b.via == nil && b.what == "time.Sleep"
}
