package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// synccloseAnalyzer flags unchecked Close and Sync results on files
// opened for writing. On a write path the error surfaces at Close or
// Sync: the kernel may accept buffered writes and fail them at flush
// time, so dropping those results acks durability the disk never
// delivered — precisely the bug class the crash-injection suite exists
// to catch. Read-opened files are exempt (their Close errors carry no
// data-loss signal), and the repo's error-path idiom stays legal: a
// blank discard (`_ = f.Close()`) is allowed when the same function
// also checks a Close on the success path, because the discard only
// releases the descriptor after a failure that is already being
// returned.
var synccloseAnalyzer = &Analyzer{
	Name: "syncclose",
	Doc:  "flags unchecked Close/Sync on write-opened files",
	Run:  runSyncclose,
}

// synccloseWriteFlags are the os.OpenFile flag names that make a file
// writable; an OpenFile whose flag expression mentions none of them is
// treated as read-only.
var synccloseWriteFlags = map[string]bool{
	"O_WRONLY": true,
	"O_RDWR":   true,
	"O_APPEND": true,
	"O_CREATE": true,
	"O_TRUNC":  true,
}

func runSyncclose(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			synccloseFunc(p, fn.Body)
		}
	}
}

// synccloseSite is one Close/Sync call on a tracked file, classified by
// how its error result is consumed.
type synccloseSite struct {
	pos     token.Pos
	method  string
	kind    string // "checked", "stmt", "defer", "blank"
	varName string
	obj     *types.Var
}

// synccloseFunc analyzes one top-level function body, including nested
// function literals — the error-path closure idiom captures the file
// var, so sites inside closures count toward (and against) the same
// file.
func synccloseFunc(p *Pass, body *ast.BlockStmt) {
	// Pass 1: find vars bound to a write-opened file.
	tracked := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !synccloseOpensForWrite(p.Info, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if v, ok := synccloseVarOf(p.Info, id); ok {
			tracked[v] = true
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: collect every Close/Sync site on a tracked var, with the
	// parent chain deciding whether the error is consumed. Along the
	// way, note vars that escape the function — returned, stored into a
	// composite literal or assigned away — because their checked Close
	// lives with the new owner (the open-and-store constructor idiom).
	var sites []synccloseSite
	escapes := map[*types.Var]bool{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := synccloseVarOf(p.Info, id); ok && tracked[v] && synccloseEscapeUse(id, stack) {
				escapes[v] = true
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := synccloseVarOf(p.Info, recv)
		if !ok || !tracked[v] {
			return true
		}
		sites = append(sites, synccloseSite{
			pos:     call.Pos(),
			method:  sel.Sel.Name,
			kind:    synccloseKind(stack),
			varName: recv.Name,
			obj:     v,
		})
		return true
	})

	// A blank discard is the error-path idiom only when some other site
	// checks the same method on the same success path.
	checked := map[string]bool{} // varName+method
	for _, s := range sites {
		if s.kind == "checked" {
			checked[s.varName+"."+s.method] = true
		}
	}
	for _, s := range sites {
		switch s.kind {
		case "checked":
		case "stmt":
			p.Reportf(s.pos, "error from %s.%s() on a write-opened file is silently dropped; a failed %s loses acked writes",
				s.varName, s.method, s.method)
		case "defer":
			p.Reportf(s.pos, "deferred %s.%s() on a write-opened file drops its error; %s explicitly on the success path and check the result",
				s.varName, s.method, s.method)
		case "blank":
			if !checked[s.varName+"."+s.method] && !escapes[s.obj] {
				p.Reportf(s.pos, "_ = %s.%s() discards the only %s of a write-opened file; blank discards are for error paths that pair with a checked %s",
					s.varName, s.method, s.method, s.method)
			}
		}
	}
}

// synccloseKind classifies how the call at the top of the stack
// consumes its result, from the enclosing nodes.
func synccloseKind(stack []ast.Node) string {
	if len(stack) < 2 {
		return "checked"
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		return "stmt"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "stmt"
	case *ast.AssignStmt:
		if len(parent.Rhs) == 1 {
			allBlank := true
			for _, l := range parent.Lhs {
				if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				return "blank"
			}
		}
		return "checked"
	default:
		// Condition, return value, call argument: the error is consumed.
		return "checked"
	}
}

// synccloseEscapeUse reports whether this occurrence of the tracked
// var hands the handle to someone else: any use that is neither the
// receiver of a method call nor a plain assignment target. Receiver
// uses (f.Write, f.Close) keep ownership here; everything else —
// return values, composite literal fields, call arguments, assignments
// into fields — transfers the duty to close to the new owner.
func synccloseEscapeUse(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		if parent.X == id && len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == parent {
				return false // method receiver
			}
		}
		if parent.Sel == id {
			return false // field name, not the var
		}
		return true
	case *ast.AssignStmt:
		for _, l := range parent.Lhs {
			if l == id {
				return false // being (re)bound, not consumed
			}
		}
		return true
	default:
		return true
	}
}

// synccloseVarOf resolves an identifier to its variable object.
func synccloseVarOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// synccloseOpensForWrite reports whether the call opens a file for
// writing: os.Create, os.OpenFile with a write flag, or any Create /
// OpenAppend method whose result exposes both Close and Sync (the
// repo's wal.FS factories).
func synccloseOpensForWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Create", "OpenAppend":
	case "OpenFile":
		if len(call.Args) < 2 || !synccloseMentionsWriteFlag(call.Args[1]) {
			return false
		}
	default:
		return false
	}
	// The opened value must be syncable and closable — *os.File,
	// wal.File and friends; this screens out unrelated Create methods.
	t := info.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		t = tup.At(0).Type()
	}
	if t == nil {
		return false
	}
	return synccloseHasMethod(t, "Close") && synccloseHasMethod(t, "Sync")
}

// synccloseMentionsWriteFlag walks a flag expression for any writable
// open flag; unknown expressions conservatively read as read-only.
func synccloseMentionsWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && synccloseWriteFlags[id.Name] {
			found = true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && synccloseWriteFlags[sel.Sel.Name] {
			found = true
		}
		return !found
	})
	return found
}

// synccloseHasMethod reports whether t (or *t) has a niladic method
// with the given name returning error.
func synccloseHasMethod(t types.Type, name string) bool {
	if _, ok := t.(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
