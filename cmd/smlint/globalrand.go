package main

import (
	"go/ast"
	"go/types"
)

// globalrandAnalyzer flags calls to the package-level math/rand (and
// math/rand/v2) functions in library code. Those draw from a shared
// global source, so generator output stops being reproducible from a
// Config.Seed — the paper's data generator (§4) requires that two runs
// with the same seed produce identical data. Code must thread an
// injected *rand.Rand instead; the constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) are the sanctioned way to build one and
// are not flagged.
var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "flags package-level math/rand calls in non-test library code; inject a seeded *rand.Rand instead",
	Run:  runGlobalrand,
}

// globalrandConstructors build an explicit generator rather than
// touching the global source.
var globalrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := p.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if globalrandConstructors[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(), "call to global rand.%s; thread a seeded *rand.Rand so output is reproducible", sel.Sel.Name)
			return true
		})
	}
}
