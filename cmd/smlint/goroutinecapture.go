package main

import (
	"go/ast"
	"go/types"
)

// goroutinecaptureAnalyzer enforces the repo's worker fan-out
// convention: a goroutine launched inside a loop must receive the loop
// variables it needs as closure parameters (go func(w, lo, hi int) {...}(w,
// lo, hi)), never capture them from the enclosing scope, and wg.Add must
// run in the spawning goroutine before the go statement, not inside the
// spawned closure where it races wg.Wait. Go 1.22 made per-iteration
// loop variables the language default, but explicit parameter passing
// keeps each worker's inputs visible at the spawn site and survives
// refactors that hoist variables out of the loop header.
var goroutinecaptureAnalyzer = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "flags goroutine closures capturing loop variables and wg.Add calls inside spawned goroutines",
	Run:  runGoroutinecapture,
}

func runGoroutinecapture(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			loopVars := map[types.Object]bool{}
			switch loop := n.(type) {
			case *ast.RangeStmt:
				body = loop.Body
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						} else if obj := p.Info.Uses[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			case *ast.ForStmt:
				body = loop.Body
				if init, ok := loop.Init.(*ast.AssignStmt); ok {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok {
							if obj := p.Info.Defs[id]; obj != nil {
								loopVars[obj] = true
							} else if obj := p.Info.Uses[id]; obj != nil {
								loopVars[obj] = true
							}
						}
					}
				}
			default:
				// Independently of loops, check every go statement for
				// wg.Add inside the spawned closure.
				if g, ok := n.(*ast.GoStmt); ok {
					checkWgAddInside(p, g)
				}
				return true
			}
			if len(loopVars) == 0 {
				return true
			}
			ast.Inspect(body, func(inner ast.Node) bool {
				g, ok := inner.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
						p.Reportf(id.Pos(), "goroutine closure captures loop variable %q; pass it as a closure parameter instead", id.Name)
					}
					return true
				})
				return true
			})
			return true
		})
	}
}

// checkWgAddInside flags wg.Add calls in the body of a spawned closure:
// by the time the goroutine runs, wg.Wait may already have returned.
func checkWgAddInside(p *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// Do not descend into nested go statements; they get their own
		// visit from the outer walk.
		if inner, ok := n.(*ast.GoStmt); ok && inner != g {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(p.Info.TypeOf(sel.X)) {
			return true
		}
		p.Reportf(call.Pos(), "wg.Add inside spawned goroutine races wg.Wait; call Add before the go statement")
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
