package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// floatcmpAnalyzer flags == and != between floating-point expressions.
// Exact float equality is almost never what a numeric kernel wants: the
// 3-line segment fitting and cosine-similarity kernels accumulate
// rounding error, so comparisons must go through the audited helpers in
// internal/stats (IsZero, ApproxEqual, ApproxZero) or through
// math.IsInf/math.IsNaN for sentinel checks. The helper file itself
// (internal/stats/float.go) is the one allowlisted implementation site.
var floatcmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point expressions outside the internal/stats epsilon helpers",
	Run:  runFloatcmp,
}

// floatcmpAllowFile is the basename of the one file allowed to compare
// floats directly: the epsilon helper implementation in internal/stats.
const floatcmpAllowFile = "float.go"

func runFloatcmp(p *Pass) {
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		if p.Pkg.Name() == "stats" && filepath.Base(pos.Filename) == floatcmpAllowFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(p.Info, be.X) && !isFloatExpr(p.Info, be.Y) {
				return true
			}
			// Comparisons folded at compile time are deterministic.
			if isConst(p.Info, be.X) && isConst(p.Info, be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point comparison with %s; use stats.ApproxEqual/stats.IsZero or math.IsInf/math.IsNaN", be.Op)
			return true
		})
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isTestFile reports whether the position is inside a _test.go file.
// Kept here for analyzers that exempt test code explicitly even though
// the driver only loads non-test files.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
