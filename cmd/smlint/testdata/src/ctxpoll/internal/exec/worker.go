// Package exec is a ctxpoll fixture; its import path ends in
// /internal/exec so the analyzer treats it as execution-layer code.
package exec

import "context"

// deafWorker blocks on data channels with no way to observe
// cancellation: the shape ctxpoll exists to reject.
func deafWorker(in <-chan int, out chan<- int) {
	for {
		select { // want `no ctx.Done/stop case`
		case v, ok := <-in:
			if !ok {
				return
			}
			out <- v
		case out <- 0:
		}
	}
}

// deafRangeBody also gets flagged: the select guards the send, but once
// the producer is gone nothing unblocks it.
func deafRangeBody(items []int, out chan<- int, ready <-chan struct{}) {
	for _, v := range items {
		select { // want `no ctx.Done/stop case`
		case <-ready:
		case out <- v:
		}
	}
}

// ctxWorker selects on ctx.Done, the canonical escape.
func ctxWorker(ctx context.Context, in <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-in:
			if !ok {
				return
			}
			_ = v
		}
	}
}

// stopWorker uses a named stop channel instead of a context.
func stopWorker(in <-chan int, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case v := <-in:
			_ = v
		}
	}
}

// pollingWorker checks the context each iteration; as good as a Done
// case, so the blocking select is accepted.
func pollingWorker(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case v := <-in:
			out <- v
		case out <- 0:
		}
	}
}

// nonBlocking has a default case: the loop never parks in the select.
func nonBlocking(in <-chan int) {
	for i := 0; i < 3; i++ {
		select {
		case v := <-in:
			_ = v
		default:
		}
	}
}

// outsideLoop is a one-shot select, not a worker loop.
func outsideLoop(in <-chan int) {
	select {
	case v := <-in:
		_ = v
	}
}

// spawnedWorker nests the worker loop in a goroutine launched from a
// loop: the inner for's select is judged on its own and flagged.
func spawnedWorker(chans []chan int) {
	for i := range chans {
		ch := chans[i]
		go func() {
			for {
				select { // want `no ctx.Done/stop case`
				case v, ok := <-ch:
					if !ok {
						return
					}
					_ = v
				}
			}
		}()
	}
}
