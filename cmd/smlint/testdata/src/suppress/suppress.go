// Fixture for //smlint:ignore handling, exercised by TestSuppressions
// (programmatic expectations rather than want comments, because the
// malformed-directive findings land on the directive lines themselves).
package suppress

// A well-formed suppression on the line above silences the finding.
func suppressed(a, b float64) bool {
	//smlint:ignore floatcmp fixture exercises the suppression path
	return a == b
}

// The same-line form works too.
func sameLine(a, b float64) bool {
	return a == b //smlint:ignore floatcmp same-line form
}

// A directive without a reason is itself a finding and suppresses
// nothing.
func missingReason(a, b float64) bool {
	//smlint:ignore floatcmp
	return a == b
}

// A directive naming an unknown analyzer is itself a finding and
// suppresses nothing.
func unknownAnalyzer(a, b float64) bool {
	//smlint:ignore nosuchcheck because it does not exist
	return a == b
}
