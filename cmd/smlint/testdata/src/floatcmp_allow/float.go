// Fixture proving the floatcmp allowlist: this file mirrors the real
// internal/stats/float.go (package stats, file float.go) and may
// compare floats directly. No diagnostics expected.
package stats

func IsZero(x float64) bool        { return x == 0 }
func ExactEqual(a, b float64) bool { return a == b }
