// Fixture for the floatcmp analyzer.
package floatcmp

func comparisons(a, b float64, f32 float32, xs []float64, n int) bool {
	if a == b { // want "floating-point comparison with =="
		return true
	}
	if a != 0 { // want "floating-point comparison with !="
		return true
	}
	if f32 == 1.5 { // want "floating-point comparison with =="
		return true
	}
	if xs[0] == xs[1] { // want "floating-point comparison with =="
		return true
	}
	if a+b == a*b { // want "floating-point comparison with =="
		return true
	}
	// Integer comparisons are fine.
	if n == 0 {
		return true
	}
	// Ordered float comparisons are fine.
	if a < b || a >= b {
		return false
	}
	// Constant folding is deterministic; not flagged.
	const half = 0.5
	return half == 0.5
}
