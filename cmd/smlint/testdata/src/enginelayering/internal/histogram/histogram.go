// Package histogram is a stand-in task package for the enginelayering
// fixture; only its import path matters.
package histogram

// Compute is a placeholder analytics entry point.
func Compute(xs []float64) int { return len(xs) }
