// Package badengine is an engine package that reaches into a task
// package — the layering violation enginelayering must flag.
package badengine

import (
	"fixture.invalid/mod/enginelayering/internal/histogram" // want `engine package imports task package`
)

// Run re-grows a per-engine task dispatch by calling analytics
// directly instead of routing through the execution layer.
func Run(xs []float64) int {
	return histogram.Compute(xs)
}
