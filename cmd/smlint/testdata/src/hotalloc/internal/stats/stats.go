// Fixture for the hotalloc analyzer: internal/stats is a kernel
// package, so every loop is held to the no-per-iteration-allocation
// standard.
package stats

import "fmt"

func describe(xs []float64) []string {
	out := []string{}
	for _, x := range xs {
		s := fmt.Sprintf("%0.2f", x) // want "fmt.Sprintf allocates on every iteration"
		out = append(out, s)         // want "append to out grows an un-capped slice"
	}
	return out
}

// Pre-sized appends are fine.
func describeCapped(xs []float64) []string {
	out := make([]string, 0, len(xs))
	for range xs {
		out = append(out, "x")
	}
	return out
}

// fmt.Errorf in a return statement runs once on the way out, not once
// per iteration: exempt.
func sum(xs []float64) (float64, error) {
	var total float64
	for _, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("negative reading %v", x)
		}
		total += x
	}
	return total, nil
}

func box(xs []float64) any {
	var last any
	for _, x := range xs {
		last = x // want "storing a concrete float64 into an interface boxes it"
	}
	return last
}

func closures(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		add := func(v float64) { total += v } // want "closure allocated on every iteration"
		add(x)
	}
	return total
}
