// Fixture for the hotalloc analyzer's named hot methods: the PAR fast
// path's summaryAssemblyCursor is policed in internal/exec even though
// exec is not an engine package.
package exec

import "fmt"

type summaryAssemblyCursor struct {
	rows []float64
	buf  []float64
	i    int
}

// Next is listed as "summaryAssemblyCursor.Next": the whole body is
// loop context and receiver-field appends are policed, exactly like an
// engine cursor.
func (c *summaryAssemblyCursor) Next() (float64, error) {
	if c.i >= len(c.rows) {
		return 0, fmt.Errorf("done") // return path: runs once, exempt
	}
	v := c.rows[c.i]
	c.buf = append(c.buf, v) // want "append to field buf grows per Next call"
	c.i++
	return v, nil
}

// assemble is listed as "summaryAssemblyCursor.assemble": its loops
// are kernel loops.
func (c *summaryAssemblyCursor) assemble(dst []float64) error {
	var err error
	for i := range dst {
		err = fmt.Errorf("block %d", i) // want "fmt.Errorf allocates on every iteration of this loop"
		dst[i] = 0
	}
	return err
}

// report is not listed: the rest of exec may allocate freely.
func (c *summaryAssemblyCursor) report() []string {
	var out []string
	for range c.rows {
		out = append(out, fmt.Sprintf("row"))
	}
	return out
}
