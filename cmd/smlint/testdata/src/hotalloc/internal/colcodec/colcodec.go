// Fixture for the hotalloc analyzer: internal/colcodec is implicitly
// hot — every meter reading funnels through its encode/decode loops —
// so the whole package is held to the no-per-iteration-allocation
// standard, not just cursor Next methods.
package colcodec

import "fmt"

func encodeAll(vals []float64) []byte {
	var out []byte
	for _, v := range vals {
		s := fmt.Sprintf("%x", v)  // want "fmt.Sprintf allocates on every iteration"
		out = append(out, s...)    // want "append to out grows an un-capped slice"
	}
	return out
}

// Pre-sized scratch and plain arithmetic stay silent.
func deltas(vals []int64) []int64 {
	out := make([]int64, 0, len(vals))
	prev := int64(0)
	for _, v := range vals {
		out = append(out, v-prev)
		prev = v
	}
	return out
}

// fmt.Errorf on the return path runs once, not per iteration: exempt.
func validate(vals []float64) error {
	for i, v := range vals {
		if v < 0 {
			return fmt.Errorf("negative value %v at %d", v, i)
		}
	}
	return nil
}
