// Fixture for the hotalloc analyzer's engine scope: only a cursor's
// Next method is implicitly hot (the consumer drives it in a loop).
package fake

import "fmt"

type rowCursor struct {
	rows []int
	buf  []int
	i    int
}

func (c *rowCursor) Next() (int, error) {
	if c.i >= len(c.rows) {
		return 0, fmt.Errorf("done") // return path: runs once, exempt
	}
	v := c.rows[c.i]
	c.buf = append(c.buf, v) // want "append to field buf grows per Next call"
	c.i++
	return v, nil
}

// drain is not a Next method: engine packages are only held to the
// standard on the cursor hot path.
func (c *rowCursor) drain() []string {
	var out []string
	for range c.rows {
		out = append(out, fmt.Sprintf("row"))
	}
	return out
}
