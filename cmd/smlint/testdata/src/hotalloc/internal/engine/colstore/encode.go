// Fixture for the hotalloc analyzer's named hot functions: in the
// colstore package, encodeConsumer (the parallel encode pool's
// per-consumer kernel) is policed even though it is not a cursor Next
// method.
package colstore

import "fmt"

// encodeConsumer is named in hotFuncs: its loops are kernel loops.
func encodeConsumer(vals []float64) []byte {
	var out []byte
	for i, v := range vals {
		if v < 0 {
			_ = fmt.Sprintf("block %d", i) // want "fmt.Sprintf allocates on every iteration of this loop"
		}
		out = append(out, byte(v)) // want "append to out grows an un-capped slice inside this loop"
	}
	return out
}

// flushSegment is not named in hotFuncs and is not a Next method:
// engine packages are otherwise only held to the standard on the
// cursor hot path.
func flushSegment(vals []float64) []string {
	var out []string
	for range vals {
		out = append(out, fmt.Sprintf("x"))
	}
	return out
}
