// Fixture for the hotalloc analyzer: internal/incr maintains analytics
// on every ingested reading, so the whole package is hot — a
// per-reading allocation in a Consume loop taxes live ingestion the
// way a per-reading decode allocation taxes extraction.
package incr

import "fmt"

type reading struct {
	id   int64
	hour int
	val  float64
}

func consume(batch []reading, vals map[int64][]float64) error {
	for _, r := range batch {
		key := fmt.Sprintf("h%d", r.id) // want "fmt.Sprintf allocates on every iteration"
		_ = key
		vals[r.id] = append(vals[r.id], r.val) // map-element append: amortized, silent
	}
	return nil
}

// Closures hoisted to function scope stay silent; building one per
// reading does not.
func dispatch(batch []reading, sinks []func(reading)) {
	for _, r := range batch {
		f := func(x reading) { _ = x.val } // want "closure allocated on every iteration"
		f(r)
		for _, s := range sinks {
			s(r)
		}
	}
}

// fmt.Errorf on the return path runs once, not per reading: exempt.
func validate(batch []reading) error {
	for _, r := range batch {
		if r.hour < 0 {
			return fmt.Errorf("negative hour %d for %d", r.hour, r.id)
		}
	}
	return nil
}

// Pre-capped accumulation is the blessed pattern.
func snapshot(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}
