// Support package for the refbalance fixture: the import-path suffix
// internal/timeseries.Dataset anchors the Flat/ReleaseFlat pair.
package timeseries

type Dataset struct{ pinned int }

func (d *Dataset) Flat() ([]float64, error) {
	d.pinned++
	return nil, nil
}

func (d *Dataset) ReleaseFlat() { d.pinned-- }
