// Fixture for the refbalance analyzer's colstore pair: the segment
// pager's fetch pins a decoded block frame and unpin must cover every
// path (the import-path suffix internal/engine/colstore.pager anchors
// the pair, mirroring the rowstore buffer pool's latch discipline).
package colstore

type blockFrame struct{ pins int }

type pager struct{ resident int }

func (p *pager) fetch(c, b int, scratch []byte) (*blockFrame, []byte, error) {
	return &blockFrame{pins: 1}, scratch, nil
}

func (p *pager) unpin(f *blockFrame) { f.pins-- }

// The error branch after a successful fetch leaks the pinned frame.
func leakFetch(p *pager, fail bool) error {
	f, _, err := p.fetch(0, 0, nil) // want "f from fetch does not reach unpin"
	if err != nil {
		return err
	}
	if fail {
		return nil
	}
	p.unpin(f)
	return nil
}

// Unpin on every path after the copy is the cursor discipline.
func okFetch(p *pager, row []float64) error {
	f, _, err := p.fetch(0, 0, nil)
	if err != nil {
		return err
	}
	p.unpin(f)
	return nil
}
