// Fixture for the refbalance analyzer's value-tracked pairs (the
// import-path suffix internal/engine/rowstore.bufferPool anchors
// fetch/allocate → unpin) and for the revive protocol.
package rowstore

type frame struct{ page int }

type bufferPool struct{ pins int }

func (bp *bufferPool) fetch(page int) (*frame, error) {
	bp.pins++
	return &frame{page: page}, nil
}

func (bp *bufferPool) allocate(page int) *frame {
	bp.pins++
	return &frame{page: page}
}

func (bp *bufferPool) unpin(fr *frame) { bp.pins-- }

// The early return leaks the pinned frame.
func leakFetch(bp *bufferPool, fail bool) error {
	fr, err := bp.fetch(1) // want "fr from fetch does not reach unpin"
	if err != nil {
		return err
	}
	if fail {
		return nil
	}
	bp.unpin(fr)
	return nil
}

// A deferred unpin settles every later path; the error branch is
// pruned (no frame is live when the constructor errored).
func okFetchDefer(bp *bufferPool) error {
	fr, err := bp.fetch(1)
	if err != nil {
		return err
	}
	defer bp.unpin(fr)
	return nil
}

func okAllocate(bp *bufferPool) {
	fr := bp.allocate(2)
	bp.unpin(fr)
}

func leakAllocate(bp *bufferPool, fail bool) *frame {
	fr := bp.allocate(2) // want "fr from allocate does not reach unpin"
	if fail {
		return nil
	}
	return fr // escapes to the caller: that path is fine
}

// poolCursor releases shared state under a latch in Close; a Reset
// that clears the latch revives the cursor and the next Close
// double-releases.
type poolCursor struct {
	bp     *bufferPool
	fr     *frame
	i      int
	closed bool
}

func (c *poolCursor) Close() error {
	if !c.closed {
		c.closed = true
		c.bp.unpin(c.fr)
	}
	return nil
}

func (c *poolCursor) Reset() error {
	c.i = 0
	c.closed = false // want "Reset revives a closed poolCursor"
	return nil
}

// wrapCursor only forwards Close, which the Cursor contract makes
// idempotent: reviving in Reset is safe and not flagged.
type wrapCursor struct {
	inner  *poolCursor
	closed bool
}

func (w *wrapCursor) Close() error {
	if !w.closed {
		w.closed = true
		return w.inner.Close()
	}
	return nil
}

func (w *wrapCursor) Reset() error {
	w.closed = false
	return w.inner.Reset()
}
