// Fixture for the refbalance analyzer's receiver-tracked pairs.
package refbalance

import (
	"fixture.invalid/mod/refbalance/internal/timeseries"
)

// The acquire pins state on the receiver; the early return skips the
// paired release.
func leakFlat(fail bool) {
	d := &timeseries.Dataset{}
	d.Flat() // want "d.Flat is not balanced by ReleaseFlat"
	if fail {
		return
	}
	d.ReleaseFlat()
}

// A deferred release settles every later path.
func okFlatDefer(fail bool) {
	d := &timeseries.Dataset{}
	d.Flat()
	defer d.ReleaseFlat()
	if fail {
		return
	}
}

// Returning the dataset hands the pinned state to an owner.
func okFlatEscape() *timeseries.Dataset {
	d := &timeseries.Dataset{}
	d.Flat()
	return d
}

// Acquires on parameters are exempt: the caller owns the receiver.
func okFlatOnParam(d *timeseries.Dataset) {
	d.Flat()
}
