// Fixture for the globalrand analyzer.
package globalrand

import "math/rand"

func draws() float64 {
	v := rand.Float64()              // want `call to global rand\.Float64`
	n := rand.Intn(10)               // want `call to global rand\.Intn`
	p := rand.Perm(4)                // want `call to global rand\.Perm`
	rand.Shuffle(4, func(i, j int) { // want `call to global rand\.Shuffle`
		p[i], p[j] = p[j], p[i]
	})
	return v + float64(n+p[0])
}

// Injected generators and the constructors that build them are the
// sanctioned pattern; none of this is flagged.
func injected(rng *rand.Rand) float64 {
	local := rand.New(rand.NewSource(42))
	return rng.Float64() + local.Float64()
}
