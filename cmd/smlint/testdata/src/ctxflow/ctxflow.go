// Fixture for the ctxflow analyzer.
package ctxflow

import (
	"context"
	"time"
)

// Rule 1: a context-bearing function must not wait in bare time.Sleep.
func bareSleepWithCtx(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "accepts a context but waits in bare time.Sleep"
	<-ctx.Done()
}

// The nil-context guard is the sanctioned fallback shape: exempt.
func guardedFallback(ctx context.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Rule 3: a ctx-less function that sleeps directly leaves callers no
// way to cancel the wait.
func sleeper(d time.Duration) {
	time.Sleep(d) // want "sleeper blocks in time.Sleep but accepts no context.Context"
}

// Rule 2: the context dies at the edge into a ctx-less sleeper.
func dropsAtEdge(ctx context.Context) {
	sleeper(time.Millisecond) // want "dropsAtEdge has a context but calls sleeper, which reaches time.Sleep"
}

// The blocking fact propagates through intermediate calls.
func indirect(d time.Duration) {
	sleeper(d)
}

func callsIndirect(ctx context.Context) {
	indirect(time.Millisecond) // want "callsIndirect has a context but calls indirect, which reaches time.Sleep"
}

// Forwarding the context keeps cancellation alive: no finding.
func forwards(ctx context.Context) {
	helper(ctx)
}

func helper(ctx context.Context) {
	select {
	case <-ctx.Done():
	default:
	}
}

// Minting a fresh context instead of forwarding drops cancellation.
func mintsFresh(ctx context.Context) {
	helper(context.Background()) // want "accepts a context but passes a fresh one here"
}

// main is a process entrypoint: nothing above it holds a context.
func main() {
	time.Sleep(time.Millisecond)
}
