// Fixture for the cursorleak analyzer.
package cursorleak

import "errors"

type conn struct{ closed bool }

func (c *conn) Close() error { c.closed = true; return nil }

func (c *conn) Read() (int, error) { return 0, nil }

func open() (*conn, error) { return &conn{}, nil }

// The classic bug: an early return between acquisition and release.
func leakEarlyReturn(fail bool) error {
	c, err := open() // want "obtained here does not reach Close"
	if err != nil {
		return err
	}
	if fail {
		return errors.New("bail")
	}
	return c.Close()
}

// Deferring the Close settles every later path.
func okDefer(fail bool) error {
	c, err := open()
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	if fail {
		return errors.New("bail")
	}
	return nil
}

// Returning the closer hands it to an owner.
func okEscapeReturn() (*conn, error) {
	c, err := open()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Storing the closer hands it to an owner.
func okStore(sink *[]*conn) error {
	c, err := open()
	if err != nil {
		return err
	}
	*sink = append(*sink, c)
	return nil
}

// closeIt's summary says it closes its parameter, so handing the conn
// over settles the path.
func closeIt(c *conn) { _ = c.Close() }

func okHelperCloses() error {
	c, err := open()
	if err != nil {
		return err
	}
	closeIt(c)
	return nil
}

// peek only reads its parameter: the conn is still ours to close.
func peek(c *conn) int {
	n, _ := c.Read()
	return n
}

func leakReadOnlyHelper() int {
	c, err := open() // want "obtained here does not reach Close"
	if err != nil {
		return 0
	}
	return peek(c)
}
