// Package syncclose exercises the unchecked-Close/Sync checks on
// write-opened files: statement and deferred discards are findings, a
// blank discard is a finding unless a checked call of the same method
// pairs with it (the error-path idiom), and read-opened files are
// exempt.
package syncclose

import "os"

// statementClose drops the close error of a file it just wrote.
func statementClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	f.Close() // want `silently dropped`
	return nil
}

// deferClose defers the only close of a written file.
func deferClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred f.Close\(\)`
	_, err = f.Write([]byte("y"))
	return err
}

// blankClose blank-discards the only close, with no checked partner.
func blankClose(path string) {
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	_ = f.Close() // want `discards the only Close`
}

// uncheckedSync checks the close but throws the sync result away.
func uncheckedSync(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Sync() // want `discards the only Sync`
	return f.Close()
}

// errorPathIdiom is clean: blank discards release the descriptor on
// failure paths whose error is already being returned, and the success
// path checks Sync and Close.
func errorPathIdiom(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("z")); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// closureIdiom is clean: the error-path closure captures the file, and
// the success path checks the close.
func closureIdiom(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = f.Close()
		return err
	}
	if _, err := f.Write([]byte("w")); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

type sink struct{ f *os.File }

// constructorIdiom is clean: the handle escapes into the returned
// struct, whose owner carries the checked Close; the blank close only
// releases the descriptor on an error path.
func constructorIdiom(path string) (*sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte("h")); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &sink{f: f}, nil
}

// readOnly is clean: a read-opened file may defer its close.
func readOnly(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var buf [8]byte
	return f.Read(buf[:])
}

// readOnlyFlags is clean: OpenFile without a write flag reads.
func readOnlyFlags(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
