// Fixture for the goroutinecapture analyzer.
package goroutinecapture

import "sync"

func fanOut(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup

	// Captured range variables.
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = v * 2 // want `captures loop variable "i"` `captures loop variable "v"`
		}()
	}

	// Captured classic for-loop index.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[0] += w // want `captures loop variable "w"`
		}()
	}

	// wg.Add inside the spawned goroutine races wg.Wait.
	for j := range items {
		go func(j int) {
			wg.Add(1) // want `wg\.Add inside spawned goroutine`
			defer wg.Done()
			out[j] = j
		}(j)
	}

	// The repo convention: loop variables passed as closure parameters.
	for i, v := range items {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			out[i] = v * 2
		}(i, v)
	}
	wg.Wait()
	return out
}
