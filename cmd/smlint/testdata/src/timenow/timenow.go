// Fixture for the timenow analyzer.
package timenow

import (
	"sync"
	"time"
)

// phases mimics the pipeline's shared instrumentation struct.
type phases struct {
	extract stat
	compute stat
}

type stat struct {
	wall time.Duration
}

func fanOut(parts [][]float64) {
	var ph phases
	var wg sync.WaitGroup

	// Shared-field writes from concurrent workers: each += races the
	// others and the phase totals undercount.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			work(parts[w])
			ph.extract.wall += time.Since(t0)  // want `time measurement written to captured field ph\.extract\.wall`
			ph.compute.wall = time.Since(t0)   // want `time measurement written to captured field ph\.compute\.wall`
		}(w)
	}
	wg.Wait()

	// The sanctioned pattern: per-worker accumulator slots, summed by
	// the spawner after the joins.
	busy := make([]time.Duration, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			work(parts[w])
			busy[w] += time.Since(t0)
		}(w)
	}
	wg.Wait()
	for _, d := range busy {
		ph.extract.wall += d
	}

	// Slotted struct fields are per-worker too.
	stats := make([]stat, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			work(parts[w])
			stats[w].wall += time.Since(t0)
		}(w)
	}
	wg.Wait()

	// Locals declared inside the closure are goroutine-private.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local stat
			t0 := time.Now()
			work(parts[w])
			local.wall += time.Since(t0)
			busy[w] += local.wall
		}(w)
	}
	wg.Wait()

	// Outside any loop a single goroutine owns the field; no race to
	// flag.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t0 := time.Now()
		work(parts[0])
		ph.compute.wall += time.Since(t0)
	}()
	wg.Wait()
}

func work(xs []float64) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	_ = s
}
