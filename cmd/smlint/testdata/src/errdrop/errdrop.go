// Fixture for the errdrop analyzer.
package errdrop

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

func fails() error                 { return nil }
func failsWithValue() (int, error) { return 0, nil }
func pure() int                    { return 0 }

func drops(w io.Writer, bw *bufio.Writer) {
	fails()              // want "error return is silently discarded"
	failsWithValue()     // want "error return is silently discarded"
	fmt.Fprintf(w, "hi") // want "error return is silently discarded"

	// Explicit discards and error-free calls are fine.
	_ = fails()
	_, _ = failsWithValue()
	pure()

	// Allowlisted: stdout/stderr prints, bufio's sticky error (checked
	// at Flush), infallible builders.
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "ok")
	fmt.Fprintf(bw, "buffered")
	var sb strings.Builder
	sb.WriteString("ok")
	if err := bw.Flush(); err != nil {
		_ = err
	}
}
