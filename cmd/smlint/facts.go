package main

// facts.go computes the per-package interprocedural substrate shared by
// the dataflow analyzers: a static call graph over the package's
// declared functions plus a summary per function — whether it
// (transitively) blocks, whether it accepts and forwards a
// context.Context, which parameters it closes or releases. Summaries
// are computed once per package (runAnalyzers attaches them to every
// Pass), so analyzers compose on the same substrate instead of
// re-walking the AST.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeEdge is one static call from a function body to another
// function declared in the same package.
type calleeEdge struct {
	callee *types.Func
	call   *ast.CallExpr
}

// blockSite records why a function blocks: the offending operation (or
// the callee that transitively blocks) and where.
type blockSite struct {
	what string // "time.Sleep", "channel receive in loop", ...
	pos  token.Pos
	via  *types.Func // non-nil when inherited from a callee
}

// desc renders the blocking reason, following via chains one level.
func (b *blockSite) desc() string {
	if b.via != nil {
		return "calls " + b.via.Name() + ", which blocks"
	}
	return b.what
}

// funcFacts is the summary for one declared function.
type funcFacts struct {
	decl *ast.FuncDecl
	obj  *types.Func

	callees []calleeEdge
	// block is non-nil when the function directly or transitively
	// reaches a blocking operation.
	block *blockSite
	// ctxParam is the index of the first context.Context parameter, or
	// -1. The receiver does not count: interface-fixed signatures hold
	// their context in a bound field instead.
	ctxParam int
	// closesParams[i] is true when the function closes its i-th
	// parameter on some path (directly, via defer, or by handing it to
	// an in-package function that does). Callers credit a call that
	// passes a tracked closer to such a parameter as a close.
	closesParams []bool
	// releasesParams[i] names the release methods (refbalance pairs)
	// the function applies to its i-th parameter.
	releasesParams []map[string]bool
	// escapesParams[i] is true when the function stores, returns or
	// captures its i-th parameter — it keeps the resource, so passing
	// one in transfers ownership.
	escapesParams []bool

	cfg *funcCFG // built lazily via factsFor().cfgOf
}

// packageFacts is the substrate for one package.
type packageFacts struct {
	funcs map[*types.Func]*funcFacts
	// byDecl indexes the same facts by declaration node.
	byDecl map[*ast.FuncDecl]*funcFacts
}

// cfgOf returns (building on first use) the CFG for a declared function.
func (pf *packageFacts) cfgOf(ff *funcFacts) *funcCFG {
	if ff.cfg == nil && ff.decl.Body != nil {
		ff.cfg = buildCFG(ff.decl.Body)
	}
	return ff.cfg
}

// Facts returns the package's interprocedural substrate, computing it
// on first use.
func (p *Pass) Facts() *packageFacts {
	if p.facts == nil {
		p.facts = computeFacts(p)
	}
	return p.facts
}

func computeFacts(p *Pass) *packageFacts {
	pf := &packageFacts{
		funcs:  map[*types.Func]*funcFacts{},
		byDecl: map[*ast.FuncDecl]*funcFacts{},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{
				decl:     fd,
				obj:      obj,
				ctxParam: ctxParamIndex(obj),
			}
			nparams := obj.Type().(*types.Signature).Params().Len()
			ff.closesParams = make([]bool, nparams)
			ff.releasesParams = make([]map[string]bool, nparams)
			ff.escapesParams = make([]bool, nparams)
			pf.funcs[obj] = ff
			pf.byDecl[fd] = ff
			scanBody(p, ff)
			scanParamEscapes(p, ff)
		}
	}
	propagateParamFacts(pf)
	propagateBlocking(pf)
	return pf
}

// scanBody fills the direct (non-transitive) facts of one function:
// call edges, direct blocking sites, and parameter close/release
// events.
func scanBody(p *Pass, ff *funcFacts) {
	params := paramObjects(p, ff.decl)
	loopDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			switch s := n.(type) {
			case *ast.ForStmt:
				ast.Inspect(s.Body, walk)
				if s.Cond != nil {
					ast.Inspect(s.Cond, walk)
				}
				if s.Post != nil {
					ast.Inspect(s.Post, walk)
				}
			case *ast.RangeStmt:
				ast.Inspect(s.Body, walk)
			}
			loopDepth--
			return false
		case *ast.SendStmt:
			if loopDepth > 0 && ff.block == nil {
				ff.block = &blockSite{what: "channel send in a loop", pos: n.Pos()}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && loopDepth > 0 && ff.block == nil {
				ff.block = &blockSite{what: "channel receive in a loop", pos: n.Pos()}
			}
		case *ast.CallExpr:
			recordCall(p, ff, params, n)
		case *ast.DeferStmt:
			recordCall(p, ff, params, n.Call)
		}
		return true
	}
	ast.Inspect(ff.decl.Body, walk)
}

// recordCall classifies one call expression: an in-package edge, a
// blocking primitive, or a close/release event on a parameter.
func recordCall(p *Pass, ff *funcFacts, params map[types.Object]int, call *ast.CallExpr) {
	callee := staticCallee(p.Info, call)
	if callee != nil {
		if callee.Pkg() == p.Pkg {
			ff.callees = append(ff.callees, calleeEdge{callee: callee, call: call})
		}
		if ff.block == nil && isBlockingCallee(callee) {
			ff.block = &blockSite{what: callee.Pkg().Name() + "." + callee.Name(), pos: call.Pos()}
		}
	}

	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// p.Close() / p.Release() on a parameter: record the close and any
	// matching pair release against the parameter index.
	if id, ok := sel.X.(*ast.Ident); ok {
		if i, isParam := params[p.Info.Uses[id]]; isParam {
			if sel.Sel.Name == "Close" {
				ff.closesParams[i] = true
			}
			if ff.releasesParams[i] == nil {
				ff.releasesParams[i] = map[string]bool{}
			}
			ff.releasesParams[i][sel.Sel.Name] = true
		}
	}
	// release(p) / bp.unpin(p, ...): a parameter passed as an argument
	// to a release-named call counts as released by name.
	for _, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		i, isParam := params[p.Info.Uses[id]]
		if !isParam {
			continue
		}
		if ff.releasesParams[i] == nil {
			ff.releasesParams[i] = map[string]bool{}
		}
		ff.releasesParams[i][sel.Sel.Name] = true
		if sel.Sel.Name == "Close" {
			ff.closesParams[i] = true
		}
	}
}

// scanParamEscapes marks parameters the function keeps: returned,
// stored into another value, captured by a literal, or handed to a
// call we cannot see into. A parameter used only as a method receiver
// or in comparisons does not escape.
func scanParamEscapes(p *Pass, ff *funcFacts) {
	params := paramObjects(p, ff.decl)
	var stack []ast.Node
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		i, isParam := params[p.Info.Uses[id]]
		if !isParam {
			return true
		}
		if paramUseEscapes(p, stack, id) {
			ff.escapesParams[i] = true
		}
		return true
	})
}

// paramUseEscapes classifies one parameter occurrence given its
// ancestor stack.
func paramUseEscapes(p *Pass, stack []ast.Node, id *ast.Ident) bool {
	// Captured by a function literal anywhere above.
	for _, anc := range stack[:len(stack)-1] {
		if _, ok := anc.(*ast.FuncLit); ok {
			return true
		}
	}
	parent := ancestor(stack, 1)
	switch par := parent.(type) {
	case *ast.SelectorExpr:
		return false // receiver or field read
	case *ast.BinaryExpr:
		return false
	case *ast.CallExpr:
		if par.Fun == ast.Node(id) {
			return false
		}
		// Handing the parameter onward: escapes unless the callee is an
		// in-package function (those are resolved transitively by
		// propagateParamFacts — treat as non-escape here and let the
		// fixpoint add precision).
		if callee := staticCallee(p.Info, par); callee != nil && callee.Pkg() == p.Pkg {
			return false
		}
		return true
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr,
		*ast.SendStmt, *ast.UnaryExpr, *ast.IndexExpr, *ast.TypeAssertExpr:
		return true
	case *ast.AssignStmt:
		for _, rhs := range par.Rhs {
			if rhs == ast.Expr(id) {
				return true
			}
		}
		return false
	}
	return false
}

// propagateParamFacts iterates close/release credit through in-package
// calls to a fixed point: if f passes its parameter j straight through
// to g's parameter i and g closes i, then f closes j.
func propagateParamFacts(pf *packageFacts) {
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.funcs {
			params := paramIdents(ff.decl)
			for _, edge := range ff.callees {
				gf := pf.funcs[edge.callee]
				if gf == nil {
					continue
				}
				for ai, arg := range edge.call.Args {
					if ai >= len(gf.closesParams) {
						break
					}
					id, ok := arg.(*ast.Ident)
					if !ok {
						continue
					}
					j, isParam := params[id.Name]
					if !isParam {
						continue
					}
					if gf.closesParams[ai] && !ff.closesParams[j] {
						ff.closesParams[j] = true
						changed = true
					}
					if gf.escapesParams[ai] && !ff.escapesParams[j] {
						ff.escapesParams[j] = true
						changed = true
					}
					for rel := range gf.releasesParams[ai] {
						if ff.releasesParams[j] == nil {
							ff.releasesParams[j] = map[string]bool{}
						}
						if !ff.releasesParams[j][rel] {
							ff.releasesParams[j][rel] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// propagateBlocking closes the blocking relation over the call graph:
// a caller of a blocking function blocks.
func propagateBlocking(pf *packageFacts) {
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.funcs {
			if ff.block != nil {
				continue
			}
			for _, edge := range ff.callees {
				gf := pf.funcs[edge.callee]
				if gf != nil && gf.block != nil {
					ff.block = &blockSite{pos: edge.call.Pos(), via: edge.callee}
					changed = true
					break
				}
			}
		}
	}
}

// staticCallee resolves the *types.Func a call statically invokes:
// a plain function, a method, or a package-qualified function. Calls
// through function values, built-ins and type conversions return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBlockingCallee reports whether a resolved callee is one of the
// known blocking primitives outside the package: time.Sleep and the
// blocking half of sync.WaitGroup.
func isBlockingCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		return fn.Name() == "Wait"
	}
	return false
}

// ctxParamIndex returns the index of the first context.Context
// parameter of fn, or -1.
func ctxParamIndex(fn *types.Func) int {
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return i
		}
	}
	return -1
}

// paramObjects maps each named parameter's object to its index.
func paramObjects(p *Pass, decl *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// paramIdents maps parameter names to indices (for syntactic matching
// inside propagate, where only the caller's AST is at hand).
func paramIdents(decl *ast.FuncDecl) map[string]int {
	out := map[string]int{}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = i
			i++
		}
	}
	return out
}
