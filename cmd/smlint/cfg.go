package main

// cfg.go builds a lightweight statement-level control-flow graph from a
// function's AST: one node per executed statement, with branch-, loop-,
// switch-, select-, defer- and return-aware successor edges. It is the
// shared substrate under the interprocedural analyzers (cursorleak,
// refbalance): they ask path questions — "does every path from this
// acquisition reach a release?" — instead of re-walking the syntax
// tree with ad-hoc heuristics.
//
// The graph is deliberately simpler than a compiler CFG: statements are
// not split into basic blocks (functions here are small), goto edges
// are approximated as jumps to the exit, and panics/os.Exit terminate
// the function. That is exactly enough precision for must-reach
// queries with error-guard pruning.

import (
	"go/ast"
	"go/token"
)

// nodeKind classifies how a node leaves the function, for path queries
// that treat normal and abnormal exits differently.
type nodeKind uint8

const (
	kindPlain  nodeKind = iota
	kindReturn          // return statement: edge to exit
	kindPanic           // panic/os.Exit/log.Fatal: abnormal edge to exit
)

// cfgNode is one statement in the control-flow graph. The synthetic
// exit node has a nil stmt.
type cfgNode struct {
	stmt  ast.Stmt
	succs []*cfgNode
	kind  nodeKind
	// isIf marks an *ast.IfStmt node, whose successors are fixed as
	// succs[0] = then branch, succs[1] = else / fall-through. Path
	// queries use the ordering to prune error-guard branches.
	isIf bool
}

// funcCFG is the graph for one function body.
type funcCFG struct {
	entry *cfgNode
	exit  *cfgNode
	nodes map[ast.Stmt]*cfgNode
	// defers lists every defer statement node in source order; deferred
	// calls run on all exits, so must-reach queries treat a path through
	// a satisfying defer node as satisfied.
	defers []*cfgNode
}

// buildCFG constructs the graph for a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{exit: &cfgNode{}, nodes: map[ast.Stmt]*cfgNode{}}
	b := &cfgBuilder{g: g}
	g.entry = b.stmtList(body.List, g.exit)
	return g
}

// frame is one enclosing breakable/continuable construct during the
// build. cont is nil for switch/select frames.
type frame struct {
	brk, cont *cfgNode
	label     string
}

type cfgBuilder struct {
	g      *funcCFG
	frames []frame
	// fallthroughs stacks the entry of the next case clause while
	// building switch bodies.
	fallthroughs []*cfgNode
	// pendingLabel carries a label down to the loop it names.
	pendingLabel string
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.g.nodes[s] = n
	return n
}

// stmtList wires a statement list so control flows through it to
// follow, returning the entry node (follow itself for an empty list).
func (b *cfgBuilder) stmtList(list []ast.Stmt, follow *cfgNode) *cfgNode {
	next := follow
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next)
	}
	return next
}

func (b *cfgBuilder) stmt(s ast.Stmt, follow *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, follow)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		entry := b.stmt(s.Stmt, follow)
		b.pendingLabel = ""
		return entry

	case *ast.IfStmt:
		n := b.node(s)
		n.isIf = true
		thenE := b.stmtList(s.Body.List, follow)
		elseE := follow
		if s.Else != nil {
			elseE = b.stmt(s.Else, follow)
		}
		n.succs = []*cfgNode{thenE, elseE}
		if s.Init != nil {
			return b.stmt(s.Init, n)
		}
		return n

	case *ast.ForStmt:
		n := b.node(s)
		cont := n
		if s.Post != nil {
			post := b.node(s.Post)
			post.succs = []*cfgNode{n}
			cont = post
		}
		b.push(frame{brk: follow, cont: cont})
		bodyE := b.stmtList(s.Body.List, cont)
		b.pop()
		n.succs = []*cfgNode{bodyE}
		if s.Cond != nil {
			// A conditional loop may run zero times.
			n.succs = append(n.succs, follow)
		}
		if s.Init != nil {
			return b.stmt(s.Init, n)
		}
		return n

	case *ast.RangeStmt:
		n := b.node(s)
		b.push(frame{brk: follow, cont: n})
		bodyE := b.stmtList(s.Body.List, n)
		b.pop()
		n.succs = []*cfgNode{bodyE, follow}
		return n

	case *ast.SwitchStmt:
		return b.switchStmt(s, s.Init, clauses(s.Body), follow)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s, s.Init, clauses(s.Body), follow)

	case *ast.SelectStmt:
		n := b.node(s)
		b.push(frame{brk: follow})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cn := b.node(cc)
			cn.succs = []*cfgNode{b.stmtList(cc.Body, follow)}
			n.succs = append(n.succs, cn)
		}
		b.pop()
		if len(n.succs) == 0 {
			// select{} blocks forever.
			n.succs = []*cfgNode{b.g.exit}
		}
		return n

	case *ast.ReturnStmt:
		n := b.node(s)
		n.kind = kindReturn
		n.succs = []*cfgNode{b.g.exit}
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok {
		case token.BREAK:
			if f := b.find(s.Label, false); f != nil {
				n.succs = []*cfgNode{f.brk}
				return n
			}
		case token.CONTINUE:
			if f := b.find(s.Label, true); f != nil {
				n.succs = []*cfgNode{f.cont}
				return n
			}
		case token.FALLTHROUGH:
			if len(b.fallthroughs) > 0 {
				n.succs = []*cfgNode{b.fallthroughs[len(b.fallthroughs)-1]}
				return n
			}
		}
		// goto, or a branch whose target we cannot resolve: approximate
		// as leaving the function.
		n.succs = []*cfgNode{b.g.exit}
		return n

	case *ast.DeferStmt:
		n := b.node(s)
		n.succs = []*cfgNode{follow}
		b.g.defers = append(b.g.defers, n)
		return n

	case *ast.ExprStmt:
		n := b.node(s)
		if isTerminalCall(s.X) {
			n.kind = kindPanic
			n.succs = []*cfgNode{b.g.exit}
			return n
		}
		n.succs = []*cfgNode{follow}
		return n

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line flow.
		n := b.node(s)
		n.succs = []*cfgNode{follow}
		return n
	}
}

// switchStmt wires a switch or type switch: tag node fans out to each
// clause, clause bodies flow to follow, fallthrough jumps to the next
// clause's body.
func (b *cfgBuilder) switchStmt(s ast.Stmt, init ast.Stmt, cs []*ast.CaseClause, follow *cfgNode) *cfgNode {
	n := b.node(s)
	b.push(frame{brk: follow})
	hasDefault := false
	// Build back-to-front so each clause knows its fallthrough target.
	entries := make([]*cfgNode, len(cs))
	next := follow
	for i := len(cs) - 1; i >= 0; i-- {
		cc := cs[i]
		if cc.List == nil {
			hasDefault = true
		}
		cn := b.node(cc)
		b.fallthroughs = append(b.fallthroughs, next)
		bodyE := b.stmtList(cc.Body, follow)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		cn.succs = []*cfgNode{bodyE}
		entries[i] = cn
		next = bodyE
	}
	b.pop()
	for _, cn := range entries {
		n.succs = append(n.succs, cn)
	}
	if !hasDefault {
		n.succs = append(n.succs, follow)
	}
	if init != nil {
		return b.stmt(init, n)
	}
	return n
}

func clauses(body *ast.BlockStmt) []*ast.CaseClause {
	var cs []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			cs = append(cs, cc)
		}
	}
	return cs
}

func (b *cfgBuilder) push(f frame) {
	f.label = b.pendingLabel
	b.pendingLabel = ""
	b.frames = append(b.frames, f)
}

func (b *cfgBuilder) pop() { b.frames = b.frames[:len(b.frames)-1] }

// find resolves the frame a break/continue targets: the labeled frame,
// or the innermost one (loops only, for continue).
func (b *cfgBuilder) find(label *ast.Ident, needLoop bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != nil {
			if f.label == label.Name {
				return f
			}
			continue
		}
		if needLoop && f.cont == nil {
			continue
		}
		return f
	}
	return nil
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch pkg.Name {
		case "os":
			return name == "Exit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
				name == "Panic" || name == "Panicf" || name == "Panicln"
		case "runtime":
			return name == "Goexit"
		}
	}
	return false
}

// shallowExprs returns the expressions a node's statement evaluates at
// the node itself — for compound statements, only the header (condition
// or tag), since their nested blocks are separate nodes.
func shallowExprs(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		out := []ast.Node{s.X}
		if s.Key != nil {
			out = append(out, s.Key)
		}
		if s.Value != nil {
			out = append(out, s.Value)
		}
		return out
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Node{s.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.CaseClause:
		out := make([]ast.Node, 0, len(s.List))
		for _, e := range s.List {
			out = append(out, e)
		}
		return out
	case *ast.CommClause:
		if s.Comm != nil {
			return []ast.Node{s.Comm}
		}
		return nil
	case *ast.SelectStmt:
		return nil
	case nil:
		return nil
	default:
		return []ast.Node{s}
	}
}

// pathVerdict is the classification of one node during a must-reach
// query.
type pathVerdict int

const (
	// pathContinue keeps walking this branch.
	pathContinue pathVerdict = iota
	// pathSatisfied marks the requirement met on this branch.
	pathSatisfied
	// pathExempt marks a branch that does not need the requirement
	// (e.g. the error half of an error guard).
	pathExempt
)

// firstUnsatisfiedExit walks every path from start's successors and
// returns the terminal node of the first path that reaches the function
// exit without any node classifying as pathSatisfied, or nil when every
// path is satisfied or exempt. prune, when non-nil, suppresses
// individual successor edges (if-branch pruning for error guards).
// Paths that leave through a panic-kind node are exempt: deferred
// cleanup and process death make leak reports there noise.
func (g *funcCFG) firstUnsatisfiedExit(start *cfgNode, classify func(*cfgNode) pathVerdict, prune func(n *cfgNode, succIdx int) bool) *cfgNode {
	seen := map[*cfgNode]bool{}
	var walk func(n, prev *cfgNode) *cfgNode
	walk = func(n, prev *cfgNode) *cfgNode {
		if n == g.exit {
			if prev != nil && prev.kind == kindPanic {
				return nil
			}
			return prev
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		switch classify(n) {
		case pathSatisfied, pathExempt:
			return nil
		}
		for i, succ := range n.succs {
			if prune != nil && prune(n, i) {
				continue
			}
			if bad := walk(succ, n); bad != nil {
				return bad
			}
		}
		return nil
	}
	for i, succ := range start.succs {
		if prune != nil && prune(start, i) {
			continue
		}
		if bad := walk(succ, start); bad != nil {
			return bad
		}
	}
	return nil
}
