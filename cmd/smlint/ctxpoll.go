package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxpollAnalyzer enforces the pipeline's shutdown convention: a worker
// loop in the execution layer (internal/exec and the engines under
// internal/engine) that blocks in a select on data channels must also
// select on a cancellation signal — ctx.Done() or a stop/done channel —
// or poll the context elsewhere in the loop body. Without one, a
// cancelled run leaves the goroutine parked on channels nobody will
// ever service again: the leak the chaos suite's goroutine accounting
// exists to catch, found at compile time instead.
var ctxpollAnalyzer = &Analyzer{
	Name: "ctxpoll",
	Doc:  "flags worker loops in the execution layer whose selects block on data channels with no ctx.Done/stop case",
	Run:  runCtxpoll,
}

func runCtxpoll(p *Pass) {
	path := p.Pkg.Path() + "/"
	if !strings.Contains(path, "/internal/exec/") && !strings.Contains(path, "/internal/engine/") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if loopPollsContext(p, body) {
				return true
			}
			// Only selects belonging to THIS loop: nested loops and
			// function literals are separate worker bodies and get their
			// own visit from the outer walk.
			walkLoopBody(body, func(sel *ast.SelectStmt) {
				if selectObservesCancel(sel) {
					return
				}
				p.Reportf(sel.Pos(), "select in worker loop blocks on data channels with no ctx.Done/stop case; a cancelled run leaves this goroutine parked forever")
			})
			return true
		})
	}
}

// walkLoopBody visits the select statements that block this loop's own
// iterations, pruning nested loops and function literals.
func walkLoopBody(body *ast.BlockStmt, visit func(*ast.SelectStmt)) {
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				visit(s)
				// Cases of this select may hold nested blocks; they are
				// still this loop's statements, so keep descending.
			}
			return true
		})
	}
}

// loopPollsContext reports whether the loop body itself checks the
// context each iteration — ctx.Err() on a context.Context value, or the
// repo's core.CtxErr helper — which is as good as a Done case.
func loopPollsContext(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Err":
			if isContextType(p.Info.TypeOf(sel.X)) {
				found = true
			}
		case "CtxErr":
			found = true
		}
		return true
	})
	return found
}

// selectObservesCancel reports whether any case of the select receives a
// cancellation signal (ctx.Done(), a stop/done/quit channel) or the
// select is non-blocking (has a default case).
func selectObservesCancel(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default case: the loop never parks here
		}
		if ch := commChannel(cc.Comm); ch != nil && isCancelChannel(ch) {
			return true
		}
	}
	return false
}

// commChannel extracts the channel expression of a select case.
func commChannel(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// cancelNames are the substrings that mark a channel as a shutdown
// signal rather than a data stream.
var cancelNames = []string{"stop", "done", "quit", "cancel", "closed"}

// isCancelChannel reports whether the channel expression names a
// cancellation signal: a Done() method call (context.Context and
// friends) or an identifier that reads as a stop channel.
func isCancelChannel(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if s, ok := x.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return nameReadsAsCancel(x.Name)
	case *ast.SelectorExpr:
		return nameReadsAsCancel(x.Sel.Name)
	}
	return false
}

func nameReadsAsCancel(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range cancelNames {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
