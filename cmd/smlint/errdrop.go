package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropAnalyzer flags call statements that silently discard an error
// result. A benchmark that drops I/O or compute errors reports numbers
// for work that may not have happened. Explicit discards (`_ = f()`)
// remain legal — they are visible in review — as are the fmt print
// family and writers that cannot fail (strings.Builder, bytes.Buffer).
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flags silently discarded error returns outside tests",
	Run:  runErrdrop,
}

// errdropAllowedRecvs are receiver types whose methods never return a
// meaningful error (documented to be nil).
var errdropAllowedRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// errdropAllowedWriters are fmt.Fprint* destinations whose write errors
// are either unactionable (the std streams) or latched and checked
// later (*bufio.Writer's sticky error surfaces at Flush, which errdrop
// does require to be checked).
func errdropAllowedWriter(info *types.Info, w ast.Expr) bool {
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := info.Uses[id].(*types.PkgName); ok &&
				pkgName.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
	}
	t := info.TypeOf(w)
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "bufio" && obj.Name() == "Writer"
		}
	}
	return false
}

func runErrdrop(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Info, call) || errdropAllowed(p.Info, call) {
				return true
			}
			p.Reportf(call.Pos(), "error return is silently discarded; handle it or assign to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errdropAllowed reports whether the callee is on the allowlist.
func errdropAllowed(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print* to stdout, and fmt.Fprint* to an allowlisted writer.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
			if pkgName.Imported().Path() != "fmt" {
				return false
			}
			if strings.HasPrefix(sel.Sel.Name, "Print") {
				return true
			}
			if strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
				return errdropAllowedWriter(info, call.Args[0])
			}
			return false
		}
	}
	// Method on an infallible writer.
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return errdropAllowedRecvs[obj.Pkg().Path()+"."+obj.Name()]
}
