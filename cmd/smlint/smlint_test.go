package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runOne applies a single analyzer to the fixture package in
// testdata/src/<dir> and returns its diagnostics.
func runOne(t *testing.T, a *Analyzer, dir string) []Diagnostic {
	t.Helper()
	// A module path no fixture import can match: every import resolves
	// through the stdlib source importer.
	l := newLoader("fixture.invalid/mod", filepath.Join("testdata", "src"))
	pkg, files, info, err := l.load("fixture.invalid/mod/"+dir, filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var diags []Diagnostic
	pass := &Pass{Fset: l.fset, Files: files, Pkg: pkg, Info: info, analyzer: a.Name, diags: &diags}
	a.Run(pass)
	return diags
}

// wantRx extracts the quoted or backticked regexes from a // want
// comment's payload.
var wantRx = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// expectations maps line number -> unmatched regexes for one file.
func expectations(t *testing.T, path string) map[int][]*regexp.Regexp {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int][]*regexp.Regexp{}
	for i, line := range strings.Split(string(data), "\n") {
		_, payload, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		for _, m := range wantRx.FindAllStringSubmatch(payload, -1) {
			src := m[1]
			if src == "" {
				src = regexp.QuoteMeta(m[2])
			}
			rx, err := regexp.Compile(src)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, src, err)
			}
			out[i+1] = append(out[i+1], rx)
		}
	}
	return out
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
		// wantFindings asserts the fixture actually fails the analyzer,
		// proving the check is live (false for allowlist fixtures).
		wantFindings bool
	}{
		{floatcmpAnalyzer, "floatcmp", true},
		{floatcmpAnalyzer, "floatcmp_allow", false},
		{globalrandAnalyzer, "globalrand", true},
		{goroutinecaptureAnalyzer, "goroutinecapture", true},
		{errdropAnalyzer, "errdrop", true},
		{synccloseAnalyzer, "syncclose", true},
		{enginelayeringAnalyzer, "enginelayering/internal/engine/badengine", true},
		{timenowAnalyzer, "timenow", true},
		{ctxpollAnalyzer, "ctxpoll/internal/exec", true},
		{cursorleakAnalyzer, "cursorleak", true},
		{refbalanceAnalyzer, "refbalance", true},
		{refbalanceAnalyzer, "refbalance/internal/engine/rowstore", true},
		{refbalanceAnalyzer, "refbalance/internal/engine/colstore", true},
		{ctxflowAnalyzer, "ctxflow", true},
		{hotallocAnalyzer, "hotalloc/internal/stats", true},
		{hotallocAnalyzer, "hotalloc/internal/engine/fake", true},
		{hotallocAnalyzer, "hotalloc/internal/colcodec", true},
		{hotallocAnalyzer, "hotalloc/internal/incr", true},
		{hotallocAnalyzer, "hotalloc/internal/engine/colstore", true},
		{hotallocAnalyzer, "hotalloc/internal/exec", true},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name+"/"+tc.dir, func(t *testing.T) {
			diags := runOne(t, tc.analyzer, tc.dir)
			if tc.wantFindings && len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings; analyzer appears dead", tc.dir)
			}

			// Collect // want expectations from every fixture file.
			want := map[string]map[int][]*regexp.Regexp{}
			entries, err := os.ReadDir(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".go") {
					path := filepath.Join("testdata", "src", tc.dir, e.Name())
					want[filepath.Base(path)] = expectations(t, path)
				}
			}

			for _, d := range diags {
				file := filepath.Base(d.Pos.Filename)
				exps := want[file][d.Pos.Line]
				matched := -1
				for i, rx := range exps {
					if rx.MatchString(d.Message) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected diagnostic %s", d)
					continue
				}
				want[file][d.Pos.Line] = append(exps[:matched], exps[matched+1:]...)
			}
			for file, lines := range want {
				for line, exps := range lines {
					for _, rx := range exps {
						t.Errorf("%s:%d: missing diagnostic matching %q", file, line, rx)
					}
				}
			}
		})
	}
}

// TestSuppressions pins //smlint:ignore handling end to end through
// runAnalyzers: a well-formed directive (line-above or same-line)
// silences its finding, and malformed directives — missing reason,
// unknown analyzer — are findings themselves and suppress nothing.
func TestSuppressions(t *testing.T) {
	l := newLoader("fixture.invalid/mod", filepath.Join("testdata", "src"))
	pkg, files, info, err := l.load("fixture.invalid/mod/suppress", filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatalf("loading suppress fixture: %v", err)
	}
	diags := runAnalyzers(l.fset, files, pkg, info)

	var ignores, floats []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "ignore":
			ignores = append(ignores, d)
		case "floatcmp":
			floats = append(floats, d)
		default:
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	// The two well-formed suppressions silence their findings; the two
	// malformed ones leave theirs standing.
	if len(floats) != 2 {
		t.Errorf("got %d floatcmp findings, want 2 (malformed directives must not suppress):", len(floats))
		for _, d := range floats {
			t.Logf("  %s", d)
		}
	}
	if len(ignores) != 2 {
		t.Fatalf("got %d ignore findings, want 2 (missing reason + unknown analyzer)", len(ignores))
	}
	wantMsgs := []string{"needs a reason", "unknown analyzer"}
	for i, wantSub := range wantMsgs {
		if !strings.Contains(ignores[i].Message, wantSub) {
			t.Errorf("ignore finding %d = %q, want substring %q", i, ignores[i].Message, wantSub)
		}
	}
}

// TestSelfLint holds the analyzer, fault-injection and execution layers
// to smlint's own standard: every analyzer over cmd/smlint,
// internal/fault and internal/exec must report nothing.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks several packages")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	_, modRoot, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(modRoot)
	diags, err := run([]string{"./cmd/smlint", "./internal/fault", "./internal/exec/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("self-lint: %s", d)
	}
}

// TestRepoIsClean runs every analyzer over the whole module, mirroring
// `go run ./cmd/smlint ./...` in scripts/check.sh: the tree must stay
// violation-free.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	_, modRoot, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(modRoot)
	diags, err := run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDiagnosticOrdering pins the report order: findings sort by file,
// line, column so output is stable across runs.
func TestDiagnosticOrdering(t *testing.T) {
	diags := runOne(t, floatcmpAnalyzer, "floatcmp")
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", fmt.Sprint(a), fmt.Sprint(b))
		}
	}
}
