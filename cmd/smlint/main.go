package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the driver behind main, factored out so tests can pin the
// exit codes: 0 clean, 1 findings, 2 usage or load error.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	fs.Usage = func() {
		_, _ = fmt.Fprintf(stderr,
			"usage: smlint [-json] [packages]\n\n"+
				"Analyzes Go packages with the repo's correctness analyzers:\n\n")
		for _, a := range analyzers {
			_, _ = fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
		_, _ = fmt.Fprintf(stderr, "\nPatterns: ./... (everything under cwd) or package directories.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := run(patterns)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "smlint:", err)
		return 2
	}
	if *jsonOut {
		if err := emitJSON(stdout, diags); err != nil {
			_, _ = fmt.Fprintln(stderr, "smlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			_, _ = fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		_, _ = fmt.Fprintf(stderr, "smlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// run resolves the patterns to package directories, loads and analyzes
// each package in parallel, and returns all findings in one globally
// deterministic order (file, line, column, analyzer) so output and CI
// diffs are stable across runs and machine core counts.
func run(patterns []string) ([]Diagnostic, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modPath, modRoot, err := findModule(cwd)
	if err != nil {
		return nil, err
	}
	l := newLoader(modPath, modRoot)

	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []string
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = cwd
			}
			batch, err = packageDirs(root)
			if err != nil {
				return nil, err
			}
		} else {
			batch = []string{pat}
		}
		for _, d := range batch {
			abs, err := filepath.Abs(d)
			if err != nil {
				return nil, err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}

	type result struct {
		diags []Diagnostic
		err   error
	}
	results := make([]result, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			path, err := l.importPathFor(dir)
			if err != nil {
				results[i].err = err
				return
			}
			pkg, files, info, err := l.load(path, dir)
			if err != nil {
				results[i].err = fmt.Errorf("loading %s: %w", path, err)
				return
			}
			results[i].diags = runAnalyzers(l.fset, files, pkg, info)
		}(i, dir)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		diags = append(diags, r.diags...)
	}
	sortDiags(diags)
	return diags, nil
}

// jsonDiag is the -json wire form of one finding. File is
// cwd-relative when possible so CI annotations resolve inside the
// checkout.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(w io.Writer, diags []Diagnostic) error {
	cwd, _ := os.Getwd()
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonDiag{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
