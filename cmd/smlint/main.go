package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr,
			"usage: smlint [packages]\n\n"+
				"Analyzes Go packages with the repo's correctness analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nPatterns: ./... (everything under cwd) or package directories.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	diags, err := run(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// run resolves the patterns to package directories, loads each package
// and applies every analyzer.
func run(patterns []string) ([]Diagnostic, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modPath, modRoot, err := findModule(cwd)
	if err != nil {
		return nil, err
	}
	l := newLoader(modPath, modRoot)

	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []string
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = cwd
			}
			batch, err = packageDirs(root)
			if err != nil {
				return nil, err
			}
		} else {
			batch = []string{pat}
		}
		for _, d := range batch {
			abs, err := filepath.Abs(d)
			if err != nil {
				return nil, err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}

	var diags []Diagnostic
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, files, info, err := l.load(path, dir)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		diags = append(diags, runAnalyzers(l.fset, files, pkg, info)...)
	}
	return diags, nil
}
