package main

// cursorleakAnalyzer enforces the Close-on-all-paths half of the
// core.Cursor contract (and io.Closer generally): a value obtained from
// a call whose type implements Close() error must reach Close on every
// control-flow path out of the function — via defer, an explicit call,
// or by escaping to an owner (returned, stored, captured by a closure,
// or handed to a function whose package summary says it closes or
// keeps its argument). The classic bug it catches at compile time is
// the early return between acquisition and the deferred Close — the
// leak the chaos suite's goroutine and finalizer accounting can only
// catch at run time, per injected schedule.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

var cursorleakAnalyzer = &Analyzer{
	Name: "cursorleak",
	Doc:  "flags closers (core.Cursor, io.Closer, files) that miss Close on some path out of the acquiring function",
	Run:  runCursorleak,
}

// closerIface is io.Closer built structurally, so the check does not
// depend on the package under analysis importing io.
var closerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil, types.NewTuple(),
		types.NewTuple(types.NewVar(token.NoPos, nil, "", errType)), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Close", sig),
	}, nil)
	iface.Complete()
	return iface
}()

// implementsCloser reports whether t (or *t) has Close() error.
func implementsCloser(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return types.Implements(t, closerIface)
	}
	if types.Implements(t, closerIface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), closerIface)
	}
	return false
}

func runCursorleak(p *Pass) {
	pf := p.Facts()
	for _, ff := range pf.funcs {
		if isTestFile(p.Fset, ff.decl.Pos()) {
			continue
		}
		for _, u := range flowUnits(ff.decl) {
			checkUnitCloses(p, pf, u)
		}
	}
}

func checkUnitCloses(p *Pass, pf *packageFacts, u *flowUnit) {
	u.eachStmt(func(s ast.Stmt) {
		acq := assignAcquisition(p, s, implementsCloser)
		if acq == nil {
			return
		}
		// Track only locals declared (or reassigned) in this unit; a
		// captured variable's lifecycle belongs to the enclosing scope.
		if acq.obj.Pos() < u.body.Pos() || acq.obj.Pos() > u.body.End() {
			return
		}
		q := &flowQuery{
			p:      p,
			pf:     pf,
			obj:    acq.obj,
			errObj: acq.err,
			isRelease: func(sel *ast.SelectorExpr, asReceiver bool) bool {
				return asReceiver && sel.Sel.Name == "Close"
			},
			calleeSettles: func(gf *funcFacts, i int) bool {
				return gf.closesParams[i]
			},
		}
		if bad := q.run(u, acq.stmt); bad != nil {
			p.Reportf(acq.stmt.Pos(),
				"%s obtained here does not reach Close on the path leaving via %s; close it on every path, defer the Close, or hand it to an owner",
				describeCloser(acq), describeExit(p, bad))
		}
	})
}

// describeCloser names the acquisition for the diagnostic.
func describeCloser(acq *acquisition) string {
	name := acq.obj.Name()
	t := acq.obj.Type()
	return name + " (" + types.TypeString(t, types.RelativeTo(acq.obj.Pkg())) + ")"
}

// describeExit names the unsettled path's terminal statement.
func describeExit(p *Pass, n *cfgNode) string {
	if n == nil || n.stmt == nil {
		return "the function end"
	}
	pos := p.Fset.Position(n.stmt.Pos())
	if n.kind == kindReturn {
		return "the return on line " + strconv.Itoa(pos.Line)
	}
	return "line " + strconv.Itoa(pos.Line)
}
