package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// loader parses and type-checks packages without golang.org/x/tools.
// Imports inside the current module resolve by mapping the import path
// onto the module directory; everything else (the standard library)
// resolves through the stdlib source importer.
//
// The loader is safe for concurrent use: the driver analyzes packages
// in parallel, so each import path is loaded exactly once (concurrent
// requests for an in-flight package wait for the first load), and the
// stdlib source importer — which is not synchronized internally — is
// serialized behind its own mutex. The shared token.FileSet is
// concurrency-safe by contract.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string

	std   types.Importer
	stdMu sync.Mutex

	mu      sync.Mutex
	entries map[string]*loadEntry
}

// loadEntry is one package's load, shared by every goroutine that needs
// it; done is closed when the fields are final.
type loadEntry struct {
	done  chan struct{}
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(modPath, modRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		entries: map[string]*loadEntry{},
	}
}

// Import implements types.Importer so repo packages can depend on each
// other during type checking.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		e := l.entry(path, filepath.Join(l.modRoot, rel))
		return e.pkg, e.err
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// load parses the non-test Go files in dir and type-checks them as one
// package, returning the package, its syntax and the filled type info.
// Concurrent calls for the same path share one load.
func (l *loader) load(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	e := l.entry(path, dir)
	return e.pkg, e.files, e.info, e.err
}

// entry returns the (possibly in-flight) load for path, starting it if
// this is the first request.
func (l *loader) entry(path, dir string) *loadEntry {
	l.mu.Lock()
	if e, ok := l.entries[path]; ok {
		l.mu.Unlock()
		<-e.done
		return e
	}
	e := &loadEntry{done: make(chan struct{})}
	l.entries[path] = e
	l.mu.Unlock()
	e.pkg, e.files, e.info, e.err = l.parseAndCheck(path, dir)
	close(e.done)
	return e
}

// parseAndCheck does the actual parse + type-check of one package.
func (l *loader) parseAndCheck(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// goFiles lists the buildable non-test .go files in dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// packageDirs walks root and returns every directory containing
// buildable Go files, skipping testdata, vendor and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module path and root directory.
func findModule(dir string) (modPath, modRoot string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}
