package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks packages without golang.org/x/tools.
// Imports inside the current module resolve by mapping the import path
// onto the module directory; everything else (the standard library)
// resolves through the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	cache   map[string]*types.Package
}

func newLoader(modPath, modRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}
}

// Import implements types.Importer so repo packages can depend on each
// other during type checking.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, _, _, err := l.load(path, filepath.Join(l.modRoot, rel))
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// load parses the non-test Go files in dir and type-checks them as one
// package, returning the package, its syntax and the filled type info.
func (l *loader) load(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// goFiles lists the buildable non-test .go files in dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// packageDirs walks root and returns every directory containing
// buildable Go files, skipping testdata, vendor and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module path and root directory.
func findModule(dir string) (modPath, modRoot string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}
