package main

import (
	"go/ast"
	"go/types"
)

// timenowAnalyzer guards the pipeline's phase accounting: a goroutine
// spawned inside a loop must not write a time.Since/time.Now
// measurement to a struct field captured from the enclosing scope
// (ph.Extract.Wall += time.Since(t0) inside every worker races the
// other workers and undercounts busy time). The sanctioned pattern is a
// per-worker accumulator slot — busy[w] += time.Since(t0) — summed
// after the joins, which is exactly what internal/exec does; writes
// through an index expression are therefore never flagged, nor are
// writes to variables declared inside the spawned closure itself.
var timenowAnalyzer = &Analyzer{
	Name: "timenow",
	Doc:  "flags time.Since/time.Now written to captured struct fields inside goroutines spawned in loops",
	Run:  runTimenow,
}

func runTimenow(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.RangeStmt:
				body = loop.Body
			case *ast.ForStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(inner ast.Node) bool {
				g, ok := inner.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkTimeWrites(p, lit)
				return true
			})
			return true
		})
	}
}

// checkTimeWrites walks one spawned closure and reports assignments
// whose right side measures time (time.Since or time.Now) and whose
// left side is a field of a variable captured from outside the closure.
func checkTimeWrites(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		measures := false
		for _, rhs := range as.Rhs {
			if callsTimeMeasure(p, rhs) {
				measures = true
				break
			}
		}
		if !measures {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				// Plain identifiers and index expressions (the per-worker
				// accumulator pattern) are safe by convention.
				continue
			}
			base, indexed := selBase(sel)
			if indexed {
				// busy[w].Field — still a per-worker slot.
				continue
			}
			obj := p.Info.Uses[base]
			if obj == nil || !capturedFrom(obj, lit) {
				continue
			}
			p.Reportf(lhs.Pos(), "time measurement written to captured field %s inside a spawned goroutine; use a per-worker accumulator (e.g. busy[w]) and sum after the joins", exprString(sel))
		}
		return true
	})
}

// callsTimeMeasure reports whether expr contains a call to time.Since
// or time.Now.
func callsTimeMeasure(p *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Since" && sel.Sel.Name != "Now" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if ok && pn.Imported().Path() == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}

// selBase resolves the innermost identifier of a selector chain
// (ph.Extract.Wall -> ph). indexed reports whether the chain passes
// through an index expression, meaning the write lands in a dedicated
// slot rather than a shared field.
func selBase(sel *ast.SelectorExpr) (base *ast.Ident, indexed bool) {
	e := sel.X
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, indexed
		}
	}
}

// capturedFrom reports whether obj is declared outside lit, i.e. the
// closure captures it from the enclosing scope.
func capturedFrom(obj types.Object, lit *ast.FuncLit) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// exprString renders a selector chain for the diagnostic.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "?"
	}
}
