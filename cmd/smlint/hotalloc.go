package main

// hotallocAnalyzer polices per-row allocation in the kernel packages —
// internal/stats, internal/sched, and the engines' cursor Next paths —
// where the paper's workloads execute once per meter-reading and an
// allocation per iteration dominates the profile. Inside loops it
// flags:
//
//   - fmt.Sprintf / fmt.Errorf: formatting allocates the result and
//     boxes every operand; hot paths should format once outside the
//     loop or use fixed errors.
//   - append to a slice declared outside the loop without capacity:
//     the backing array reallocates O(log n) times; pre-size with
//     make(T, 0, n).
//   - assignments that box a concrete value into an interface: each
//     store allocates; keep hot-loop state concrete.
//   - function literals: each iteration allocates a closure; hoist it
//     out of the loop. go/defer statements are exempt — spawning is
//     the point there, and the loop body usually needs the capture.
//
// Return statements are exempt: `return nil, fmt.Errorf(...)` runs
// once on the way out, not once per iteration.
//
// An engine cursor's Next method is implicitly hot: the consumer drives
// it in a loop, so its whole body is treated as loop context. There the
// analyzer additionally flags appends to receiver fields
// (c.buf = append(c.buf, …)) — state that grows across Next calls
// should be pre-sized when the cursor is built.
//
// Beyond those structural rules, hotFuncs names individual functions in
// otherwise-unpoliced packages that profiling showed on the per-consumer
// path: the parallel encode pool's per-consumer encoder in colstore and
// the PAR fast path's series reconstruction in exec. Listed functions
// get the kernel treatment; listed Next methods get the cursor
// treatment.
//
// Scope is deliberate: only the kernel packages and the named hot
// functions are held to this standard. Orchestration and reporting code
// may allocate freely.

import (
	"go/ast"
	"go/types"
	"strings"
)

var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-iteration allocations (Sprintf, un-capped append, interface boxing, closures) in loops of kernel packages",
	Run:  runHotalloc,
}

func runHotalloc(p *Pass) {
	wholePkg := hotPackage(p.Pkg.Path())
	enginePkg := strings.Contains(p.Pkg.Path()+"/", "/internal/engine/")
	named := hotFuncNames(p.Pkg.Path())
	if !wholePkg && !enginePkg && len(named) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isTestFile(p.Fset, fd.Pos()) {
				continue
			}
			if wholePkg {
				checkHotFunc(p, fd, nil)
				continue
			}
			// In engine packages the cursor hot path is always a
			// kernel: the Next method, whose whole body is implicitly a
			// loop body (the consumer drives it once per row).
			if enginePkg && fd.Recv != nil && fd.Name.Name == "Next" {
				checkHotFunc(p, fd, fd.Body)
				continue
			}
			if named[funcKey(fd)] {
				if fd.Name.Name == "Next" {
					checkHotFunc(p, fd, fd.Body)
				} else {
					checkHotFunc(p, fd, nil)
				}
			}
		}
	}
}

// hotFuncs names individual hot functions in packages the structural
// rules above do not already police wholesale. Each entry maps a
// package-path substring to function names within it; methods are
// written "Type.Method". These run once per consumer with per-reading
// inner loops, so they are held to the same standard as the stats
// kernels.
var hotFuncs = map[string][]string{
	"/internal/engine/colstore/": {"encodeConsumer"},
	"/internal/exec/":            {"summaryAssemblyCursor.Next", "summaryAssemblyCursor.assemble"},
}

// hotFuncNames resolves the hotFuncs entries that apply to pkg path.
func hotFuncNames(path string) map[string]bool {
	out := map[string]bool{}
	path += "/"
	for sub, names := range hotFuncs {
		if !strings.Contains(path, sub) {
			continue
		}
		for _, n := range names {
			out[n] = true
		}
	}
	return out
}

// funcKey renders a declaration the way hotFuncs spells it: the bare
// name for functions, "Type.Method" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := ast.Unparen(fd.Recv.List[0].Type)
	if star, ok := t.(*ast.StarExpr); ok {
		t = ast.Unparen(star.X)
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hotPackage reports whether every function in the package is on the
// hot path. internal/colcodec is implicitly hot: every reading decodes
// through it, so a per-iteration allocation there costs once per meter
// reading, same as the stats kernels. internal/incr is hot for the
// same reason from the other direction: its maintainers run on every
// ingested reading, so a per-reading allocation there taxes the whole
// live path.
func hotPackage(path string) bool {
	path += "/"
	return strings.Contains(path, "/internal/stats/") ||
		strings.Contains(path, "/internal/sched/") ||
		strings.Contains(path, "/internal/colcodec/") ||
		strings.Contains(path, "/internal/incr/")
}

// checkHotFunc walks one kernel function, flagging allocation patterns
// inside its loops. When implicitLoop is non-nil (an engine Next body)
// the whole body counts as loop context and receiver-field appends are
// also policed.
func checkHotFunc(p *Pass, fd *ast.FuncDecl, implicitLoop ast.Node) {
	uncapped := collectUncappedSlices(p, fd.Body)
	fieldHot := implicitLoop != nil
	var walk func(n ast.Node, loop ast.Node)
	walk = func(n ast.Node, loop ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.ForStmt:
				walk(m.Body, m)
				return false
			case *ast.RangeStmt:
				walk(m.Body, m)
				return false
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.ReturnStmt:
				// A return runs once on the way out of the loop;
				// fmt.Errorf there is the normal exit path, not a
				// per-iteration allocation.
				walk(m, nil)
				return false
			case *ast.FuncLit:
				if loop != nil {
					p.Reportf(m.Pos(), "closure allocated on every iteration of this loop; hoist the function literal out of the loop")
				}
				walk(m.Body, nil) // the literal's own loops start fresh
				return false
			case *ast.CallExpr:
				if loop != nil {
					checkHotCall(p, m, uncapped, loop, fieldHot)
				}
			case *ast.AssignStmt:
				if loop != nil {
					checkBoxingAssign(p, m)
				}
			}
			return true
		})
	}
	walk(fd.Body, implicitLoop)
}

// checkHotCall flags formatting calls and un-capped appends inside a
// loop.
func checkHotCall(p *Pass, call *ast.CallExpr, uncapped map[types.Object]bool, loop ast.Node, fieldHot bool) {
	if fn := staticCallee(p.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if fn.Name() == "Sprintf" || fn.Name() == "Errorf" {
			p.Reportf(call.Pos(), "fmt.%s allocates on every iteration of this loop; format outside the loop or use a fixed value", fn.Name())
			return
		}
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch target := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[target]
		if obj == nil || !uncapped[obj] {
			return
		}
		// Only appends that grow across iterations matter: the slice
		// must be declared before the loop.
		if obj.Pos() >= loop.Pos() {
			return
		}
		p.Reportf(call.Pos(), "append to %s grows an un-capped slice inside this loop; pre-size it with make(..., 0, n) before the loop", target.Name)
	case *ast.SelectorExpr:
		if !fieldHot {
			return
		}
		p.Reportf(call.Pos(), "append to field %s grows per Next call; pre-size the slice (the cursor knows its size when built) and index into it", target.Sel.Name)
	}
}

// checkBoxingAssign flags stores of concrete values into
// interface-typed destinations inside a loop — each one allocates.
func checkBoxingAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := p.Info.TypeOf(lhs)
		rt := p.Info.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if _, isIface := lt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if _, rhsIface := rt.Underlying().(*types.Interface); rhsIface {
			continue // interface-to-interface: no new box
		}
		if isUntypedNil(rt) {
			continue
		}
		p.Reportf(as.Rhs[i].Pos(), "storing a concrete %s into an interface boxes it on every iteration of this loop; keep the hot-loop value concrete", types.TypeString(rt, types.RelativeTo(p.Pkg)))
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// collectUncappedSlices finds slice variables the function declares
// with no capacity hint: `var xs []T`, `xs := []T{}`, or
// `xs := make([]T, 0)`.
func collectUncappedSlices(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(name *ast.Ident) {
		if obj := p.Info.Defs[name]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if uncappedValue(p, n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// uncappedValue reports whether the expression builds a slice with no
// capacity: an empty literal or make with zero length and no cap.
func uncappedValue(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		lit, ok := ast.Unparen(e.Args[1]).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}
