package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeTree materializes rel-path -> contents under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, contents := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoaderErrors pins the loader's failure modes: malformed sources,
// type-check errors and directories with nothing to build all surface
// as errors instead of panics or silent empty packages.
func TestLoaderErrors(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string
		wantErr string // regexp over the error text
	}{
		{
			name:    "malformed source",
			files:   map[string]string{"broken.go": "package broken\nfunc {\n"},
			wantErr: "expected",
		},
		{
			name:    "type-check error",
			files:   map[string]string{"broken.go": "package broken\n\nvar x = undefinedIdent\n"},
			wantErr: "undefined|undeclared",
		},
		{
			name:    "no Go files",
			files:   map[string]string{"README.md": "not Go\n"},
			wantErr: "no Go files",
		},
		{
			name:    "missing directory",
			files:   map[string]string{},
			wantErr: "no such file|cannot find",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			writeTree(t, root, tc.files)
			dir := root
			if tc.name == "missing directory" {
				dir = filepath.Join(root, "nope")
			}
			l := newLoader("loadtest.invalid/mod", root)
			_, _, _, err := l.load("loadtest.invalid/mod", dir)
			if err == nil {
				t.Fatalf("load succeeded, want error matching %q", tc.wantErr)
			}
			if !regexp.MustCompile(tc.wantErr).MatchString(err.Error()) {
				t.Fatalf("error = %q, want match for %q", err, tc.wantErr)
			}
		})
	}
}

// TestPackageDirs pins ./... expansion: package directories are found
// recursively while testdata, vendor, hidden and underscore trees are
// skipped.
func TestPackageDirs(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"a/a.go":            "package a\n",
		"a/testdata/x/x.go": "package x\n",
		"b/b.go":            "package b\n",
		"b/vendor/v/v.go":   "package v\n",
		".hidden/h.go":      "package h\n",
		"_skip/s.go":        "package s\n",
		"empty/README.md":   "no Go here\n",
	})
	dirs, err := packageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var rels []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, filepath.ToSlash(rel))
	}
	want := []string{"a", "b"}
	if len(rels) != len(want) {
		t.Fatalf("packageDirs = %v, want %v", rels, want)
	}
	for i := range want {
		if rels[i] != want[i] {
			t.Fatalf("packageDirs = %v, want %v", rels, want)
		}
	}
}

// TestRealMainExitCodes pins the driver contract scripts/check.sh and
// CI rely on: 0 clean, 1 findings, 2 usage or load errors — and the
// -json wire format consumed by the CI annotation step.
func TestRealMainExitCodes(t *testing.T) {
	module := func(t *testing.T, files map[string]string) string {
		root := t.TempDir()
		files["go.mod"] = "module drivertest.invalid/m\n\ngo 1.22\n"
		writeTree(t, root, files)
		return root
	}

	t.Run("bad flag is a usage error", func(t *testing.T) {
		var out, errb strings.Builder
		if got := realMain([]string{"-bogus"}, &out, &errb); got != 2 {
			t.Fatalf("exit = %d, want 2; stderr: %s", got, errb.String())
		}
	})

	t.Run("load failure exits 2", func(t *testing.T) {
		t.Chdir(module(t, map[string]string{"p/p.go": "package p\nfunc {\n"}))
		var out, errb strings.Builder
		if got := realMain([]string{"./..."}, &out, &errb); got != 2 {
			t.Fatalf("exit = %d, want 2; stderr: %s", got, errb.String())
		}
		if !strings.Contains(errb.String(), "smlint:") {
			t.Fatalf("stderr %q does not name the failure", errb.String())
		}
	})

	t.Run("clean tree exits 0", func(t *testing.T) {
		t.Chdir(module(t, map[string]string{"p/p.go": "package p\n\nfunc Add(a, b int) int { return a + b }\n"}))
		var out, errb strings.Builder
		if got := realMain([]string{"./..."}, &out, &errb); got != 0 {
			t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
		}
		if out.String() != "" {
			t.Fatalf("stdout %q, want empty", out.String())
		}
	})

	t.Run("findings exit 1 with json annotations", func(t *testing.T) {
		t.Chdir(module(t, map[string]string{"p/p.go": "package p\n\nfunc eq(a, b float64) bool { return a == b }\n"}))
		var out, errb strings.Builder
		if got := realMain([]string{"-json", "./..."}, &out, &errb); got != 1 {
			t.Fatalf("exit = %d, want 1; stderr: %s", got, errb.String())
		}
		var diags []jsonDiag
		if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
			t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
		}
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
		}
		d := diags[0]
		if d.File != "p/p.go" || d.Analyzer != "floatcmp" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Fatalf("jsonDiag = %+v, want cwd-relative file p/p.go from floatcmp with position and message", d)
		}
	})
}
