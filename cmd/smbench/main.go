// Command smbench regenerates the paper's evaluation tables and
// figures against the Go platform analogues.
//
// Usage:
//
//	smbench list
//	smbench run <experiment|all> [flags]
//
// Examples:
//
//	smbench run fig7 -scale default
//	smbench run all -scale small -workdir /tmp/smbench
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/benchmark"
	"github.com/smartmeter/smartbench/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range benchmark.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Description)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scaleName := fs.String("scale", "default", "workload scale: small or default")
	workdir := fs.String("workdir", "", "working directory (default: a temp dir)")
	seed := fs.Int64("seed", 42, "data generation seed")
	prefetchName := fs.String("prefetch", "auto", "extraction prefetcher: auto (overlap when eligible) or off (serial extraction)")
	policyName := fs.String("failpolicy", "failfast", "per-consumer failure policy: failfast, quarantine or repair")
	timeout := fs.Duration("timeout", 0, "per-run deadline (0 = none), e.g. 30s")
	memBudgetStr := fs.String("membudget", "", "column-store decoded-block cache cap, e.g. 256MiB or 1GiB (default: unbudgeted in-core)")
	encoders := fs.Int("encoders", 1, "segment-encode workers for the scale-up experiment (byte-identical output)")
	walMode := fs.String("wal", "", "write-ahead-log fsync policy for the recovery experiment: off, batch or always (default: batch where a log is needed)")
	fs.StringVar(walMode, "fsync", "", "alias for -wal")
	tailBudget := fs.Int("tailbudget", 0, "arm background checkpointing once this many readings accumulate past the last checkpoint (0 = explicit checkpoints only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *encoders < 1 {
		return fmt.Errorf("-encoders must be at least 1, got %d", *encoders)
	}
	if *tailBudget < 0 {
		return fmt.Errorf("-tailbudget must be non-negative, got %d", *tailBudget)
	}
	memBudget, err := parseMemBudget(*memBudgetStr)
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("run: which experiment? (try `smbench list` or `smbench run all`)")
	}

	var scale benchmark.Scale
	switch *scaleName {
	case "small":
		scale = benchmark.SmallScale()
	case "default":
		scale = benchmark.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	var prefetch core.PrefetchMode
	switch *prefetchName {
	case "auto":
		prefetch = core.PrefetchAuto
	case "off":
		prefetch = core.PrefetchOff
	default:
		return fmt.Errorf("unknown prefetch mode %q (want auto or off)", *prefetchName)
	}
	policy, err := parseFailPolicy(*policyName)
	if err != nil {
		return err
	}
	if *timeout < 0 {
		return fmt.Errorf("negative timeout %v", *timeout)
	}
	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "smbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	var experiments []benchmark.Experiment
	if fs.Arg(0) == "all" {
		experiments = benchmark.All()
	} else {
		for _, id := range fs.Args() {
			e, err := benchmark.Lookup(id)
			if err != nil {
				return err
			}
			experiments = append(experiments, e)
		}
	}
	for _, e := range experiments {
		opts := benchmark.Options{
			WorkDir:    filepath.Join(dir, e.ID),
			Scale:      scale,
			Seed:       *seed,
			Prefetch:   prefetch,
			FailPolicy: policy,
			Timeout:    *timeout,
			MemBudget:  memBudget,
			Encoders:   *encoders,
			WAL:        *walMode,
			TailBudget: *tailBudget,
		}
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := rep.Print(os.Stdout); err != nil {
			return fmt.Errorf("%s: printing report: %w", e.ID, err)
		}
	}
	return nil
}

// parseMemBudget parses the -membudget flag via the shared byte-size
// parser: a non-negative integer with an optional B/KB/MB/GB (decimal)
// or KiB/MiB/GiB (binary) suffix. Empty means no budget (in-core).
func parseMemBudget(s string) (int64, error) {
	v, err := core.ParseByteSize(s)
	if err != nil {
		return 0, fmt.Errorf("bad -membudget %q (want e.g. 256MiB, 1GiB)", s)
	}
	return v, nil
}

// parseFailPolicy maps the -failpolicy flag to a core.FailPolicy.
func parseFailPolicy(name string) (core.FailPolicy, error) {
	return core.ParseFailPolicy(name)
}

func usage() {
	fmt.Fprint(os.Stderr, `smbench - smart meter analytics benchmark (EDBT 2015 reproduction)

commands:
  list                 show all experiments (paper tables and figures)
  run <id...|all>      run experiments and print paper-style tables
      -scale small|default   workload size (default: default)
      -workdir DIR           keep generated data here
      -seed N                data generation seed
      -prefetch auto|off     overlapped extraction (default: auto; off pins the serial path)
      -failpolicy P          per-consumer failure policy: failfast (default), quarantine, repair
      -timeout D             per-run deadline, e.g. 30s (default: none)
      -membudget SIZE        cap the column store's decoded-block cache, e.g. 256MiB;
                             compressed segments page in and out under the cap
                             (default: unbudgeted, fully decoded in memory)
      -encoders N            segment-encode workers for the scale-up experiment
                             (default: 1; the file is byte-identical at any count)
      -wal P                 write-ahead-log fsync policy for the recovery
                             experiment: off, batch or always (-fsync is an
                             alias; the ingest experiment sweeps all three)
      -tailbudget N          arm background checkpointing in wal-backed engines
                             once N readings accumulate past the last checkpoint
                             (default: 0, explicit checkpoints only)
`)
}
