package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"run", "-scale", "bogus", "fig4"},
		{"run", "unknown-experiment"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunOneExperimentSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment run in -short mode")
	}
	if err := run([]string{"run", "-scale", "small", "-workdir", t.TempDir(), "table1"}); err != nil {
		t.Fatal(err)
	}
}
