package main

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"run", "-scale", "bogus", "fig4"},
		{"run", "unknown-experiment"},
		{"run", "-failpolicy", "bogus", "fig4"},
		{"run", "-timeout", "-3s", "fig4"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunOneExperimentSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment run in -short mode")
	}
	if err := run([]string{"run", "-scale", "small", "-workdir", t.TempDir(), "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFailPolicy(t *testing.T) {
	for name, want := range map[string]core.FailPolicy{
		"failfast":   core.FailFast,
		"quarantine": core.Quarantine,
		"repair":     core.Repair,
	} {
		got, err := parseFailPolicy(name)
		if err != nil || got != want {
			t.Errorf("parseFailPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseFailPolicy("maybe"); err == nil {
		t.Error("parseFailPolicy(maybe): want error")
	}
}

// TestFaultsExperimentUnderPolicies runs the fault-injection sweep end
// to end through the CLI with each containment policy.
func TestFaultsExperimentUnderPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment run in -short mode")
	}
	for _, policy := range []string{"quarantine", "repair"} {
		args := []string{"run", "-scale", "small", "-workdir", t.TempDir(),
			"-failpolicy", policy, "-timeout", "2m", "faults"}
		if err := run(args); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
}

func TestParseMemBudget(t *testing.T) {
	good := map[string]int64{
		"":       0,
		"0":      0,
		"1024":   1024,
		"512b":   512,
		"1KiB":   1 << 10,
		"256MiB": 256 << 20,
		"2GiB":   2 << 30,
		"1kb":    1000,
		"100MB":  100 * 1000 * 1000,
		"1GB":    1000 * 1000 * 1000,
	}
	for in, want := range good {
		got, err := parseMemBudget(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
		} else if got != want {
			t.Errorf("%q = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"-1", "abc", "12XB", "MiB", "9999999999GiB"} {
		if _, err := parseMemBudget(in); err == nil {
			t.Errorf("%q: want error", in)
		}
	}
}

func TestRunScaleupWithBudget(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"run", "-scale", "small", "-workdir", dir, "-membudget", "64KiB", "scaleup"})
	if err != nil {
		t.Fatal(err)
	}
}
