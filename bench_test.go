package smartbench

// One testing.B benchmark per paper table/figure, plus kernel
// micro-benchmarks. Each benchmark exercises the same code path as the
// corresponding cmd/smbench experiment at a reduced, fixed size so the
// whole suite completes in minutes. See EXPERIMENTS.md for the mapping
// to the paper's evaluation.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/benchmark"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/engine/filestore"
	"github.com/smartmeter/smartbench/internal/engine/mapreduce"
	"github.com/smartmeter/smartbench/internal/engine/rdd"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/generator"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/stream"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

const (
	benchConsumers = 16
	benchDays      = 60
)

// benchDataset caches one dataset for all kernel benchmarks.
var benchDataset *timeseries.Dataset

func getDataset(b *testing.B) *timeseries.Dataset {
	b.Helper()
	if benchDataset == nil {
		ds, err := seed.Generate(seed.Config{Consumers: benchConsumers, Days: benchDays, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		benchDataset = ds
	}
	return benchDataset
}

func writeSources(b *testing.B, format meterdata.Format, partitioned bool) *meterdata.Source {
	b.Helper()
	ds := getDataset(b)
	dir := b.TempDir()
	var src *meterdata.Source
	var err error
	if partitioned {
		src, err = meterdata.WritePartitioned(dir, ds, format)
	} else {
		src, err = meterdata.WriteUnpartitioned(dir, ds, format)
	}
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// --- Kernel micro-benchmarks -------------------------------------------

func BenchmarkKernelHistogram(b *testing.B) {
	ds := getDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := histogram.Compute(ds.Series[i%len(ds.Series)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelThreeLine(b *testing.B) {
	ds := getDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := threeline.Compute(ds.Series[i%len(ds.Series)], ds.Temperature); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelPAR(b *testing.B) {
	ds := getDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.Compute(ds.Series[i%len(ds.Series)], ds.Temperature); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSimilarity(b *testing.B) {
	ds := getDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.Compute(ds, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// simDataset caches the larger n=64 dataset used by the blocked-vs-naive
// similarity A/B pair below (scripts/bench.sh aggregates these two into
// BENCH_similarity.json; see EXPERIMENTS.md §5.3.4).
var simDataset *timeseries.Dataset

func getSimDataset(b *testing.B) *timeseries.Dataset {
	b.Helper()
	if simDataset == nil {
		ds, err := seed.Generate(seed.Config{Consumers: 64, Days: benchDays, Seed: 43})
		if err != nil {
			b.Fatal(err)
		}
		simDataset = ds
	}
	return simDataset
}

func BenchmarkKernelSimilarityBlocked(b *testing.B) {
	ds := getSimDataset(b)
	// Warm once so the FlatMatrix packing is cached and the loop measures
	// the steady-state kernel, matching how engines reuse a loaded dataset.
	if _, err := similarity.Compute(ds, 5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.Compute(ds, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSimilarityNaive(b *testing.B) {
	ds := getSimDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.ComputeNaive(ds, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThreeLine and BenchmarkLegacyThreeLine are the
// pipeline-overhead A/B pair: the cursor-based execution layer versus
// the direct core.RunParallel baseline over the same in-memory
// dataset. scripts/bench.sh aggregates them into BENCH_pipeline.json;
// the pipeline's extract/compute/emit staging and phase instrumentation
// should cost low single-digit percent.
func BenchmarkPipelineThreeLine(b *testing.B) {
	ds := getDataset(b)
	spec := core.Spec{Task: core.TaskThreeLine, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(exec.NewDatasetSource(ds), spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegacyThreeLine(b *testing.B) {
	ds := getDataset(b)
	spec := core.Spec{Task: core.TaskThreeLine, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunParallel(context.Background(), ds, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFault{Baseline,QuarantineZero,QuarantineInjected} measure
// what per-consumer failure containment costs on the pipeline hot path.
// Baseline is the historical fail-fast run with no fault wrapper;
// QuarantineZero runs the full containment machinery (fault source
// wrapper, quarantine bookkeeping) with a zero injection rate, so any
// gap over Baseline is pure overhead — scripts/bench.sh distills the
// pair into BENCH_fault.json and the target is <3%; QuarantineInjected
// adds a 5% mixed fault rate, pricing the retry and quarantine paths
// themselves.
func benchFault(b *testing.B, src exec.Source, policy core.FailPolicy) {
	spec := core.Spec{Task: core.TaskThreeLine, Workers: 4, FailPolicy: policy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunContext(context.Background(), src, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultBaseline(b *testing.B) {
	benchFault(b, exec.NewDatasetSource(getDataset(b)), core.FailFast)
}

func BenchmarkFaultQuarantineZero(b *testing.B) {
	src := fault.New(exec.NewDatasetSource(getDataset(b)), fault.Config{Seed: 42})
	benchFault(b, src, core.Quarantine)
}

func BenchmarkFaultQuarantineInjected(b *testing.B) {
	cfg := fault.Config{Seed: 42, Transient: 0.025, Permanent: 0.0125, Corrupt: 0.0125}
	src := fault.New(exec.NewDatasetSource(getDataset(b)), cfg)
	benchFault(b, src, core.Quarantine)
}

func BenchmarkKernelQuantiles(b *testing.B) {
	ds := getDataset(b)
	xs := ds.Series[0].Readings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Quantiles(xs, 0.1, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerator(b *testing.B) {
	ds := getDataset(b)
	gen, err := generator.New(ds, generator.Config{Clusters: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.NextSeries(ds.Temperature); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1 ------------------------------------------------------------

func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchmark.Table1(benchmark.Options{WorkDir: b.TempDir(), Scale: benchmark.SmallScale()})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 4 {
			b.Fatal("table1 shape")
		}
	}
}

// --- Figure 4: load times ------------------------------------------------

func benchLoad(b *testing.B, mk func(i int) core.Engine, src *meterdata.Source) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mk(i)
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4LoadColstore(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	dir := b.TempDir()
	benchLoad(b, func(i int) core.Engine {
		return colstore.New(fmt.Sprintf("%s/%d", dir, i))
	}, src)
}

func BenchmarkFig4LoadRowstore(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	dir := b.TempDir()
	benchLoad(b, func(i int) core.Engine {
		return rowstore.New(fmt.Sprintf("%s/%d", dir, i))
	}, src)
}

func BenchmarkFig4LoadFilestore(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	dir := b.TempDir()
	benchLoad(b, func(i int) core.Engine {
		return filestore.New(filestore.WithSplitDir(fmt.Sprintf("%s/%d", dir, i)))
	}, src)
}

// --- Figure 5: partitioning impact on the file engine -------------------

func benchFilestoreThreeLine(b *testing.B, partitioned bool) {
	src := writeSources(b, meterdata.FormatReadingPerLine, partitioned)
	eng := filestore.New()
	if _, err := eng.LoadDirect(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PartitioningPartitioned(b *testing.B)   { benchFilestoreThreeLine(b, true) }
func BenchmarkFig5PartitioningUnpartitioned(b *testing.B) { benchFilestoreThreeLine(b, false) }

// --- Figure 6: cold vs warm ----------------------------------------------

func BenchmarkFig6ColdWarm(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	eng := colstore.New(b.TempDir())
	if _, err := eng.Load(src); err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := eng.Release(); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if err := eng.Warm(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 7: single-threaded tasks per engine --------------------------

func BenchmarkFig7SingleThread(b *testing.B) {
	srcUnpart := writeSources(b, meterdata.FormatReadingPerLine, false)
	srcPart := writeSources(b, meterdata.FormatReadingPerLine, true)

	engines := []struct {
		name string
		mk   func() core.Engine
		src  *meterdata.Source
	}{
		{"filestore", func() core.Engine { return filestore.New() }, srcPart},
		{"rowstore", func() core.Engine { return rowstore.New(b.TempDir()) }, srcUnpart},
		{"colstore", func() core.Engine { return colstore.New(b.TempDir()) }, srcUnpart},
	}
	for _, e := range engines {
		eng := e.mk()
		if _, err := eng.Load(e.src); err != nil {
			b.Fatal(err)
		}
		for _, task := range core.Tasks {
			b.Run(fmt.Sprintf("%s/%s", e.name, task), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := eng.Release(); err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Run(core.Spec{Task: task, K: 5, Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 8 is a memory measurement; report allocations here ----------

func BenchmarkFig8MemoryProxy(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	eng := colstore.New(b.TempDir())
	if _, err := eng.Load(src); err != nil {
		b.Fatal(err)
	}
	for _, task := range core.Tasks {
		b.Run(task.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(core.Spec{Task: task, K: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 9: row vs array layout ---------------------------------------

func BenchmarkFig9Layout(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	for _, layout := range []rowstore.Layout{rowstore.LayoutRows, rowstore.LayoutArrays} {
		eng := rowstore.New(b.TempDir(), rowstore.WithLayout(layout))
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := eng.Release(); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
					b.Fatal(err)
				}
			}
		})
		eng.Close()
	}
}

// --- Figure 10: multi-core speedup ---------------------------------------

func BenchmarkFig10Speedup(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	eng := colstore.New(b.TempDir())
	if _, err := eng.Load(src); err != nil {
		b.Fatal(err)
	}
	if err := eng.Warm(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(core.Spec{Task: core.TaskPAR, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Cluster figures ------------------------------------------------------

func newBenchCluster(b *testing.B, nodes int) *dfs.FS {
	b.Helper()
	cluster, err := distsim.New(distsim.Config{
		Nodes: nodes, SlotsPerNode: 4,
		TransferLatency: 20 * time.Microsecond, BytesPerSecond: 1 << 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	fsys, err := dfs.New(cluster, dfs.WithBlockSize(128<<10))
	if err != nil {
		b.Fatal(err)
	}
	return fsys
}

// BenchmarkFig11ClusterVsC compares the column store against the two
// cluster engines on the same workload (Figure 11 / 12).
func BenchmarkFig11ClusterVsC(b *testing.B) {
	srcRPL := writeSources(b, meterdata.FormatReadingPerLine, false)
	srcSPL := writeSources(b, meterdata.FormatSeriesPerLine, false)

	colE := colstore.New(b.TempDir())
	if _, err := colE.Load(srcRPL); err != nil {
		b.Fatal(err)
	}
	fsys := newBenchCluster(b, 4)
	hive := mapreduce.New(fsys)
	spark := rdd.New(fsys)
	if _, err := hive.Load(srcSPL); err != nil {
		b.Fatal(err)
	}
	if _, err := spark.Load(srcSPL); err != nil {
		b.Fatal(err)
	}
	for _, e := range []struct {
		name string
		eng  core.Engine
	}{{"colstore", colE}, {"spark", spark}, {"hive", hive}} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.eng.Release(); err != nil {
					b.Fatal(err)
				}
				if _, err := e.eng.Run(core.Spec{Task: core.TaskPAR}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchClusterFormat runs one task on Spark and Hive for a given source.
func benchClusterFormat(b *testing.B, src *meterdata.Source, hiveOpts ...mapreduce.Option) {
	b.Helper()
	fsys := newBenchCluster(b, 4)
	hive := mapreduce.New(fsys, hiveOpts...)
	spark := rdd.New(fsys)
	if _, err := hive.Load(src); err != nil {
		b.Fatal(err)
	}
	if _, err := spark.Load(src); err != nil {
		b.Fatal(err)
	}
	for _, e := range []struct {
		name string
		eng  core.Engine
	}{{"spark", spark}, {"hive", hive}} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.eng.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig13Format1(b *testing.B) {
	benchClusterFormat(b, writeSources(b, meterdata.FormatReadingPerLine, false))
}

func BenchmarkFig16Format2(b *testing.B) {
	benchClusterFormat(b, writeSources(b, meterdata.FormatSeriesPerLine, false))
}

func BenchmarkFig18Format3(b *testing.B) {
	ds := getDataset(b)
	src, err := meterdata.WriteGrouped(b.TempDir(), ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("udtf", func(b *testing.B) {
		benchClusterFormat(b, src, mapreduce.WithStyle(mapreduce.StyleUDTF))
	})
	b.Run("udaf", func(b *testing.B) {
		benchClusterFormat(b, src, mapreduce.WithStyle(mapreduce.StyleUDAF))
	})
}

// BenchmarkFig14NodeSweep measures the same job at two cluster sizes
// (Figures 14/17/19 regenerate the full sweep via cmd/smbench).
func BenchmarkFig14NodeSweep(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	for _, nodes := range []int{2, 4, 8} {
		fsys := newBenchCluster(b, nodes)
		hive := mapreduce.New(fsys)
		if _, err := hive.Load(src); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hive.Run(core.Spec{Task: core.TaskThreeLine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §5.3.2 matrix multiplication ----------------------------------------

func benchMatMul(b *testing.B, optimized bool) {
	const n = 128
	a := stats.NewMatrix(n, n)
	c := stats.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i % 31)
		c.Data[i] = float64(i % 29)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if optimized {
			_, err = a.Mul(c)
		} else {
			_, err = a.MulNaive(c)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulOptimized(b *testing.B) { benchMatMul(b, true) }
func BenchmarkMatMulNaive(b *testing.B)     { benchMatMul(b, false) }

// TestMain keeps the cached dataset across benchmarks and cleans up.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// --- Updates (§3 future work) ---------------------------------------------

func BenchmarkUpdatesAppendDay(b *testing.B) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	delta, err := seed.Generate(seed.Config{Consumers: benchConsumers, Days: 1, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rowstore", func(b *testing.B) {
		eng := rowstore.New(b.TempDir())
		defer eng.Close()
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.AppendDelta(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("colstore", func(b *testing.B) {
		eng := colstore.New(b.TempDir())
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.AppendDelta(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extraction overlap: serial vs prefetch A/B ----------------------------

// extractDataset is larger than benchDataset (200 consumers) so the
// extract stage dominates and the A/B isolates the overlap win rather
// than kernel throughput. Cached across the four variants.
var extractDataset *timeseries.Dataset

func getExtractDataset(b *testing.B) *timeseries.Dataset {
	b.Helper()
	if extractDataset == nil {
		ds, err := seed.Generate(seed.Config{Consumers: 200, Days: benchDays, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		extractDataset = ds
	}
	return extractDataset
}

// benchExtract times cold 3-line runs at 4 workers with the prefetcher
// either live (partitioned cursors, overlapped decode) or pinned off
// (one serial cursor). Neither engine is warmed, so every iteration
// pays the engine-native extraction in full.
func benchExtract(b *testing.B, eng core.Engine, prefetch core.PrefetchMode) {
	spec := core.Spec{Task: core.TaskThreeLine, Workers: 4, Prefetch: prefetch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExtractFilestore(b *testing.B, prefetch core.PrefetchMode) {
	ds := getExtractDataset(b)
	src, err := meterdata.WritePartitioned(b.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		b.Fatal(err)
	}
	eng := filestore.New()
	if _, err := eng.LoadDirect(src); err != nil {
		b.Fatal(err)
	}
	benchExtract(b, eng, prefetch)
}

func benchExtractRowstore(b *testing.B, prefetch core.PrefetchMode) {
	ds := getExtractDataset(b)
	src, err := meterdata.WritePartitioned(b.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		b.Fatal(err)
	}
	eng := rowstore.New(b.TempDir())
	defer eng.Close()
	if _, err := eng.Load(src); err != nil {
		b.Fatal(err)
	}
	benchExtract(b, eng, prefetch)
}

func BenchmarkExtractFilestoreSerial(b *testing.B) {
	benchExtractFilestore(b, core.PrefetchOff)
}

func BenchmarkExtractFilestorePrefetch(b *testing.B) {
	benchExtractFilestore(b, core.PrefetchAuto)
}

func BenchmarkExtractRowstoreSerial(b *testing.B) {
	benchExtractRowstore(b, core.PrefetchOff)
}

func BenchmarkExtractRowstorePrefetch(b *testing.B) {
	benchExtractRowstore(b, core.PrefetchAuto)
}

// --- Streaming (§6 future work) --------------------------------------------

func BenchmarkStreamingThroughput(b *testing.B) {
	ds := getDataset(b)
	profiles, err := stream.TrainProfiles(ds, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := stream.NewProcessor(stream.NewProfileDetector(profiles), 4)
		if err != nil {
			b.Fatal(err)
		}
		events := make(chan stream.Event, 4096)
		alerts := make(chan stream.Alert, 4096)
		go stream.Replay(ds, events)
		done := make(chan error, 1)
		go func() { done <- proc.Run(events, alerts) }()
		for range alerts {
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchConsumers*benchDays*24), "events/op")
}

// --- Scale-up: compressed out-of-core segments --------------------------

// scaleupSize reads the benchmark population from the environment so
// scripts/bench.sh can drive the same code path at CI scale (the 64 x
// 60-day default) and at paper scale (SMARTBENCH_SCALE_CONSUMERS=100000
// SMARTBENCH_SCALE_DAYS=365 for the committed BENCH_scale.json record).
func scaleupSize() (consumers, days int) {
	consumers, days = 64, benchDays
	if v, err := strconv.Atoi(os.Getenv("SMARTBENCH_SCALE_CONSUMERS")); err == nil && v > 0 {
		consumers = v
	}
	if v, err := strconv.Atoi(os.Getenv("SMARTBENCH_SCALE_DAYS")); err == nil && v > 0 {
		days = v
	}
	return consumers, days
}

// scaleupEncoders reads the segment-encode worker count from the
// environment (SMARTBENCH_SCALE_ENCODERS, default 1). The written file
// is byte-identical at any count, so the setting only moves the encode
// wall-clock that the Paged benchmarks report as enc-rows/s.
func scaleupEncoders() int {
	if v, err := strconv.Atoi(os.Getenv("SMARTBENCH_SCALE_ENCODERS")); err == nil && v > 0 {
		return v
	}
	return 1
}

// buildScaleupSegments streams n synthetic consumers into a Wh-quantized
// segment file without materializing the matrix, fanning encoding out
// over the given worker count (1 = serial), and returns the path's
// directory, the raw and stored byte counts and the encode wall time.
func buildScaleupSegments(b *testing.B, n, days, encoders int) (dir string, raw, stored int64, encTime time.Duration) {
	b.Helper()
	seedDS, err := seed.Generate(seed.Config{Consumers: 10, Days: days, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := generator.New(seedDS, generator.Config{Clusters: 4, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	dir = b.TempDir()
	start := time.Now()
	wopts := []colstore.WriterOption{colstore.WithQuantize(3)}
	if encoders > 1 {
		wopts = append(wopts, colstore.WithEncoders(encoders))
	}
	w, err := colstore.NewSegmentWriter(dir+"/"+colstore.SegmentFileName, seedDS.Temperature.Values, wopts...)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, len(seedDS.Temperature.Values))
	for i := 0; i < n; i++ {
		if err := gen.SeriesInto(buf, seedDS.Temperature); err != nil {
			b.Fatal(err)
		}
		if err := w.Append(timeseries.ID(i+1), buf); err != nil {
			b.Fatal(err)
		}
	}
	raw = w.RawBytes()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	encTime = time.Since(start)
	st, err := os.Stat(dir + "/" + colstore.SegmentFileName)
	if err != nil {
		b.Fatal(err)
	}
	return dir, raw, st.Size(), encTime
}

// BenchmarkScaleupPagedThreeLine is the scaleup experiment at benchmark
// scale: 3-line over the paged column store under a quarter-of-raw
// memory budget. Custom metrics report the storage compression ratio,
// the untimed build phase's encode throughput (generate+encode wall, so
// the 1M-consumer run needs no second full encode) and the sustained
// consumer throughput of the measured task.
func BenchmarkScaleupPagedThreeLine(b *testing.B) {
	n, days := scaleupSize()
	encoders := scaleupEncoders()
	dir, raw, stored, encTime := buildScaleupSegments(b, n, days, encoders)
	eng := colstore.New(dir, colstore.WithMemBudget(raw/4))
	if _, err := eng.OpenExisting(); err != nil {
		b.Fatal(err)
	}
	defer eng.Release()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(core.Spec{Task: core.TaskThreeLine, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(raw)/float64(stored), "ratio")
	b.ReportMetric(float64(raw)/(1<<20), "rawMB")
	b.ReportMetric(float64(stored)/(1<<20), "storedMB")
	b.ReportMetric(float64(raw/4)/(1<<20), "budgetMB")
	b.ReportMetric(float64(encoders), "encoders")
	if s := encTime.Seconds(); s > 0 {
		b.ReportMetric(float64(n)/s, "enc-rows/s")
		b.ReportMetric(float64(n*days*24)/s, "enc-readings/s")
	}
	if elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed.Seconds(), "rows/s")
	}
}

// BenchmarkScaleupPagedHistogram measures the compressed-domain
// histogram fast path: block summaries answer most consumers without
// decoding, so throughput should beat the decode-everything baseline.
func BenchmarkScaleupPagedHistogram(b *testing.B) {
	n, days := scaleupSize()
	dir, raw, _, _ := buildScaleupSegments(b, n, days, scaleupEncoders())
	eng := colstore.New(dir, colstore.WithMemBudget(raw/4))
	if _, err := eng.OpenExisting(); err != nil {
		b.Fatal(err)
	}
	defer eng.Release()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(core.Spec{Task: core.TaskHistogram}); err != nil {
			b.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed.Seconds(), "rows/s")
	}
}

// BenchmarkScaleupPagedPAR measures the compressed-domain PAR fast
// path: per-hour sum lanes in the block headers reconstruct most
// consumers' series without touching the compressed payloads, then the
// unchanged PAR kernel runs bit-identically over the result.
func BenchmarkScaleupPagedPAR(b *testing.B) {
	n, days := scaleupSize()
	dir, raw, _, _ := buildScaleupSegments(b, n, days, scaleupEncoders())
	eng := colstore.New(dir, colstore.WithMemBudget(raw/4))
	if _, err := eng.OpenExisting(); err != nil {
		b.Fatal(err)
	}
	defer eng.Release()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(core.Spec{Task: core.TaskPAR, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed.Seconds(), "rows/s")
	}
}

// benchScaleupEncode measures streaming generation + compression
// throughput at a fixed CI-scale population so the serial/parallel pair
// below is a like-for-like A/B of the encode pool.
func benchScaleupEncode(b *testing.B, encoders int) {
	const n = 32
	b.ResetTimer()
	start := time.Now()
	var raw, stored int64
	for i := 0; i < b.N; i++ {
		_, raw, stored, _ = buildScaleupSegments(b, n, benchDays, encoders)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(raw)/float64(stored), "ratio")
	b.ReportMetric(float64(encoders), "encoders")
	if elapsed > 0 {
		b.ReportMetric(float64(n*benchDays*24)*float64(b.N)/elapsed.Seconds(), "readings/s")
	}
}

// BenchmarkScaleupEncodeSerial / BenchmarkScaleupEncodeParallel A/B the
// segment-encode worker pool against the serial writer. The output file
// is byte-identical either way; only wall-clock moves. On a multi-core
// host the parallel side should win roughly linearly in core count
// (>=1.8x at 4 cores); on a 1-CPU host expect parity.
func BenchmarkScaleupEncodeSerial(b *testing.B)   { benchScaleupEncode(b, 1) }
func BenchmarkScaleupEncodeParallel(b *testing.B) { benchScaleupEncode(b, 4) }

// --- Live ingestion: append-driven engines ---------------------------------

// liveBenchEngine is the shape both append-driven engines share.
type liveBenchEngine interface {
	core.Engine
	core.Appender
}

const ingestLiveDays = 3
const ingestWorkers = 4

// benchIngest loads the standard base, then appends ingestLiveDays of
// fresh hour batches through ingestWorkers sharded writers. ns/op is
// the append phase; records/s is the sustained append throughput and
// lagNs the freshness lag — the time from the last append to a
// histogram answer over a read-isolated snapshot of base + tail.
func benchIngest(b *testing.B, mk func(b *testing.B) (liveBenchEngine, func())) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	live, err := seed.Generate(seed.Config{Consumers: benchConsumers, Days: ingestLiveDays, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	baseHours := benchDays * timeseries.HoursPerDay
	liveHours := ingestLiveDays * timeseries.HoursPerDay

	shards := make([][]*timeseries.Series, ingestWorkers)
	for _, s := range live.Series {
		w := core.ShardFor(s.ID, ingestWorkers)
		shards[w] = append(shards[w], s)
	}

	var appendTime, lagTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, done := mk(b)
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, ingestWorkers)
		for w := 0; w < ingestWorkers; w++ {
			wg.Add(1)
			go func(own []*timeseries.Series) {
				defer wg.Done()
				batch := make([]core.Reading, len(own))
				for h := 0; h < liveHours; h++ {
					for j, s := range own {
						batch[j] = core.Reading{
							ID: s.ID, Hour: baseHours + h,
							Consumption: s.Readings[h],
							Temperature: live.Temperature.Values[h],
						}
					}
					if err := eng.Append(batch); err != nil {
						errs <- err
						return
					}
				}
			}(shards[w])
		}
		wg.Wait()
		appendTime += time.Since(start)
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}

		lagStart := time.Now()
		res, _, err := exec.RunSnapshot(context.Background(), eng,
			core.Spec{Task: core.TaskHistogram, Workers: ingestWorkers})
		if err != nil {
			b.Fatal(err)
		}
		lagTime += time.Since(lagStart)
		if len(res.Histograms) != benchConsumers {
			b.Fatalf("snapshot saw %d consumers, want %d", len(res.Histograms), benchConsumers)
		}
		b.StopTimer()
		done()
		b.StartTimer()
	}
	records := float64(liveHours) * float64(benchConsumers) * float64(b.N)
	b.ReportMetric(records/appendTime.Seconds(), "records/s")
	b.ReportMetric(float64(lagTime.Nanoseconds())/float64(b.N), "lagNs")
}

func BenchmarkIngestColstore(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := colstore.New(b.TempDir())
		return eng, func() { _ = eng.Release() }
	})
}

func BenchmarkIngestRowstore(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := rowstore.New(b.TempDir())
		return eng, func() { _ = eng.Close() }
	})
}

// WAL variants of the ingest pair: the same workload acked through the
// CRC-framed write-ahead log, so BENCH_ingest.json records the
// durability cost next to the in-memory baseline. batch fsyncs at
// group commit (the durable default; overhead target <=15% vs the
// no-wal baseline), always fsyncs every append.

func BenchmarkIngestColstoreWALBatch(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := colstore.New(b.TempDir(), colstore.WithWAL(wal.SyncBatch))
		return eng, func() { _ = eng.Release() }
	})
}

func BenchmarkIngestColstoreWALAlways(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := colstore.New(b.TempDir(), colstore.WithWAL(wal.SyncAlways))
		return eng, func() { _ = eng.Release() }
	})
}

func BenchmarkIngestRowstoreWALBatch(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := rowstore.New(b.TempDir(), rowstore.WithWAL(wal.SyncBatch))
		return eng, func() { _ = eng.Close() }
	})
}

func BenchmarkIngestRowstoreWALAlways(b *testing.B) {
	benchIngest(b, func(b *testing.B) (liveBenchEngine, func()) {
		eng := rowstore.New(b.TempDir(), rowstore.WithWAL(wal.SyncAlways))
		return eng, func() { _ = eng.Close() }
	})
}

// crashBenchEngine is an appender that can simulate process death.
type crashBenchEngine interface {
	liveBenchEngine
	Crash()
}

// benchRecovery measures crash-to-first-answer: each iteration loads
// the base, acks a live tail into the write-ahead log, drops every
// handle without flushing, then times reopen + log replay + the first
// histogram over a verified snapshot. replay-records/s is the live tail
// replayed per second of recovery.
func benchRecovery(b *testing.B,
	mk func(dir string) crashBenchEngine,
	reopen func(dir string) (liveBenchEngine, func(), error)) {
	src := writeSources(b, meterdata.FormatReadingPerLine, false)
	live, err := seed.Generate(seed.Config{Consumers: benchConsumers, Days: ingestLiveDays, Seed: 78})
	if err != nil {
		b.Fatal(err)
	}
	baseHours := benchDays * timeseries.HoursPerDay
	liveHours := ingestLiveDays * timeseries.HoursPerDay

	var replayTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		eng := mk(dir)
		if _, err := eng.Load(src); err != nil {
			b.Fatal(err)
		}
		batch := make([]core.Reading, len(live.Series))
		for h := 0; h < liveHours; h++ {
			for j, s := range live.Series {
				batch[j] = core.Reading{
					ID: s.ID, Hour: baseHours + h,
					Consumption: s.Readings[h],
					Temperature: live.Temperature.Values[h],
				}
			}
			if err := eng.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
		eng.Crash()
		b.StartTimer()

		start := time.Now()
		re, done, err := reopen(dir)
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := exec.RunSnapshot(context.Background(), re,
			core.Spec{Task: core.TaskHistogram, Workers: ingestWorkers})
		if err != nil {
			b.Fatal(err)
		}
		replayTime += time.Since(start)
		if len(res.Histograms) != benchConsumers {
			b.Fatalf("recovered snapshot saw %d consumers, want %d", len(res.Histograms), benchConsumers)
		}
		wantTotal := int64(baseHours + liveHours)
		for _, h := range res.Histograms {
			if h.Histogram.Total() != wantTotal {
				b.Fatalf("consumer %d recovered %d readings, want %d", h.ID, h.Histogram.Total(), wantTotal)
			}
		}
		b.StopTimer()
		done()
		b.StartTimer()
	}
	records := float64(liveHours) * float64(benchConsumers) * float64(b.N)
	b.ReportMetric(records/replayTime.Seconds(), "replay-records/s")
}

func BenchmarkRecoveryColstore(b *testing.B) {
	benchRecovery(b,
		func(dir string) crashBenchEngine {
			return colstore.New(dir, colstore.WithWAL(wal.SyncBatch))
		},
		func(dir string) (liveBenchEngine, func(), error) {
			eng := colstore.New(dir, colstore.WithWAL(wal.SyncBatch))
			if _, err := eng.OpenExisting(); err != nil {
				return nil, nil, err
			}
			return eng, func() { _ = eng.Release() }, nil
		})
}

func BenchmarkRecoveryRowstore(b *testing.B) {
	benchRecovery(b,
		func(dir string) crashBenchEngine {
			return rowstore.New(dir, rowstore.WithWAL(wal.SyncBatch))
		},
		func(dir string) (liveBenchEngine, func(), error) {
			eng := rowstore.New(dir, rowstore.WithWAL(wal.SyncBatch))
			if err := eng.Open(); err != nil {
				return nil, nil, err
			}
			return eng, func() { _ = eng.Close() }, nil
		})
}

// BenchmarkFsync measures one small write + fsync on the benchmark
// filesystem. The durable wal modes pay at least one of these per acked
// hour batch, so this number is the floor under their ingest overhead —
// bench.sh records it next to wal_batch_overhead in BENCH_ingest.json.
func BenchmarkFsync(b *testing.B) {
	f, err := os.Create(filepath.Join(b.TempDir(), "fsync-probe"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write(buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}
