package stats

import (
	"math"
	"math/rand"
	"testing"
)

// tol bounds the rounding difference between the unrolled/fused kernels
// and the scalar Dot reference for the vector lengths used here.
const tol = 1e-12

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*4 - 2
	}
	return v
}

// TestDotUncheckedMatchesDot sweeps lengths around the unroll width,
// including 0 and lengths not divisible by 4.
func TestDotUncheckedMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 33; n++ {
		x, y := randVec(rng, n), randVec(rng, n)
		want, err := Dot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := DotUnchecked(x, y); math.Abs(got-want) > tol {
			t.Errorf("n=%d: DotUnchecked = %g, Dot = %g", n, got, want)
		}
	}
}

func TestDot2Dot4MatchDot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 3, 5, 7, 8, 15, 33, 101} {
		q := randVec(rng, n)
		rows := [][]float64{randVec(rng, n), randVec(rng, n), randVec(rng, n), randVec(rng, n)}
		var want [4]float64
		for i, r := range rows {
			w, err := Dot(q, r)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = w
		}
		da, db := Dot2(q, rows[0], rows[1])
		if math.Abs(da-want[0]) > tol || math.Abs(db-want[1]) > tol {
			t.Errorf("n=%d: Dot2 = (%g, %g), want (%g, %g)", n, da, db, want[0], want[1])
		}
		ga, gb, gc, gd := Dot4(q, rows[0], rows[1], rows[2], rows[3])
		for i, g := range []float64{ga, gb, gc, gd} {
			if math.Abs(g-want[i]) > tol {
				t.Errorf("n=%d: Dot4[%d] = %g, want %g", n, i, g, want[i])
			}
		}
	}
}

// TestKernelLanesBitIdentical pins the invariant the symmetric
// similarity engine builds on: every lane of every kernel uses the same
// even/odd accumulation pattern, so a dot product's bits do not depend
// on the argument order or on which fused kernel computed it.
func TestKernelLanesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 7, 8, 61, 101} {
		q := randVec(rng, n)
		rows := [][]float64{randVec(rng, n), randVec(rng, n), randVec(rng, n), randVec(rng, n)}
		want := [4]float64{
			DotUnchecked(q, rows[0]), DotUnchecked(q, rows[1]),
			DotUnchecked(q, rows[2]), DotUnchecked(q, rows[3]),
		}
		ga, gb, gc, gd := Dot4(q, rows[0], rows[1], rows[2], rows[3])
		for i, g := range []float64{ga, gb, gc, gd} {
			if !ExactEqual(g, want[i]) {
				t.Errorf("n=%d: Dot4 lane %d = %g, DotUnchecked = %g", n, i, g, want[i])
			}
		}
		da, db := Dot2(q, rows[0], rows[1])
		if !ExactEqual(da, want[0]) || !ExactEqual(db, want[1]) {
			t.Errorf("n=%d: Dot2 = (%g, %g), DotUnchecked = (%g, %g)", n, da, db, want[0], want[1])
		}
		// Commutativity: swapping the operand order reproduces the bits.
		for i, r := range rows {
			if got := DotUnchecked(r, q); !ExactEqual(got, want[i]) {
				t.Errorf("n=%d: DotUnchecked(r%d, q) = %g, mirrored = %g", n, i, got, want[i])
			}
		}
	}
}

// cosineRef is the scalar reference for one pair, mirroring the
// existing per-pair formula (dot / (|x||y|)).
func cosineRef(t *testing.T, x, y []float64) float64 {
	t.Helper()
	dot, err := Dot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := Norm(x), Norm(y)
	if IsZero(nx) || IsZero(ny) {
		return 0
	}
	return dot / (nx * ny)
}

// TestCosineTileMatchesScalar checks every tile cell against the scalar
// cosine for odd tile shapes (qn/cn not multiples of the unroll widths)
// and lengths not divisible by 4, including a zero-norm row.
func TestCosineTileMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, length := range []int{1, 5, 26, 63} {
		for _, qn := range []int{1, 3, 8} {
			for _, cn := range []int{1, 2, 3, 4, 5, 7, 11} {
				q := randVec(rng, qn*length)
				c := randVec(rng, cn*length)
				// Zero out candidate row 1 (when present) to cover the
				// zero-norm contract: its scores must come out 0.
				if cn > 1 {
					for i := length; i < 2*length; i++ {
						c[i] = 0
					}
				}
				inv := func(rows []float64, n int) []float64 {
					out := make([]float64, n)
					for i := 0; i < n; i++ {
						nm := Norm(rows[i*length : (i+1)*length])
						if !IsZero(nm) {
							out[i] = 1 / nm
						}
					}
					return out
				}
				qInv, cInv := inv(q, qn), inv(c, cn)
				tile := make([]float64, qn*cn)
				CosineTile(tile, q, c, qn, cn, length, qInv, cInv)
				for qi := 0; qi < qn; qi++ {
					for ci := 0; ci < cn; ci++ {
						want := cosineRef(t, q[qi*length:(qi+1)*length], c[ci*length:(ci+1)*length])
						if got := tile[qi*cn+ci]; math.Abs(got-want) > tol {
							t.Errorf("len=%d qn=%d cn=%d tile[%d,%d] = %g, want %g",
								length, qn, cn, qi, ci, got, want)
						}
					}
				}
			}
		}
	}
}

func BenchmarkDotScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randVec(rng, 8760), randVec(rng, 8760)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dot(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSink keeps the optimizer from discarding benchmark results.
var benchSink float64

func BenchmarkDotUnchecked(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randVec(rng, 8760), randVec(rng, 8760)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = DotUnchecked(x, y)
	}
}

func BenchmarkDot4(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := randVec(rng, 8760)
	c := randVec(rng, 4*8760)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d0, d1, d2, d3 := Dot4(q, c[:8760], c[8760:2*8760], c[2*8760:3*8760], c[3*8760:])
		benchSink = d0 + d1 + d2 + d3
	}
}
