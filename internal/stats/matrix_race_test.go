package stats

import (
	"math/rand"
	"testing"
)

// TestMulParallelRace is the race-regression test for the blocked
// parallel multiply (matrix.go): workers own disjoint row ranges of the
// output. The exact comparison against MulNaive holds because both
// kernels accumulate over k in ascending order, so the floating-point
// operation order per cell is identical.
func TestMulParallelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatrix(130, 70)
	o := NewMatrix(70, 90)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	for i := range o.Data {
		o.Data[i] = rng.NormFloat64()
	}
	want, err := m.MulNaive(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Mul(o)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := want.MaxAbsDiff(got)
	if err != nil {
		t.Fatal(err)
	}
	if !IsZero(diff) {
		t.Errorf("parallel multiply differs from naive by %g", diff)
	}
}
