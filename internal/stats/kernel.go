// Blocked similarity kernels. The top-k similarity task (paper §3.4,
// §5.3.4) is the benchmark's O(n²) stress test, and its inner loop is a
// long float64 dot product. The scalar Dot in vector.go carries a
// loop-borne dependency — one add every float-add latency — so the
// kernels here break the chain with independent accumulators and fuse
// several candidate rows per pass over the query row, turning the scan
// from pointer-chased scalar math into a register-tiled block sweep
// over a contiguous matrix (see timeseries.FlatMatrix).
//
// All kernels are *unchecked*: callers guarantee the rows have equal
// length (the similarity layer validates the dataset once up front).
//
// Every lane of every kernel uses the same accumulation pattern — one
// accumulator for even indices, one for odd, the odd-length tail folded
// into the even accumulator, reduced as even+odd. Because float64
// multiplication is commutative, a dot product's bits therefore depend
// only on the two rows involved, not on their order or on which fused
// kernel produced it. The symmetric similarity engine relies on this:
// it computes each unordered pair once and mirrors the score. The
// kernels still round differently from the scalar Dot in vector.go
// (single accumulator), so cross-checking against it needs a tolerance.
package stats

// DotUnchecked returns the dot product of x and y with the canonical
// even/odd two-accumulator pattern shared by all kernel lanes. len(y)
// must be >= len(x); only the first len(x) elements participate.
func DotUnchecked(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
	}
	if i < n {
		s0 += x[i] * y[i]
	}
	return s0 + s1
}

// Dot2 computes the dot products of one query row q against two
// candidate rows a and b in a single pass, so each loaded q element is
// used twice while hot in registers. All rows must have length >=
// len(q). Each lane accumulates exactly like DotUnchecked.
func Dot2(q, a, b []float64) (da, db float64) {
	n := len(q)
	a, b = a[:n], b[:n]
	var a0, a1, b0, b1 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		q0, q1 := q[i], q[i+1]
		a0 += q0 * a[i]
		a1 += q1 * a[i+1]
		b0 += q0 * b[i]
		b1 += q1 * b[i+1]
	}
	if i < n {
		q0 := q[i]
		a0 += q0 * a[i]
		b0 += q0 * b[i]
	}
	return a0 + a1, b0 + b1
}

// Dot4 computes the dot products of one query row q against four
// candidate rows in a single pass — the widest fused kernel: eight
// accumulators of independent multiply-adds per iteration, with the
// query row read once for all four candidates. Each lane accumulates
// exactly like DotUnchecked.
func Dot4(q, a, b, c, d []float64) (da, db, dc, dd float64) {
	n := len(q)
	a, b, c, d = a[:n], b[:n], c[:n], d[:n]
	var a0, a1, b0, b1, c0, c1, d0, d1 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		q0, q1 := q[i], q[i+1]
		a0 += q0 * a[i]
		a1 += q1 * a[i+1]
		b0 += q0 * b[i]
		b1 += q1 * b[i+1]
		c0 += q0 * c[i]
		c1 += q1 * c[i+1]
		d0 += q0 * d[i]
		d1 += q1 * d[i+1]
	}
	if i < n {
		q0 := q[i]
		a0 += q0 * a[i]
		b0 += q0 * b[i]
		c0 += q0 * c[i]
		d0 += q0 * d[i]
	}
	return a0 + a1, b0 + b1, c0 + c1, d0 + d1
}

// CosineTile fills a qn x cn score tile with cosine similarities
// between qn query rows and cn candidate rows:
//
//	tile[qi*cn+ci] = Dot(Q[qi], C[ci]) * (qInv[qi] * cInv[ci])
//
// q and c are row-major buffers of qn (resp. cn) rows of the given
// length; qInv and cInv hold per-row inverse norms, with 0 standing in
// for a zero-norm row so its scores come out 0. Candidates are swept in
// groups of four (Dot4, then Dot2/DotUnchecked for the remainder) with
// the group's rows reused across every query row while cache-hot.
//
// Because all kernel lanes share one accumulation pattern and the
// inverse norms are multiplied together before scaling the dot, a
// pair's score is a pure function of the two rows: swapping the query
// and candidate sides, or regrouping either side, reproduces it bit for
// bit.
func CosineTile(tile, q, c []float64, qn, cn, length int, qInv, cInv []float64) {
	cj := 0
	for ; cj+4 <= cn; cj += 4 {
		c0 := c[cj*length : (cj+1)*length]
		c1 := c[(cj+1)*length : (cj+2)*length]
		c2 := c[(cj+2)*length : (cj+3)*length]
		c3 := c[(cj+3)*length : (cj+4)*length]
		for qi := 0; qi < qn; qi++ {
			row := q[qi*length : (qi+1)*length]
			d0, d1, d2, d3 := Dot4(row, c0, c1, c2, c3)
			f := qInv[qi]
			t := tile[qi*cn+cj : qi*cn+cj+4]
			t[0] = d0 * (f * cInv[cj])
			t[1] = d1 * (f * cInv[cj+1])
			t[2] = d2 * (f * cInv[cj+2])
			t[3] = d3 * (f * cInv[cj+3])
		}
	}
	if cj+2 <= cn {
		c0 := c[cj*length : (cj+1)*length]
		c1 := c[(cj+1)*length : (cj+2)*length]
		for qi := 0; qi < qn; qi++ {
			row := q[qi*length : (qi+1)*length]
			d0, d1 := Dot2(row, c0, c1)
			f := qInv[qi]
			tile[qi*cn+cj] = d0 * (f * cInv[cj])
			tile[qi*cn+cj+1] = d1 * (f * cInv[cj+1])
		}
		cj += 2
	}
	if cj < cn {
		c0 := c[cj*length : (cj+1)*length]
		for qi := 0; qi < qn; qi++ {
			row := q[qi*length : (qi+1)*length]
			tile[qi*cn+cj] = DotUnchecked(row, c0) * (qInv[qi] * cInv[cj])
		}
	}
}
