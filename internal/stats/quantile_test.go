package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4}, // type-7 interpolation: pos = 0.4
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmptyInput {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0: want error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1: want error")
	}
	if _, err := Quantiles(nil, 0.5); err != ErrEmptyInput {
		t.Error("Quantiles empty: want error")
	}
	if _, err := Quantiles([]float64{1}, 2); err == nil {
		t.Error("Quantiles out of range: want error")
	}
	if _, err := QuantileSorted(nil, 0.5); err != ErrEmptyInput {
		t.Error("QuantileSorted empty: want error")
	}
	if _, err := QuantileSorted([]float64{1}, 7); err == nil {
		t.Error("QuantileSorted bad q: want error")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	for _, q := range []float64{0, 0.3, 1} {
		got, err := Quantile([]float64{42}, q)
		if err != nil || got != 42 {
			t.Errorf("Quantile single (%g) = %g, %v", q, got, err)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantilesMatchSingleCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 50
	}
	qs := []float64{0.1, 0.9, 0.5, 0}
	multi, err := Quantiles(xs, qs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, _ := Quantile(xs, q)
		if multi[i] != single {
			t.Errorf("Quantiles[%g] = %g, Quantile = %g", q, multi[i], single)
		}
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil || m != 5 {
		t.Errorf("Median = %g, %v", m, err)
	}
	m, _ = Median([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Errorf("even Median = %g, want 2.5", m)
	}
}

// Properties: monotone in q, bounded by min/max, and exact on order
// statistics for evenly spaced q.
func TestQuantilePropertiesQuick(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		frac := func(x float64) float64 {
			x = math.Abs(x)
			return x - math.Floor(x)
		}
		a, b := frac(q1), frac(q2)
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(clean, a)
		vb, err2 := Quantile(clean, b)
		if err1 != nil || err2 != nil {
			return false
		}
		min, max, _ := MinMax(clean)
		return va <= vb+1e-9 && va >= min-1e-9 && vb <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSortedAgreesWithQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 57)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for q := 0.0; q <= 1.0; q += 0.05 {
		a, _ := Quantile(xs, q)
		b, _ := QuantileSorted(sorted, q)
		if a != b {
			t.Fatalf("q=%g: %g vs %g", q, a, b)
		}
	}
}
