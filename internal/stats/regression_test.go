package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9}
	l, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Slope, 2, 1e-12) || !almostEqual(l.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", l)
	}
	if !almostEqual(l.At(10), 21, 1e-12) {
		t.Errorf("At(10) = %g", l.At(10))
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 40
		y[i] = -1.5*x[i] + 7 + rng.NormFloat64()*0.5
	}
	l, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope+1.5) > 0.05 || math.Abs(l.Intercept-7) > 0.5 {
		t.Errorf("noisy fit = %+v", l)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: want error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	_, err := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("constant x err = %v, want ErrSingular", err)
	}
}

func TestWeightedLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 2, 4, 100} // last point is an outlier
	w := []float64{1, 1, 1, 0}   // ...with zero weight
	l, err := WeightedLinearFit(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Slope, 2, 1e-9) || !almostEqual(l.Intercept, 0, 1e-9) {
		t.Errorf("weighted fit = %+v", l)
	}
	if _, err := WeightedLinearFit(x, y, []float64{1, 1, 1, -1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := WeightedLinearFit(x, y, []float64{0, 0, 0, 0}); err == nil {
		t.Error("zero weights: want error")
	}
	if _, err := WeightedLinearFit(x, y[:2], w); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestRegressRecoverstKnownModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	// y = 3*x0 - 2*x1 + 0.5*x2 + 4 + noise
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.NormFloat64(), rng.Float64()}
		y[i] = 3*X[i][0] - 2*X[i][1] + 0.5*X[i][2] + 4 + rng.NormFloat64()*0.1
	}
	m, err := Regress(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for j, c := range want {
		if math.Abs(m.Coef[j]-c) > 0.05 {
			t.Errorf("coef[%d] = %g, want %g", j, m.Coef[j], c)
		}
	}
	if math.Abs(m.Intercept-4) > 0.1 {
		t.Errorf("intercept = %g, want 4", m.Intercept)
	}
	if m.R2 < 0.99 {
		t.Errorf("R2 = %g, want ~1", m.R2)
	}
	pred, err := m.Predict([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-(3-2+0.5+4)) > 0.2 {
		t.Errorf("Predict = %g", pred)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("Predict wrong arity: want error")
	}
}

func TestRegressExactFitR2IsOne(t *testing.T) {
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {0, 0}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 2*row[0] + 3*row[1] + 1
	}
	m, err := Regress(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.R2, 1, 1e-9) {
		t.Errorf("R2 = %g, want 1", m.R2)
	}
}

func TestRegressErrors(t *testing.T) {
	if _, err := Regress(nil, nil); err != ErrEmptyInput {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Regress([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch: want error")
	}
	if _, err := Regress([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := Regress([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("zero regressors: want error")
	}
	if _, err := Regress([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("n <= p: want error")
	}
	// Collinear regressors are singular.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	_, err := Regress(X, []float64{1, 2, 3, 4})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("collinear err = %v, want ErrSingular", err)
	}
}

// Property: regression on (x, a*x+b) recovers slope a and intercept b.
func TestLinearFitExactRecoveryQuick(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e3 {
			return true
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e3 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*100 - 50
			y[i] = a*x[i] + b
		}
		l, err := LinearFit(x, y)
		if errors.Is(err, ErrSingular) {
			return true // pathological draw
		}
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(a) + math.Abs(b))
		return almostEqual(l.Slope, a, tol) && almostEqual(l.Intercept, b, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: multiple regression with one regressor agrees with LinearFit.
func TestRegressMatchesLinearFitQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		X := make([][]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 10
			y[i] = 2.5*x[i] - 1 + rng.NormFloat64()
			X[i] = []float64{x[i]}
		}
		l, err1 := LinearFit(x, y)
		m, err2 := Regress(X, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(l.Slope, m.Coef[0], 1e-6) && almostEqual(l.Intercept, m.Intercept, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
