package stats

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At = %g", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row = %v", row)
	}
	row[0] = 5 // views share storage
	if m.At(1, 0) != 5 {
		t.Error("Row is not a view")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j))
		}
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 31, 23}, {64, 64, 64}, {100, 70, 130}} {
		a := randomMatrix(rng, dims[0], dims[1])
		b := randomMatrix(rng, dims[1], dims[2])
		want, err := a.MulNaive(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		d, err := want.MaxAbsDiff(got)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Errorf("dims %v: blocked vs naive diff = %g", dims, d)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomMatrix(rng, 9, 9)
	id := NewMatrix(9, 9)
	for i := 0; i < 9; i++ {
		id.Set(i, i, 1)
	}
	got, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.MaxAbsDiff(got)
	if d != 0 {
		t.Errorf("A*I != A, diff %g", d)
	}
}

func TestMulShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("shape mismatch Mul: want error")
	}
	if _, err := a.MulNaive(b); err == nil {
		t.Error("shape mismatch MulNaive: want error")
	}
	if _, err := a.MaxAbsDiff(NewMatrix(1, 1)); err == nil {
		t.Error("shape mismatch MaxAbsDiff: want error")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := a.Solve([]float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 1
		a := randomMatrix(rng, n, n)
		// Diagonally dominate to guarantee non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * want[j]
			}
		}
		got, err := a.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial pivot position; solvable only with row swaps.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := a.Solve([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.Solve([]float64{1, 2}); err == nil {
		t.Error("non-square: want error")
	}
	sq := NewMatrix(2, 2)
	if _, err := sq.Solve([]float64{1}); err == nil {
		t.Error("b length mismatch: want error")
	}
	// Singular matrix.
	s := NewMatrix(2, 2)
	s.Set(0, 0, 1)
	s.Set(0, 1, 2)
	s.Set(1, 0, 2)
	s.Set(1, 1, 4)
	if _, err := s.Solve([]float64{1, 2}); err == nil {
		t.Error("singular: want error")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 2)
	orig := a.Clone()
	b := []float64{8, 4}
	if _, err := a.Solve(b); err != nil {
		t.Fatal(err)
	}
	if d, _ := a.MaxAbsDiff(orig); d != 0 {
		t.Error("Solve mutated the matrix")
	}
	if b[0] != 8 || b[1] != 4 {
		t.Error("Solve mutated b")
	}
}
