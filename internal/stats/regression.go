package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a regression design matrix is rank
// deficient (e.g. all x values identical).
var ErrSingular = errors.New("stats: singular system")

// Line is a fitted simple linear model y = Slope*x + Intercept.
type Line struct {
	Slope, Intercept float64
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }

// LinearFit fits a least-squares line to the points (x[i], y[i]).
// It requires at least two points and non-constant x.
func LinearFit(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	if len(x) < 2 {
		return Line{}, fmt.Errorf("stats: need >= 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i, xv := range x {
		sx += xv
		sy += y[i]
		sxx += xv * xv
		sxy += xv * y[i]
	}
	den := n*sxx - sx*sx
	if IsZero(den) || math.Abs(den) < 1e-12*math.Abs(n*sxx) {
		return Line{}, fmt.Errorf("%w: constant regressor", ErrSingular)
	}
	slope := (n*sxy - sx*sy) / den
	return Line{Slope: slope, Intercept: (sy - slope*sx) / n}, nil
}

// WeightedLinearFit fits a weighted least-squares line. Weights must be
// non-negative and sum to a positive value.
func WeightedLinearFit(x, y, w []float64) (Line, error) {
	if len(x) != len(y) || len(x) != len(w) {
		return Line{}, ErrLengthMismatch
	}
	if len(x) < 2 {
		return Line{}, fmt.Errorf("stats: need >= 2 points, got %d", len(x))
	}
	var sw, sx, sy, sxx, sxy float64
	for i, xv := range x {
		wi := w[i]
		if wi < 0 {
			return Line{}, fmt.Errorf("stats: negative weight %g", wi)
		}
		sw += wi
		sx += wi * xv
		sy += wi * y[i]
		sxx += wi * xv * xv
		sxy += wi * xv * y[i]
	}
	if sw <= 0 {
		return Line{}, fmt.Errorf("stats: weights sum to %g", sw)
	}
	den := sw*sxx - sx*sx
	if IsZero(den) {
		return Line{}, fmt.Errorf("%w: constant regressor", ErrSingular)
	}
	slope := (sw*sxy - sx*sy) / den
	return Line{Slope: slope, Intercept: (sy - slope*sx) / sw}, nil
}

// LinearModel is a fitted multiple linear regression
// y = Coef[0]*x0 + ... + Coef[p-1]*x(p-1) + Intercept.
type LinearModel struct {
	Coef      []float64
	Intercept float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// Predict evaluates the model at the regressor vector x.
func (m *LinearModel) Predict(x []float64) (float64, error) {
	if len(x) != len(m.Coef) {
		return 0, fmt.Errorf("%w: model has %d coefficients, got %d regressors",
			ErrLengthMismatch, len(m.Coef), len(x))
	}
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y, nil
}

// Regress fits a multiple linear regression of y on the rows of X by
// solving the normal equations with partial-pivot Gaussian elimination.
// Each X[i] is one observation's regressor vector; all rows must have the
// same length p >= 1 and there must be more than p observations.
func Regress(X [][]float64, y []float64) (*LinearModel, error) {
	n := len(X)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	if n != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrLengthMismatch, n, len(y))
	}
	p := len(X[0])
	if p == 0 {
		return nil, fmt.Errorf("stats: zero regressors")
	}
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrLengthMismatch, i, len(row), p)
		}
	}
	if n <= p {
		return nil, fmt.Errorf("stats: need more than %d observations, got %d", p, n)
	}

	// Build the (p+1)x(p+1) normal-equation system including an intercept
	// column: A = Z'Z, b = Z'y where Z = [X | 1].
	d := p + 1
	a := NewMatrix(d, d)
	b := make([]float64, d)
	for i := 0; i < n; i++ {
		row := X[i]
		for j := 0; j < p; j++ {
			zj := row[j]
			for k := j; k < p; k++ {
				a.Set(j, k, a.At(j, k)+zj*row[k])
			}
			a.Set(j, p, a.At(j, p)+zj)
			b[j] += zj * y[i]
		}
		a.Set(p, p, a.At(p, p)+1)
		b[p] += y[i]
	}
	// Mirror the upper triangle.
	for j := 0; j < d; j++ {
		for k := j + 1; k < d; k++ {
			a.Set(k, j, a.At(j, k))
		}
	}

	coef, err := a.Solve(b)
	if err != nil {
		return nil, err
	}
	m := &LinearModel{Coef: coef[:p], Intercept: coef[p]}

	// R² on the training data.
	ybar, _ := Mean(y)
	var ssTot, ssRes float64
	for i := 0; i < n; i++ {
		pred, _ := m.Predict(X[i])
		r := y[i] - pred
		ssRes += r * r
		dy := y[i] - ybar
		ssTot += dy * dy
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	return m, nil
}
