// Package stats provides the statistical kernels used throughout the
// smart meter benchmark: vector arithmetic, equi-width histograms, exact
// quantiles, ordinary least squares (simple and multiple), dense matrices,
// and streaming moments.
//
// All functions are deterministic and allocation-conscious; they form the
// "hand-written operators" layer that the paper's System C implementation
// required, and the building blocks for every analytics task.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptyInput is returned by kernels that require at least one sample.
var ErrEmptyInput = errors.New("stats: empty input")

// ErrLengthMismatch is returned when paired vectors differ in length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Sum returns the sum of xs. It returns 0 for an empty slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Dot returns the dot product of x and y.
func Dot(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s, nil
}

// Norm returns the Euclidean (L2) norm of x.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptyInput
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// A single sample has variance 0.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Scale multiplies every element of xs by c in place and returns xs.
func Scale(xs []float64, c float64) []float64 {
	for i := range xs {
		xs[i] *= c
	}
	return xs
}

// AddTo adds src to dst element-wise in place. The slices must have the
// same length.
func AddTo(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(dst), len(src))
	}
	for i, v := range src {
		dst[i] += v
	}
	return nil
}

// Moments is a streaming mean/variance accumulator using Welford's
// algorithm. The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples added.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (0 if no samples).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 if fewer than 2 samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
}
