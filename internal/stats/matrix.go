package stats

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix. It backs the regression
// solver and the §5.3.2 matrix-multiplication micro-benchmark that the
// paper uses to compare Matlab's optimized kernels against System C's
// hand-written ones.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values in row-major order.
	Data []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulNaive returns m*o using the textbook triple loop (the "hand-written
// operator in a low-level language" baseline).
func (m *Matrix) MulNaive(o *Matrix) (*Matrix, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("stats: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if IsZero(a) {
				continue
			}
			ok := o.Row(k)
			for j := range oi {
				oi[j] += a * ok[j]
			}
		}
	}
	return out, nil
}

// Mul returns m*o using a cache-blocked, parallel kernel (the "optimized
// vendor library" analogue of Matlab's BLAS-backed multiply).
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("stats: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := NewMatrix(m.Rows, o.Cols)
	const block = 64
	workers := runtime.GOMAXPROCS(0)
	if workers > m.Rows {
		workers = m.Rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rowsPer := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ii := lo; ii < hi; ii += block {
				iMax := ii + block
				if iMax > hi {
					iMax = hi
				}
				for kk := 0; kk < m.Cols; kk += block {
					kMax := kk + block
					if kMax > m.Cols {
						kMax = m.Cols
					}
					for i := ii; i < iMax; i++ {
						mi := m.Row(i)
						oi := out.Row(i)
						for k := kk; k < kMax; k++ {
							a := mi[k]
							ok := o.Row(k)
							for j := range oi {
								oi[j] += a * ok[j]
							}
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// Solve solves the linear system m*x = b with partial-pivot Gaussian
// elimination. m must be square and is not modified.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, fmt.Errorf("stats: Solve requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: matrix is %dx%d but b has %d entries", ErrLengthMismatch, n, n, len(b))
	}
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, best, col)
		}
		if pivot != col {
			pr, cr := a.Row(pivot), a.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if IsZero(f) {
				continue
			}
			rr, cr := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := a.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x, nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and o, for testing numerical kernels against each other.
func (m *Matrix) MaxAbsDiff(o *Matrix) (float64, error) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return 0, fmt.Errorf("stats: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	var d float64
	for i, v := range m.Data {
		if a := math.Abs(v - o.Data[i]); a > d {
			d = a
		}
	}
	return d, nil
}
