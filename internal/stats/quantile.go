package stats

import (
	"fmt"
	"sort"
)

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the default in
// R, NumPy and Matlab's quantile). The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Quantiles returns multiple quantiles of xs with a single sort. The qs
// need not be ordered. The input is not modified.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmptyInput
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: quantile %g out of [0,1]", q)
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// QuantileSorted is like Quantile but assumes xs is already sorted
// ascending, avoiding the copy and sort.
func QuantileSorted(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmptyInput
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }
