package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := NewHistogram(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 0 || h.Max != 10 {
		t.Fatalf("range = [%g, %g]", h.Min, h.Max)
	}
	if got := h.Total(); got != int64(len(xs)) {
		t.Errorf("Total = %d, want %d", got, len(xs))
	}
	// Values 0..9 land in buckets 0..9; 10 == Max lands in the last bucket.
	want := []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
			break
		}
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 10); err != ErrEmptyInput {
		t.Errorf("empty input err = %v", err)
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero buckets: want error")
	}
	if _, err := NewHistogramRange([]float64{1}, 10, 5, 1); err == nil {
		t.Error("inverted range: want error")
	}
}

func TestHistogramConstantInput(t *testing.T) {
	h, err := NewHistogram([]float64{3, 3, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("constant input: counts = %v", h.Counts)
	}
	if h.BucketWidth() != 0 {
		t.Errorf("width = %g, want 0", h.BucketWidth())
	}
}

func TestHistogramRangeClamping(t *testing.T) {
	h, err := NewHistogramRange([]float64{-5, 0.5, 99}, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("clamping: counts = %v", h.Counts)
	}
}

func TestHistogramEdges(t *testing.T) {
	h, _ := NewHistogramRange(nil, 4, 0, 8)
	edges := h.Edges()
	want := []float64{0, 2, 4, 6, 8}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %g, want %g", i, edges[i], want[i])
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogramRange([]float64{1, 2}, 5, 0, 10)
	b, _ := NewHistogramRange([]float64{3, 9}, 5, 0, 10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 {
		t.Errorf("merged total = %d", a.Total())
	}
	c, _ := NewHistogramRange(nil, 4, 0, 10)
	if err := a.Merge(c); err == nil {
		t.Error("shape mismatch merge: want error")
	}
}

func TestHistogramModeEntropy(t *testing.T) {
	h, _ := NewHistogramRange([]float64{1, 1, 1, 9}, 10, 0, 10)
	b, c := h.Mode()
	if b != 1 || c != 3 {
		t.Errorf("Mode = (%d, %d)", b, c)
	}
	if e := h.Entropy(); e <= 0 {
		t.Errorf("Entropy = %g, want > 0", e)
	}
	empty, _ := NewHistogramRange(nil, 10, 0, 10)
	if e := empty.Entropy(); e != 0 {
		t.Errorf("empty entropy = %g", e)
	}
	uniform, _ := NewHistogramRange([]float64{0.5, 1.5, 2.5, 3.5}, 4, 0, 4)
	if e := uniform.Entropy(); !almostEqual(e, math.Log(4), 1e-12) {
		t.Errorf("uniform entropy = %g, want ln 4", e)
	}
}

// Property: every sample is counted exactly once, regardless of the data.
func TestHistogramTotalConservationQuick(t *testing.T) {
	f := func(vals []float64, nb uint8) bool {
		buckets := int(nb%20) + 1
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		h, err := NewHistogram(clean, buckets)
		if err != nil {
			return false
		}
		return h.Total() == int64(len(clean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: bucket counts are permutation-invariant.
func TestHistogramPermutationInvariantQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		h1, err := NewHistogram(xs, 10)
		if err != nil {
			t.Fatal(err)
		}
		rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		h2, _ := NewHistogram(xs, 10)
		for i := range h1.Counts {
			if h1.Counts[i] != h2.Counts[i] {
				t.Fatalf("trial %d: permutation changed histogram: %v vs %v", trial, h1.Counts, h2.Counts)
			}
		}
	}
}
