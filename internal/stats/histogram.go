package stats

import (
	"fmt"
	"math"
)

// Histogram is an equi-width histogram over a fixed [Min, Max] range.
// The benchmark always uses 10 buckets (see paper §3.1), but the type is
// general.
type Histogram struct {
	// Min and Max delimit the covered range. Values equal to Max fall in
	// the last bucket.
	Min, Max float64
	// Counts holds one frequency per bucket.
	Counts []int64
}

// NewHistogram builds an equi-width histogram with the given number of
// buckets from xs. The range is [min(xs), max(xs)]. If all values are
// equal, every sample lands in the first bucket and the width is zero.
func NewHistogram(xs []float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: buckets must be positive, got %d", buckets)
	}
	if len(xs) == 0 {
		return nil, ErrEmptyInput
	}
	min, max, _ := MinMax(xs)
	h := &Histogram{Min: min, Max: max, Counts: make([]int64, buckets)}
	for _, x := range xs {
		h.Counts[h.Bucket(x)]++
	}
	return h, nil
}

// NewHistogramRange builds an equi-width histogram over an explicit
// [min, max] range. Values outside the range are clamped into the first or
// last bucket, which lets many histograms share comparable bucket edges.
func NewHistogramRange(xs []float64, buckets int, min, max float64) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: buckets must be positive, got %d", buckets)
	}
	if max < min {
		return nil, fmt.Errorf("stats: invalid range [%g, %g]", min, max)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int64, buckets)}
	for _, x := range xs {
		h.Counts[h.Bucket(x)]++
	}
	return h, nil
}

// Bucket returns the bucket index x falls into. It is monotone
// non-decreasing in x: compressed-domain fast paths rely on
// Bucket(min) == Bucket(max) implying every value in [min, max] shares
// that bucket, so AddN from a block summary is exact.
func (h *Histogram) Bucket(x float64) int {
	n := len(h.Counts)
	if h.Max <= h.Min {
		return 0
	}
	if x <= h.Min {
		return 0
	}
	if x >= h.Max {
		return n - 1
	}
	frac := (x - h.Min) / (h.Max - h.Min)
	if math.IsNaN(frac) { // Inf/Inf when the range itself overflows
		return 0
	}
	b := int(frac * float64(n))
	if b < 0 {
		return 0
	}
	if b >= n { // guard against floating point edge
		b = n - 1
	}
	return b
}

// Add incorporates a single value.
func (h *Histogram) Add(x float64) { h.Counts[h.Bucket(x)]++ }

// AddN incorporates n occurrences of x in one step. Combined with the
// Bucket monotonicity contract it lets a whole stored block be counted
// from its (min, max, count) summary without decoding.
func (h *Histogram) AddN(x float64, n int64) { h.Counts[h.Bucket(x)] += n }

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketWidth returns the width of each bucket (0 when Min == Max).
func (h *Histogram) BucketWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Edges returns the len(Counts)+1 bucket boundaries.
func (h *Histogram) Edges() []float64 {
	n := len(h.Counts)
	edges := make([]float64, n+1)
	w := h.BucketWidth()
	for i := 0; i <= n; i++ {
		edges[i] = h.Min + float64(i)*w
	}
	edges[n] = h.Max // avoid accumulated rounding
	return edges
}

// Merge adds the counts of o into h. The histograms must have identical
// range and bucket count.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Counts) != len(o.Counts) || !ExactEqual(h.Min, o.Min) || !ExactEqual(h.Max, o.Max) {
		return fmt.Errorf("stats: cannot merge histograms with different shapes")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Mode returns the index of the most populated bucket (lowest index wins
// ties) and its count.
func (h *Histogram) Mode() (bucket int, count int64) {
	for i, c := range h.Counts {
		if c > count {
			bucket, count = i, c
		}
	}
	return bucket, count
}

// Entropy returns the Shannon entropy (nats) of the bucket distribution,
// a convenient single-number summary of consumption variability.
func (h *Histogram) Entropy() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var e float64
	for _, c := range h.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(t)
		e -= p * math.Log(p)
	}
	return e
}
