package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{1.5}, 1.5},
		{[]float64{1, 2, 3, 4}, 10},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Sum(c.in); got != c.want {
			t.Errorf("Sum(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmptyInput {
		t.Fatalf("Mean(nil) err = %v, want ErrEmptyInput", err)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Errorf("Mean = %g, want 4", m)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Dot length mismatch: want error")
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
	if _, _, err := MinMax(nil); err != ErrEmptyInput {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7.0)
	}
	s, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", s)
	}
	if v, _ := Variance([]float64{42}); v != 0 {
		t.Errorf("Variance(single) = %g, want 0", v)
	}
}

func TestScaleAddTo(t *testing.T) {
	xs := []float64{1, 2}
	Scale(xs, 3)
	if xs[0] != 3 || xs[1] != 6 {
		t.Errorf("Scale = %v", xs)
	}
	if err := AddTo(xs, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 4 || xs[1] != 7 {
		t.Errorf("AddTo = %v", xs)
	}
	if err := AddTo(xs, []float64{1}); err == nil {
		t.Error("AddTo mismatch: want error")
	}
}

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var m Moments
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		m.Add(xs[i])
	}
	wantMean, _ := Mean(xs)
	wantVar, _ := Variance(xs)
	if !almostEqual(m.Mean(), wantMean, 1e-9) {
		t.Errorf("streaming mean %g vs batch %g", m.Mean(), wantMean)
	}
	if !almostEqual(m.Variance(), wantVar, 1e-9) {
		t.Errorf("streaming var %g vs batch %g", m.Variance(), wantVar)
	}
	if m.N() != 1000 {
		t.Errorf("N = %d", m.N())
	}
}

func TestMomentsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Moments
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) || !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merge: mean %g/%g var %g/%g", a.Mean(), all.Mean(), a.Variance(), all.Variance())
	}
	// Merging into an empty accumulator copies.
	var empty Moments
	empty.Merge(all)
	if empty.N() != all.N() || empty.Mean() != all.Mean() {
		t.Error("merge into empty lost state")
	}
	// Merging an empty accumulator is a no-op.
	before := all
	all.Merge(Moments{})
	if all != before {
		t.Error("merge of empty changed state")
	}
}

// Property: mean is translation-equivariant and scale-equivariant.
func TestMeanPropertyQuick(t *testing.T) {
	f := func(vals []float64, shift float64) bool {
		if len(vals) == 0 {
			return true
		}
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 || math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		m1, _ := Mean(clean)
		shifted := make([]float64, len(clean))
		for i, v := range clean {
			shifted[i] = v + shift
		}
		m2, _ := Mean(shifted)
		return almostEqual(m2, m1+shift, 1e-6*(1+math.Abs(m1)+math.Abs(shift)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant.
func TestVarianceTranslationInvariantQuick(t *testing.T) {
	f := func(vals []float64, shift float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e4 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) < 2 || math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e4 {
			return true
		}
		v1, _ := Variance(clean)
		shifted := make([]float64, len(clean))
		for i, v := range clean {
			shifted[i] = v + shift
		}
		v2, _ := Variance(shifted)
		return almostEqual(v1, v2, 1e-5*(1+v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<x,y>| <= ||x|| * ||y||.
func TestDotCauchySchwarzQuick(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		if n == 0 {
			return true
		}
		x, y := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := raw[i], raw[n+i]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
				a = 0
			}
			if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
				b = 0
			}
			x[i], y[i] = a, b
		}
		d, err := Dot(x, y)
		if err != nil {
			return false
		}
		return math.Abs(d) <= Norm(x)*Norm(y)*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
