// Float comparison helpers. This file is the one place in the
// repository allowed to compare floating-point values with == or !=
// (enforced by cmd/smlint's floatcmp analyzer): every other comparison
// must state its intent by going through these helpers, so each exact
// comparison in a numeric kernel is an audited decision rather than an
// accident.
package stats

import "math"

// DefaultTol is the absolute tolerance used by benchmark kernels when a
// caller has no better problem-specific bound.
const DefaultTol = 1e-9

// IsZero reports whether x is exactly zero. Use it for divide-by-zero
// guards and "field left unset" config defaulting, where only the exact
// value matters and a tolerance would change semantics.
func IsZero(x float64) bool {
	return x == 0
}

// ExactEqual reports whether a and b are exactly equal. Use it where
// identity of copied (not recomputed) values is the point: histogram
// shape checks, deterministic tie-breaks, sentinel tests. NaN compares
// unequal to everything, itself included.
func ExactEqual(a, b float64) bool {
	return a == b
}

// ApproxEqual reports whether a and b differ by at most tol in absolute
// value. Kernels that accumulate rounding error (segment fitting,
// cosine similarity) should compare through this with an explicit
// problem-derived tolerance.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// ApproxZero reports whether |x| is at most tol, the near-singularity
// test used by pivoting and regression denominators.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
