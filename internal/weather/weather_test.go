package weather

import (
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestGenerateValidYear(t *testing.T) {
	temp := GenerateYear(1)
	if err := temp.Validate(); err != nil {
		t.Fatalf("generated year invalid: %v", err)
	}
	if len(temp.Values) != timeseries.HoursPerYear {
		t.Fatalf("len = %d, want %d", len(temp.Values), timeseries.HoursPerYear)
	}
}

func TestGenerateClimateShape(t *testing.T) {
	temp := GenerateYear(2)
	// Mean January temperature well below mean July temperature.
	jan := monthMean(temp, 0)
	jul := monthMean(temp, 6)
	if jul-jan < 15 {
		t.Errorf("Jan mean %g, Jul mean %g: seasonal swing too small", jan, jul)
	}
	// Cold winters (heating load) and warm summers (cooling load) are
	// what the 3-line algorithm needs.
	if jan > 0 {
		t.Errorf("January mean %g, want below freezing", jan)
	}
	if jul < 18 {
		t.Errorf("July mean %g, want warm", jul)
	}
	// Annual mean near the configured value.
	mean, _ := stats.Mean(temp.Values)
	if math.Abs(mean-DefaultConfig().AnnualMean) > 2.5 {
		t.Errorf("annual mean = %g, want ~%g", mean, DefaultConfig().AnnualMean)
	}
}

func monthMean(temp *timeseries.Temperature, month int) float64 {
	start := month * 30 * timeseries.HoursPerDay
	end := start + 30*timeseries.HoursPerDay
	var m stats.Moments
	for _, v := range temp.Values[start:end] {
		m.Add(v)
	}
	return m.Mean()
}

func TestGenerateDiurnalCycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStdDev = 0 // isolate the deterministic cycles
	temp, err := Generate(365, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Afternoon (17:00) warmer than pre-dawn (05:00) on every day.
	for d := 0; d < 365; d++ {
		dawn := temp.Values[d*24+5]
		afternoon := temp.Values[d*24+17]
		if afternoon <= dawn {
			t.Fatalf("day %d: afternoon %g <= dawn %g", d, afternoon, dawn)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateYear(7)
	b := GenerateYear(7)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different weather")
		}
	}
	c := GenerateYear(8)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weather")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(0, DefaultConfig()); err == nil {
		t.Error("0 days: want error")
	}
	bad := DefaultConfig()
	bad.NoisePersistence = 1
	if _, err := Generate(10, bad); err == nil {
		t.Error("persistence 1: want error")
	}
	bad.NoisePersistence = -0.1
	if _, err := Generate(10, bad); err == nil {
		t.Error("negative persistence: want error")
	}
}

func TestGenerateShortSeries(t *testing.T) {
	temp, err := Generate(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(temp.Values) != 48 {
		t.Errorf("len = %d", len(temp.Values))
	}
	if err := temp.Validate(); err != nil {
		t.Error(err)
	}
}
