// Package weather synthesizes hourly outdoor-temperature series for a
// cold-winter / warm-summer climate (the paper used the temperature
// series of a southern-Ontario city). The real series is unavailable, so
// the generator composes an annual cycle, a diurnal cycle and AR(1)
// weather noise — the three components that matter to the benchmark's
// thermal-sensitivity algorithms: winters well below freezing, summers
// warm enough for cooling load, and realistic day-to-day persistence.
package weather

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Config parameterizes the synthetic climate.
type Config struct {
	// AnnualMean is the mean temperature over the year (degrees C).
	// Default 8 (roughly Toronto).
	AnnualMean float64
	// AnnualAmplitude is half the summer-winter swing. Default 14.
	AnnualAmplitude float64
	// DiurnalAmplitude is half the day-night swing. Default 4.
	DiurnalAmplitude float64
	// NoiseStdDev is the innovation standard deviation of the AR(1)
	// weather-front process. Default 2.
	NoiseStdDev float64
	// NoisePersistence is the AR(1) coefficient in [0, 1). Default 0.95.
	NoisePersistence float64
	// ColdestDay is the day-of-year (0-based) of minimum mean
	// temperature. Default 20 (late January).
	ColdestDay int
	// Seed seeds the deterministic PRNG.
	Seed int64
}

// DefaultConfig returns a southern-Ontario-like climate.
func DefaultConfig() Config {
	return Config{
		AnnualMean:       8,
		AnnualAmplitude:  14,
		DiurnalAmplitude: 4,
		NoiseStdDev:      2,
		NoisePersistence: 0.95,
		ColdestDay:       20,
	}
}

// Generate produces an hourly temperature series covering the given
// number of days.
func Generate(days int, cfg Config) (*timeseries.Temperature, error) {
	if days <= 0 {
		return nil, fmt.Errorf("weather: days must be positive, got %d", days)
	}
	if cfg.NoisePersistence < 0 || cfg.NoisePersistence >= 1 {
		return nil, fmt.Errorf("weather: persistence %g outside [0, 1)", cfg.NoisePersistence)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	values := make([]float64, days*timeseries.HoursPerDay)
	var noise float64
	// Stationary start for the AR(1) component.
	if cfg.NoiseStdDev > 0 {
		denom := math.Sqrt(1 - cfg.NoisePersistence*cfg.NoisePersistence)
		noise = rng.NormFloat64() * cfg.NoiseStdDev / denom
	}
	for h := range values {
		day := h / timeseries.HoursPerDay
		hour := h % timeseries.HoursPerDay
		annual := -cfg.AnnualAmplitude *
			math.Cos(2*math.Pi*float64(day-cfg.ColdestDay)/float64(timeseries.DaysPerYear))
		// Coldest around 05:00, warmest around 17:00.
		diurnal := -cfg.DiurnalAmplitude * math.Cos(2*math.Pi*float64(hour-5)/24)
		noise = cfg.NoisePersistence*noise + rng.NormFloat64()*cfg.NoiseStdDev
		v := cfg.AnnualMean + annual + diurnal + noise
		// Keep within the physically plausible range the data model enforces.
		if v < -60 {
			v = -60
		}
		if v > 55 {
			v = 55
		}
		values[h] = v
	}
	return &timeseries.Temperature{Values: values}, nil
}

// GenerateYear produces a full 365-day series with the default climate
// and the given seed.
func GenerateYear(seed int64) *timeseries.Temperature {
	cfg := DefaultConfig()
	cfg.Seed = seed
	t, err := Generate(timeseries.DaysPerYear, cfg)
	if err != nil {
		panic(err) // unreachable: fixed valid arguments
	}
	return t
}
