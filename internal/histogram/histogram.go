// Package histogram implements benchmark task 1 (paper §3.1):
// per-consumer equi-width histograms of hourly consumption that summarize
// how variable each household's usage is.
package histogram

import (
	"fmt"

	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// DefaultBuckets is the bucket count fixed by the benchmark definition.
const DefaultBuckets = 10

// Result is the histogram for one consumer.
type Result struct {
	ID        timeseries.ID
	Histogram *stats.Histogram
}

// Compute builds the equi-width histogram of one consumer's hourly
// readings using the benchmark's 10 buckets.
func Compute(s *timeseries.Series) (*Result, error) {
	return ComputeBuckets(s, DefaultBuckets)
}

// ComputeBuckets is Compute with a configurable bucket count.
func ComputeBuckets(s *timeseries.Series, buckets int) (*Result, error) {
	h, err := stats.NewHistogram(s.Readings, buckets)
	if err != nil {
		return nil, fmt.Errorf("histogram: consumer %d: %w", s.ID, err)
	}
	return &Result{ID: s.ID, Histogram: h}, nil
}

// ComputeAll builds histograms for every series in the dataset, in input
// order. The task is embarrassingly parallel; this is the sequential
// reference implementation used by the engines' single-threaded modes.
func ComputeAll(d *timeseries.Dataset) ([]*Result, error) {
	out := make([]*Result, 0, len(d.Series))
	for _, s := range d.Series {
		r, err := Compute(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
