package histogram

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestComputeCountsEveryReading(t *testing.T) {
	s := &timeseries.Series{ID: 7, Readings: make([]float64, 48)}
	for i := range s.Readings {
		s.Readings[i] = float64(i % 10)
	}
	r, err := Compute(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 7 {
		t.Errorf("ID = %d", r.ID)
	}
	if len(r.Histogram.Counts) != DefaultBuckets {
		t.Errorf("buckets = %d, want %d", len(r.Histogram.Counts), DefaultBuckets)
	}
	if r.Histogram.Total() != 48 {
		t.Errorf("Total = %d, want 48", r.Histogram.Total())
	}
}

func TestComputeBucketsCustom(t *testing.T) {
	s := &timeseries.Series{ID: 1, Readings: []float64{0, 1, 2, 3}}
	r, err := ComputeBuckets(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Histogram.Counts) != 4 {
		t.Errorf("buckets = %d", len(r.Histogram.Counts))
	}
	if _, err := ComputeBuckets(s, 0); err == nil {
		t.Error("zero buckets: want error")
	}
	if _, err := Compute(&timeseries.Series{ID: 2}); err == nil {
		t.Error("empty series: want error")
	}
}

func TestComputeAllOnSeedData(t *testing.T) {
	ds, err := seed.Generate(seed.Config{Consumers: 5, Days: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ComputeAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r.ID != ds.Series[i].ID {
			t.Errorf("result %d ID = %d, want %d", i, r.ID, ds.Series[i].ID)
		}
		if got := r.Histogram.Total(); got != int64(len(ds.Series[i].Readings)) {
			t.Errorf("consumer %d total = %d, want %d", r.ID, got, len(ds.Series[i].Readings))
		}
		if r.Histogram.Min < 0 {
			t.Errorf("consumer %d min = %g, consumption cannot be negative", r.ID, r.Histogram.Min)
		}
	}
}

func TestComputeAllPropagatesError(t *testing.T) {
	d := &timeseries.Dataset{Series: []*timeseries.Series{{ID: 1}}}
	if _, err := ComputeAll(d); err == nil {
		t.Error("empty series in dataset: want error")
	}
}
