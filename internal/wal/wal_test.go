package wal

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// mkBatch builds a deterministic batch for household id starting at
// hour h.
func mkBatch(id timeseries.ID, h, n int) []core.Reading {
	batch := make([]core.Reading, n)
	for i := range batch {
		hour := h + i
		batch[i] = core.Reading{
			ID:          id,
			Hour:        hour,
			Consumption: float64(id)*1000 + float64(hour)*0.25,
			Temperature: 10 + float64(hour)*0.125,
		}
	}
	return batch
}

func sameReadings(t *testing.T, got, want []core.Reading) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d readings, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Hour != w.Hour ||
			math.Float64bits(g.Consumption) != math.Float64bits(w.Consumption) ||
			math.Float64bits(g.Temperature) != math.Float64bits(w.Temperature) {
			t.Fatalf("reading %d: got %+v, want %+v", i, g, w)
		}
	}
}

// collect replays a log into a per-shard slice of batches.
func collect(t *testing.T, l *Log, shards int) [][][]core.Reading {
	t.Helper()
	out := make([][][]core.Reading, shards)
	if err := l.Replay(func(shard int, batch []core.Reading) error {
		out[shard] = append(out[shard], batch)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 3, Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	var want [3][][]core.Reading
	for i := 0; i < 6; i++ {
		shard := i % 3
		b := mkBatch(timeseries.ID(shard+1), (i/3)*4, 4)
		seq, err := l.Append(shard, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(shard, seq); err != nil {
			t.Fatal(err)
		}
		want[shard] = append(want[shard], b)
	}
	if l.SizeBytes() <= 3*int64(len(magic)) {
		t.Fatalf("SizeBytes = %d, want > magic only", l.SizeBytes())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	st := r.Stats()
	if st.Batches != 6 || st.Readings != 24 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v, want 6 batches / 24 readings / 0 truncated", st)
	}
	got := collect(t, r, 3)
	for shard := range want {
		if len(got[shard]) != len(want[shard]) {
			t.Fatalf("shard %d: got %d batches, want %d", shard, len(got[shard]), len(want[shard]))
		}
		for i := range want[shard] {
			sameReadings(t, got[shard][i], want[shard][i])
		}
	}
	// Replay is one-shot.
	again := collect(t, r, 3)
	for shard := range again {
		if len(again[shard]) != 0 {
			t.Fatalf("second replay returned %d batches on shard %d", len(again[shard]), shard)
		}
	}
}

// TestTornTailTruncated cuts a log file mid-record and checks the torn
// record is CRC-rejected and truncated while the intact prefix
// survives.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b0 := mkBatch(1, 0, 5)
	b1 := mkBatch(1, 5, 5)
	for _, b := range [][]core.Reading{b0, b1} {
		seq, err := l.Append(0, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(0, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, shardFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the second record: drop its last 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Batches != 1 || st.Readings != 5 {
		t.Fatalf("stats = %+v, want exactly the first batch recovered", st)
	}
	if st.TruncatedBytes <= 0 {
		t.Fatalf("TruncatedBytes = %d, want > 0", st.TruncatedBytes)
	}
	got := collect(t, r, 1)
	sameReadings(t, got[0][0], b0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn tail must be gone from disk: a third open sees a clean
	// one-record log.
	r2, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.TruncatedBytes != 0 || st.Batches != 1 {
		t.Fatalf("after truncation, stats = %+v, want clean 1-batch log", st)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptRecordTruncated flips a payload byte mid-file: the CRC
// must reject that record and everything after it, never decoding
// either.
func TestCorruptRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		if _, err := l.Append(0, mkBatch(1, i*4, 4)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, l.SizeBytes())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, shardFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the second record's payload.
	data[sizes[0]+recHdrSize+6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Batches != 1 {
		t.Fatalf("recovered %d batches, want 1 (corruption must cut record 2 and 3)", st.Batches)
	}
	wantCut := sizes[2] - sizes[0]
	if st.TruncatedBytes != wantCut {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, wantCut)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBadMagicResets replaces the magic: the whole file is garbage and
// must be reset without decoding anything.
func TestBadMagicResets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, mkBatch(1, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Batches != 0 || st.TruncatedBytes != int64(len(data)) {
		t.Fatalf("stats = %+v, want 0 batches and the whole file truncated", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommit drives concurrent writers through SyncBatch on a
// sync-counting file: every commit must be covered, and leader-based
// grouping must issue fewer fsyncs than batches.
func TestGroupCommit(t *testing.T) {
	fs := &countingFS{inner: OSFS}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 1, Policy: SyncBatch, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append(0, mkBatch(timeseries.ID(w+1), i, 1))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(0, seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	syncs := fs.syncs.Load()
	if syncs == 0 {
		t.Fatal("no fsyncs issued under SyncBatch")
	}
	if syncs > writers*perWriter {
		t.Fatalf("%d fsyncs for %d batches: group commit is not grouping", syncs, writers*perWriter)
	}
	t.Logf("group commit: %d batches, %d fsyncs", writers*perWriter, syncs)

	r, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Batches != writers*perWriter {
		t.Fatalf("recovered %d batches, want %d", st.Batches, writers*perWriter)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRewrite replaces a shard's log and checks only the new batches
// replay afterwards.
func TestRewrite(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(0, mkBatch(1, i*2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	remainder := mkBatch(1, 6, 2)
	if err := l.Rewrite(0, [][]core.Reading{remainder, nil}); err != nil {
		t.Fatal(err)
	}
	// The shard keeps accepting appends after a rewrite.
	seq, err := l.Append(0, mkBatch(1, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(0, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r, 2)
	if len(got[0]) != 2 {
		t.Fatalf("shard 0: got %d batches after rewrite, want 2", len(got[0]))
	}
	sameReadings(t, got[0][0], remainder)
	sameReadings(t, got[0][1], mkBatch(1, 8, 1))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// countingFS wraps another FS and counts Sync calls on the files it
// opens.
type countingFS struct {
	inner FS
	syncs atomic.Int64
}

func (c *countingFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

func (c *countingFS) OpenAppend(path string) (File, error) {
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, syncs: &c.syncs}, nil
}

func (c *countingFS) Create(path string) (File, error) {
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, syncs: &c.syncs}, nil
}

func (c *countingFS) Rename(oldPath, newPath string) error { return c.inner.Rename(oldPath, newPath) }
func (c *countingFS) Remove(path string) error             { return c.inner.Remove(path) }
func (c *countingFS) SyncDir(dir string) error             { return c.inner.SyncDir(dir) }

type countingFile struct {
	File
	syncs *atomic.Int64
}

func (c *countingFile) Sync() error {
	c.syncs.Add(1)
	return c.File.Sync()
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"batch", SyncBatch}, {"off", SyncOff}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		back, err := ParsePolicy(got.String())
		if err != nil || back != tc.want {
			t.Fatalf("round trip of %q failed", tc.in)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
