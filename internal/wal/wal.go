// Package wal implements the write-ahead log that makes live
// ingestion crash-safe. Engines append each committed batch to a
// per-shard log file before acking Append; on reopen the log is
// replayed through the engine's idempotent append path, so the
// recovered state is bit-exact with a no-crash run over the acked
// prefix. Checkpoints rewrite the log down to the readings that are
// not yet folded into the base segment.
//
// File format. Each shard owns one file, wal-NNN.log:
//
//	file    = magic record*
//	magic   = "SMWAL1\n\x00"                          (8 bytes)
//	record  = crc32c(payload) u32le · len(payload) u32le · payload
//	payload = count u32le · reading×count
//	reading = id u64le · hour u32le · consumption u64le · temperature u64le
//
// Consumption and temperature are IEEE-754 bit patterns, so replay is
// bit-exact. The CRC is Castagnoli (CRC32C) over the payload only: a
// torn or corrupt tail fails the checksum and the file is truncated at
// the last whole record — a bad record is never decoded, and nothing
// after it is trusted.
//
// Durability policies. SyncAlways fsyncs inside Append (every batch is
// durable before it is acked). SyncBatch acks after the write and makes
// Commit a group commit: one leader fsyncs on behalf of every batch
// written before it grabbed the file, so concurrent shard writers share
// fsyncs. SyncOff never fsyncs — the log bounds loss to the OS page
// cache but forfeits power-failure durability.
//
// All file access goes through the FS interface so tests can substitute
// a deterministic fault-injecting filesystem (internal/fault.Disk).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatch groups fsyncs: Append returns after the buffered
	// write and Commit blocks until a leader's fsync covers it.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs inside every Append before it returns.
	SyncAlways
	// SyncOff never fsyncs. Acked batches survive a process crash
	// (the OS holds the pages) but not a power failure.
	SyncOff
)

// ParsePolicy maps the -fsync flag values to a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want always, batch or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "batch"
}

// File is the slice of *os.File the log needs. Truncate must leave the
// write position at the new end of file.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
}

// FS abstracts the filesystem so the crash harness can inject torn
// writes and failed fsyncs deterministically. OSFS is the real one.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens path read/write, creating it if absent, with
	// the write position at the end of the file.
	OpenAppend(path string) (File, error)
	// Create truncates or creates path for writing.
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir fsyncs the directory so renames and creates survive a
	// power failure.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error)             { return o.f.Write(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o osFile) Close() error                            { return o.f.Close() }
func (o osFile) Sync() error                             { return o.f.Sync() }

func (o osFile) Truncate(size int64) error {
	if err := o.f.Truncate(size); err != nil {
		return err
	}
	_, err := o.f.Seek(size, io.SeekStart)
	return err
}

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

const (
	magic       = "SMWAL1\n\x00"
	recHdrSize  = 8  // crc u32 + len u32
	readingSize = 28 // id u64 + hour u32 + consumption u64 + temperature u64
	// maxPayload bounds a record so a corrupt length field cannot ask
	// for a multi-gigabyte allocation before the CRC is checked.
	maxPayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir holds one wal-NNN.log per shard. Created if absent.
	Dir string
	// Shards is the number of log files (one per engine writer shard).
	Shards int
	// Policy is the fsync policy. Zero value is SyncBatch.
	Policy SyncPolicy
	// FS is the filesystem; nil means OSFS.
	FS FS
}

// ReplayStats summarizes what Open found in the log.
type ReplayStats struct {
	// Batches and Readings count the intact records recovered.
	Batches  int
	Readings int
	// TruncatedBytes is how much torn or corrupt tail was cut off
	// across all shard files.
	TruncatedBytes int64
}

// Log is a per-shard write-ahead log. Append/Commit on distinct shards
// never contend; on one shard they serialize on the shard mutex.
type Log struct {
	fs     FS
	dir    string
	policy SyncPolicy
	shards []*shardLog

	replayMu sync.Mutex
	pending  [][]replayBatch // decoded by Open, freed by Replay
	stats    ReplayStats
}

type replayBatch struct {
	batch []core.Reading
}

type shardLog struct {
	mu   sync.Mutex
	cond sync.Cond
	f    File
	path string
	size int64

	// Group commit: writeSeq numbers appended batches, syncSeq is the
	// highest batch known durable. A Commit caller whose seq is not
	// yet covered either becomes the leader (fsyncs everything
	// written so far) or waits for the current leader's broadcast. A
	// failed fsync poisons exactly the batches it covered
	// (seq ≤ failEnd): later writers get a fresh fsync attempt.
	writeSeq uint64
	syncSeq  uint64
	syncing  bool
	failErr  error
	failEnd  uint64

	buf []byte // encode scratch, reused across Appends
}

// Open opens (creating if needed) the per-shard log files under
// opts.Dir, verifies each tail record by CRC, truncates any torn or
// corrupt tail, and retains the intact records for Replay.
func Open(opts Options) (*Log, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("wal: shards must be positive, have %d", opts.Shards)
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		fs:      fs,
		dir:     opts.Dir,
		policy:  opts.Policy,
		shards:  make([]*shardLog, opts.Shards),
		pending: make([][]replayBatch, opts.Shards),
	}
	for i := range l.shards {
		sh := &shardLog{path: filepath.Join(opts.Dir, shardFileName(i))}
		sh.cond.L = &sh.mu
		if err := l.openShard(sh, i); err != nil {
			l.closeShards(i)
			return nil, err
		}
		l.shards[i] = sh
	}
	return l, nil
}

func shardFileName(i int) string { return fmt.Sprintf("wal-%03d.log", i) }

// openShard opens one shard file, scans its records and truncates the
// first torn or corrupt one together with everything after it.
func (l *Log) openShard(sh *shardLog, shard int) error {
	f, err := l.fs.OpenAppend(sh.path)
	if err != nil {
		return fmt.Errorf("wal: open shard %d: %w", shard, err)
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: size shard %d: %w", shard, err)
	}
	keep, batches, err := scan(f, size)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: scan shard %d: %w", shard, err)
	}
	if keep < size {
		l.stats.TruncatedBytes += size - keep
	}
	if keep == 0 {
		// Missing or torn magic: reset the file to a fresh log.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: reset shard %d: %w", shard, err)
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: magic shard %d: %w", shard, err)
		}
		keep = int64(len(magic))
	} else if keep < size {
		if err := f.Truncate(keep); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: truncate shard %d: %w", shard, err)
		}
	}
	for _, b := range batches {
		l.stats.Batches++
		l.stats.Readings += len(b)
		l.pending[shard] = append(l.pending[shard], replayBatch{batch: b})
	}
	sh.f = f
	sh.size = keep
	return nil
}

// scan walks the record stream and returns the byte offset of the last
// whole, CRC-clean record plus the decoded batches up to it. A file
// without an intact magic header scans to keep=0. Only I/O failures
// return an error — corruption is handled by truncation, not failure.
func scan(f io.ReaderAt, size int64) (keep int64, batches [][]core.Reading, err error) {
	hdr := make([]byte, len(magic))
	if size < int64(len(magic)) {
		return 0, nil, nil
	}
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, nil, err
	}
	if string(hdr) != magic {
		return 0, nil, nil
	}
	off := int64(len(magic))
	var rec [recHdrSize]byte
	var payload []byte
	for {
		if size-off < recHdrSize {
			return off, batches, nil
		}
		if _, err := f.ReadAt(rec[:], off); err != nil {
			return 0, nil, err
		}
		wantCRC := binary.LittleEndian.Uint32(rec[0:4])
		n := int64(binary.LittleEndian.Uint32(rec[4:8]))
		if n > maxPayload || size-off-recHdrSize < n {
			return off, batches, nil
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := f.ReadAt(payload, off+recHdrSize); err != nil {
			return 0, nil, err
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return off, batches, nil
		}
		batch, ok := decodePayload(payload)
		if !ok {
			return off, batches, nil
		}
		batches = append(batches, batch)
		off += recHdrSize + n
	}
}

func decodePayload(p []byte) ([]core.Reading, bool) {
	if len(p) < 4 {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint32(p[0:4]))
	if len(p) != 4+count*readingSize {
		return nil, false
	}
	batch := make([]core.Reading, count)
	for i := range batch {
		b := p[4+i*readingSize:]
		batch[i] = core.Reading{
			ID:          timeseries.ID(binary.LittleEndian.Uint64(b[0:8])),
			Hour:        int(binary.LittleEndian.Uint32(b[8:12])),
			Consumption: fromBits(binary.LittleEndian.Uint64(b[12:20])),
			Temperature: fromBits(binary.LittleEndian.Uint64(b[20:28])),
		}
	}
	return batch, true
}

// Replay hands every intact batch recovered by Open to fn in
// per-shard write order, then frees them. Batches on distinct shards
// hold disjoint households, so cross-shard order does not matter to an
// idempotent appender. Replay is one-shot: a second call sees nothing.
func (l *Log) Replay(fn func(shard int, batch []core.Reading) error) error {
	l.replayMu.Lock()
	pending := l.pending
	l.pending = nil
	l.replayMu.Unlock()
	for shard, batches := range pending {
		for _, rb := range batches {
			if err := fn(shard, rb.batch); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats reports what Open recovered and truncated.
func (l *Log) Stats() ReplayStats {
	l.replayMu.Lock()
	defer l.replayMu.Unlock()
	return l.stats
}

// Append writes one batch to the shard's log. Under SyncAlways it is
// durable when Append returns; under SyncBatch the caller must Commit
// the returned sequence number before acking the batch.
func (l *Log) Append(shard int, batch []core.Reading) (uint64, error) {
	sh := l.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(batch) > 0 {
		sh.buf = encodeRecord(sh.buf[:0], batch)
		n, err := sh.f.Write(sh.buf)
		sh.size += int64(n)
		if err != nil {
			return 0, fmt.Errorf("wal: append shard %d: %w", shard, err)
		}
		sh.writeSeq++
	}
	if l.policy == SyncAlways {
		if err := sh.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync shard %d: %w", shard, err)
		}
		sh.syncSeq = sh.writeSeq
	}
	return sh.writeSeq, nil
}

func encodeRecord(dst []byte, batch []core.Reading) []byte {
	payloadLen := 4 + len(batch)*readingSize
	need := recHdrSize + payloadLen
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	dst = dst[:need]
	payload := dst[recHdrSize:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(batch)))
	for i, r := range batch {
		b := payload[4+i*readingSize:]
		binary.LittleEndian.PutUint64(b[0:8], uint64(r.ID))
		binary.LittleEndian.PutUint32(b[8:12], uint32(r.Hour))
		binary.LittleEndian.PutUint64(b[12:20], toBits(r.Consumption))
		binary.LittleEndian.PutUint64(b[20:28], toBits(r.Temperature))
	}
	binary.LittleEndian.PutUint32(dst[0:4], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(payloadLen))
	return dst
}

// Commit makes the batch Append returned seq for durable according to
// the policy. SyncAlways already synced in Append and SyncOff never
// syncs, so both return immediately; SyncBatch blocks until a group
// fsync covers seq.
func (l *Log) Commit(shard int, seq uint64) error {
	if l.policy != SyncBatch {
		return nil
	}
	sh := l.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if sh.syncSeq >= seq {
			return nil
		}
		if sh.failErr != nil && seq <= sh.failEnd {
			return sh.failErr
		}
		if !sh.syncing {
			sh.syncing = true
			target := sh.writeSeq
			sh.mu.Unlock()
			err := sh.f.Sync()
			sh.mu.Lock()
			sh.syncing = false
			if err != nil {
				sh.failErr = fmt.Errorf("wal: fsync shard %d: %w", shard, err)
				sh.failEnd = target
			} else {
				sh.syncSeq = target
				sh.failErr = nil
			}
			sh.cond.Broadcast()
			continue
		}
		sh.cond.Wait()
	}
}

// Rewrite atomically replaces one shard's log with the given batches
// (typically the per-household tail remainders after a checkpoint):
// temp file, fsync, rename over, directory fsync. The caller must
// guarantee no concurrent Append/Commit on the shard.
func (l *Log) Rewrite(shard int, batches [][]core.Reading) error {
	sh := l.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tmp := sh.path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: rewrite shard %d: %w", shard, err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: rewrite shard %d: %w", shard, err)
	}
	size := int64(len(magic))
	for _, b := range batches {
		if len(b) == 0 {
			continue
		}
		sh.buf = encodeRecord(sh.buf[:0], b)
		n, err := f.Write(sh.buf)
		size += int64(n)
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: rewrite shard %d: %w", shard, err)
		}
	}
	if l.policy != SyncOff {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: rewrite fsync shard %d: %w", shard, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: rewrite close shard %d: %w", shard, err)
	}
	if err := l.fs.Rename(tmp, sh.path); err != nil {
		return fmt.Errorf("wal: rewrite rename shard %d: %w", shard, err)
	}
	if l.policy != SyncOff {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: rewrite dir fsync shard %d: %w", shard, err)
		}
	}
	old := sh.f
	nf, err := l.fs.OpenAppend(sh.path)
	if err != nil {
		return fmt.Errorf("wal: rewrite reopen shard %d: %w", shard, err)
	}
	sh.f = nf
	sh.size = size
	// Everything in the rewritten log is durable; future Commits only
	// wait for batches appended after this point.
	sh.syncSeq = sh.writeSeq
	sh.failErr = nil
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: rewrite close old shard %d: %w", shard, err)
	}
	return nil
}

// SizeBytes is the total size of all shard files — the engine's
// tail-size budget trigger reads it to decide when to checkpoint.
func (l *Log) SizeBytes() int64 {
	var total int64
	for _, sh := range l.shards {
		sh.mu.Lock()
		total += sh.size
		sh.mu.Unlock()
	}
	return total
}

// Close syncs (unless SyncOff) and closes every shard file.
func (l *Log) Close() error {
	var first error
	for i, sh := range l.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if l.policy != SyncOff {
				if err := sh.f.Sync(); err != nil && first == nil {
					first = fmt.Errorf("wal: close fsync shard %d: %w", i, err)
				}
			}
			if err := sh.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("wal: close shard %d: %w", i, err)
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}

// Drop closes every shard file WITHOUT a final sync — the simulated
// process death: nothing beyond the last Commit may become durable.
// Only crash tests and the recovery benchmark call it.
func (l *Log) Drop() {
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.f != nil {
			_ = sh.f.Close()
			sh.f = nil
		}
		sh.mu.Unlock()
	}
}

func (l *Log) closeShards(n int) {
	for i := 0; i < n; i++ {
		sh := l.shards[i]
		if sh != nil && sh.f != nil {
			_ = sh.f.Close()
		}
	}
}

// Clear removes the per-shard log files under dir — the reset an
// engine performs when a fresh bulk Load replaces the stored state and
// any surviving log would replay against the wrong base. Missing files
// are fine; the log must not be open.
func Clear(dir string, shards int, fs FS) error {
	if fs == nil {
		fs = OSFS
	}
	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, shardFileName(i))
		if err := fs.Remove(path); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return fmt.Errorf("wal: clear: %w", err)
		}
	}
	return nil
}

func toBits(f float64) uint64   { return math.Float64bits(f) }
func fromBits(u uint64) float64 { return math.Float64frombits(u) }
