// Package rdd implements the benchmark's Spark analogue: resilient
// distributed datasets over the simulated cluster, with narrow (map)
// and wide (group-by-key) transformations, broadcast variables, and
// in-memory partition caching.
//
// It reproduces the Spark traits the paper measures:
//
//   - partitions live in node memory and intermediate datasets are
//     cached, so Spark's footprint exceeds Hive's (Figure 15);
//   - wide transformations shuffle bytes across the simulated network,
//     so format 1 (which needs a group-by-household) is slower than the
//     map-only formats 2 and 3 (Figures 13 vs 16 vs 18);
//   - similarity search uses a broadcast variable and a map-side join,
//     the implementation the paper credits for Spark's similarity edge;
//   - every task pays a driver dispatch overhead, which is negligible
//     for block-sized inputs but dominates when the input is thousands
//     of tiny non-splittable files — the paper's Figure 18 observation
//     that "Spark's performance deteriorates as the number of files
//     increases".
package rdd

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
)

// Record is one element of a distributed dataset. Bytes approximates
// the element's serialized size for shuffle and cache accounting.
type Record struct {
	Key   int64
	Value interface{}
	Bytes int64
}

// DefaultTaskOverhead is the per-task driver dispatch cost.
const DefaultTaskOverhead = 200 * time.Microsecond

// Context ties a job's datasets to a cluster.
type Context struct {
	Cluster *distsim.Cluster
	// TaskOverhead is charged serially at the driver per launched task.
	TaskOverhead time.Duration
	// ctx, when set via WithContext, is the run's cancellation context.
	// Datasets built through this Context inherit it, so every modeled
	// delay in the job — dispatch, shuffle, collect — is interruptible.
	ctx context.Context
}

// WithContext returns a copy of the Context whose jobs run under ctx:
// cluster tasks, shuffles and collects stop promptly once ctx fires.
// The receiver is unchanged, so concurrent jobs with different
// lifetimes can share one Context.
func (c *Context) WithContext(ctx context.Context) *Context {
	jc := *c
	jc.ctx = ctx
	return &jc
}

// NewContext returns a Spark-like context over a cluster.
func NewContext(cluster *distsim.Cluster) *Context {
	return &Context{Cluster: cluster, TaskOverhead: DefaultTaskOverhead}
}

// Dataset is a materialized RDD: per-partition records plus the node
// where each partition resides.
type Dataset struct {
	ctx    *Context
	parts  [][]Record
	nodes  []int
	cached bool
}

// Partitions returns the partition count.
func (d *Dataset) Partitions() int { return len(d.parts) }

// Count returns the total number of records.
func (d *Dataset) Count() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// partitionBytes sums one partition's record sizes.
func partitionBytes(part []Record) int64 {
	var n int64
	for _, r := range part {
		n += r.Bytes
	}
	return n
}

// Persist pins the dataset's partitions in node memory until Unpersist
// (Spark's MEMORY_ONLY storage level).
func (d *Dataset) Persist() {
	if d.cached {
		return
	}
	d.cached = true
	for i, p := range d.parts {
		d.ctx.Cluster.AllocNode(d.nodes[i], partitionBytes(p))
	}
}

// Unpersist releases pinned partitions.
func (d *Dataset) Unpersist() {
	if !d.cached {
		return
	}
	d.cached = false
	for i, p := range d.parts {
		d.ctx.Cluster.FreeNode(d.nodes[i], partitionBytes(p))
	}
}

// chargeDispatch models the driver serially launching n tasks.
func (c *Context) chargeDispatch(n int) {
	if c.TaskOverhead > 0 && n > 0 {
		distsim.SleepCtx(c.ctx, time.Duration(n)*c.TaskOverhead)
	}
}

// FromSplits builds a dataset with one partition per input split,
// parsing each split's text with fn on a data-local task.
func (c *Context) FromSplits(splits []dfs.Split, fn func(split *dfs.Split, emit func(Record)) error) (*Dataset, error) {
	return c.FromSplitsCtx(splits, func(split *dfs.Split, _ *distsim.TaskCtx, emit func(Record)) error {
		return fn(split, emit)
	})
}

// FromSplitsCtx is FromSplits with access to the task context, for
// pipelined stages that account memory or read additional data.
func (c *Context) FromSplitsCtx(splits []dfs.Split, fn func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Record)) error) (*Dataset, error) {
	if len(splits) == 0 {
		return nil, fmt.Errorf("rdd: no input splits")
	}
	c.chargeDispatch(len(splits))
	parts := make([][]Record, len(splits))
	nodes := make([]int, len(splits))
	tasks := make([]distsim.Task, len(splits))
	for i := range splits {
		i := i
		split := &splits[i]
		tasks[i] = distsim.Task{
			PreferredNodes: split.PreferredNodes,
			Fn: func(ctx *distsim.TaskCtx) error {
				for _, b := range split.Blocks {
					ctx.ReadBlock(b.Nodes, int64(len(b.Data)))
				}
				ctx.Alloc(split.Bytes())
				defer ctx.Free(split.Bytes())
				ctx.Compute(split.Bytes())
				var out []Record
				if err := fn(split, ctx, func(r Record) { out = append(out, r) }); err != nil {
					return err
				}
				parts[i] = out
				nodes[i] = ctx.Node()
				return nil
			},
		}
	}
	if err := c.Cluster.RunCtx(c.ctx, tasks); err != nil {
		return nil, err
	}
	return &Dataset{ctx: c, parts: parts, nodes: nodes}, nil
}

// MapPartitions applies fn to each partition on its resident node,
// producing a new dataset with the same partitioning.
func (d *Dataset) MapPartitions(fn func(part []Record, ctx *distsim.TaskCtx) ([]Record, error)) (*Dataset, error) {
	d.ctx.chargeDispatch(len(d.parts))
	parts := make([][]Record, len(d.parts))
	nodes := make([]int, len(d.parts))
	tasks := make([]distsim.Task, len(d.parts))
	for i := range d.parts {
		i := i
		tasks[i] = distsim.Task{
			PreferredNodes: []int{d.nodes[i]},
			Fn: func(ctx *distsim.TaskCtx) error {
				in := d.parts[i]
				ctx.Alloc(partitionBytes(in))
				defer ctx.Free(partitionBytes(in))
				ctx.Compute(partitionBytes(in))
				out, err := fn(in, ctx)
				if err != nil {
					return err
				}
				parts[i] = out
				nodes[i] = ctx.Node()
				return nil
			},
		}
	}
	if err := d.ctx.Cluster.RunCtx(d.ctx.ctx, tasks); err != nil {
		return nil, err
	}
	return &Dataset{ctx: d.ctx, parts: parts, nodes: nodes}, nil
}

// Map applies fn to every record (a narrow transformation).
func (d *Dataset) Map(fn func(Record) (Record, error)) (*Dataset, error) {
	return d.MapPartitions(func(part []Record, _ *distsim.TaskCtx) ([]Record, error) {
		out := make([]Record, 0, len(part))
		for _, r := range part {
			nr, err := fn(r)
			if err != nil {
				return nil, err
			}
			out = append(out, nr)
		}
		return out, nil
	})
}

// GroupByKey shuffles records into numParts partitions by key hash; the
// output records have Value []interface{} holding the grouped values.
// This is the wide transformation whose network cost dominates format-1
// jobs.
func (d *Dataset) GroupByKey(numParts int) (*Dataset, error) {
	if numParts <= 0 {
		numParts = d.ctx.Cluster.Nodes()
	}
	d.ctx.chargeDispatch(numParts)
	destNode := make([]int, numParts)
	for p := range destNode {
		destNode[p] = p % d.ctx.Cluster.Nodes()
	}
	// Shuffle write/read: move each source partition's records to their
	// destination partitions.
	type bucket struct {
		records []Record
		bytes   int64
	}
	buckets := make([][]bucket, len(d.parts)) // [src][dst]
	for i, part := range d.parts {
		bs := make([]bucket, numParts)
		for _, r := range part {
			p := int(hashKey(r.Key) % uint64(numParts))
			bs[p].records = append(bs[p].records, r)
			bs[p].bytes += r.Bytes
		}
		buckets[i] = bs
	}
	var moves []distsim.Move
	for i := range d.parts {
		for p := 0; p < numParts; p++ {
			if buckets[i][p].bytes > 0 {
				moves = append(moves, distsim.Move{From: d.nodes[i], To: destNode[p], Bytes: buckets[i][p].bytes})
			}
		}
	}
	d.ctx.Cluster.TransferConcurrentCtx(d.ctx.ctx, moves)
	// Build grouped partitions on the destination nodes.
	parts := make([][]Record, numParts)
	nodes := make([]int, numParts)
	tasks := make([]distsim.Task, numParts)
	for p := 0; p < numParts; p++ {
		p := p
		tasks[p] = distsim.Task{
			PreferredNodes: []int{destNode[p]},
			Fn: func(ctx *distsim.TaskCtx) error {
				groups := make(map[int64][]interface{})
				sizes := make(map[int64]int64)
				var held int64
				for i := range buckets {
					for _, r := range buckets[i][p].records {
						groups[r.Key] = append(groups[r.Key], r.Value)
						sizes[r.Key] += r.Bytes
					}
					held += buckets[i][p].bytes
				}
				ctx.Alloc(held)
				defer ctx.Free(held)
				ctx.Compute(held)
				keys := make([]int64, 0, len(groups))
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				out := make([]Record, 0, len(keys))
				for _, k := range keys {
					out = append(out, Record{Key: k, Value: groups[k], Bytes: sizes[k]})
				}
				parts[p] = out
				nodes[p] = ctx.Node()
				return nil
			},
		}
	}
	if err := d.ctx.Cluster.RunCtx(d.ctx.ctx, tasks); err != nil {
		return nil, err
	}
	return &Dataset{ctx: d.ctx, parts: parts, nodes: nodes}, nil
}

// Collect transfers every record to the driver and returns them in
// partition order.
func (d *Dataset) Collect() []Record {
	return d.CollectRange(0, len(d.parts))
}

// CollectRange transfers the records of partitions [lo, hi) to the
// driver and returns them in partition order. Disjoint ranges can be
// collected concurrently: the transfer accounting is cluster-side and
// thread-safe, and the partition slices are read-only after the job
// that built them.
func (d *Dataset) CollectRange(lo, hi int) []Record {
	moves := make([]distsim.Move, 0, hi-lo)
	for i := lo; i < hi; i++ {
		moves = append(moves, distsim.Move{From: d.nodes[i], To: -1, Bytes: partitionBytes(d.parts[i])})
	}
	d.ctx.Cluster.TransferConcurrentCtx(d.ctx.ctx, moves)
	var out []Record
	for _, p := range d.parts[lo:hi] {
		out = append(out, p...)
	}
	return out
}

// Broadcast is a read-only value replicated to every node.
type Broadcast struct {
	Value interface{}
}

// Broadcast ships value (of approximately bytes size) to every node
// once, like a Spark broadcast variable.
func (c *Context) Broadcast(value interface{}, bytes int64) *Broadcast {
	moves := make([]distsim.Move, 0, c.Cluster.Nodes())
	for n := 0; n < c.Cluster.Nodes(); n++ {
		moves = append(moves, distsim.Move{From: -1, To: n, Bytes: bytes})
	}
	c.Cluster.TransferConcurrentCtx(c.ctx, moves)
	return &Broadcast{Value: value}
}

func hashKey(k int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(k >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
