package rdd

import (
	"errors"
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func makeSources(t *testing.T, consumers, days int) (map[string]*meterdata.Source, *timeseries.Dataset) {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]*meterdata.Source{}
	s1, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format1"] = s1
	s2, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format2"] = s2
	s3, err := meterdata.WriteGrouped(t.TempDir(), ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format3"] = s3
	back, err := meterdata.ReadDataset(s1)
	if err != nil {
		t.Fatal(err)
	}
	return srcs, back
}

func TestSparkAllFormatsAllTasks(t *testing.T) {
	srcs, ref := makeSources(t, 5, 30)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, fs := testCtx(t, 4)
			e := New(fs)
			st, err := e.Load(src)
			if err != nil {
				t.Fatal(err)
			}
			if st.Consumers != 5 {
				t.Errorf("consumers = %d", st.Consumers)
			}
			for _, task := range core.Tasks {
				spec := core.Spec{Task: task, K: 3}
				got, err := e.Run(spec)
				if err != nil {
					t.Fatalf("%v: %v", task, err)
				}
				want, err := core.RunReference(ref, spec)
				if err != nil {
					t.Fatal(err)
				}
				if got.Count() != want.Count() {
					t.Fatalf("%v: count %d vs %d", task, got.Count(), want.Count())
				}
				verifyResults(t, got, want)
			}
		})
	}
}

func verifyResults(t *testing.T, got, want *core.Results) {
	t.Helper()
	switch got.Task {
	case core.TaskHistogram:
		for i := range want.Histograms {
			g, w := got.Histograms[i], want.Histograms[i]
			if g.ID != w.ID {
				t.Fatalf("histogram %d ID mismatch", i)
			}
			for b := range w.Histogram.Counts {
				if g.Histogram.Counts[b] != w.Histogram.Counts[b] {
					t.Fatalf("histogram %d bucket %d", i, b)
				}
			}
		}
	case core.TaskThreeLine:
		for i := range want.ThreeLines {
			if math.Abs(got.ThreeLines[i].HeatingGradient-want.ThreeLines[i].HeatingGradient) > 1e-9 {
				t.Fatalf("3-line %d gradient", i)
			}
		}
	case core.TaskPAR:
		for i := range want.Profiles {
			for h := range want.Profiles[i].Profile {
				if math.Abs(got.Profiles[i].Profile[h]-want.Profiles[i].Profile[h]) > 1e-9 {
					t.Fatalf("PAR %d hour %d", i, h)
				}
			}
		}
	case core.TaskSimilarity:
		for i := range want.Similar {
			g, w := got.Similar[i], want.Similar[i]
			if g.ID != w.ID || len(g.Matches) != len(w.Matches) {
				t.Fatalf("similarity %d shape", i)
			}
			for j := range w.Matches {
				if g.Matches[j].ID != w.Matches[j].ID ||
					math.Abs(g.Matches[j].Score-w.Matches[j].Score) > 1e-9 {
					t.Fatalf("similarity %d match %d", i, j)
				}
			}
		}
	}
}

func TestSparkShuffleOnlyForFormat1(t *testing.T) {
	srcs, _ := makeSources(t, 6, 30)
	moved := map[string]int64{}
	for _, name := range []string{"format1", "format2"} {
		_, fs := testCtx(t, 4)
		e := New(fs)
		if _, err := e.Load(srcs[name]); err != nil {
			t.Fatal(err)
		}
		fs.Cluster().ResetStats()
		if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err != nil {
			t.Fatal(err)
		}
		moved[name] = fs.Cluster().Stats().BytesMoved
	}
	if moved["format1"] <= moved["format2"] {
		t.Errorf("format1 moved %d, format2 %d", moved["format1"], moved["format2"])
	}
}

func TestSparkMemoryExceedsZeroWhenPersisted(t *testing.T) {
	srcs, _ := makeSources(t, 4, 20)
	_, fs := testCtx(t, 4)
	e := New(fs)
	if _, err := e.Load(srcs["format2"]); err != nil {
		t.Fatal(err)
	}
	fs.Cluster().ResetStats()
	if _, err := e.Run(core.Spec{Task: core.TaskPAR}); err != nil {
		t.Fatal(err)
	}
	if fs.Cluster().Stats().PeakMemory() == 0 {
		t.Error("no memory accounted for persisted RDDs")
	}
}

func TestSparkRunWithoutLoad(t *testing.T) {
	_, fs := testCtx(t, 2)
	e := New(fs)
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v", err)
	}
	if err := e.Release(); err != nil {
		t.Errorf("release: %v", err)
	}
	if e.Capabilities().Regression != core.SupportThirdParty {
		t.Error("capabilities")
	}
}

// TestSparkSurvivesInjectedFailures mirrors the Hive failure test: a
// lossy cluster must still produce exact results.
func TestSparkSurvivesInjectedFailures(t *testing.T) {
	srcs, ref := makeSources(t, 5, 20)
	_, fs := testCtx(t, 4)
	fs.Cluster().InjectFailures(0.3, 50, 9)
	fs.KillNode(1)
	e := New(fs)
	if _, err := e.Load(srcs["format2"]); err != nil {
		t.Fatal(err)
	}
	for _, task := range core.Tasks {
		spec := core.Spec{Task: task, K: 3}
		got, err := e.Run(spec)
		if err != nil {
			t.Fatalf("%v under failures: %v", task, err)
		}
		want, err := core.RunReference(ref, spec)
		if err != nil {
			t.Fatal(err)
		}
		verifyResults(t, got, want)
	}
	if fs.Cluster().Stats().TaskRetries == 0 {
		t.Error("no retries recorded")
	}
}
