package rdd

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
)

func TestCursorConformance(t *testing.T) {
	srcs, _ := makeSources(t, 5, 10)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, fs := testCtx(t, 4)
			e := New(fs)
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.Run(t, func(t *testing.T) core.Cursor {
				cur, err := e.NewCursor()
				if err != nil {
					t.Fatal(err)
				}
				return cur
			})
		})
	}
}

func TestPartitionConformance(t *testing.T) {
	srcs, _ := makeSources(t, 7, 10)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			_, fs := testCtx(t, 4)
			e := New(fs)
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
		})
	}
}

func TestCursorCloseUnpersists(t *testing.T) {
	srcs, _ := makeSources(t, 4, 10)
	_, fs := testCtx(t, 4)
	e := New(fs)
	if _, err := e.Load(srcs["format2"]); err != nil {
		t.Fatal(err)
	}
	cur, err := e.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Cluster().MemoryInUse(); got == 0 {
		t.Fatal("persisted RDD holds no executor memory")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Cluster().MemoryInUse(); got != 0 {
		t.Fatalf("executor memory still in use after Close: %d bytes", got)
	}
}
