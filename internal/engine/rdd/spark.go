package rdd

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Engine is the Spark analogue over a DFS.
type Engine struct {
	fs  *dfs.FS
	ctx *Context

	inputs  []string
	format  meterdata.Format
	grouped bool
	temp    *timeseries.Temperature
}

// Option configures the engine.
type Option func(*Engine)

// WithContext substitutes a custom RDD context (e.g. to change the task
// dispatch overhead).
func WithContext(ctx *Context) Option { return func(e *Engine) { e.ctx = ctx } }

// New returns a Spark-analogue engine over the given DFS.
func New(fs *dfs.FS, opts ...Option) *Engine {
	e := &Engine{fs: fs, ctx: NewContext(fs.Cluster())}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "rdd (Spark analogue)" }

// Capabilities implements core.Engine (Table 1, Spark column:
// regression via Apache Math; histogram, quantiles and similarity
// hand-written).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportNone,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportThirdParty,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: upload the source files into DFS and
// read the shared temperature series driver-side.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	temp, err := meterdata.ReadTemperature(src.Dir)
	if err != nil {
		return nil, err
	}
	var total int64
	var inputs []string
	consumers := make(map[timeseries.ID]bool)
	var readings int64
	for _, rel := range src.DataFiles {
		data, err := os.ReadFile(src.Dir + "/" + rel)
		if err != nil {
			return nil, fmt.Errorf("rdd: %w", err)
		}
		name := "input/" + rel
		if err := e.fs.Write(name, data); err != nil {
			return nil, err
		}
		inputs = append(inputs, name)
		total += int64(len(data))
		switch src.Format {
		case meterdata.FormatReadingPerLine:
			err = meterdata.ScanReadings(strings.NewReader(string(data)), func(r meterdata.Reading) error {
				consumers[r.ID] = true
				readings++
				return nil
			})
		case meterdata.FormatSeriesPerLine:
			err = meterdata.ScanSeries(strings.NewReader(string(data)), func(s *timeseries.Series) error {
				consumers[s.ID] = true
				readings += int64(len(s.Readings))
				return nil
			})
		}
		if err != nil {
			return nil, err
		}
	}
	e.inputs = inputs
	e.format = src.Format
	e.grouped = !src.Partitioned && len(src.DataFiles) > 1
	e.temp = temp
	return &core.LoadStats{Consumers: len(consumers), Readings: readings, StorageBytes: total}, nil
}

// Release implements core.Engine.
func (e *Engine) Release() error { return nil }

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("rdd: %w", core.ErrNotLoaded)
	}
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine. Extraction is the engine's RDD
// job: broadcast the temperature series, parse the DFS splits into one
// series per consumer (format-dependent plan — straight scan, map-side
// group, or a shuffle by household), persist the parsed RDD in
// executor memory for the duration of the job (the footprint that
// exceeds Hive's in Figure 15), and collect driver-side. Close
// unpersists the cached partitions.
func (e *Engine) NewCursor() (core.Cursor, error) {
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("rdd: %w", core.ErrNotLoaded)
	}
	var pinned *Dataset
	return core.NewLazyCursor(func(ctx context.Context) ([]*timeseries.Series, error) {
		// Job-scoped context: every modeled delay below honours the
		// run's cancellation.
		jc := e.ctx.WithContext(ctx)
		// Ship the temperature series to the executors once per job.
		jc.Broadcast(e.temp, int64(len(e.temp.Values)*8))
		ds, err := e.allSeries(jc)
		if err != nil {
			return nil, err
		}
		ds.Persist()
		pinned = ds
		records := ds.Collect()
		series := make([]*timeseries.Series, 0, len(records))
		for _, rec := range records {
			s, ok := rec.Value.(*timeseries.Series)
			if !ok {
				return nil, fmt.Errorf("rdd: expected series record, got %T", rec.Value)
			}
			series = append(series, s)
		}
		sort.Slice(series, func(i, j int) bool { return series[i].ID < series[j].ID })
		return series, nil
	}, func() {
		if pinned != nil {
			pinned.Unpersist()
			pinned = nil
		}
	}), nil
}

// sharedJob is one extraction job shared by a set of partition cursors:
// the broadcast + parse + persist runs once (paid by whichever cursor
// reaches its first Next first), each cursor then collects only its own
// range of the parsed RDD's partitions, and the last cursor to close
// unpersists.
type sharedJob struct {
	e    *Engine
	once sync.Once
	err  error
	ds   *Dataset

	mu   sync.Mutex
	open int
}

func (j *sharedJob) ensure(ctx context.Context) error {
	j.once.Do(func() {
		// The first cursor to arrive pays for (and can cancel) the
		// shared job; later cursors reuse the built dataset.
		jc := j.e.ctx.WithContext(ctx)
		jc.Broadcast(j.e.temp, int64(len(j.e.temp.Values)*8))
		ds, err := j.e.allSeries(jc)
		if err != nil {
			j.err = err
			return
		}
		ds.Persist()
		j.ds = ds
	})
	return j.err
}

func (j *sharedJob) release() {
	j.mu.Lock()
	j.open--
	last := j.open == 0
	j.mu.Unlock()
	if last && j.ds != nil {
		j.ds.Unpersist()
	}
}

// NewCursors implements core.PartitionedSource: one cursor per group of
// RDD partitions of the shared extraction job. Households are
// hash-partitioned across the RDD (or grouped per input file), so each
// cursor's ID set is disjoint from the others' but their ranges
// interleave — the pipeline's reorder stage restores global order.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("rdd: NewCursors: max must be >= 1, got %d", max)
	}
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("rdd: %w", core.ErrNotLoaded)
	}
	// Cursor count comes from split metadata (known without running the
	// job); each cursor's partition range is resolved lazily once the
	// shared job has actually built the RDD.
	splittable := e.format == meterdata.FormatSeriesPerLine || !e.grouped
	splits, err := e.fs.Splits(e.inputs, splittable)
	if err != nil {
		return nil, err
	}
	n := max
	if n > len(splits) {
		n = len(splits)
	}
	if n < 1 {
		n = 1
	}
	job := &sharedJob{e: e, open: n}
	curs := make([]core.Cursor, n)
	for p := 0; p < n; p++ {
		p := p
		curs[p] = core.NewLazyCursor(func(ctx context.Context) ([]*timeseries.Series, error) {
			if err := job.ensure(ctx); err != nil {
				return nil, err
			}
			ranges := core.PartitionRanges(job.ds.Partitions(), n)
			if p >= len(ranges) {
				return nil, nil
			}
			records := job.ds.CollectRange(ranges[p][0], ranges[p][1])
			series := make([]*timeseries.Series, 0, len(records))
			for _, rec := range records {
				s, ok := rec.Value.(*timeseries.Series)
				if !ok {
					return nil, fmt.Errorf("rdd: expected series record, got %T", rec.Value)
				}
				series = append(series, s)
			}
			sort.Slice(series, func(i, j int) bool { return series[i].ID < series[j].ID })
			return series, nil
		}, func() { job.release() })
	}
	return curs, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// Temperature implements core.Engine.
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.temp == nil {
		return nil, fmt.Errorf("rdd: %w", core.ErrNotLoaded)
	}
	return e.temp, nil
}

// ParallelHint implements exec.ParallelHinter: the cluster's total task
// slots, so node-count sweeps keep scaling compute when the spec leaves
// Workers unset.
func (e *Engine) ParallelHint() int {
	cfg := e.fs.Cluster().Config()
	return cfg.Nodes * cfg.SlotsPerNode
}

// seriesDataset parses series-per-line inputs into a Record-per-series
// dataset.
func (e *Engine) seriesDataset(jc *Context, splittable bool) (*Dataset, error) {
	splits, err := e.fs.Splits(e.inputs, splittable)
	if err != nil {
		return nil, err
	}
	return jc.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
		return meterdata.ScanSeries(split.Reader(), func(s *timeseries.Series) error {
			emit(Record{Key: int64(s.ID), Value: s, Bytes: int64(len(s.Readings) * 8)})
			return nil
		})
	})
}

// groupedSeriesDataset parses format-3 inputs (reading-per-line,
// household-complete files) with one non-splittable partition per file,
// assembling each file's readings map-side.
func (e *Engine) groupedSeriesDataset(jc *Context) (*Dataset, error) {
	splits, err := e.fs.Splits(e.inputs, false)
	if err != nil {
		return nil, err
	}
	tempLen := len(e.temp.Values)
	return jc.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
		a := meterdata.NewAssembler(tempLen)
		if err := meterdata.ScanReadings(split.Reader(), a.Add); err != nil {
			return err
		}
		for _, s := range a.Series() {
			emit(Record{Key: int64(s.ID), Value: s, Bytes: int64(tempLen * 8)})
		}
		return nil
	})
}

// allSeries assembles one Record per series regardless of input
// format, running the job under jc (a Context scoped to the run via
// WithContext).
func (e *Engine) allSeries(jc *Context) (*Dataset, error) {
	switch {
	case e.format == meterdata.FormatSeriesPerLine:
		return e.seriesDataset(jc, true)
	case e.grouped:
		return e.groupedSeriesDataset(jc)
	default:
		// Format 1: parse readings, shuffle by household, assemble.
		splits, err := e.fs.Splits(e.inputs, true)
		if err != nil {
			return nil, err
		}
		readings, err := jc.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
			return meterdata.ScanReadings(split.Reader(), func(r meterdata.Reading) error {
				emit(Record{Key: int64(r.ID), Value: [2]float64{float64(r.Hour), r.Consumption}, Bytes: 16})
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		grouped, err := readings.GroupByKey(0)
		if err != nil {
			return nil, err
		}
		tempLen := len(e.temp.Values)
		return grouped.MapPartitions(func(part []Record, _ *distsim.TaskCtx) ([]Record, error) {
			a := meterdata.NewAssembler(tempLen)
			for _, rec := range part {
				for _, v := range rec.Value.([]interface{}) {
					hv := v.([2]float64)
					r := meterdata.Reading{
						ID:          timeseries.ID(rec.Key),
						Hour:        int(hv[0]),
						Consumption: hv[1],
					}
					if err := a.Add(r); err != nil {
						return nil, fmt.Errorf("rdd: %w", err)
					}
				}
			}
			out := make([]Record, 0, a.Len())
			for _, s := range a.Series() {
				out = append(out, Record{Key: int64(s.ID), Value: s, Bytes: int64(tempLen * 8)})
			}
			return out, nil
		})
	}
}

var _ core.Engine = (*Engine)(nil)
