package rdd

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Engine is the Spark analogue over a DFS.
type Engine struct {
	fs  *dfs.FS
	ctx *Context

	inputs  []string
	format  meterdata.Format
	grouped bool
	temp    *timeseries.Temperature
}

// Option configures the engine.
type Option func(*Engine)

// WithContext substitutes a custom RDD context (e.g. to change the task
// dispatch overhead).
func WithContext(ctx *Context) Option { return func(e *Engine) { e.ctx = ctx } }

// New returns a Spark-analogue engine over the given DFS.
func New(fs *dfs.FS, opts ...Option) *Engine {
	e := &Engine{fs: fs, ctx: NewContext(fs.Cluster())}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "rdd (Spark analogue)" }

// Capabilities implements core.Engine (Table 1, Spark column:
// regression via Apache Math; histogram, quantiles and similarity
// hand-written).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportNone,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportThirdParty,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: upload the source files into DFS and
// read the shared temperature series driver-side.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	temp, err := meterdata.ReadTemperature(src.Dir)
	if err != nil {
		return nil, err
	}
	var total int64
	var inputs []string
	consumers := make(map[timeseries.ID]bool)
	var readings int64
	for _, rel := range src.DataFiles {
		data, err := os.ReadFile(src.Dir + "/" + rel)
		if err != nil {
			return nil, fmt.Errorf("rdd: %w", err)
		}
		name := "input/" + rel
		if err := e.fs.Write(name, data); err != nil {
			return nil, err
		}
		inputs = append(inputs, name)
		total += int64(len(data))
		switch src.Format {
		case meterdata.FormatReadingPerLine:
			err = meterdata.ScanReadings(strings.NewReader(string(data)), func(r meterdata.Reading) error {
				consumers[r.ID] = true
				readings++
				return nil
			})
		case meterdata.FormatSeriesPerLine:
			err = meterdata.ScanSeries(strings.NewReader(string(data)), func(s *timeseries.Series) error {
				consumers[s.ID] = true
				readings += int64(len(s.Readings))
				return nil
			})
		}
		if err != nil {
			return nil, err
		}
	}
	e.inputs = inputs
	e.format = src.Format
	e.grouped = !src.Partitioned && len(src.DataFiles) > 1
	e.temp = temp
	return &core.LoadStats{Consumers: len(consumers), Readings: readings, StorageBytes: total}, nil
}

// Release implements core.Engine.
func (e *Engine) Release() error { return nil }

// Run implements core.Engine.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	if len(e.inputs) == 0 {
		return nil, core.ErrNotLoaded
	}
	spec = spec.WithDefaults()
	// Ship the temperature series to the executors once per job.
	tempBC := e.ctx.Broadcast(e.temp, int64(len(e.temp.Values)*8))
	temp := tempBC.Value.(*timeseries.Temperature)

	if spec.Task == core.TaskSimilarity {
		return e.runSimilarity(spec, temp)
	}

	var collected []Record
	switch {
	case e.format == meterdata.FormatSeriesPerLine, e.grouped:
		// Map-only plan: parse and compute are narrow transformations, so
		// they pipeline into a single stage (as Spark fuses them). The
		// parsed input stays cached in executor memory for the duration of
		// the job, which is what makes Spark's footprint exceed Hive's
		// (Figure 15).
		cache := newNodeCache(e.ctx.Cluster)
		defer cache.release()
		out, err := e.fusedCompute(spec, temp, cache)
		if err != nil {
			return nil, err
		}
		collected = out.Collect()
	default:
		// Format 1: parse readings, shuffle by household, assemble,
		// compute.
		splits, err := e.fs.Splits(e.inputs, true)
		if err != nil {
			return nil, err
		}
		readings, err := e.ctx.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
			return meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
				emit(Record{Key: int64(r.ID), Value: [2]float64{float64(r.Hour), r.Consumption}, Bytes: 16})
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		readings.Persist()
		defer readings.Unpersist()
		grouped, err := readings.GroupByKey(0)
		if err != nil {
			return nil, err
		}
		out, err := grouped.MapPartitions(func(part []Record, _ *distsim.TaskCtx) ([]Record, error) {
			var res []Record
			for _, rec := range part {
				values := rec.Value.([]interface{})
				series := &timeseries.Series{
					ID:       timeseries.ID(rec.Key),
					Readings: make([]float64, len(temp.Values)),
				}
				for _, v := range values {
					hv := v.([2]float64)
					h := int(hv[0])
					if h < 0 || h >= len(series.Readings) {
						return nil, fmt.Errorf("rdd: hour %d outside series", h)
					}
					series.Readings[h] = hv[1]
				}
				out, err := computeOne(series, temp, spec)
				if err != nil {
					return nil, err
				}
				res = append(res, Record{Key: rec.Key, Value: out, Bytes: 64})
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		collected = out.Collect()
	}
	return assembleResults(spec, collected)
}

// nodeCache tracks per-node bytes pinned in executor memory for the
// duration of one job (cached parsed input).
type nodeCache struct {
	cluster *distsim.Cluster
	mu      sync.Mutex
	bytes   map[int]int64
}

func newNodeCache(cluster *distsim.Cluster) *nodeCache {
	return &nodeCache{cluster: cluster, bytes: make(map[int]int64)}
}

func (nc *nodeCache) add(node int, b int64) {
	nc.mu.Lock()
	nc.bytes[node] += b
	nc.mu.Unlock()
	nc.cluster.AllocNode(node, b)
}

func (nc *nodeCache) release() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for n, b := range nc.bytes {
		nc.cluster.FreeNode(n, b)
	}
	nc.bytes = make(map[int]int64)
}

// fusedCompute runs the map-only plan in one pipelined stage: parse each
// split's series, cache them, and compute the per-consumer analytic.
func (e *Engine) fusedCompute(spec core.Spec, temp *timeseries.Temperature, cache *nodeCache) (*Dataset, error) {
	splittable := e.format == meterdata.FormatSeriesPerLine
	splits, err := e.fs.Splits(e.inputs, splittable)
	if err != nil {
		return nil, err
	}
	tempLen := len(temp.Values)
	return e.ctx.FromSplitsCtx(splits, func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Record)) error {
		compute := func(s *timeseries.Series) error {
			cache.add(ctx.Node(), int64(len(s.Readings)*8))
			v, err := computeOne(s, temp, spec)
			if err != nil {
				return err
			}
			emit(Record{Key: int64(s.ID), Value: v, Bytes: 64})
			return nil
		}
		if splittable {
			return meterdata.ScanSeries(strings.NewReader(string(split.Data())), compute)
		}
		// Grouped (format 3): aggregate readings map-side, then compute.
		byID := make(map[timeseries.ID][]float64)
		err := meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
			readings := byID[r.ID]
			if readings == nil {
				readings = make([]float64, tempLen)
				byID[r.ID] = readings
			}
			if r.Hour < 0 || r.Hour >= tempLen {
				return fmt.Errorf("rdd: hour %d outside series", r.Hour)
			}
			readings[r.Hour] = r.Consumption
			return nil
		})
		if err != nil {
			return err
		}
		ids := make([]timeseries.ID, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := compute(&timeseries.Series{ID: id, Readings: byID[id]}); err != nil {
				return err
			}
		}
		return nil
	})
}

// seriesDataset parses series-per-line inputs into a Record-per-series
// dataset.
func (e *Engine) seriesDataset(splittable bool) (*Dataset, error) {
	splits, err := e.fs.Splits(e.inputs, splittable)
	if err != nil {
		return nil, err
	}
	return e.ctx.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
		return meterdata.ScanSeries(strings.NewReader(string(split.Data())), func(s *timeseries.Series) error {
			emit(Record{Key: int64(s.ID), Value: s, Bytes: int64(len(s.Readings) * 8)})
			return nil
		})
	})
}

// groupedSeriesDataset parses format-3 inputs (reading-per-line,
// household-complete files) with one non-splittable partition per file.
func (e *Engine) groupedSeriesDataset() (*Dataset, error) {
	splits, err := e.fs.Splits(e.inputs, false)
	if err != nil {
		return nil, err
	}
	tempLen := len(e.temp.Values)
	return e.ctx.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
		byID := make(map[timeseries.ID][]float64)
		err := meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
			readings := byID[r.ID]
			if readings == nil {
				readings = make([]float64, tempLen)
				byID[r.ID] = readings
			}
			if r.Hour < 0 || r.Hour >= tempLen {
				return fmt.Errorf("rdd: hour %d outside series", r.Hour)
			}
			readings[r.Hour] = r.Consumption
			return nil
		})
		if err != nil {
			return err
		}
		ids := make([]timeseries.ID, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			emit(Record{Key: int64(id), Value: &timeseries.Series{ID: id, Readings: byID[id]},
				Bytes: int64(tempLen * 8)})
		}
		return nil
	})
}

// computePartitions returns a MapPartitions body running the
// per-consumer analytic on Record values holding *timeseries.Series.
func computePartitions(temp *timeseries.Temperature, spec core.Spec) func([]Record, *distsim.TaskCtx) ([]Record, error) {
	return func(part []Record, _ *distsim.TaskCtx) ([]Record, error) {
		out := make([]Record, 0, len(part))
		for _, rec := range part {
			s, ok := rec.Value.(*timeseries.Series)
			if !ok {
				return nil, fmt.Errorf("rdd: expected series record, got %T", rec.Value)
			}
			v, err := computeOne(s, temp, spec)
			if err != nil {
				return nil, err
			}
			out = append(out, Record{Key: rec.Key, Value: v, Bytes: 64})
		}
		return out, nil
	}
}

func computeOne(s *timeseries.Series, temp *timeseries.Temperature, spec core.Spec) (interface{}, error) {
	one := &timeseries.Dataset{Series: []*timeseries.Series{s}, Temperature: temp}
	r, err := core.RunReference(one, spec)
	if err != nil {
		return nil, err
	}
	switch spec.Task {
	case core.TaskHistogram:
		return r.Histograms[0], nil
	case core.TaskThreeLine:
		return r.ThreeLines[0], nil
	case core.TaskPAR:
		return r.Profiles[0], nil
	default:
		return nil, fmt.Errorf("rdd: computeOne cannot run %v", spec.Task)
	}
}

// runSimilarity is the paper's Spark plan: broadcast the full series
// table, then a map-side join computes each partition's top-k locally —
// no reduce-side shuffle of the probe table.
func (e *Engine) runSimilarity(spec core.Spec, temp *timeseries.Temperature) (*core.Results, error) {
	series, err := e.allSeries()
	if err != nil {
		return nil, err
	}
	if series.Count() < 2 {
		return nil, similarity.ErrTooFew
	}
	// Build the broadcast table: all series packed into the blocked
	// kernel's flat row-major matrix, inverse norms precomputed once.
	var all []*timeseries.Series
	for _, rec := range series.Collect() {
		all = append(all, rec.Value.(*timeseries.Series))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	var bytes int64
	for _, s := range all {
		bytes += int64(len(s.Readings) * 8)
	}
	m, err := timeseries.PackMatrix(all)
	if err != nil {
		return nil, fmt.Errorf("rdd: %w", err)
	}
	rowOf := make(map[timeseries.ID]int, len(all))
	for i, s := range all {
		rowOf[s.ID] = i
	}
	bc := e.ctx.Broadcast(m, bytes)
	table := bc.Value.(*timeseries.FlatMatrix)

	out, err := series.MapPartitions(func(part []Record, ctx *distsim.TaskCtx) ([]Record, error) {
		ctx.Alloc(bytes) // the broadcast copy resident on this node
		defer ctx.Free(bytes)
		res := make([]Record, 0, len(part))
		for _, rec := range part {
			s := rec.Value.(*timeseries.Series)
			q, ok := rowOf[s.ID]
			if !ok {
				return nil, fmt.Errorf("rdd: series %d missing from broadcast table", s.ID)
			}
			res = append(res, Record{
				Key:   int64(s.ID),
				Value: &similarity.Result{ID: s.ID, Matches: similarity.TopKRow(table, q, spec.K)},
				Bytes: int64(spec.K * 16),
			})
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return assembleResults(spec, out.Collect())
}

// allSeries assembles one Record per series regardless of input format.
func (e *Engine) allSeries() (*Dataset, error) {
	switch {
	case e.format == meterdata.FormatSeriesPerLine:
		return e.seriesDataset(true)
	case e.grouped:
		return e.groupedSeriesDataset()
	default:
		splits, err := e.fs.Splits(e.inputs, true)
		if err != nil {
			return nil, err
		}
		readings, err := e.ctx.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
			return meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
				emit(Record{Key: int64(r.ID), Value: [2]float64{float64(r.Hour), r.Consumption}, Bytes: 16})
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		grouped, err := readings.GroupByKey(0)
		if err != nil {
			return nil, err
		}
		tempLen := len(e.temp.Values)
		return grouped.MapPartitions(func(part []Record, _ *distsim.TaskCtx) ([]Record, error) {
			out := make([]Record, 0, len(part))
			for _, rec := range part {
				s := &timeseries.Series{ID: timeseries.ID(rec.Key), Readings: make([]float64, tempLen)}
				for _, v := range rec.Value.([]interface{}) {
					hv := v.([2]float64)
					h := int(hv[0])
					if h < 0 || h >= tempLen {
						return nil, fmt.Errorf("rdd: hour %d outside series", h)
					}
					s.Readings[h] = hv[1]
				}
				out = append(out, Record{Key: rec.Key, Value: s, Bytes: int64(tempLen * 8)})
			}
			return out, nil
		})
	}
}

// assembleResults converts collected records into sorted core.Results.
func assembleResults(spec core.Spec, records []Record) (*core.Results, error) {
	out := &core.Results{Task: spec.Task}
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	for _, rec := range records {
		switch spec.Task {
		case core.TaskHistogram:
			out.Histograms = append(out.Histograms, rec.Value.(*histogram.Result))
		case core.TaskThreeLine:
			out.ThreeLines = append(out.ThreeLines, rec.Value.(*threeline.Result))
		case core.TaskPAR:
			out.Profiles = append(out.Profiles, rec.Value.(*par.Result))
		case core.TaskSimilarity:
			out.Similar = append(out.Similar, rec.Value.(*similarity.Result))
		default:
			return nil, fmt.Errorf("rdd: cannot assemble %v", spec.Task)
		}
	}
	return out, nil
}

var _ core.Engine = (*Engine)(nil)
