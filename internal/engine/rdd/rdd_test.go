package rdd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
)

func testCtx(t *testing.T, nodes int) (*Context, *dfs.FS) {
	t.Helper()
	c, err := distsim.New(distsim.Config{
		Nodes: nodes, SlotsPerNode: 4,
		TransferLatency: time.Microsecond, BytesPerSecond: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.WithBlockSize(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(c)
	ctx.TaskOverhead = 0
	return ctx, fs
}

func numberDataset(t *testing.T, ctx *Context, fs *dfs.FS, n int) *Dataset {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i%4, i)
	}
	if err := fs.Write("nums", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits([]string{"nums"}, true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctx.FromSplits(splits, func(split *dfs.Split, emit func(Record)) error {
		for _, line := range strings.Split(string(split.Data()), "\n") {
			if line == "" {
				continue
			}
			f := strings.Fields(line)
			k, _ := strconv.ParseInt(f[0], 10, 64)
			v, _ := strconv.ParseInt(f[1], 10, 64)
			emit(Record{Key: k, Value: v, Bytes: 16})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromSplitsAndCollect(t *testing.T) {
	ctx, fs := testCtx(t, 4)
	d := numberDataset(t, ctx, fs, 100)
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Partitions() < 2 {
		t.Errorf("partitions = %d, want several", d.Partitions())
	}
	recs := d.Collect()
	if len(recs) != 100 {
		t.Fatalf("collected = %d", len(recs))
	}
}

func TestMapTransform(t *testing.T) {
	ctx, fs := testCtx(t, 2)
	d := numberDataset(t, ctx, fs, 20)
	doubled, err := d.Map(func(r Record) (Record, error) {
		r.Value = r.Value.(int64) * 2
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, r := range doubled.Collect() {
		sum += r.Value.(int64)
	}
	if sum != 2*19*20/2 {
		t.Errorf("sum = %d", sum)
	}
	// Map errors propagate.
	boom := errors.New("boom")
	if _, err := d.Map(func(Record) (Record, error) { return Record{}, boom }); err != boom {
		t.Errorf("err = %v", err)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx, fs := testCtx(t, 4)
	d := numberDataset(t, ctx, fs, 100)
	fs.Cluster().ResetStats()
	g, err := d.GroupByKey(0)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Collect()
	if len(recs) != 4 {
		t.Fatalf("groups = %d", len(recs))
	}
	total := 0
	for _, r := range recs {
		values := r.Value.([]interface{})
		total += len(values)
		for _, v := range values {
			if v.(int64)%4 != r.Key {
				t.Fatalf("key %d got value %v", r.Key, v)
			}
		}
	}
	if total != 100 {
		t.Errorf("grouped values = %d", total)
	}
}

func TestPersistAccountsMemory(t *testing.T) {
	ctx, fs := testCtx(t, 2)
	d := numberDataset(t, ctx, fs, 50)
	cluster := fs.Cluster()
	cluster.ResetStats()
	d.Persist()
	if cluster.Stats().PeakMemory() < 50*16 {
		t.Errorf("peak = %d, want >= %d", cluster.Stats().PeakMemory(), 50*16)
	}
	d.Persist() // idempotent
	d.Unpersist()
	d.Unpersist() // idempotent
}

func TestBroadcastChargesAllNodes(t *testing.T) {
	ctx, fs := testCtx(t, 5)
	cluster := fs.Cluster()
	cluster.ResetStats()
	bc := ctx.Broadcast("payload", 1000)
	if bc.Value.(string) != "payload" {
		t.Error("broadcast value lost")
	}
	s := cluster.Stats()
	if s.Transfers != 5 || s.BytesMoved != 5000 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTaskOverheadCharged(t *testing.T) {
	ctx, fs := testCtx(t, 2)
	// Write many tiny files: one non-splittable partition each.
	var names []string
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("f%d", i)
		fs.Write(name, []byte("1 1\n"))
		names = append(names, name)
	}
	splits, err := fs.Splits(names, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx.TaskOverhead = 2 * time.Millisecond
	start := time.Now()
	_, err = ctx.FromSplits(splits, func(*dfs.Split, func(Record)) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("dispatch took %v, want >= 40ms for 20 tasks at 2ms", d)
	}
}

func TestFromSplitsEmpty(t *testing.T) {
	ctx, _ := testCtx(t, 2)
	if _, err := ctx.FromSplits(nil, nil); err == nil {
		t.Error("no splits: want error")
	}
}
