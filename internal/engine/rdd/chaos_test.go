package rdd

import (
	"context"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestCursorChaos(t *testing.T) {
	srcs, _ := makeSources(t, 20, 10)
	_, fs := testCtx(t, 4)
	e := New(fs)
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaos(t, func(t *testing.T) core.Cursor {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		return cur
	})
}

func TestPartitionChaos(t *testing.T) {
	srcs, _ := makeSources(t, 20, 10)
	_, fs := testCtx(t, 4)
	e := New(fs)
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaosPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
}

func TestPipelineChaos(t *testing.T) {
	srcs, ds := makeSources(t, 20, 10)
	_, fs := testCtx(t, 4)
	e := New(fs)
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	ids := make([]timeseries.ID, len(ds.Series))
	for i, s := range ds.Series {
		ids[i] = s.ID
	}
	cursortest.RunPipelineChaos(t, ids, func(ctx context.Context, cfg fault.Config, spec core.Spec) (*core.Results, error) {
		return exec.RunContext(ctx, fault.New(e, cfg), spec)
	})
}
