package filestore

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func makeDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLoadSplitsUnpartitioned(t *testing.T) {
	ds := makeDataset(t, 5, 10)
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	splitDir := filepath.Join(t.TempDir(), "split")
	e := New(WithSplitDir(splitDir))
	st, err := e.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumers != 5 {
		t.Errorf("consumers = %d", st.Consumers)
	}
	if !e.src.Partitioned {
		t.Error("load did not split into per-consumer files")
	}
	if len(e.src.DataFiles) != 5 {
		t.Errorf("split files = %d", len(e.src.DataFiles))
	}
	if err := e.CleanSplitDir(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPartitionedPassThrough(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	st, err := e.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumers != 3 || st.Readings != int64(3*10*24) {
		t.Errorf("stats = %+v", st)
	}
	if e.src != src {
		t.Error("partitioned source should pass through unchanged")
	}
}

func TestRunAllTasksMatchReference(t *testing.T) {
	ds := makeDataset(t, 4, 30)
	want := func(task core.Task) *core.Results {
		r, err := core.RunReference(readBack(t, ds), core.Spec{Task: task, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, partitioned := range []bool{true, false} {
		var src *meterdata.Source
		var err error
		dir := t.TempDir()
		if partitioned {
			src, err = meterdata.WritePartitioned(dir, ds, meterdata.FormatReadingPerLine)
		} else {
			src, err = meterdata.WriteUnpartitioned(dir, ds, meterdata.FormatSeriesPerLine)
		}
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		for _, task := range core.Tasks {
			got, err := e.Run(core.Spec{Task: task, K: 2})
			if err != nil {
				t.Fatalf("partitioned=%v task=%v: %v", partitioned, task, err)
			}
			w := want(task)
			if got.Count() != w.Count() {
				t.Fatalf("partitioned=%v task=%v: count %d vs %d",
					partitioned, task, got.Count(), w.Count())
			}
			if task == core.TaskThreeLine {
				for i := range w.ThreeLines {
					if math.Abs(got.ThreeLines[i].HeatingGradient-w.ThreeLines[i].HeatingGradient) > 1e-9 {
						t.Fatalf("3-line gradient mismatch at %d", i)
					}
				}
			}
		}
	}
}

// readBack round-trips the dataset through CSV so reference results use
// the same precision as the engines see.
func readBack(t *testing.T, ds *timeseries.Dataset) *timeseries.Dataset {
	t.Helper()
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	back, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestWarmUsesCache(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	if e.cache == nil {
		t.Fatal("warm did not cache")
	}
	r, err := e.Run(core.Spec{Task: core.TaskPAR})
	if err != nil || r.Count() != 3 {
		t.Fatalf("warm run: %d, %v", r.Count(), err)
	}
	if err := e.Release(); err != nil {
		t.Fatal(err)
	}
	if e.cache != nil {
		t.Error("release kept cache")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ds := makeDataset(t, 6, 20)
	src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	seq, err := e.Run(core.Spec{Task: core.TaskHistogram, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(core.Spec{Task: core.TaskHistogram, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Count() != par.Count() {
		t.Fatalf("counts: %d vs %d", seq.Count(), par.Count())
	}
	// Parallel preserves per-worker order; verify as a set by ID.
	seen := map[timeseries.ID]bool{}
	for _, h := range par.Histograms {
		seen[h.ID] = true
	}
	for _, h := range seq.Histograms {
		if !seen[h.ID] {
			t.Fatalf("consumer %d missing from parallel run", h.ID)
		}
	}
}

func TestRunWithoutLoad(t *testing.T) {
	e := New()
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v, want ErrNotLoaded", err)
	}
	if err := e.Warm(); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("warm err = %v", err)
	}
}

func TestCapabilitiesMatchTable1(t *testing.T) {
	e := New()
	c := e.Capabilities()
	if c.Histogram != core.SupportBuiltin || c.CosineSimilarity != core.SupportNone {
		t.Errorf("capabilities = %+v", c)
	}
	if e.Name() == "" {
		t.Error("empty name")
	}
}

func TestAppendToPartitionedSource(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	delta := makeDataset(t, 3, 1)
	if err := e.AppendDelta(delta); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Histograms {
		if h.Histogram.Total() != int64(11*24) {
			t.Fatalf("consumer %d total = %d", h.ID, h.Histogram.Total())
		}
	}
}

func TestAppendToSeriesPerLineSource(t *testing.T) {
	ds := makeDataset(t, 3, 10)
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if _, err := e.LoadDirect(src); err != nil {
		t.Fatal(err)
	}
	delta := makeDataset(t, 3, 1)
	if err := e.AppendDelta(delta); err != nil {
		t.Fatal(err)
	}
	back, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range back.Series {
		if s.Days() != 11 {
			t.Fatalf("series %d has %d days", s.ID, s.Days())
		}
	}
	if len(back.Temperature.Values) != 11*24 {
		t.Errorf("temperature has %d values", len(back.Temperature.Values))
	}
}

func TestAppendWithoutLoad(t *testing.T) {
	e := New()
	if err := e.AppendDelta(&timeseries.Dataset{}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v", err)
	}
}
