package filestore

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/meterdata"
)

func TestCursorConformance(t *testing.T) {
	ds := makeDataset(t, 5, 10)

	t.Run("PartitionedFileCursor", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})

	t.Run("UnpartitionedIndexCursor", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cur.(*indexCursor); !ok {
				t.Fatalf("unpartitioned reading-per-line source yielded %T, want *indexCursor", cur)
			}
			return cur
		})
	})

	t.Run("SeriesPerLineLazyCursor", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})

	t.Run("WarmDatasetCursor", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})
}
