package filestore

import (
	"runtime"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestCursorConformance(t *testing.T) {
	ds := makeDataset(t, 5, 10)

	t.Run("PartitionedFileCursor", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})

	t.Run("UnpartitionedIndexCursor", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cur.(*indexCursor); !ok {
				t.Fatalf("unpartitioned reading-per-line source yielded %T, want *indexCursor", cur)
			}
			return cur
		})
	})

	t.Run("SeriesPerLineLazyCursor", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})

	t.Run("WarmDatasetCursor", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})
}

func TestPartitionConformance(t *testing.T) {
	ds := makeDataset(t, 7, 10)

	t.Run("PartitionedFiles", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})

	t.Run("UnpartitionedIndex", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})

	t.Run("UnpartitionedSeriesPerLine", func(t *testing.T) {
		src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.LoadDirect(src); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})

	t.Run("Warm", func(t *testing.T) {
		src, err := meterdata.WritePartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
		if err != nil {
			t.Fatal(err)
		}
		e := New()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})
}

// TestFileCursorReleasesPoppedSeries pins the collectability fix in
// fileCursor.Next: once a series has been handed out and dropped by the
// caller, the cursor's pending backlog must not keep it alive (the
// popped slot is nil'd before the re-slice).
func TestFileCursorReleasesPoppedSeries(t *testing.T) {
	ds := makeDataset(t, 6, 10)
	dir := t.TempDir()
	// One multi-series file so the cursor holds a real backlog.
	src, err := meterdata.WriteGrouped(dir, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur := newFileCursor(src)
	defer cur.Close()

	s, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.pending) == 0 {
		t.Fatal("test needs a pending backlog; got none")
	}
	collected := make(chan struct{})
	runtime.SetFinalizer(s, func(*timeseries.Series) { close(collected) })
	s = nil

	deadline := time.After(2 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("popped series not collected: fileCursor retains it via pending")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}
