package filestore

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// fileCursor streams a partitioned source one consumer file at a time —
// the Matlab small-files path (Figure 5). Memory stays flat: only the
// current file's series are resident while the pipeline computes.
type fileCursor struct {
	src     *meterdata.Source
	ctx     context.Context
	paths   []string
	next    int // next file index
	pending []*timeseries.Series
	closed  bool
}

func (c *fileCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func newFileCursor(src *meterdata.Source) *fileCursor {
	return &fileCursor{src: src, paths: src.Paths()}
}

// newFileCursorPaths opens a cursor over a shard of the source's file
// list (a partition cursor). The full path list is in ascending
// household order by construction (meterdata.WritePartitioned appends
// files in dataset order), so contiguous shards are ID-disjoint and
// each shard streams in ascending order.
func newFileCursorPaths(src *meterdata.Source, paths []string) *fileCursor {
	return &fileCursor{src: src, paths: paths}
}

func (c *fileCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, io.EOF
	}
	for len(c.pending) == 0 {
		if c.next >= len(c.paths) {
			return nil, io.EOF
		}
		series, err := meterdata.ReadSeriesFile(c.paths[c.next], c.src.Format)
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		c.next++
		c.pending = series
	}
	s := c.pending[0]
	// Nil the popped slot: the re-slice below keeps the backing array
	// alive until the file is drained, and a non-nil slot would pin the
	// handed-out series for that whole time even after the pipeline is
	// done with it.
	c.pending[0] = nil
	c.pending = c.pending[1:]
	return s, nil
}

func (c *fileCursor) Reset() error {
	c.next = 0
	c.pending = nil
	c.closed = false
	return nil
}

func (c *fileCursor) Close() error {
	c.closed = true
	c.pending = nil
	return nil
}

// SizeHint reports one consumer per file, exact for partitioned sources.
func (c *fileCursor) SizeHint() (int, bool) { return len(c.paths), true }

// indexCursor reproduces the paper's big-file Matlab path (§5.3.1):
// "Matlab reads the entire large file into an index which is then used
// to extract individual consumers' data; this is slower than reading
// small files one-by-one". The whole unpartitioned file is read into an
// in-memory reading index once, and every Next extracts one consumer by
// scanning that index end-to-end — the super-linear degradation of
// Figure 5 lives here, in the cursor, not in task code.
type indexCursor struct {
	src    *meterdata.Source
	ctx    context.Context
	temp   *timeseries.Temperature
	index  []meterdata.Reading
	ids    []timeseries.ID
	i      int
	built  bool
	closed bool
}

func newIndexCursor(src *meterdata.Source) *indexCursor {
	return &indexCursor{src: src}
}

func (c *indexCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *indexCursor) build() error {
	temp, err := meterdata.ReadTemperature(c.src.Dir)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	var index []meterdata.Reading
	var ids []timeseries.ID
	seen := map[timeseries.ID]bool{}
	for _, path := range c.src.Paths() {
		// The index build reads the whole big file; honor cancellation
		// between input files so a deadline can cut it short.
		if err := core.CtxErr(c.ctx); err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		err = meterdata.ScanReadings(f, func(r meterdata.Reading) error {
			index = append(index, r)
			if !seen[r.ID] {
				seen[r.ID] = true
				ids = append(ids, r.ID)
			}
			return nil
		})
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.temp, c.index, c.ids = temp, index, ids
	c.built = true
	return nil
}

func (c *indexCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, io.EOF
	}
	if !c.built {
		if err := c.build(); err != nil {
			return nil, err
		}
	}
	if c.i >= len(c.ids) {
		return nil, io.EOF
	}
	id := c.ids[c.i]
	// One full index scan per consumer, as the paper describes.
	a := meterdata.NewAssembler(len(c.temp.Values))
	for _, r := range c.index {
		if r.ID != id {
			continue
		}
		if err := a.Add(r); err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
	}
	series := a.Series()
	if len(series) != 1 {
		return nil, fmt.Errorf("filestore: index scan for household %d yielded %d series", id, len(series))
	}
	c.i++
	return series[0], nil
}

func (c *indexCursor) Reset() error {
	// The index survives a rewind; only the consumer pointer moves.
	c.i = 0
	c.closed = false
	return nil
}

func (c *indexCursor) Close() error {
	c.closed = true
	c.index, c.ids = nil, nil
	c.built = false
	c.i = 0
	return nil
}

func (c *indexCursor) SizeHint() (int, bool) {
	if !c.built {
		return 0, false
	}
	return len(c.ids), true
}

// sharedIndex is the big-file reading index built once and shared by a
// set of partition cursors over an unpartitioned reading-per-line
// source. The build cost is paid by whichever cursor reaches its first
// Next first (the others block in the Once); each partition cursor then
// extracts its own consumer-ID range with the same full-index scan per
// consumer that the serial indexCursor models. The index is dropped when
// the last cursor closes.
type sharedIndex struct {
	src   *meterdata.Source
	once  sync.Once
	err   error
	temp  *timeseries.Temperature
	index []meterdata.Reading
	ids   []timeseries.ID

	mu   sync.Mutex
	open int // cursors not yet closed; the index is dropped at zero
}

func (x *sharedIndex) ensure() error {
	x.once.Do(func() {
		c := newIndexCursor(x.src)
		defer func() { _ = c.Close() }()
		if err := c.build(); err != nil {
			x.err = err
			return
		}
		x.temp, x.index, x.ids = c.temp, c.index, c.ids
	})
	return x.err
}

func (x *sharedIndex) release() {
	x.mu.Lock()
	x.open--
	if x.open == 0 {
		x.index, x.ids = nil, nil
	}
	x.mu.Unlock()
}

// indexPartCursor is one partition of the shared big-file index: the
// consumers whose rank in the sorted ID list falls into partition
// `part` of `parts`. Ranges are computed lazily because the ID set is
// unknown until the index is built.
type indexPartCursor struct {
	idx         *sharedIndex
	ctx         context.Context
	part, parts int
	lo, hi      int // [lo, hi) into idx.ids, valid once ranged
	i           int // offset from lo
	ranged      bool
	closed      bool
}

func (c *indexPartCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *indexPartCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, io.EOF
	}
	if err := c.idx.ensure(); err != nil {
		return nil, err
	}
	if !c.ranged {
		ranges := core.PartitionRanges(len(c.idx.ids), c.parts)
		if c.part < len(ranges) {
			c.lo, c.hi = ranges[c.part][0], ranges[c.part][1]
		}
		c.ranged = true
	}
	if c.lo+c.i >= c.hi {
		return nil, io.EOF
	}
	id := c.idx.ids[c.lo+c.i]
	// Same cost model as the serial indexCursor: one full index scan per
	// extracted consumer.
	a := meterdata.NewAssembler(len(c.idx.temp.Values))
	for _, r := range c.idx.index {
		if r.ID != id {
			continue
		}
		if err := a.Add(r); err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
	}
	series := a.Series()
	if len(series) != 1 {
		return nil, fmt.Errorf("filestore: index scan for household %d yielded %d series", id, len(series))
	}
	c.i++
	return series[0], nil
}

func (c *indexPartCursor) Reset() error {
	// Rewind only: a closed partition stays closed (matching core's
	// lazyCursor). Close released this cursor's hold on the shared
	// index, so reviving it here would make the next Close decrement
	// the refcount a second time.
	c.i = 0
	return nil
}

func (c *indexPartCursor) Close() error {
	if !c.closed {
		c.closed = true
		c.idx.release()
	}
	return nil
}

func (c *indexPartCursor) SizeHint() (int, bool) {
	if !c.ranged {
		return 0, false
	}
	return c.hi - c.lo, true
}
