package filestore

import (
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// fileCursor streams a partitioned source one consumer file at a time —
// the Matlab small-files path (Figure 5). Memory stays flat: only the
// current file's series are resident while the pipeline computes.
type fileCursor struct {
	src     *meterdata.Source
	paths   []string
	next    int // next file index
	pending []*timeseries.Series
	closed  bool
}

func newFileCursor(src *meterdata.Source) *fileCursor {
	return &fileCursor{src: src, paths: src.Paths()}
}

func (c *fileCursor) Next() (*timeseries.Series, error) {
	if c.closed {
		return nil, io.EOF
	}
	for len(c.pending) == 0 {
		if c.next >= len(c.paths) {
			return nil, io.EOF
		}
		series, err := meterdata.ReadSeriesFile(c.paths[c.next], c.src.Format)
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		c.next++
		c.pending = series
	}
	s := c.pending[0]
	c.pending = c.pending[1:]
	return s, nil
}

func (c *fileCursor) Reset() error {
	c.next = 0
	c.pending = nil
	c.closed = false
	return nil
}

func (c *fileCursor) Close() error {
	c.closed = true
	c.pending = nil
	return nil
}

// SizeHint reports one consumer per file, exact for partitioned sources.
func (c *fileCursor) SizeHint() (int, bool) { return len(c.paths), true }

// indexCursor reproduces the paper's big-file Matlab path (§5.3.1):
// "Matlab reads the entire large file into an index which is then used
// to extract individual consumers' data; this is slower than reading
// small files one-by-one". The whole unpartitioned file is read into an
// in-memory reading index once, and every Next extracts one consumer by
// scanning that index end-to-end — the super-linear degradation of
// Figure 5 lives here, in the cursor, not in task code.
type indexCursor struct {
	src    *meterdata.Source
	temp   *timeseries.Temperature
	index  []meterdata.Reading
	ids    []timeseries.ID
	i      int
	built  bool
	closed bool
}

func newIndexCursor(src *meterdata.Source) *indexCursor {
	return &indexCursor{src: src}
}

func (c *indexCursor) build() error {
	temp, err := meterdata.ReadTemperature(c.src.Dir)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	var index []meterdata.Reading
	var ids []timeseries.ID
	seen := map[timeseries.ID]bool{}
	for _, path := range c.src.Paths() {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
		err = meterdata.ScanReadings(f, func(r meterdata.Reading) error {
			index = append(index, r)
			if !seen[r.ID] {
				seen[r.ID] = true
				ids = append(ids, r.ID)
			}
			return nil
		})
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.temp, c.index, c.ids = temp, index, ids
	c.built = true
	return nil
}

func (c *indexCursor) Next() (*timeseries.Series, error) {
	if c.closed {
		return nil, io.EOF
	}
	if !c.built {
		if err := c.build(); err != nil {
			return nil, err
		}
	}
	if c.i >= len(c.ids) {
		return nil, io.EOF
	}
	id := c.ids[c.i]
	// One full index scan per consumer, as the paper describes.
	a := meterdata.NewAssembler(len(c.temp.Values))
	for _, r := range c.index {
		if r.ID != id {
			continue
		}
		if err := a.Add(r); err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
	}
	series := a.Series()
	if len(series) != 1 {
		return nil, fmt.Errorf("filestore: index scan for household %d yielded %d series", id, len(series))
	}
	c.i++
	return series[0], nil
}

func (c *indexCursor) Reset() error {
	// The index survives a rewind; only the consumer pointer moves.
	c.i = 0
	c.closed = false
	return nil
}

func (c *indexCursor) Close() error {
	c.closed = true
	c.index, c.ids = nil, nil
	c.built = false
	c.i = 0
	return nil
}

func (c *indexCursor) SizeHint() (int, bool) {
	if !c.built {
		return 0, false
	}
	return len(c.ids), true
}
