// Package filestore implements the benchmark's Matlab analogue: a
// numeric-computing engine that works directly from text files with no
// database storage layer.
//
// It reproduces the traits the paper measures for Matlab:
//
//   - "Load" does not ingest anything; at most it splits an unpartitioned
//     file into one file per consumer, which is exactly the ~4.5 minute
//     Matlab bar in Figure 4 (§5.3.1).
//   - Analytics on a partitioned source stream one consumer file at a
//     time, while an unpartitioned source must first be read whole into
//     an in-memory index before consumers can be extracted — the paper's
//     explanation for Figure 5's partitioning gap.
//   - An explicit Warm step materializes everything into memory arrays,
//     separating cold-start from warm-start runs (Figure 6).
//
// All four statistical operators come "built in" (the shared analytics
// libraries), matching Table 1's Matlab column except cosine similarity,
// which Matlab lacked and the paper hand-wrote — as we do via the
// similarity package's simple loop.
package filestore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Engine is the Matlab analogue. The zero value is not usable; call New.
type Engine struct {
	// splitDir receives per-consumer files when Load splits an
	// unpartitioned source.
	splitDir string
	src      *meterdata.Source
	cache    *timeseries.Dataset
}

// Option configures the engine.
type Option func(*Engine)

// WithSplitDir sets the scratch directory used when Load must split an
// unpartitioned file into per-consumer files. Defaults to a sibling
// "<dir>-split" of the source directory.
func WithSplitDir(dir string) Option {
	return func(e *Engine) { e.splitDir = dir }
}

// New returns a file-based engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "filestore (Matlab analogue)" }

// Capabilities implements core.Engine (Table 1, Matlab column).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportBuiltin,
		Quantiles:        core.SupportBuiltin,
		Regression:       core.SupportBuiltin,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine. The engine reads from raw files, so Load
// only records the source — except for an unpartitioned source, which it
// splits into one file per consumer (the preparation step the paper
// timed for Matlab in Figure 4).
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	e.cache = nil
	if src.Partitioned {
		e.src = src
		return e.countStats(src)
	}
	// Split into per-consumer files.
	dir := e.splitDir
	if dir == "" {
		dir = src.Dir + "-split"
	}
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("filestore: split: %w", err)
	}
	split, err := meterdata.WritePartitioned(dir, ds, meterdata.FormatReadingPerLine)
	if err != nil {
		return nil, fmt.Errorf("filestore: split: %w", err)
	}
	e.src = split
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{Consumers: len(ds.Series), Readings: readings}, nil
}

// LoadDirect records the source without splitting, for experiments that
// compare partitioned against unpartitioned access (Figure 5).
func (e *Engine) LoadDirect(src *meterdata.Source) (*core.LoadStats, error) {
	e.cache = nil
	e.src = src
	return e.countStats(src)
}

func (e *Engine) countStats(src *meterdata.Source) (*core.LoadStats, error) {
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{Consumers: len(ds.Series), Readings: readings}, nil
}

// Warm reads all data into in-memory arrays, like loading Matlab
// matrices before timing an algorithm (Figure 6's warm start).
func (e *Engine) Warm() error {
	if e.src == nil {
		return fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	ds, err := meterdata.ReadDataset(e.src)
	if err != nil {
		return fmt.Errorf("filestore: warm: %w", err)
	}
	e.cache = ds
	return nil
}

// Release implements core.Engine.
func (e *Engine) Release() error {
	e.cache = nil
	return nil
}

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	if e.src == nil {
		return nil, fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine. The cursor is the engine's native
// extraction path: in-memory arrays after Warm, one consumer file at a
// time for a partitioned source, and the paper's big-file index scan
// for an unpartitioned reading-per-line source (§5.3.1).
func (e *Engine) NewCursor() (core.Cursor, error) {
	if e.src == nil {
		return nil, fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	if e.cache != nil {
		return core.NewDatasetCursor(e.cache), nil
	}
	if e.src.Partitioned {
		return newFileCursor(e.src), nil
	}
	if e.src.Format == meterdata.FormatReadingPerLine {
		return newIndexCursor(e.src), nil
	}
	// Unpartitioned series-per-line: one sequential read of the file.
	src := e.src
	return core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
		ds, err := meterdata.ReadDataset(src)
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		return ds.Series, nil
	}, nil), nil
}

// NewCursors implements core.PartitionedSource. Partitions mirror the
// engine's native extraction paths: range shards of the in-memory
// arrays after Warm, contiguous shards of the per-consumer file list
// for a partitioned source (the list is in ascending household order by
// construction), and consumer-ID ranges of the shared big-file index
// for an unpartitioned reading-per-line source. An unpartitioned
// series-per-line source is one sequential read, so it yields a single
// cursor — the serial fallback.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("filestore: NewCursors: max must be >= 1, got %d", max)
	}
	if e.src == nil {
		return nil, fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	if e.cache != nil {
		series := e.cache.Series
		curs := make([]core.Cursor, 0, max)
		for _, r := range core.PartitionRanges(len(series), max) {
			part := series[r[0]:r[1]]
			curs = append(curs, core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
				return part, nil
			}, nil))
		}
		return curs, nil
	}
	if e.src.Partitioned {
		paths := e.src.Paths()
		curs := make([]core.Cursor, 0, max)
		for _, r := range core.PartitionRanges(len(paths), max) {
			curs = append(curs, newFileCursorPaths(e.src, paths[r[0]:r[1]]))
		}
		return curs, nil
	}
	if e.src.Format == meterdata.FormatReadingPerLine {
		idx := &sharedIndex{src: e.src, open: max}
		curs := make([]core.Cursor, max)
		for p := range curs {
			curs[p] = &indexPartCursor{idx: idx, part: p, parts: max}
		}
		return curs, nil
	}
	cur, err := e.NewCursor()
	if err != nil {
		return nil, err
	}
	return []core.Cursor{cur}, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// Temperature implements core.Engine.
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.cache != nil {
		return e.cache.Temperature, nil
	}
	if e.src == nil {
		return nil, fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	temp, err := meterdata.ReadTemperature(e.src.Dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	return temp, nil
}

// CleanSplitDir removes the scratch directory created by Load for an
// unpartitioned source, if any.
func (e *Engine) CleanSplitDir() error {
	if e.splitDir == "" {
		return nil
	}
	if filepath.Clean(e.splitDir) == "/" {
		return fmt.Errorf("filestore: refusing to remove %q", e.splitDir)
	}
	return os.RemoveAll(e.splitDir)
}

var _ core.Engine = (*Engine)(nil)

// AppendDelta implements core.DeltaAppender by extending the underlying
// CSV files (cheap row appends for reading-per-line files, a rewrite for
// series-per-line files).
func (e *Engine) AppendDelta(delta *timeseries.Dataset) error {
	if e.src == nil {
		return fmt.Errorf("filestore: %w", core.ErrNotLoaded)
	}
	temp, err := meterdata.ReadTemperature(e.src.Dir)
	if err != nil {
		return err
	}
	if err := meterdata.AppendToSource(e.src, delta, len(temp.Values)); err != nil {
		return err
	}
	e.cache = nil
	return nil
}

var _ core.DeltaAppender = (*Engine)(nil)

// Source returns the engine's current data source (nil before Load).
func (e *Engine) Source() *meterdata.Source { return e.src }
