// Package filestore implements the benchmark's Matlab analogue: a
// numeric-computing engine that works directly from text files with no
// database storage layer.
//
// It reproduces the traits the paper measures for Matlab:
//
//   - "Load" does not ingest anything; at most it splits an unpartitioned
//     file into one file per consumer, which is exactly the ~4.5 minute
//     Matlab bar in Figure 4 (§5.3.1).
//   - Analytics on a partitioned source stream one consumer file at a
//     time, while an unpartitioned source must first be read whole into
//     an in-memory index before consumers can be extracted — the paper's
//     explanation for Figure 5's partitioning gap.
//   - An explicit Warm step materializes everything into memory arrays,
//     separating cold-start from warm-start runs (Figure 6).
//
// All four statistical operators come "built in" (the shared analytics
// libraries), matching Table 1's Matlab column except cosine similarity,
// which Matlab lacked and the paper hand-wrote — as we do via the
// similarity package's simple loop.
package filestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Engine is the Matlab analogue. The zero value is not usable; call New.
type Engine struct {
	// splitDir receives per-consumer files when Load splits an
	// unpartitioned source.
	splitDir string
	src      *meterdata.Source
	cache    *timeseries.Dataset
}

// Option configures the engine.
type Option func(*Engine)

// WithSplitDir sets the scratch directory used when Load must split an
// unpartitioned file into per-consumer files. Defaults to a sibling
// "<dir>-split" of the source directory.
func WithSplitDir(dir string) Option {
	return func(e *Engine) { e.splitDir = dir }
}

// New returns a file-based engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "filestore (Matlab analogue)" }

// Capabilities implements core.Engine (Table 1, Matlab column).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportBuiltin,
		Quantiles:        core.SupportBuiltin,
		Regression:       core.SupportBuiltin,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine. The engine reads from raw files, so Load
// only records the source — except for an unpartitioned source, which it
// splits into one file per consumer (the preparation step the paper
// timed for Matlab in Figure 4).
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	e.cache = nil
	if src.Partitioned {
		e.src = src
		return e.countStats(src)
	}
	// Split into per-consumer files.
	dir := e.splitDir
	if dir == "" {
		dir = src.Dir + "-split"
	}
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("filestore: split: %w", err)
	}
	split, err := meterdata.WritePartitioned(dir, ds, meterdata.FormatReadingPerLine)
	if err != nil {
		return nil, fmt.Errorf("filestore: split: %w", err)
	}
	e.src = split
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{Consumers: len(ds.Series), Readings: readings}, nil
}

// LoadDirect records the source without splitting, for experiments that
// compare partitioned against unpartitioned access (Figure 5).
func (e *Engine) LoadDirect(src *meterdata.Source) (*core.LoadStats, error) {
	e.cache = nil
	e.src = src
	return e.countStats(src)
}

func (e *Engine) countStats(src *meterdata.Source) (*core.LoadStats, error) {
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{Consumers: len(ds.Series), Readings: readings}, nil
}

// Warm reads all data into in-memory arrays, like loading Matlab
// matrices before timing an algorithm (Figure 6's warm start).
func (e *Engine) Warm() error {
	if e.src == nil {
		return core.ErrNotLoaded
	}
	ds, err := meterdata.ReadDataset(e.src)
	if err != nil {
		return fmt.Errorf("filestore: warm: %w", err)
	}
	e.cache = ds
	return nil
}

// Release implements core.Engine.
func (e *Engine) Release() error {
	e.cache = nil
	return nil
}

// Run implements core.Engine.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	if e.src == nil {
		return nil, core.ErrNotLoaded
	}
	spec = spec.WithDefaults()

	// Warm path: everything is already in memory arrays.
	if e.cache != nil {
		return core.RunParallel(e.cache, spec)
	}

	// Cold paths. Similarity always needs every series resident.
	if spec.Task == core.TaskSimilarity || !e.src.Partitioned {
		ds, err := e.materializeCold()
		if err != nil {
			return nil, err
		}
		return core.RunParallel(ds, spec)
	}

	// Partitioned cold path: stream one consumer file at a time and run
	// the per-consumer task directly on it, keeping memory flat.
	temp, err := meterdata.ReadTemperature(e.src.Dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	out := &core.Results{Task: spec.Task}
	if spec.Workers <= 1 {
		for _, path := range e.src.Paths() {
			if err := e.runFile(path, temp, spec, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return e.runFilesParallel(temp, spec)
}

// materializeCold builds the full dataset the way the modelled platform
// would. For an unpartitioned reading-per-line file it reproduces the
// behaviour the paper observed in Matlab (§5.3.1): "Matlab reads the
// entire large file into an index which is then used to extract
// individual consumers' data; this is slower than reading small files
// one-by-one" — the index is scanned once per consumer, so the big-file
// path degrades super-linearly with consumer count (Figure 5).
func (e *Engine) materializeCold() (*timeseries.Dataset, error) {
	if e.src.Partitioned || e.src.Format != meterdata.FormatReadingPerLine {
		ds, err := meterdata.ReadDataset(e.src)
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		return ds, nil
	}
	temp, err := meterdata.ReadTemperature(e.src.Dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	// Pass 1: the whole-file index.
	var index []meterdata.Reading
	var ids []timeseries.ID
	seen := map[timeseries.ID]bool{}
	for _, path := range e.src.Paths() {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		err = meterdata.ScanReadings(f, func(r meterdata.Reading) error {
			index = append(index, r)
			if !seen[r.ID] {
				seen[r.ID] = true
				ids = append(ids, r.ID)
			}
			return nil
		})
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Pass 2: extract each consumer by scanning the index.
	series := make([]*timeseries.Series, 0, len(ids))
	for _, id := range ids {
		readings := make([]float64, len(temp.Values))
		for _, r := range index {
			if r.ID != id {
				continue
			}
			if r.Hour < 0 || r.Hour >= len(readings) {
				return nil, fmt.Errorf("filestore: hour %d outside series", r.Hour)
			}
			readings[r.Hour] = r.Consumption
		}
		series = append(series, &timeseries.Series{ID: id, Readings: readings})
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

func (e *Engine) runFile(path string, temp *timeseries.Temperature, spec core.Spec, out *core.Results) error {
	series, err := meterdata.ReadSeriesFile(path, e.src.Format)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	for _, s := range series {
		one := &timeseries.Dataset{Series: []*timeseries.Series{s}, Temperature: temp}
		r, err := core.RunReference(one, spec)
		if err != nil {
			return err
		}
		out.Histograms = append(out.Histograms, r.Histograms...)
		out.ThreeLines = append(out.ThreeLines, r.ThreeLines...)
		out.Profiles = append(out.Profiles, r.Profiles...)
	}
	return nil
}

// runFilesParallel processes per-consumer files with spec.Workers
// goroutines, like running several Matlab instances side by side
// (§5.3.4: "we start a single instance... manually run multiple
// instances of Matlab").
func (e *Engine) runFilesParallel(temp *timeseries.Temperature, spec core.Spec) (*core.Results, error) {
	paths := e.src.Paths()
	parts := make([]*core.Results, spec.Workers)
	errs := make([]error, spec.Workers)
	done := make(chan struct{})
	per := (len(paths) + spec.Workers - 1) / spec.Workers
	launched := 0
	for w := 0; w < spec.Workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(paths) {
			hi = len(paths)
		}
		if lo >= hi {
			break
		}
		launched++
		go func(w, lo, hi int) {
			defer func() { done <- struct{}{} }()
			part := &core.Results{Task: spec.Task}
			for _, p := range paths[lo:hi] {
				if err := e.runFile(p, temp, spec, part); err != nil {
					errs[w] = err
					return
				}
			}
			parts[w] = part
		}(w, lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	out := &core.Results{Task: spec.Task}
	for w, part := range parts {
		if errs[w] != nil {
			return nil, errs[w]
		}
		if part == nil {
			continue
		}
		out.Histograms = append(out.Histograms, part.Histograms...)
		out.ThreeLines = append(out.ThreeLines, part.ThreeLines...)
		out.Profiles = append(out.Profiles, part.Profiles...)
	}
	return out, nil
}

// CleanSplitDir removes the scratch directory created by Load for an
// unpartitioned source, if any.
func (e *Engine) CleanSplitDir() error {
	if e.splitDir == "" {
		return nil
	}
	if filepath.Clean(e.splitDir) == "/" {
		return fmt.Errorf("filestore: refusing to remove %q", e.splitDir)
	}
	return os.RemoveAll(e.splitDir)
}

var _ core.Engine = (*Engine)(nil)

// Append implements core.Appender by extending the underlying CSV files
// (cheap row appends for reading-per-line files, a rewrite for
// series-per-line files).
func (e *Engine) Append(delta *timeseries.Dataset) error {
	if e.src == nil {
		return core.ErrNotLoaded
	}
	temp, err := meterdata.ReadTemperature(e.src.Dir)
	if err != nil {
		return err
	}
	if err := meterdata.AppendToSource(e.src, delta, len(temp.Values)); err != nil {
		return err
	}
	e.cache = nil
	return nil
}

var _ core.Appender = (*Engine)(nil)

// Source returns the engine's current data source (nil before Load).
func (e *Engine) Source() *meterdata.Source { return e.src }
