package mapreduce

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
)

func TestCursorConformance(t *testing.T) {
	srcs, _ := makeSources(t, 5, 10)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			fs := testFS(t, 4)
			e := New(fs)
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.Run(t, func(t *testing.T) core.Cursor {
				cur, err := e.NewCursor()
				if err != nil {
					t.Fatal(err)
				}
				return cur
			})
		})
	}
}

func TestPartitionConformance(t *testing.T) {
	srcs, _ := makeSources(t, 7, 10)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			fs := testFS(t, 4)
			e := New(fs)
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
		})
	}
}

func TestNewCursorRejectsStyleFormatMismatch(t *testing.T) {
	srcs, _ := makeSources(t, 3, 10)
	fs := testFS(t, 2)
	e := New(fs, WithStyle(StyleUDF))
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewCursor(); err == nil {
		t.Fatal("UDF style over reading-per-line input did not error")
	}
}
