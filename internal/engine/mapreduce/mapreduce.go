// Package mapreduce implements the benchmark's Hive analogue: a
// MapReduce execution framework over the simulated cluster and DFS, plus
// the three user-defined-function styles the paper uses for the three
// data formats (§5.4.2):
//
//   - UDAF (format 1): map tasks emit one pair per reading; a shuffle
//     groups readings by household; reduce tasks assemble each series and
//     compute the analytic. The I/O-intensive shuffle is exactly why
//     format 1 is slowest in Figures 13 and 16.
//   - generic UDF (format 2): each line already holds a whole series, so
//     a map-only job suffices — no shuffle.
//   - UDTF (format 3): files are non-splittable, so one mapper sees each
//     household completely and aggregates map-side — again no reduce.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
)

// Pair is one intermediate key/value record. Bytes approximates its
// serialized size for shuffle cost accounting.
type Pair struct {
	Key   int64
	Value interface{}
	Bytes int64
}

// Mapper consumes one input split and emits intermediate pairs.
type Mapper func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error

// Reducer consumes all values for one key and emits final results.
type Reducer func(key int64, values []interface{}, ctx *distsim.TaskCtx, emit func(interface{})) error

// Job describes one MapReduce job.
type Job struct {
	FS *dfs.FS
	// Inputs are DFS file names.
	Inputs []string
	// Splittable controls whether blocks or whole files become splits.
	Splittable bool
	// Map is required.
	Map Mapper
	// Reduce is optional; nil makes the job map-only and the map
	// emissions become the job's output values.
	Reduce Reducer
	// Reducers is the reduce task count (default: cluster node count).
	Reducers int
}

// mapOutput is one map task's locally partitioned emissions.
type mapOutput struct {
	node  int
	parts [][]Pair
	bytes []int64
}

// Run executes the job and returns the output values (map emissions for
// map-only jobs, reduce emissions otherwise). Output order is
// deterministic: by input split then emission order for map-only jobs,
// by key for reduce jobs.
func (j *Job) Run() ([]interface{}, error) {
	return j.RunContext(context.Background())
}

// RunContext is Run under a cancellation context: map/shuffle/reduce
// stages stop paying modeled delays once ctx fires and the job returns
// the context error.
func (j *Job) RunContext(ctx context.Context) ([]interface{}, error) {
	if j.FS == nil || j.Map == nil {
		return nil, fmt.Errorf("mapreduce: job needs FS and Map")
	}
	cluster := j.FS.Cluster()
	splits, err := j.FS.Splits(j.Inputs, j.Splittable)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mapreduce: no input splits")
	}
	reducers := j.Reducers
	if reducers <= 0 {
		reducers = cluster.Nodes()
	}
	mapOnly := j.Reduce == nil
	if mapOnly {
		reducers = 1
	}

	// Map phase: one task per split, scheduled data-locally.
	outputs := make([]*mapOutput, len(splits))
	tasks := make([]distsim.Task, len(splits))
	for i := range splits {
		i := i
		split := &splits[i]
		tasks[i] = distsim.Task{
			PreferredNodes: split.PreferredNodes,
			Fn: func(ctx *distsim.TaskCtx) error {
				// Reading the split costs network unless data-local.
				for _, b := range split.Blocks {
					ctx.ReadBlock(b.Nodes, int64(len(b.Data)))
				}
				ctx.Alloc(split.Bytes())
				defer ctx.Free(split.Bytes())
				ctx.Compute(split.Bytes())
				out := &mapOutput{node: ctx.Node(), parts: make([][]Pair, reducers), bytes: make([]int64, reducers)}
				err := j.Map(split, ctx, func(p Pair) error {
					part := 0
					if reducers > 1 {
						part = int(hashKey(p.Key) % uint64(reducers))
					}
					out.parts[part] = append(out.parts[part], p)
					out.bytes[part] += p.Bytes
					ctx.Alloc(p.Bytes)
					return nil
				})
				if err != nil {
					return err
				}
				outputs[i] = out
				return nil
			},
		}
	}
	if err := cluster.RunCtx(ctx, tasks); err != nil {
		return nil, err
	}

	if mapOnly {
		var results []interface{}
		for _, out := range outputs {
			for _, p := range out.parts[0] {
				results = append(results, p.Value)
			}
		}
		return results, nil
	}

	// Shuffle: move each map partition to its reducer's node.
	reduceNode := make([]int, reducers)
	for p := range reduceNode {
		reduceNode[p] = p % cluster.Nodes()
	}
	var moves []distsim.Move
	for _, out := range outputs {
		for p := 0; p < reducers; p++ {
			if out.bytes[p] > 0 {
				moves = append(moves, distsim.Move{From: out.node, To: reduceNode[p], Bytes: out.bytes[p]})
			}
		}
	}
	cluster.TransferConcurrentCtx(ctx, moves)

	// Reduce phase: group by key within each partition.
	type keyed struct {
		key int64
		out []interface{}
	}
	partResults := make([][]keyed, reducers)
	rtasks := make([]distsim.Task, reducers)
	for p := 0; p < reducers; p++ {
		p := p
		rtasks[p] = distsim.Task{
			PreferredNodes: []int{reduceNode[p]},
			Fn: func(ctx *distsim.TaskCtx) error {
				groups := make(map[int64][]interface{})
				var held int64
				for _, out := range outputs {
					for _, pair := range out.parts[p] {
						groups[pair.Key] = append(groups[pair.Key], pair.Value)
					}
					held += out.bytes[p]
				}
				ctx.Alloc(held)
				defer ctx.Free(held)
				ctx.Compute(held)
				keys := make([]int64, 0, len(groups))
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, k := range keys {
					kr := keyed{key: k}
					if err := j.Reduce(k, groups[k], ctx, func(v interface{}) {
						kr.out = append(kr.out, v)
					}); err != nil {
						return err
					}
					partResults[p] = append(partResults[p], kr)
				}
				return nil
			},
		}
	}
	if err := cluster.RunCtx(ctx, rtasks); err != nil {
		return nil, err
	}

	// Merge partitions by key for deterministic output.
	var all []keyed
	for _, pr := range partResults {
		all = append(all, pr...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	var results []interface{}
	for _, kr := range all {
		results = append(results, kr.out...)
	}
	return results, nil
}

func hashKey(k int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(k >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
