package mapreduce

import (
	"errors"
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func makeSources(t *testing.T, consumers, days int) (map[string]*meterdata.Source, *timeseries.Dataset) {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]*meterdata.Source{}
	s1, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format1"] = s1
	s2, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatSeriesPerLine)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format2"] = s2
	s3, err := meterdata.WriteGrouped(t.TempDir(), ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	srcs["format3"] = s3
	back, err := meterdata.ReadDataset(s1)
	if err != nil {
		t.Fatal(err)
	}
	return srcs, back
}

func checkAgainstReference(t *testing.T, got *core.Results, ref *timeseries.Dataset, spec core.Spec) {
	t.Helper()
	want, err := core.RunReference(ref, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("task %v: count %d vs %d", spec.Task, got.Count(), want.Count())
	}
	switch spec.Task {
	case core.TaskHistogram:
		for i := range want.Histograms {
			g, w := got.Histograms[i], want.Histograms[i]
			if g.ID != w.ID {
				t.Fatalf("histogram %d: ID %d vs %d", i, g.ID, w.ID)
			}
			for b := range w.Histogram.Counts {
				if g.Histogram.Counts[b] != w.Histogram.Counts[b] {
					t.Fatalf("histogram %d bucket %d: %d vs %d", i, b,
						g.Histogram.Counts[b], w.Histogram.Counts[b])
				}
			}
		}
	case core.TaskThreeLine:
		for i := range want.ThreeLines {
			g, w := got.ThreeLines[i], want.ThreeLines[i]
			if g.ID != w.ID || math.Abs(g.HeatingGradient-w.HeatingGradient) > 1e-9 ||
				math.Abs(g.BaseLoad-w.BaseLoad) > 1e-9 {
				t.Fatalf("3-line %d: %+v vs %+v", i, g, w)
			}
		}
	case core.TaskPAR:
		for i := range want.Profiles {
			g, w := got.Profiles[i], want.Profiles[i]
			if g.ID != w.ID {
				t.Fatalf("PAR %d: ID mismatch", i)
			}
			for h := range w.Profile {
				if math.Abs(g.Profile[h]-w.Profile[h]) > 1e-9 {
					t.Fatalf("PAR %d hour %d: %g vs %g", i, h, g.Profile[h], w.Profile[h])
				}
			}
		}
	case core.TaskSimilarity:
		for i := range want.Similar {
			g, w := got.Similar[i], want.Similar[i]
			if g.ID != w.ID || len(g.Matches) != len(w.Matches) {
				t.Fatalf("similarity %d: shape", i)
			}
			for j := range w.Matches {
				if g.Matches[j].ID != w.Matches[j].ID ||
					math.Abs(g.Matches[j].Score-w.Matches[j].Score) > 1e-9 {
					t.Fatalf("similarity %d match %d: %+v vs %+v", i, j, g.Matches[j], w.Matches[j])
				}
			}
		}
	}
}

func TestHiveAllFormatsAllTasks(t *testing.T) {
	srcs, ref := makeSources(t, 5, 30)
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			fs := testFS(t, 4)
			e := New(fs)
			st, err := e.Load(src)
			if err != nil {
				t.Fatal(err)
			}
			if st.Consumers != 5 {
				t.Errorf("consumers = %d", st.Consumers)
			}
			for _, task := range core.Tasks {
				spec := core.Spec{Task: task, K: 3}
				got, err := e.Run(spec)
				if err != nil {
					t.Fatalf("%v: %v", task, err)
				}
				checkAgainstReference(t, got, ref, spec)
			}
		})
	}
}

func TestHiveStyles(t *testing.T) {
	srcs, ref := makeSources(t, 4, 20)
	// UDTF and UDAF both work on format 3 (the Figure 18 comparison).
	for _, style := range []Style{StyleUDTF, StyleUDAF} {
		fs := testFS(t, 4)
		e := New(fs, WithStyle(style))
		if _, err := e.Load(srcs["format3"]); err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(core.Spec{Task: core.TaskHistogram})
		if err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
		checkAgainstReference(t, got, ref, core.Spec{Task: core.TaskHistogram})
	}
	// UDF style on format 1 input is a configuration error.
	fs := testFS(t, 2)
	e := New(fs, WithStyle(StyleUDF))
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil {
		t.Error("UDF on format 1: want error")
	}
	// UDTF style on series-per-line input is a configuration error.
	e2 := New(testFS(t, 2), WithStyle(StyleUDTF))
	if _, err := e2.Load(srcs["format2"]); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(core.Spec{Task: core.TaskHistogram}); err == nil {
		t.Error("UDTF on format 2: want error")
	}
}

func TestHiveUDAFShufflesMoreThanUDF(t *testing.T) {
	srcs, _ := makeSources(t, 6, 30)
	moved := map[string]int64{}
	for name, src := range map[string]*meterdata.Source{
		"format1": srcs["format1"], "format2": srcs["format2"],
	} {
		fs := testFS(t, 4)
		e := New(fs)
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		fs.Cluster().ResetStats()
		if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err != nil {
			t.Fatal(err)
		}
		moved[name] = fs.Cluster().Stats().BytesMoved
	}
	if moved["format1"] <= moved["format2"] {
		t.Errorf("format1 moved %d bytes, format2 %d — shuffle should dominate",
			moved["format1"], moved["format2"])
	}
}

func TestHiveRunWithoutLoad(t *testing.T) {
	e := New(testFS(t, 2))
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v", err)
	}
	if err := e.Release(); err != nil {
		t.Errorf("release: %v", err)
	}
	if e.Name() == "" || e.Capabilities().Histogram != core.SupportBuiltin {
		t.Error("metadata wrong")
	}
}

func TestHiveWithReducers(t *testing.T) {
	srcs, ref := makeSources(t, 4, 15)
	e := New(testFS(t, 4), WithReducers(7))
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(core.Spec{Task: core.TaskPAR})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, got, ref, core.Spec{Task: core.TaskPAR})
}

// TestHiveSurvivesInjectedFailures runs the full format-1 pipeline with
// a 30% injected task failure rate and a dead DFS node: results must be
// identical to a failure-free run.
func TestHiveSurvivesInjectedFailures(t *testing.T) {
	srcs, ref := makeSources(t, 5, 20)
	fs := testFS(t, 4)
	fs.Cluster().InjectFailures(0.3, 50, 7)
	fs.KillNode(2)
	e := New(fs)
	if _, err := e.Load(srcs["format1"]); err != nil {
		t.Fatal(err)
	}
	for _, task := range core.Tasks {
		spec := core.Spec{Task: task, K: 3}
		got, err := e.Run(spec)
		if err != nil {
			t.Fatalf("%v under failures: %v", task, err)
		}
		checkAgainstReference(t, got, ref, spec)
	}
	if fs.Cluster().Stats().TaskRetries == 0 {
		t.Error("no retries happened at 30% failure rate")
	}
}
