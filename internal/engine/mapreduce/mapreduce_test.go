package mapreduce

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
)

func testFS(t *testing.T, nodes int) *dfs.FS {
	t.Helper()
	c, err := distsim.New(distsim.Config{
		Nodes: nodes, SlotsPerNode: 4,
		TransferLatency: time.Microsecond, BytesPerSecond: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.WithBlockSize(64))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// wordcount-style fixture: lines of "key value".
func writeNumbers(t *testing.T, fs *dfs.FS, name string, n int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i%5, i)
	}
	if err := fs.Write(name, []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
}

func parseLineMapper(split *dfs.Split, _ *distsim.TaskCtx, emit func(Pair) error) error {
	for _, line := range strings.Split(string(split.Data()), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Fields(line)
		k, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return err
		}
		if err := emit(Pair{Key: k, Value: v, Bytes: 16}); err != nil {
			return err
		}
	}
	return nil
}

func TestMapReduceSum(t *testing.T) {
	fs := testFS(t, 4)
	writeNumbers(t, fs, "nums", 100)
	job := &Job{
		FS:         fs,
		Inputs:     []string{"nums"},
		Splittable: true,
		Map:        parseLineMapper,
		Reduce: func(key int64, values []interface{}, _ *distsim.TaskCtx, emit func(interface{})) error {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			emit([2]int64{key, sum})
			return nil
		},
	}
	out, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("outputs = %d", len(out))
	}
	// Sum of i for i%5==k, i<100: arithmetic series.
	want := map[int64]int64{}
	for i := int64(0); i < 100; i++ {
		want[i%5] += i
	}
	for _, v := range out {
		kv := v.([2]int64)
		if want[kv[0]] != kv[1] {
			t.Errorf("key %d sum = %d, want %d", kv[0], kv[1], want[kv[0]])
		}
	}
	// Reduce output is sorted by key.
	for i := 1; i < len(out); i++ {
		if out[i].([2]int64)[0] <= out[i-1].([2]int64)[0] {
			t.Error("reduce output not sorted by key")
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	fs := testFS(t, 4)
	writeNumbers(t, fs, "nums", 20)
	job := &Job{
		FS:         fs,
		Inputs:     []string{"nums"},
		Splittable: true,
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			return parseLineMapper(split, ctx, func(p Pair) error {
				p.Value = p.Value.(int64) * 2
				return emit(p)
			})
		},
	}
	before := fs.Cluster().Stats().BytesMoved
	out, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("outputs = %d", len(out))
	}
	// Map-only jobs shuffle nothing beyond any non-local block reads.
	after := fs.Cluster().Stats()
	if after.Transfers > before+int64(after.RemoteReads) {
		t.Errorf("map-only job transferred: %+v", after)
	}
}

func TestShuffleChargesNetwork(t *testing.T) {
	fs := testFS(t, 4)
	writeNumbers(t, fs, "nums", 500)
	job := &Job{
		FS: fs, Inputs: []string{"nums"}, Splittable: true,
		Map: parseLineMapper,
		Reduce: func(key int64, values []interface{}, _ *distsim.TaskCtx, emit func(interface{})) error {
			emit(int64(len(values)))
			return nil
		},
	}
	fs.Cluster().ResetStats()
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Cluster().Stats().BytesMoved == 0 {
		t.Error("reduce job moved no bytes")
	}
}

func TestJobErrors(t *testing.T) {
	fs := testFS(t, 2)
	if _, err := (&Job{}).Run(); err == nil {
		t.Error("missing FS/Map: want error")
	}
	job := &Job{FS: fs, Inputs: []string{"missing"}, Map: parseLineMapper}
	if _, err := job.Run(); err == nil {
		t.Error("missing input: want error")
	}
	// Mapper errors propagate.
	writeNumbers(t, fs, "nums", 10)
	boom := errors.New("boom")
	bad := &Job{FS: fs, Inputs: []string{"nums"}, Splittable: true,
		Map: func(*dfs.Split, *distsim.TaskCtx, func(Pair) error) error { return boom }}
	if _, err := bad.Run(); err != boom {
		t.Errorf("mapper err = %v", err)
	}
	// Reducer errors propagate.
	badReduce := &Job{FS: fs, Inputs: []string{"nums"}, Splittable: true,
		Map: parseLineMapper,
		Reduce: func(int64, []interface{}, *distsim.TaskCtx, func(interface{})) error {
			return boom
		}}
	if _, err := badReduce.Run(); err != boom {
		t.Errorf("reducer err = %v", err)
	}
}

func TestReducerCountControlsPartitions(t *testing.T) {
	fs := testFS(t, 4)
	writeNumbers(t, fs, "nums", 200)
	for _, reducers := range []int{1, 3, 8} {
		job := &Job{FS: fs, Inputs: []string{"nums"}, Splittable: true,
			Reducers: reducers,
			Map:      parseLineMapper,
			Reduce: func(key int64, values []interface{}, _ *distsim.TaskCtx, emit func(interface{})) error {
				emit(key)
				return nil
			}}
		out, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 {
			t.Errorf("reducers=%d: outputs = %d", reducers, len(out))
		}
	}
}
