package mapreduce

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Style selects how the Hive analogue expresses a per-consumer task.
type Style int

const (
	// StyleAuto picks UDAF for reading-per-line input, UDF for
	// series-per-line input, and UDTF for grouped non-splittable files.
	StyleAuto Style = iota
	// StyleUDAF forces the shuffle-based aggregation plan.
	StyleUDAF
	// StyleUDF forces the map-only plan (requires series-per-line).
	StyleUDF
	// StyleUDTF forces the map-side-aggregation plan over non-splittable
	// files (requires each household contained in one file).
	StyleUDTF
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleAuto:
		return "auto"
	case StyleUDAF:
		return "UDAF"
	case StyleUDF:
		return "UDF"
	case StyleUDTF:
		return "UDTF"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Engine is the Hive analogue: SQL-like jobs compiled to MapReduce over
// DFS external tables.
type Engine struct {
	fs    *dfs.FS
	style Style

	inputs  []string
	format  meterdata.Format
	grouped bool
	temp    *timeseries.Temperature
	// reducers overrides the reduce task count (0 = node count).
	reducers int
}

// Option configures the engine.
type Option func(*Engine)

// WithStyle forces a UDF style (default StyleAuto).
func WithStyle(s Style) Option { return func(e *Engine) { e.style = s } }

// WithReducers overrides the reduce task count (the paper's footnote 8:
// "Hive generally performed better with more MapReduce tasks up to a
// certain point").
func WithReducers(n int) Option { return func(e *Engine) { e.reducers = n } }

// New returns a Hive-analogue engine over the given DFS.
func New(fs *dfs.FS, opts ...Option) *Engine {
	e := &Engine{fs: fs}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "mapreduce (Hive analogue)" }

// Capabilities implements core.Engine (Table 1, Hive column: histogram
// built in, regression via a third-party library, the rest hand-written
// UDFs).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportBuiltin,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportThirdParty,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: it uploads the source files into DFS
// (external tables) and reads the shared temperature series driver-side.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	temp, err := meterdata.ReadTemperature(src.Dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	var total int64
	consumers := make(map[timeseries.ID]bool)
	var readings int64
	for _, rel := range src.DataFiles {
		path := src.Dir + "/" + rel
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %w", err)
		}
		name := "input/" + rel
		if err := e.fs.Write(name, data); err != nil {
			return nil, err
		}
		inputs = append(inputs, name)
		total += int64(len(data))
		// Count consumers/readings for stats.
		if err := countConsumers(data, src.Format, consumers, &readings); err != nil {
			return nil, err
		}
	}
	e.inputs = inputs
	e.format = src.Format
	e.grouped = !src.Partitioned && len(src.DataFiles) > 1
	e.temp = temp
	return &core.LoadStats{
		Consumers:    len(consumers),
		Readings:     readings,
		StorageBytes: total,
	}, nil
}

func countConsumers(data []byte, format meterdata.Format, seen map[timeseries.ID]bool, readings *int64) error {
	switch format {
	case meterdata.FormatReadingPerLine:
		return meterdata.ScanReadings(strings.NewReader(string(data)), func(r meterdata.Reading) error {
			seen[r.ID] = true
			*readings++
			return nil
		})
	case meterdata.FormatSeriesPerLine:
		return meterdata.ScanSeries(strings.NewReader(string(data)), func(s *timeseries.Series) error {
			seen[s.ID] = true
			*readings += int64(len(s.Readings))
			return nil
		})
	default:
		return fmt.Errorf("mapreduce: unknown format %v", format)
	}
}

// Release implements core.Engine. The Hive analogue holds no warm state
// beyond DFS itself.
func (e *Engine) Release() error { return nil }

// effectiveStyle resolves StyleAuto against the loaded format.
func (e *Engine) effectiveStyle() (Style, error) {
	if e.style != StyleAuto {
		return e.style, nil
	}
	switch {
	case e.format == meterdata.FormatSeriesPerLine:
		return StyleUDF, nil
	case e.grouped:
		return StyleUDTF, nil
	default:
		return StyleUDAF, nil
	}
}

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("mapreduce: %w", core.ErrNotLoaded)
	}
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine. Extraction is the engine's
// series-assembly MapReduce job in the style resolved from the loaded
// format (§5.4.2): UDAF shuffles readings by household and assembles
// reduce-side, the generic UDF reads whole series map-only, and UDTF
// aggregates map-side over non-splittable files. The job runs once on
// first Next; every plan ships the temperature series to each node
// first, like Hive distributing a map-join table.
func (e *Engine) NewCursor() (core.Cursor, error) {
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("mapreduce: %w", core.ErrNotLoaded)
	}
	style, err := e.effectiveStyle()
	if err != nil {
		return nil, err
	}
	switch style {
	case StyleUDF:
		if e.format != meterdata.FormatSeriesPerLine {
			return nil, fmt.Errorf("mapreduce: UDF style needs series-per-line input, have %v", e.format)
		}
	case StyleUDAF, StyleUDTF:
		if e.format != meterdata.FormatReadingPerLine {
			return nil, fmt.Errorf("mapreduce: %v style needs reading-per-line input, have %v", style, e.format)
		}
	default:
		return nil, fmt.Errorf("mapreduce: unsupported style %v", style)
	}
	return core.NewLazyCursor(func(ctx context.Context) ([]*timeseries.Series, error) {
		e.broadcastTemperature(ctx)
		var values []interface{}
		var err error
		switch style {
		case StyleUDF:
			values, err = e.extractUDF(ctx, e.inputs)
		case StyleUDTF:
			values, err = e.extractUDTF(ctx, e.inputs)
		default:
			values, err = e.extractUDAF(ctx)
		}
		if err != nil {
			return nil, err
		}
		return seriesFromValues(values)
	}, nil), nil
}

// seriesFromValues converts a job's emitted values to series sorted by
// household ID.
func seriesFromValues(values []interface{}) ([]*timeseries.Series, error) {
	series := make([]*timeseries.Series, 0, len(values))
	for _, v := range values {
		s, ok := v.(*timeseries.Series)
		if !ok {
			return nil, fmt.Errorf("mapreduce: expected series value, got %T", v)
		}
		series = append(series, s)
	}
	sort.Slice(series, func(i, j int) bool { return series[i].ID < series[j].ID })
	return series, nil
}

// NewCursors implements core.PartitionedSource for the map-only plans:
// UDF and UDTF jobs have no shuffle, and every household is whole
// within one input file, so sharding the DFS file list yields disjoint
// extraction jobs that preserve data locality split by split. Each
// cursor runs its own map-only job over its shard on first Next; the
// temperature broadcast is shared and happens once. The UDAF plan
// funnels through a cluster-wide shuffle into one reduce output stream,
// so it (like single-file inputs) falls back to a single cursor.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("mapreduce: NewCursors: max must be >= 1, got %d", max)
	}
	if len(e.inputs) == 0 {
		return nil, fmt.Errorf("mapreduce: %w", core.ErrNotLoaded)
	}
	style, err := e.effectiveStyle()
	if err != nil {
		return nil, err
	}
	single := func() ([]core.Cursor, error) {
		cur, err := e.NewCursor()
		if err != nil {
			return nil, err
		}
		return []core.Cursor{cur}, nil
	}
	switch style {
	case StyleUDF:
		if e.format != meterdata.FormatSeriesPerLine {
			return nil, fmt.Errorf("mapreduce: UDF style needs series-per-line input, have %v", e.format)
		}
	case StyleUDTF:
		if e.format != meterdata.FormatReadingPerLine {
			return nil, fmt.Errorf("mapreduce: %v style needs reading-per-line input, have %v", style, e.format)
		}
	default:
		return single()
	}
	if len(e.inputs) < 2 {
		return single()
	}
	var bcast sync.Once
	var curs []core.Cursor
	for _, r := range core.PartitionRanges(len(e.inputs), max) {
		shard := e.inputs[r[0]:r[1]]
		curs = append(curs, core.NewLazyCursor(func(ctx context.Context) ([]*timeseries.Series, error) {
			bcast.Do(func() { e.broadcastTemperature(ctx) })
			var values []interface{}
			var err error
			if style == StyleUDF {
				values, err = e.extractUDF(ctx, shard)
			} else {
				values, err = e.extractUDTF(ctx, shard)
			}
			if err != nil {
				return nil, err
			}
			return seriesFromValues(values)
		}, nil))
	}
	return curs, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// Temperature implements core.Engine.
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.temp == nil {
		return nil, fmt.Errorf("mapreduce: %w", core.ErrNotLoaded)
	}
	return e.temp, nil
}

// ParallelHint implements exec.ParallelHinter: the cluster's total task
// slots, so node-count sweeps keep scaling compute when the spec leaves
// Workers unset.
func (e *Engine) ParallelHint() int {
	cfg := e.fs.Cluster().Config()
	return cfg.Nodes * cfg.SlotsPerNode
}

func (e *Engine) broadcastTemperature(ctx context.Context) {
	cluster := e.fs.Cluster()
	bytes := int64(len(e.temp.Values) * 8)
	moves := make([]distsim.Move, 0, cluster.Nodes())
	for n := 0; n < cluster.Nodes(); n++ {
		moves = append(moves, distsim.Move{From: -1, To: n, Bytes: bytes})
	}
	cluster.TransferConcurrentCtx(ctx, moves)
}

// hourValue is the UDAF intermediate value: one reading.
type hourValue struct {
	hour int
	cons float64
}

// extractUDAF is the format-1 plan: map parses rows and emits
// (household, reading); a shuffle groups readings by household; reduce
// assembles each series. The I/O-intensive shuffle is exactly why
// format 1 is slowest in Figures 13 and 16.
func (e *Engine) extractUDAF(ctx context.Context) ([]interface{}, error) {
	tempLen := len(e.temp.Values)
	job := &Job{
		FS:         e.fs,
		Inputs:     e.inputs,
		Splittable: true,
		Reducers:   e.reducers,
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			return meterdata.ScanReadings(split.Reader(), func(r meterdata.Reading) error {
				return emit(Pair{
					Key:   int64(r.ID),
					Value: hourValue{hour: r.Hour, cons: r.Consumption},
					Bytes: 16,
				})
			})
		},
		Reduce: func(key int64, values []interface{}, ctx *distsim.TaskCtx, emit func(interface{})) error {
			a := meterdata.NewAssembler(tempLen)
			for _, v := range values {
				hv, ok := v.(hourValue)
				if !ok {
					return fmt.Errorf("mapreduce: unexpected UDAF value %T", v)
				}
				r := meterdata.Reading{ID: timeseries.ID(key), Hour: hv.hour, Consumption: hv.cons}
				if err := a.Add(r); err != nil {
					return fmt.Errorf("mapreduce: %w", err)
				}
			}
			for _, s := range a.Series() {
				emit(s)
			}
			return nil
		},
	}
	return job.RunContext(ctx)
}

// extractUDF is the format-2 plan: map-only, one whole series per line,
// no shuffle. inputs may be a shard of the loaded file list (partition
// cursors run one job per shard).
func (e *Engine) extractUDF(ctx context.Context, inputs []string) ([]interface{}, error) {
	job := &Job{
		FS:         e.fs,
		Inputs:     inputs,
		Splittable: true,
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			return meterdata.ScanSeries(split.Reader(), func(s *timeseries.Series) error {
				return emit(Pair{Key: int64(s.ID), Value: s, Bytes: int64(len(s.Readings) * 8)})
			})
		},
	}
	return job.RunContext(ctx)
}

// extractUDTF is the format-3 plan: map-only over non-splittable files
// with map-side aggregation (each household is whole within one file).
// inputs may be a shard of the loaded file list.
func (e *Engine) extractUDTF(ctx context.Context, inputs []string) ([]interface{}, error) {
	tempLen := len(e.temp.Values)
	job := &Job{
		FS:         e.fs,
		Inputs:     inputs,
		Splittable: false, // the customized isSplitable()==false input format
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			a := meterdata.NewAssembler(tempLen)
			if err := meterdata.ScanReadings(split.Reader(), a.Add); err != nil {
				return err
			}
			for _, s := range a.Series() {
				if err := emit(Pair{Key: int64(s.ID), Value: s, Bytes: int64(tempLen * 8)}); err != nil {
					return err
				}
			}
			return nil
		},
	}
	return job.RunContext(ctx)
}

var _ core.Engine = (*Engine)(nil)
