package mapreduce

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/distsim"
	"github.com/smartmeter/smartbench/internal/engine/dfs"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Style selects how the Hive analogue expresses a per-consumer task.
type Style int

const (
	// StyleAuto picks UDAF for reading-per-line input, UDF for
	// series-per-line input, and UDTF for grouped non-splittable files.
	StyleAuto Style = iota
	// StyleUDAF forces the shuffle-based aggregation plan.
	StyleUDAF
	// StyleUDF forces the map-only plan (requires series-per-line).
	StyleUDF
	// StyleUDTF forces the map-side-aggregation plan over non-splittable
	// files (requires each household contained in one file).
	StyleUDTF
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleAuto:
		return "auto"
	case StyleUDAF:
		return "UDAF"
	case StyleUDF:
		return "UDF"
	case StyleUDTF:
		return "UDTF"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Engine is the Hive analogue: SQL-like jobs compiled to MapReduce over
// DFS external tables.
type Engine struct {
	fs    *dfs.FS
	style Style

	inputs  []string
	format  meterdata.Format
	grouped bool
	temp    *timeseries.Temperature
	// reducers overrides the reduce task count (0 = node count).
	reducers int
}

// Option configures the engine.
type Option func(*Engine)

// WithStyle forces a UDF style (default StyleAuto).
func WithStyle(s Style) Option { return func(e *Engine) { e.style = s } }

// WithReducers overrides the reduce task count (the paper's footnote 8:
// "Hive generally performed better with more MapReduce tasks up to a
// certain point").
func WithReducers(n int) Option { return func(e *Engine) { e.reducers = n } }

// New returns a Hive-analogue engine over the given DFS.
func New(fs *dfs.FS, opts ...Option) *Engine {
	e := &Engine{fs: fs}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "mapreduce (Hive analogue)" }

// Capabilities implements core.Engine (Table 1, Hive column: histogram
// built in, regression via a third-party library, the rest hand-written
// UDFs).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportBuiltin,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportThirdParty,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: it uploads the source files into DFS
// (external tables) and reads the shared temperature series driver-side.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	temp, err := meterdata.ReadTemperature(src.Dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	var total int64
	consumers := make(map[timeseries.ID]bool)
	var readings int64
	for _, rel := range src.DataFiles {
		path := src.Dir + "/" + rel
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %w", err)
		}
		name := "input/" + rel
		if err := e.fs.Write(name, data); err != nil {
			return nil, err
		}
		inputs = append(inputs, name)
		total += int64(len(data))
		// Count consumers/readings for stats.
		if err := countConsumers(data, src.Format, consumers, &readings); err != nil {
			return nil, err
		}
	}
	e.inputs = inputs
	e.format = src.Format
	e.grouped = !src.Partitioned && len(src.DataFiles) > 1
	e.temp = temp
	return &core.LoadStats{
		Consumers:    len(consumers),
		Readings:     readings,
		StorageBytes: total,
	}, nil
}

func countConsumers(data []byte, format meterdata.Format, seen map[timeseries.ID]bool, readings *int64) error {
	switch format {
	case meterdata.FormatReadingPerLine:
		return meterdata.ScanReadings(strings.NewReader(string(data)), func(r meterdata.Reading) error {
			seen[r.ID] = true
			*readings++
			return nil
		})
	case meterdata.FormatSeriesPerLine:
		return meterdata.ScanSeries(strings.NewReader(string(data)), func(s *timeseries.Series) error {
			seen[s.ID] = true
			*readings += int64(len(s.Readings))
			return nil
		})
	default:
		return fmt.Errorf("mapreduce: unknown format %v", format)
	}
}

// Release implements core.Engine. The Hive analogue holds no warm state
// beyond DFS itself.
func (e *Engine) Release() error { return nil }

// effectiveStyle resolves StyleAuto against the loaded format.
func (e *Engine) effectiveStyle() (Style, error) {
	if e.style != StyleAuto {
		return e.style, nil
	}
	switch {
	case e.format == meterdata.FormatSeriesPerLine:
		return StyleUDF, nil
	case e.grouped:
		return StyleUDTF, nil
	default:
		return StyleUDAF, nil
	}
}

// Run implements core.Engine.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	if len(e.inputs) == 0 {
		return nil, core.ErrNotLoaded
	}
	spec = spec.WithDefaults()
	// Small-table distribution: every job ships the temperature series to
	// each node once, like Hive distributing a map-join table.
	e.broadcastTemperature()

	if spec.Task == core.TaskSimilarity {
		return e.runSimilarity(spec)
	}
	style, err := e.effectiveStyle()
	if err != nil {
		return nil, err
	}
	var values []interface{}
	switch style {
	case StyleUDF:
		if e.format != meterdata.FormatSeriesPerLine {
			return nil, fmt.Errorf("mapreduce: UDF style needs series-per-line input, have %v", e.format)
		}
		values, err = e.runUDF(spec)
	case StyleUDTF:
		values, err = e.runUDTF(spec)
	case StyleUDAF:
		if e.format != meterdata.FormatReadingPerLine {
			return nil, fmt.Errorf("mapreduce: UDAF style needs reading-per-line input, have %v", e.format)
		}
		values, err = e.runUDAF(spec)
	default:
		return nil, fmt.Errorf("mapreduce: unsupported style %v", style)
	}
	if err != nil {
		return nil, err
	}
	return assembleResults(spec, values)
}

func (e *Engine) broadcastTemperature() {
	cluster := e.fs.Cluster()
	bytes := int64(len(e.temp.Values) * 8)
	moves := make([]distsim.Move, 0, cluster.Nodes())
	for n := 0; n < cluster.Nodes(); n++ {
		moves = append(moves, distsim.Move{From: -1, To: n, Bytes: bytes})
	}
	cluster.TransferConcurrent(moves)
}

// computeOne runs the per-consumer analytic for one assembled series.
func (e *Engine) computeOne(s *timeseries.Series, spec core.Spec) (interface{}, error) {
	one := &timeseries.Dataset{Series: []*timeseries.Series{s}, Temperature: e.temp}
	r, err := core.RunReference(one, spec)
	if err != nil {
		return nil, err
	}
	switch spec.Task {
	case core.TaskHistogram:
		return r.Histograms[0], nil
	case core.TaskThreeLine:
		return r.ThreeLines[0], nil
	case core.TaskPAR:
		return r.Profiles[0], nil
	default:
		return nil, fmt.Errorf("mapreduce: computeOne cannot run %v", spec.Task)
	}
}

// hourValue is the UDAF intermediate value: one reading.
type hourValue struct {
	hour int
	cons float64
}

// runUDAF is the format-1 plan: map parses rows and emits
// (household, reading); reduce assembles the series and computes.
func (e *Engine) runUDAF(spec core.Spec) ([]interface{}, error) {
	job := &Job{
		FS:         e.fs,
		Inputs:     e.inputs,
		Splittable: true,
		Reducers:   e.reducers,
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			return meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
				return emit(Pair{
					Key:   int64(r.ID),
					Value: hourValue{hour: r.Hour, cons: r.Consumption},
					Bytes: 16,
				})
			})
		},
		Reduce: func(key int64, values []interface{}, ctx *distsim.TaskCtx, emit func(interface{})) error {
			readings := make([]float64, len(e.temp.Values))
			for _, v := range values {
				hv, ok := v.(hourValue)
				if !ok {
					return fmt.Errorf("mapreduce: unexpected UDAF value %T", v)
				}
				if hv.hour < 0 || hv.hour >= len(readings) {
					return fmt.Errorf("mapreduce: hour %d outside series", hv.hour)
				}
				readings[hv.hour] = hv.cons
			}
			s := &timeseries.Series{ID: timeseries.ID(key), Readings: readings}
			out, err := e.computeOne(s, spec)
			if err != nil {
				return err
			}
			emit(out)
			return nil
		},
	}
	return job.Run()
}

// runUDF is the format-2 plan: map-only, one series per line.
func (e *Engine) runUDF(spec core.Spec) ([]interface{}, error) {
	job := &Job{
		FS:         e.fs,
		Inputs:     e.inputs,
		Splittable: true,
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			return meterdata.ScanSeries(strings.NewReader(string(split.Data())), func(s *timeseries.Series) error {
				out, err := e.computeOne(s, spec)
				if err != nil {
					return err
				}
				return emit(Pair{Key: int64(s.ID), Value: out, Bytes: 64})
			})
		},
	}
	values, err := job.Run()
	if err != nil {
		return nil, err
	}
	return values, nil
}

// runUDTF is the format-3 plan: map-only over non-splittable files with
// map-side aggregation (each household is whole within one file).
func (e *Engine) runUDTF(spec core.Spec) ([]interface{}, error) {
	if e.format != meterdata.FormatReadingPerLine {
		return nil, fmt.Errorf("mapreduce: UDTF style needs reading-per-line input, have %v", e.format)
	}
	job := &Job{
		FS:         e.fs,
		Inputs:     e.inputs,
		Splittable: false, // the customized isSplitable()==false input format
		Map: func(split *dfs.Split, ctx *distsim.TaskCtx, emit func(Pair) error) error {
			byID := make(map[timeseries.ID][]float64)
			err := meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
				readings := byID[r.ID]
				if readings == nil {
					readings = make([]float64, len(e.temp.Values))
				}
				if r.Hour < 0 || r.Hour >= len(readings) {
					return fmt.Errorf("mapreduce: hour %d outside series", r.Hour)
				}
				readings[r.Hour] = r.Consumption
				byID[r.ID] = readings
				return nil
			})
			if err != nil {
				return err
			}
			ids := make([]timeseries.ID, 0, len(byID))
			for id := range byID {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				out, err := e.computeOne(&timeseries.Series{ID: id, Readings: byID[id]}, spec)
				if err != nil {
					return err
				}
				if err := emit(Pair{Key: int64(id), Value: out, Bytes: 64}); err != nil {
					return err
				}
			}
			return nil
		},
	}
	return job.Run()
}

// runSimilarity implements the paper's Hive similarity plan: a self-join
// whose query plan does not exploit map-side joins, so the full series
// table is shuffled to every reduce partition before pairwise scoring.
func (e *Engine) runSimilarity(spec core.Spec) (*core.Results, error) {
	series, homeNode, err := e.collectSeries()
	if err != nil {
		return nil, err
	}
	if len(series) < 2 {
		return nil, similarity.ErrTooFew
	}
	cluster := e.fs.Cluster()
	reducers := e.reducers
	if reducers <= 0 {
		reducers = cluster.Nodes()
	}
	var totalBytes int64
	for _, s := range series {
		totalBytes += int64(len(s.Readings) * 8)
	}
	// Reduce-side join: every partition receives the whole probe table.
	var moves []distsim.Move
	for p := 0; p < reducers; p++ {
		node := p % cluster.Nodes()
		for i := range series {
			moves = append(moves, distsim.Move{From: homeNode[i], To: node, Bytes: int64(len(series[i].Readings) * 8)})
		}
	}
	cluster.TransferConcurrent(moves)
	// Pack the replicated probe table once for the blocked kernel; every
	// reduce partition scans it read-only via similarity.TopKRow.
	m, err := timeseries.PackMatrix(series)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: %w", err)
	}
	sink := &resultSink{}
	tasks := make([]distsim.Task, reducers)
	for p := 0; p < reducers; p++ {
		p := p
		tasks[p] = distsim.Task{
			PreferredNodes: []int{p % cluster.Nodes()},
			Fn: func(ctx *distsim.TaskCtx) error {
				ctx.Alloc(totalBytes)
				defer ctx.Free(totalBytes)
				// Reduce-side join work: every partition scans the whole
				// replicated probe table (the cost a map-side join avoids).
				ctx.Compute(totalBytes)
				for i, s := range series {
					if int(hashKey(int64(s.ID))%uint64(reducers)) != p {
						continue
					}
					sink.add(&similarity.Result{ID: s.ID, Matches: similarity.TopKRow(m, i, spec.K)})
				}
				return nil
			},
		}
	}
	if err := cluster.Run(tasks); err != nil {
		return nil, err
	}
	out := &core.Results{Task: core.TaskSimilarity}
	for _, v := range sink.out {
		out.Similar = append(out.Similar, v.(*similarity.Result))
	}
	sort.Slice(out.Similar, func(i, j int) bool { return out.Similar[i].ID < out.Similar[j].ID })
	return out, nil
}

// collectSeries assembles every series from the loaded DFS files and
// reports the node where each series was assembled (for shuffle cost).
func (e *Engine) collectSeries() ([]*timeseries.Series, []int, error) {
	splits, err := e.fs.Splits(e.inputs, e.format == meterdata.FormatSeriesPerLine || !e.grouped)
	if err != nil {
		return nil, nil, err
	}
	type located struct {
		s    *timeseries.Series
		node int
	}
	sink := struct {
		mu  sync.Mutex
		all []located
	}{}
	partial := struct {
		mu sync.Mutex
		m  map[timeseries.ID][]float64
		n  map[timeseries.ID]int
	}{m: map[timeseries.ID][]float64{}, n: map[timeseries.ID]int{}}

	tasks := make([]distsim.Task, len(splits))
	for i := range splits {
		split := &splits[i]
		tasks[i] = distsim.Task{
			PreferredNodes: split.PreferredNodes,
			Fn: func(ctx *distsim.TaskCtx) error {
				for _, b := range split.Blocks {
					ctx.ReadBlock(b.Nodes, int64(len(b.Data)))
				}
				ctx.Compute(split.Bytes())
				switch e.format {
				case meterdata.FormatSeriesPerLine:
					return meterdata.ScanSeries(strings.NewReader(string(split.Data())), func(s *timeseries.Series) error {
						sink.mu.Lock()
						sink.all = append(sink.all, located{s: s, node: ctx.Node()})
						sink.mu.Unlock()
						return nil
					})
				case meterdata.FormatReadingPerLine:
					return meterdata.ScanReadings(strings.NewReader(string(split.Data())), func(r meterdata.Reading) error {
						partial.mu.Lock()
						defer partial.mu.Unlock()
						readings := partial.m[r.ID]
						if readings == nil {
							readings = make([]float64, len(e.temp.Values))
							partial.m[r.ID] = readings
							partial.n[r.ID] = ctx.Node()
						}
						if r.Hour < 0 || r.Hour >= len(readings) {
							return fmt.Errorf("mapreduce: hour %d outside series", r.Hour)
						}
						readings[r.Hour] = r.Consumption
						return nil
					})
				default:
					return fmt.Errorf("mapreduce: unknown format %v", e.format)
				}
			},
		}
	}
	if err := e.fs.Cluster().Run(tasks); err != nil {
		return nil, nil, err
	}
	var series []*timeseries.Series
	var nodes []int
	for _, l := range sink.all {
		series = append(series, l.s)
		nodes = append(nodes, l.node)
	}
	for id, readings := range partial.m {
		series = append(series, &timeseries.Series{ID: id, Readings: readings})
		nodes = append(nodes, partial.n[id])
	}
	// Deterministic order by ID.
	idx := make([]int, len(series))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return series[idx[a]].ID < series[idx[b]].ID })
	outS := make([]*timeseries.Series, len(series))
	outN := make([]int, len(series))
	for i, j := range idx {
		outS[i], outN[i] = series[j], nodes[j]
	}
	return outS, outN, nil
}

// assembleResults converts job output values into core.Results sorted
// by household ID.
func assembleResults(spec core.Spec, values []interface{}) (*core.Results, error) {
	out := &core.Results{Task: spec.Task}
	switch spec.Task {
	case core.TaskHistogram:
		for _, v := range values {
			out.Histograms = append(out.Histograms, v.(*histogram.Result))
		}
		sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].ID < out.Histograms[j].ID })
	case core.TaskThreeLine:
		for _, v := range values {
			out.ThreeLines = append(out.ThreeLines, v.(*threeline.Result))
		}
		sort.Slice(out.ThreeLines, func(i, j int) bool { return out.ThreeLines[i].ID < out.ThreeLines[j].ID })
	case core.TaskPAR:
		for _, v := range values {
			out.Profiles = append(out.Profiles, v.(*par.Result))
		}
		sort.Slice(out.Profiles, func(i, j int) bool { return out.Profiles[i].ID < out.Profiles[j].ID })
	default:
		return nil, fmt.Errorf("mapreduce: cannot assemble %v", spec.Task)
	}
	return out, nil
}

var _ core.Engine = (*Engine)(nil)
