package colstore

import (
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// encodeTestSeries builds a consumer mix that exercises every block
// shape: smooth Gaussians, bit-constant series, day-periodic tilings,
// NaN/Inf carriers, and short-tail blocks when blockRows doesn't
// divide the series length.
func encodeTestSeries(t *testing.T, consumers, n int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	out := make([][]float64, consumers)
	for c := range out {
		s := make([]float64, n)
		switch c % 5 {
		case 0: // smooth
			for i := range s {
				s[i] = math.Abs(rng.NormFloat64()) * 2
			}
		case 1: // bit-constant at a non-decimal level
			level := rng.NormFloat64()
			for i := range s {
				s[i] = level
			}
		case 2: // day-periodic tiling
			var tile [24]float64
			for h := range tile {
				tile[h] = rng.NormFloat64()
			}
			for i := range s {
				s[i] = tile[i%24]
			}
		case 3: // NaN/Inf carrier
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			s[n/3] = math.NaN()
			s[2*n/3] = math.Inf(1)
		case 4: // near-constant with spikes
			for i := range s {
				s[i] = 0.5
				if i%97 == 13 {
					s[i] = rng.NormFloat64()
				}
			}
		}
		out[c] = s
	}
	return out
}

func writeSegmentWith(t *testing.T, path string, temp []float64, series [][]float64, opts ...WriterOption) {
	t.Helper()
	w, err := NewSegmentWriter(path, temp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range series {
		if err := w.Append(timeseries.ID(c+1), s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEncodeByteIdentical pins the tentpole guarantee: the
// segment file is byte-for-byte identical whatever the encoder count,
// across quantized and unquantized writes and ragged tail blocks.
func TestParallelEncodeByteIdentical(t *testing.T) {
	n := 24 * 10
	temp := make([]float64, n)
	for i := range temp {
		temp[i] = 10 + 5*math.Sin(float64(i)/24)
	}
	series := encodeTestSeries(t, 23, n)
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		opts []WriterOption
	}{
		{"default", nil},
		{"quantized", []WriterOption{WithQuantize(3)}},
		{"smallblocks", []WriterOption{WithBlockRows(7)}},
	} {
		serialPath := filepath.Join(dir, tc.name+"-serial")
		writeSegmentWith(t, serialPath, temp, series, tc.opts...)
		want, err := os.ReadFile(serialPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, encoders := range []int{2, 3, 8} {
			p := filepath.Join(dir, tc.name+"-par")
			writeSegmentWith(t, p, temp, series, append(append([]WriterOption{}, tc.opts...), WithEncoders(encoders))...)
			got, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s encoders=%d: %d bytes, serial %d", tc.name, encoders, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s encoders=%d: byte %d differs (%#x vs %#x)", tc.name, encoders, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelEncodeMatchesDecode checks a pool-encoded store decodes
// back to the exact appended values (quantization applied).
func TestParallelEncodeMatchesDecode(t *testing.T) {
	n := 24 * 6
	temp := make([]float64, n)
	series := encodeTestSeries(t, 11, n)
	path := filepath.Join(t.TempDir(), "seg")
	writeSegmentWith(t, path, temp, series, WithQuantize(3), WithEncoders(4))
	st, err := openStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	dst := make([]float64, n)
	var scratch []byte
	for c := range series {
		if scratch, err = st.decodeConsumerInto(c, dst, scratch); err != nil {
			t.Fatal(err)
		}
		for i, v := range series[c] {
			want := math.Round(v*1000) / 1000
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("consumer %d row %d: %v want %v", c, i, dst[i], want)
			}
		}
	}
}

// TestSummaryLanesMatchDecodedReduction is the lane-correctness
// property test: for every stored block, across block sizes that are
// sub-day, day-aligned and misaligned, quantized and not, the lanes
// the cursor returns must equal the first-assignment per-hour
// reduction of the decoded block — and blocks without lanes must be
// exactly the NaN-bearing ones.
func TestSummaryLanesMatchDecodedReduction(t *testing.T) {
	n := 24*7 + 5 // ragged tail so the last block straddles
	temp := make([]float64, n)
	series := encodeTestSeries(t, 15, n)
	for _, blockRows := range []int{1, 7, 24, 64, DefaultBlockRows} {
		for _, quant := range []bool{false, true} {
			opts := []WriterOption{WithBlockRows(blockRows)}
			if quant {
				opts = append(opts, WithQuantize(3))
			}
			dir := t.TempDir()
			writeSegmentWith(t, filepath.Join(dir, SegmentFileName), temp, series, opts...)
			e := New(dir)
			if _, err := e.OpenExisting(); err != nil {
				t.Fatal(err)
			}
			cur, err := e.NewSummaryCursor()
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, blockRows)
			var lanes core.HourLanes
			for {
				_, blocks, err := cur.NextSummary()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				for b, bs := range blocks {
					ok, err := cur.HourLanes(b, &lanes)
					if err != nil {
						t.Fatal(err)
					}
					if ok != (bs.NaNs == 0) {
						t.Fatalf("blockRows=%d quant=%v block %d: lanes=%v with %d NaNs", blockRows, quant, b, ok, bs.NaNs)
					}
					if ok != (bs.Flags&core.BlockHourLanes != 0) {
						t.Fatalf("blockRows=%d block %d: lane flag/result mismatch", blockRows, b)
					}
					if err := cur.DecodeBlock(b, dst[:bs.Count]); err != nil {
						t.Fatal(err)
					}
					blk := dst[:bs.Count]
					if !ok {
						continue
					}
					var sums [24]float64
					var counts [24]int32
					var seen [24]bool
					for i, v := range blk {
						h := (bs.Start + i) % 24
						if !seen[h] {
							sums[h], seen[h] = v, true
						} else {
							sums[h] += v
						}
						counts[h]++
					}
					for h := 0; h < 24; h++ {
						if math.Float64bits(lanes.Sums[h]) != math.Float64bits(sums[h]) {
							t.Fatalf("blockRows=%d quant=%v block %d lane %d: sum bits %016x want %016x",
								blockRows, quant, b, h,
								math.Float64bits(lanes.Sums[h]), math.Float64bits(sums[h]))
						}
						if lanes.Counts[h] != counts[h] {
							t.Fatalf("blockRows=%d block %d lane %d: count %d want %d",
								blockRows, b, h, lanes.Counts[h], counts[h])
						}
					}
					if bs.Flags&core.BlockConstant != 0 {
						for i, v := range blk {
							if math.Float64bits(v) != math.Float64bits(blk[0]) {
								t.Fatalf("blockRows=%d block %d: constant flag on varying block (row %d)", blockRows, b, i)
							}
						}
					}
					if bs.Flags&core.BlockHourPeriodic != 0 {
						if bs.Start%24 != 0 || bs.Count%24 != 0 || bs.Count <= 24 {
							t.Fatalf("blockRows=%d block %d: periodic flag on non-aligned block", blockRows, b)
						}
						for i, v := range blk {
							if math.Float64bits(v) != math.Float64bits(lanes.Pattern[i%24]) {
								t.Fatalf("blockRows=%d block %d: pattern mismatch at row %d", blockRows, b, i)
							}
						}
					}
				}
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if err := e.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEncodePoolErrorSticky checks a mid-stream write failure surfaces
// on a later Append or on Close instead of hanging the pool.
func TestEncodePoolErrorSticky(t *testing.T) {
	n := 24 * 4
	temp := make([]float64, n)
	series := encodeTestSeries(t, 8, n)
	path := filepath.Join(t.TempDir(), "seg")
	w, err := NewSegmentWriter(path, temp, WithEncoders(2))
	if err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the pool's writer goroutine: the
	// buffered writes only hit the descriptor once the 1MB buffer
	// fills or Close flushes, so appends keep succeeding and the
	// failure must surface at Close.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	for c, s := range series {
		if err := w.Append(timeseries.ID(c+1), s); err != nil {
			break // acceptable: sticky error surfaced early
		}
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close on a failed writer returned nil")
	}
}

// TestPARFastPathMatchesReference is the end-to-end check for the
// compressed-domain PAR path: a real segment file with day-aligned
// blocks, the engine's Run (which routes through the exec fast path),
// compared bit-for-bit against the decoded reference oracle — and the
// phase counters must show every block was consumed summary-only.
func TestPARFastPathMatchesReference(t *testing.T) {
	dir := t.TempDir()
	ds := buildSegments(t, dir, 6, 30, 24)
	e := New(dir)
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Release() }()
	got, err := e.Run(core.Spec{Task: core.TaskPAR})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunReference(ds, core.Spec{Task: core.TaskPAR}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != len(want.Profiles) {
		t.Fatalf("%d profiles, want %d", len(got.Profiles), len(want.Profiles))
	}
	for i, w := range want.Profiles {
		g := got.Profiles[i]
		if g.ID != w.ID {
			t.Fatalf("profile %d: ID %d vs %d", i, g.ID, w.ID)
		}
		for h := range w.Profile {
			if math.Float64bits(g.Profile[h]) != math.Float64bits(w.Profile[h]) {
				t.Fatalf("consumer %d hour %d: %v want %v", g.ID, h, g.Profile[h], w.Profile[h])
			}
		}
	}
	ph := got.Phases
	blocks := int64(6 * 30) // 24-row blocks over NaN-free data: all lane-reconstructed
	if ph.SummaryBlocks != blocks || ph.DecodedBlocks != 0 {
		t.Fatalf("summary/decoded blocks = %d/%d, want %d/0", ph.SummaryBlocks, ph.DecodedBlocks, blocks)
	}
}

// TestEncodersMatchSeedDataset cross-checks the pool against the
// colstore Load path used everywhere else in the suite.
func TestEncodersMatchSeedDataset(t *testing.T) {
	ds, err := seed.Generate(seed.Config{Consumers: 9, Days: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, opts := range map[string][]WriterOption{
		"serial": nil,
		"pool":   {WithEncoders(3)},
	} {
		w, err := NewSegmentWriter(filepath.Join(dir, name), ds.Temperature.Values, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ds.Series {
			if err := w.Append(s.ID, s.Readings); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := os.ReadFile(filepath.Join(dir, "serial"))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := os.ReadFile(filepath.Join(dir, "pool"))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(pool) {
		t.Fatalf("sizes differ: %d vs %d", len(serial), len(pool))
	}
	for i := range serial {
		if serial[i] != pool[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
