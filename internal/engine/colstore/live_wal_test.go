package colstore

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// sameRows asserts two snapshot maps are bit-identical: same households,
// same lengths, same values.
func sameRows(t *testing.T, got, want map[timeseries.ID][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d households, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("household %d missing after recovery", id)
		}
		if len(g) != len(w) {
			t.Fatalf("household %d: recovered %d hours, want %d", id, len(g), len(w))
		}
		for h := range w {
			if g[h] != w[h] {
				t.Fatalf("household %d hour %d: recovered %v, want %v", id, h, g[h], w[h])
			}
		}
	}
}

// TestWALRecoverAfterCrash: everything appended before a crash replays
// bit-exactly from the log on reopen, with the epoch restarting at zero
// (epochs are per engine instance).
func TestWALRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	e := New(dir, WithWAL(wal.SyncBatch))
	ids := []timeseries.ID{3, 7, 12, 21}
	const hours = 30
	for h := 0; h < hours; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	cur2, ep, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	if ep != 0 {
		t.Errorf("post-recovery epoch = %d, want 0 (epochs restart per instance)", ep)
	}
	sameRows(t, drainSnap(t, cur2), want)
	temp := cur2.(core.SnapshotTemperature).SnapshotTemp()
	if len(temp.Values) != hours {
		t.Fatalf("recovered temperature covers %d hours, want %d", len(temp.Values), hours)
	}
	for h, v := range temp.Values {
		if v != liveTemp(h) {
			t.Fatalf("recovered temperature hour %d: %v, want %v", h, v, liveTemp(h))
		}
	}
	// Recovery is idempotent: a second crash-and-reopen with no new
	// appends replays the same prefix again.
	re.Crash()
	re2 := New(dir, WithWAL(wal.SyncBatch))
	cur3, _, err := re2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur3.Close()
	sameRows(t, drainSnap(t, cur3), want)
}

// TestWALReplayOnOpenExisting: a live tail on top of a loaded base
// survives a crash; OpenExisting reports the recovered tail in its
// stats and serves base + tail bit-exactly.
func TestWALReplayOnOpenExisting(t *testing.T) {
	src, ds := writeSource(t, 3, 2)
	dir := t.TempDir()
	e := New(dir, WithWAL(wal.SyncBatch))
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	baseN := len(ds.Temperature.Values)
	var ids []timeseries.ID
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	for h := baseN; h < baseN+24; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	st, err := re.OpenExisting()
	if err != nil {
		t.Fatal(err)
	}
	wantReadings := int64(len(ids)) * int64(baseN+24)
	if st.Readings != wantReadings {
		t.Errorf("OpenExisting stats.Readings = %d, want %d (base + recovered tail)", st.Readings, wantReadings)
	}
	cur2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	sameRows(t, drainSnap(t, cur2), want)
}

// TestCheckpointCrashLeavesOldWALSegmentReadable: a crash mid-Checkpoint
// — after the temp segment started streaming but before the rename —
// must leave the previous segment and the write-ahead log untouched, so
// a reopen recovers everything and a later Checkpoint succeeds over the
// abandoned temp file.
func TestCheckpointCrashLeavesOldWALSegmentReadable(t *testing.T) {
	src, ds := writeSource(t, 3, 2)
	dir := t.TempDir()
	e := New(dir, WithWAL(wal.SyncBatch))
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	baseN := len(ds.Temperature.Values)
	var ids []timeseries.ID
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	for h := baseN; h < baseN+24; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()

	// Simulate the crash point: Checkpoint writes <segment>.tmp and the
	// process dies before the rename, leaving a torn temp file behind.
	torn := e.path + ".tmp"
	if err := os.WriteFile(torn, []byte("torn mid-checkpoint segment write"), 0o644); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	if _, err := re.OpenExisting(); err != nil {
		t.Fatalf("reopen with abandoned checkpoint temp file: %v", err)
	}
	cur2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, drainSnap(t, cur2), want)
	cur2.Close()

	// A real Checkpoint now replaces both the stale temp file and the
	// old segment; the folded state still matches.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := re.liveHours(); got != 0 {
		t.Errorf("liveHours after checkpoint = %d, want 0", got)
	}
	cur3, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur3.Close()
	sameRows(t, drainSnap(t, cur3), want)
}

// TestWALCheckpointRemainder: with households at unequal hours the
// checkpoint folds only the common prefix and rewrites the log down to
// the remainders; a crash right after still recovers every acked hour.
func TestWALCheckpointRemainder(t *testing.T) {
	dir := t.TempDir()
	e := New(dir, WithWAL(wal.SyncBatch))
	ids := []timeseries.ID{2, 5, 9}
	const common, lead = 48, 7
	for h := 0; h < common; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	for h := common; h < common+lead; h++ {
		if err := e.Append(hourBatch(ids[:1], h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if e.store == nil || e.store.n != common {
		t.Fatalf("checkpoint cut: store covers %v hours, want %d", e.store, common)
	}
	if got := e.liveHours(); got != lead {
		t.Errorf("liveHours after checkpoint = %d, want %d", got, lead)
	}
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	cur, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := drainSnap(t, cur)
	for i, id := range ids {
		wantN := common
		if i == 0 {
			wantN = common + lead
		}
		got := rows[id]
		if len(got) != wantN {
			t.Fatalf("household %d: recovered %d hours, want %d", id, len(got), wantN)
		}
		for h, v := range got {
			if v != liveVal(id, h) {
				t.Fatalf("household %d hour %d: recovered %v, want %v", id, h, v, liveVal(id, h))
			}
		}
	}
	temp := cur.(core.SnapshotTemperature).SnapshotTemp()
	if len(temp.Values) != common+lead {
		t.Fatalf("recovered temperature covers %d hours, want %d", len(temp.Values), common+lead)
	}
}

// TestWALCheckpointAppendSnapshotChaos races Checkpoint against
// concurrent Appends and Snapshots under -race: epochs must stay
// monotonic across folds and every snapshot must remain a bit-exact
// gap-free prefix, before, during and after each segment swap.
func TestWALCheckpointAppendSnapshotChaos(t *testing.T) {
	e := New(t.TempDir(), WithWAL(wal.SyncBatch))
	var ids []timeseries.ID
	for id := timeseries.ID(1); id <= 12; id++ {
		ids = append(ids, id)
	}
	ckpt := func() error {
		err := e.Checkpoint()
		if err != nil && strings.Contains(err.Error(), "nothing to checkpoint") {
			// The race can win before the first append lands.
			return nil
		}
		return err
	}
	cursortest.RunCheckpointChaos(t, e, ckpt, ids, 0, 72)
}

// TestWALBackgroundCheckpointTrigger: crossing the tail budget wakes the
// background checkpointer, which folds the tail without losing a
// reading; cancelling the context stops the goroutine.
func TestWALBackgroundCheckpointTrigger(t *testing.T) {
	dir := t.TempDir()
	const budget = 100
	e := New(dir, WithWAL(wal.SyncBatch), WithTailBudget(budget))
	ctx, cancel := context.WithCancel(context.Background())
	done := e.StartCheckpointer(ctx)
	ids := []timeseries.ID{4, 8, 15, 16}
	const hours = 60 // 240 readings: crosses the budget at least once
	for h := 0; h < hours; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	// The fold is asynchronous; wait for the tail to shrink below the
	// budget (the checkpointer owns no other signal a test can join on).
	deadline := time.After(5 * time.Second)
	for e.liveHours() >= budget {
		select {
		case <-deadline:
			t.Fatalf("background checkpoint never fired: liveHours = %d", e.liveHours())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := e.CheckpointErr(); err != nil {
		t.Fatalf("background checkpoint error: %v", err)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("checkpointer did not exit on context cancel")
	}
	// Nothing was lost across the fold.
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := drainSnap(t, cur)
	for _, id := range ids {
		got := rows[id]
		if len(got) != hours {
			t.Fatalf("household %d: %d hours after background checkpoint, want %d", id, len(got), hours)
		}
		for h, v := range got {
			if v != liveVal(id, h) {
				t.Fatalf("household %d hour %d: %v, want %v", id, h, v, liveVal(id, h))
			}
		}
	}
	if e.store == nil {
		t.Fatal("no segment store after background checkpoint")
	}
}

// TestWALTornShardTailRecovers: chopping bytes off every shard log —
// the torn-write shape a power failure leaves — must never surface a
// decode error; the engine reopens with each household holding a
// bit-exact prefix of what was appended.
func TestWALTornShardTailRecovers(t *testing.T) {
	dir := t.TempDir()
	e := New(dir, WithWAL(wal.SyncBatch))
	ids := []timeseries.ID{1, 2, 3, 4, 5, 6}
	const hours = 20
	for h := 0; h < hours; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash()

	logs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatal("no shard logs on disk")
	}
	for _, p := range logs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 11 {
			if err := os.Truncate(p, fi.Size()-11); err != nil {
				t.Fatal(err)
			}
		}
	}

	re := New(dir, WithWAL(wal.SyncBatch))
	cur, _, err := re.Snapshot()
	if err != nil {
		t.Fatalf("reopen over torn shard tails: %v", err)
	}
	defer cur.Close()
	rows := drainSnap(t, cur)
	for id, got := range rows {
		if len(got) > hours {
			t.Fatalf("household %d: %d hours recovered, only %d appended", id, len(got), hours)
		}
		for h, v := range got {
			if v != liveVal(id, h) {
				t.Fatalf("household %d hour %d: recovered %v, want %v (prefix must be bit-exact)", id, h, v, liveVal(id, h))
			}
		}
	}
}
