package colstore

import (
	"context"
	"encoding/binary"
	"io"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// segmentCursor decodes one consumer column per Next straight out of
// the segment image. All rows land in one contiguous row-major buffer,
// so when the pipeline materializes the cursor for similarity the
// FlatMatrix packing adopts the buffer zero-copy — the column store
// hands its columns to the blocked kernel without a repack. Draining
// the cursor installs the decoded dataset on the engine, keeping the
// old cold-run caching: the next Run is warm.
type segmentCursor struct {
	e         *Engine
	ctx       context.Context
	img       []byte
	consumers int
	n         int
	temp      *timeseries.Temperature
	flat      []float64
	series    []*timeseries.Series
	i         int
	closed    bool
}

func newSegmentCursor(e *Engine, img []byte) (*segmentCursor, error) {
	consumers, n, err := parseHeader(img)
	if err != nil {
		return nil, err
	}
	temp := &timeseries.Temperature{Values: decodeColumn(img[headerSize:headerSize+8*n], n)}
	return &segmentCursor{
		e:         e,
		img:       img,
		consumers: consumers,
		n:         n,
		temp:      temp,
		flat:      make([]float64, consumers*n),
		series:    make([]*timeseries.Series, consumers),
	}, nil
}

func (c *segmentCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *segmentCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= c.consumers {
		return nil, io.EOF
	}
	off := headerSize + 8*c.n + c.i*(8+8*c.n)
	id := timeseries.ID(binary.LittleEndian.Uint64(c.img[off:]))
	row := c.flat[c.i*c.n : (c.i+1)*c.n]
	decodeColumnInto(row, c.img[off+8:off+8+8*c.n])
	s := &timeseries.Series{ID: id, Readings: row}
	c.series[c.i] = s
	c.i++
	if c.i == c.consumers && c.e.decoded == nil {
		c.e.decoded = &timeseries.Dataset{
			Series:      append([]*timeseries.Series(nil), c.series...),
			Temperature: c.temp,
		}
	}
	return s, nil
}

func (c *segmentCursor) Reset() error {
	// The flat buffer is reused; re-decoding writes identical values.
	c.i = 0
	if c.series == nil { // Close dropped the slots; a revived replay refills them
		c.series = make([]*timeseries.Series, c.consumers)
	}
	c.closed = false
	return nil
}

func (c *segmentCursor) Close() error {
	c.closed = true
	c.series = nil
	return nil
}

// SizeHint is exact: the header records the consumer count.
func (c *segmentCursor) SizeHint() (int, bool) { return c.consumers, true }

// segmentRangeCursor decodes one contiguous group of consumer segments
// [lo, hi) — a partition cursor. Each partition owns its own flat
// buffer so concurrent decode goroutines never share a write target,
// and unlike the full-image cursor it never installs the decoded
// dataset on the engine (that cache is the serial path's and Warm's
// job; installing from racing partitions would need synchronization for
// no benefit).
type segmentRangeCursor struct {
	img    []byte
	ctx    context.Context
	n      int
	lo, hi int
	flat   []float64
	i      int // offset from lo
	closed bool
}

func (c *segmentRangeCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *segmentRangeCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.lo+c.i >= c.hi {
		return nil, io.EOF
	}
	if c.flat == nil {
		c.flat = make([]float64, (c.hi-c.lo)*c.n)
	}
	off := headerSize + 8*c.n + (c.lo+c.i)*(8+8*c.n)
	id := timeseries.ID(binary.LittleEndian.Uint64(c.img[off:]))
	row := c.flat[c.i*c.n : (c.i+1)*c.n]
	decodeColumnInto(row, c.img[off+8:off+8+8*c.n])
	c.i++
	return &timeseries.Series{ID: id, Readings: row}, nil
}

func (c *segmentRangeCursor) Reset() error {
	// The flat buffer is reused; re-decoding writes identical values.
	c.i = 0
	c.closed = false
	return nil
}

func (c *segmentRangeCursor) Close() error {
	c.closed = true
	c.flat = nil
	return nil
}

func (c *segmentRangeCursor) SizeHint() (int, bool) { return c.hi - c.lo, true }
