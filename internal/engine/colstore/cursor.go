package colstore

import (
	"context"
	"fmt"
	"io"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// flatCursor (in-core mode) decodes one consumer column per Next out of
// the resident segment image. All rows land in one contiguous row-major
// buffer, so when the pipeline materializes the cursor for similarity
// the FlatMatrix packing adopts the buffer zero-copy — the column store
// hands its columns to the blocked kernel without a repack. Draining
// the cursor installs the decoded dataset on the engine, keeping the
// old cold-run caching: the next Run is warm.
type flatCursor struct {
	e       *Engine
	st      *segStore
	ctx     context.Context
	temp    *timeseries.Temperature
	flat    []float64
	series  []*timeseries.Series
	scratch []byte
	i       int
	closed  bool
}

func newFlatCursor(e *Engine) *flatCursor {
	st := e.store
	return &flatCursor{
		e:      e,
		st:     st,
		temp:   &timeseries.Temperature{Values: st.temp},
		flat:   make([]float64, st.consumers*st.n),
		series: make([]*timeseries.Series, st.consumers),
	}
}

func (c *flatCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *flatCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= c.st.consumers {
		return nil, io.EOF
	}
	n := c.st.n
	row := c.flat[c.i*n : (c.i+1)*n]
	var err error
	c.scratch, err = c.st.decodeConsumerInto(c.i, row, c.scratch)
	if err != nil {
		return nil, err
	}
	s := &timeseries.Series{ID: c.st.ids[c.i], Readings: row}
	c.series[c.i] = s
	c.i++
	if c.i == c.st.consumers && c.e.decoded == nil {
		c.e.decoded = &timeseries.Dataset{
			Series:      append([]*timeseries.Series(nil), c.series...),
			Temperature: c.temp,
		}
	}
	return s, nil
}

func (c *flatCursor) Reset() error {
	// The flat buffer is reused; re-decoding writes identical values.
	c.i = 0
	if c.series == nil { // Close dropped the slots; a revived replay refills them
		c.series = make([]*timeseries.Series, c.st.consumers)
	}
	c.closed = false
	return nil
}

func (c *flatCursor) Close() error {
	c.closed = true
	c.series = nil
	return nil
}

// SizeHint is exact: the directory records the consumer count.
func (c *flatCursor) SizeHint() (int, bool) { return c.st.consumers, true }

// flatRangeCursor (in-core mode) decodes one contiguous group of
// consumer segments [lo, hi) — a partition cursor. Each partition owns
// its own flat buffer so concurrent decode goroutines never share a
// write target, and unlike the full cursor it never installs the
// decoded dataset on the engine (that cache is the serial path's and
// Warm's job; installing from racing partitions would need
// synchronization for no benefit).
type flatRangeCursor struct {
	st      *segStore
	ctx     context.Context
	lo, hi  int
	flat    []float64
	scratch []byte
	i       int // offset from lo
	closed  bool
}

func (c *flatRangeCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *flatRangeCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.lo+c.i >= c.hi {
		return nil, io.EOF
	}
	n := c.st.n
	if c.flat == nil {
		c.flat = make([]float64, (c.hi-c.lo)*n)
	}
	row := c.flat[c.i*n : (c.i+1)*n]
	var err error
	c.scratch, err = c.st.decodeConsumerInto(c.lo+c.i, row, c.scratch)
	if err != nil {
		return nil, err
	}
	id := c.st.ids[c.lo+c.i]
	c.i++
	return &timeseries.Series{ID: id, Readings: row}, nil
}

func (c *flatRangeCursor) Reset() error {
	// The flat buffer is reused; re-decoding writes identical values.
	c.i = 0
	c.closed = false
	return nil
}

func (c *flatRangeCursor) Close() error {
	c.closed = true
	c.flat = nil
	return nil
}

func (c *flatRangeCursor) SizeHint() (int, bool) { return c.hi - c.lo, true }

// pagedCursor (budgeted mode) assembles one consumer row per Next from
// the shared block cache: fetch pins a decoded block, the row copies
// out of it, unpin releases it for eviction. Every row is a fresh
// allocation — it must survive arbitrarily long in the compute phase
// while the cache recycles frames underneath it. Partition cursors over
// disjoint ranges share one pager, so the byte budget is global no
// matter how many cursors the prefetcher opens.
type pagedCursor struct {
	p       *pager
	ctx     context.Context
	lo, hi  int
	scratch []byte
	i       int // offset from lo
	closed  bool
}

func newPagedCursor(p *pager, lo, hi int) *pagedCursor {
	return &pagedCursor{p: p, lo: lo, hi: hi}
}

func (c *pagedCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *pagedCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.lo+c.i >= c.hi {
		return nil, io.EOF
	}
	st := c.p.st
	cons := c.lo + c.i
	row := make([]float64, st.n)
	for b := 0; b < st.blockCount; b++ {
		f, scratch, err := c.p.fetch(cons, b, c.scratch)
		if err != nil {
			c.scratch = scratch
			return nil, err
		}
		c.scratch = scratch
		copy(row[f.start:f.start+len(f.vals)], f.vals)
		c.p.unpin(f)
	}
	c.i++
	return &timeseries.Series{ID: st.ids[cons], Readings: row}, nil
}

func (c *pagedCursor) Reset() error {
	// Rows were handed out as fresh slices; rewinding re-fetches blocks
	// (cache hits when the budget allowed them to stay resident).
	c.i = 0
	c.closed = false
	return nil
}

func (c *pagedCursor) Close() error {
	c.closed = true
	c.scratch = nil
	return nil
}

func (c *pagedCursor) SizeHint() (int, bool) { return c.hi - c.lo, true }

// summaryCursor implements core.SummaryCursor over the resident block
// headers, decoding individual blocks on demand for the exec layer's
// compressed-domain fast paths.
type summaryCursor struct {
	st      *segStore
	stats   []core.BlockStats
	scratch []byte
	i       int // next consumer
	closed  bool
}

func (s *summaryCursor) NextSummary() (timeseries.ID, []core.BlockStats, error) {
	if s.closed || s.i >= s.st.consumers {
		return 0, nil, io.EOF
	}
	if s.stats == nil {
		s.stats = make([]core.BlockStats, s.st.blockCount)
	}
	c := s.i
	for b := 0; b < s.st.blockCount; b++ {
		h := s.st.hdr(c, b)
		s.stats[b] = core.BlockStats{
			Start: int(h.start),
			Count: int(h.count),
			NaNs:  int(h.nans),
			Min:   h.min,
			Max:   h.max,
			Sum:   h.sum,
			SumSq: h.sumSq,
			Flags: core.BlockFlags(h.flags),
		}
	}
	s.i++
	return s.st.ids[c], s.stats, nil
}

func (s *summaryCursor) DecodeBlock(b int, dst []float64) error {
	if s.closed {
		return fmt.Errorf("colstore: DecodeBlock on closed summary cursor")
	}
	c := s.i - 1
	if c < 0 || c >= s.st.consumers {
		return fmt.Errorf("colstore: DecodeBlock before NextSummary")
	}
	if b < 0 || b >= s.st.blockCount {
		return fmt.Errorf("colstore: DecodeBlock: block %d out of range", b)
	}
	h := s.st.hdr(c, b)
	var err error
	s.scratch, err = s.st.readBlockVals(c, b, s.scratch, dst[:h.count])
	return err
}

func (s *summaryCursor) HourLanes(b int, dst *core.HourLanes) (bool, error) {
	if s.closed {
		return false, fmt.Errorf("colstore: HourLanes on closed summary cursor")
	}
	c := s.i - 1
	if c < 0 || c >= s.st.consumers {
		return false, fmt.Errorf("colstore: HourLanes before NextSummary")
	}
	if b < 0 || b >= s.st.blockCount {
		return false, fmt.Errorf("colstore: HourLanes: block %d out of range", b)
	}
	h := s.st.hdr(c, b)
	if core.BlockFlags(h.flags)&core.BlockHourLanes == 0 {
		return false, nil
	}
	var err error
	s.scratch, err = s.st.readBlockLanes(c, b, s.scratch, dst)
	if err != nil {
		return false, err
	}
	return true, nil
}

func (s *summaryCursor) Close() error {
	s.closed = true
	s.scratch = nil
	return nil
}
