package colstore

import (
	"fmt"
	"sync"
)

// frameKey identifies one decoded block: consumer index x block index.
type frameKey struct {
	c, b int32
}

// blockFrame is one decoded block resident in the pager cache. pins is
// the refcount latch: a pinned frame is never evicted, and callers must
// pair every fetch with exactly one unpin (the same latch discipline
// rowstore's buffer pool uses, enforced by smlint's refbalance pair).
type blockFrame struct {
	key        frameKey
	start      int
	vals       []float64
	pins       int
	prev, next *blockFrame // LRU list, most recent at head
}

// pager is the fixed byte-budget cache of decoded blocks shared by all
// cursors of a paged engine. It is safe for concurrent use: partition
// cursors decode in parallel under the prefetcher.
type pager struct {
	st     *segStore
	budget int64

	mu         sync.Mutex
	frames     map[frameKey]*blockFrame
	head, tail *blockFrame
	resident   int64
	hits       int64
	misses     int64
}

func newPager(st *segStore, budget int64) *pager {
	return &pager{st: st, budget: budget, frames: make(map[frameKey]*blockFrame)}
}

// fetch returns a pinned frame holding decoded block b of consumer c,
// decoding it from disk on a miss. The caller must copy what it needs
// and then unpin the frame; frame.vals is invalid after unpin. scratch
// is the caller's read buffer, returned possibly grown so each cursor
// amortizes its own I/O allocation.
func (p *pager) fetch(c, b int, scratch []byte) (*blockFrame, []byte, error) {
	key := frameKey{int32(c), int32(b)}
	p.mu.Lock()
	if f, ok := p.frames[key]; ok {
		f.pins++
		p.hits++
		p.moveFront(f)
		p.mu.Unlock()
		return f, scratch, nil
	}
	p.misses++
	p.mu.Unlock()

	// Decode outside the lock: concurrent partition cursors miss on
	// disjoint blocks, so serializing I/O+decode here would forfeit the
	// prefetcher's overlap.
	h := p.st.hdr(c, b)
	vals := make([]float64, h.count)
	scratch, err := p.st.readBlockVals(c, b, scratch, vals)
	if err != nil {
		return nil, scratch, err
	}

	p.mu.Lock()
	if f, ok := p.frames[key]; ok {
		// Another cursor decoded the same block while we were off the
		// lock (rare: partitions are disjoint). Use the cached frame and
		// drop ours.
		f.pins++
		p.moveFront(f)
		p.mu.Unlock()
		return f, scratch, nil
	}
	f := &blockFrame{key: key, start: int(h.start), vals: vals, pins: 1}
	p.frames[key] = f
	p.pushFront(f)
	p.resident += int64(8 * len(vals))
	p.evictLocked()
	p.mu.Unlock()
	return f, scratch, nil
}

// unpin releases one fetch reference.
func (p *pager) unpin(f *blockFrame) {
	p.mu.Lock()
	f.pins--
	if f.pins < 0 {
		p.mu.Unlock()
		panic(fmt.Sprintf("colstore: pager unpin below zero for block %v", f.key))
	}
	p.mu.Unlock()
}

// evictLocked walks the LRU tail, dropping unpinned frames until the
// cache fits the budget. If every frame is pinned the budget overshoots
// softly — pinned frames belong to in-flight Next calls, which unpin
// within one row's work.
func (p *pager) evictLocked() {
	f := p.tail
	for p.resident > p.budget && f != nil {
		prev := f.prev
		if f.pins == 0 {
			p.unlink(f)
			delete(p.frames, f.key)
			p.resident -= int64(8 * len(f.vals))
		}
		f = prev
	}
}

// Stats returns cache hit/miss counters and the resident decoded bytes.
func (p *pager) Stats() (hits, misses, resident int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.resident
}

func (p *pager) pushFront(f *blockFrame) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *pager) unlink(f *blockFrame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (p *pager) moveFront(f *blockFrame) {
	if p.head == f {
		return
	}
	p.unlink(f)
	p.pushFront(f)
}
