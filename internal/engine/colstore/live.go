package colstore

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// Live ingestion (core.Appender). The read-optimized segment file never
// grows in place; instead each household accumulates an in-memory tail
// beyond the immutable base segment. Tails are sharded across
// independently locked maps so concurrent writers on disjoint
// households (core.ShardFor) never contend, and a tail seals every
// completed day into a compressed colcodec block — the same encoding
// SegmentWriter uses — so resident cost stays near the on-disk ratio.
// Checkpoint folds base + tails into a fresh segment file through
// SegmentWriter, making the tail durable.
//
// Isolation. Writers share ingestMu.RLock (their mutual exclusion is
// the per-shard locks); Snapshot takes ingestMu exclusively, so it
// waits out in-flight batches and can never observe half a batch.
// Captured tail state stays valid forever because tails are
// append-only: an append writes beyond every captured slice length (or
// reallocates), and sealing a day swaps in a fresh open slice rather
// than truncating the captured one.
//
// Durability. Without WithWAL the tail lives in memory only: Release,
// Load and OpenExisting drop it, and Checkpoint is the only way to
// keep appended data. With WithWAL armed, every batch is framed into a
// per-shard write-ahead log (internal/wal) before Append acks — under
// the shard lock, so log order equals apply order — and replayed
// through this same idempotent apply path on reopen. Duplicates in the
// log (retried batches are re-logged whole) fall into the r.Hour <
// expected no-op, so recovery is bit-exact with a no-crash run over
// the acked prefix. Checkpoint folds the common prefix of every
// household into a fresh segment file (temp file + fsync + rename +
// dir fsync) and rewrites the log down to the unfolded remainders.

// liveShards is the number of independently locked tail maps. Sixteen
// comfortably exceeds the writer counts the ingest benchmark drives
// (Workers:4) while keeping the snapshot sweep trivial.
const liveShards = 16

// dayHours is the sealing granularity: one compressed block per
// completed day, mirroring the hourly-readings-per-day layout the
// paper's tasks assume.
const dayHours = 24

// sealedDay is one full day of readings sealed into a colcodec block.
type sealedDay struct {
	payload []byte
}

// liveSeries is one household's in-memory tail beyond the base
// segment. sealed and open are append-only; see the isolation note
// above.
type liveSeries struct {
	id     timeseries.ID
	base   int // hours stored in the base segment (0 for new households)
	sealed []sealedDay
	open   []float64 // current partial day
}

// hours returns the household's total committed hours, base included.
func (ls *liveSeries) hours() int {
	return ls.base + dayHours*len(ls.sealed) + len(ls.open)
}

type liveShard struct {
	mu     sync.Mutex
	m      map[timeseries.ID]*liveSeries
	enc    colcodec.Encoder
	logBuf []core.Reading // WAL framing scratch, reused per batch
}

// liveTail is the engine's live-ingestion state.
type liveTail struct {
	// ingestMu is share-locked by writers and exclusively locked by
	// Snapshot: batch atomicity with respect to snapshots.
	ingestMu sync.RWMutex
	epoch    atomic.Uint64
	applied  atomic.Int64 // total tail readings committed (AppendDelta guard)

	baseN   int                   // base series length (0 without a base)
	baseIDs map[timeseries.ID]int // base household -> consumer index

	shards [liveShards]liveShard

	// wlog, when non-nil, is the armed write-ahead log. Shard si's
	// batches frame into log shard si under the shard lock.
	wlog *wal.Log

	tempMu   sync.Mutex
	tempTail []float64 // temperature beyond the base column; append-only
}

// ensureLive lazily builds the live tail, attaching the base segment
// file when one exists (a missing file just means ingestion starts
// from empty).
func (e *Engine) ensureLive() (*liveTail, error) {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	if e.live != nil {
		return e.live, nil
	}
	if e.store == nil {
		if _, err := os.Stat(e.path); err == nil {
			if err := e.attach(); err != nil {
				return nil, err
			}
		}
	}
	lt := &liveTail{}
	if e.store != nil {
		lt.baseN = e.store.n
		lt.baseIDs = make(map[timeseries.ID]int, e.store.consumers)
		for i, id := range e.store.ids {
			lt.baseIDs[id] = i
		}
	}
	for i := range lt.shards {
		lt.shards[i].m = make(map[timeseries.ID]*liveSeries)
	}
	if e.walOn {
		lg, err := wal.Open(wal.Options{
			Dir:    e.walDir(),
			Shards: liveShards,
			Policy: e.walPolicy,
			FS:     e.walFS,
		})
		if err != nil {
			return nil, fmt.Errorf("colstore: %w", err)
		}
		// Recovery: replay the acked batches through the same
		// idempotent apply path live writes take. Readings already in
		// the base (a checkpoint outran the log rewrite) fall into the
		// duplicate no-op; the epoch is untouched — it restarts at the
		// reopened state's zero, per the core.Appender contract.
		err = lg.Replay(func(shard int, batch []core.Reading) error {
			if err := lt.extendTemp(batch); err != nil {
				return err
			}
			_, _, err := lt.applyShard(shard, batch, false)
			return err
		})
		if err != nil {
			_ = lg.Close()
			return nil, fmt.Errorf("colstore: wal replay: %w", err)
		}
		lt.wlog = lg
	}
	e.live = lt
	return lt, nil
}

// liveHours reports the number of tail readings currently resident.
func (e *Engine) liveHours() int64 {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	if e.live == nil {
		return 0
	}
	return e.live.applied.Load()
}

// Append implements core.Appender. It is safe for concurrent use with
// itself and Snapshot; writers whose batches touch disjoint shards
// (pre-split with core.ShardFor) proceed in parallel. With the WAL
// armed, the batch is framed into the per-shard log before Append
// returns, and — under SyncBatch/SyncAlways — group-committed to disk,
// so a nil return means the batch survives a crash.
func (e *Engine) Append(batch []core.Reading) error {
	lt, err := e.ensureLive()
	if err != nil {
		return err
	}
	lt.ingestMu.RLock()
	if err := lt.extendTemp(batch); err != nil {
		lt.ingestMu.RUnlock()
		return err
	}
	var present [liveShards]bool
	for i := range batch {
		present[core.ShardFor(batch[i].ID, liveShards)] = true
	}
	var seqs [liveShards]uint64
	var logged [liveShards]bool
	for s := range present {
		if !present[s] {
			continue
		}
		seq, lg, err := lt.applyShard(s, batch, true)
		if err != nil {
			lt.ingestMu.RUnlock()
			return err
		}
		seqs[s], logged[s] = seq, lg
	}
	// Group commit outside the shard locks: concurrent writers on one
	// shard share the leader's fsync instead of serializing on it.
	if lt.wlog != nil {
		for s := range logged {
			if !logged[s] {
				continue
			}
			if err := lt.wlog.Commit(s, seqs[s]); err != nil {
				lt.ingestMu.RUnlock()
				return err
			}
		}
	}
	lt.epoch.Add(1)
	applied := lt.applied.Load()
	lt.ingestMu.RUnlock()
	if e.tailBudget > 0 && applied >= e.tailBudget {
		e.triggerCheckpoint()
	}
	return nil
}

// extendTemp grows the shared temperature column to cover the batch.
// A reading at an hour the column already covers is a no-op (shared
// column, idempotent redelivery); a reading beyond the next hour is a
// gap — unreachable for callers honoring the per-household contiguity
// contract, since no household can be ahead of the column.
func (lt *liveTail) extendTemp(batch []core.Reading) error {
	lt.tempMu.Lock()
	defer lt.tempMu.Unlock()
	for i := range batch {
		r := &batch[i]
		if r.Hour < 0 {
			return fmt.Errorf("colstore: negative hour %d for household %d", r.Hour, r.ID)
		}
		n := lt.baseN + len(lt.tempTail)
		switch {
		case r.Hour < n:
			// temperature for this hour is already stored
		case r.Hour == n:
			lt.tempTail = append(lt.tempTail, r.Temperature)
		default:
			return fmt.Errorf("colstore: temperature gap: reading at hour %d, column covers %d", r.Hour, n)
		}
	}
	return nil
}

// applyShard applies the batch's readings belonging to shard si, in
// batch order. Redelivered hours (below the household's next expected
// hour) are skipped, making retried batches apply exactly once.
//
// With logIt set and the WAL armed, the shard's slice of the batch is
// framed into log shard si before the lock is released — including
// redelivered readings, deliberately: a batch whose first attempt
// applied in memory but failed to reach the log must still land in the
// log when the caller retries and gets its ack, or the ack would
// promise durability the log cannot deliver. Replay skips the
// duplicates just like this loop does. The returned seq is meaningful
// only when logged is true; the caller must Commit it before acking.
func (lt *liveTail) applyShard(si int, batch []core.Reading, logIt bool) (seq uint64, logged bool, err error) {
	sh := &lt.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	logIt = logIt && lt.wlog != nil
	sh.logBuf = sh.logBuf[:0]
	var applied int64
	for i := range batch {
		r := &batch[i]
		if core.ShardFor(r.ID, liveShards) != si {
			continue
		}
		if logIt {
			sh.logBuf = append(sh.logBuf, *r)
		}
		ls := sh.m[r.ID]
		if ls == nil {
			if r.ID <= 0 {
				return 0, false, fmt.Errorf("colstore: household id must be positive, got %d", r.ID)
			}
			ls = &liveSeries{id: r.ID}
			if _, ok := lt.baseIDs[r.ID]; ok {
				ls.base = lt.baseN
			}
			sh.m[r.ID] = ls
		}
		expected := ls.hours()
		if r.Hour < expected {
			continue // duplicate redelivery: already committed
		}
		if r.Hour > expected {
			return 0, false, fmt.Errorf("colstore: household %d: gap at hour %d, expected %d", r.ID, r.Hour, expected)
		}
		ls.open = append(ls.open, r.Consumption)
		applied++
		if len(ls.open) == dayHours {
			ls.sealed = append(ls.sealed, sealedDay{payload: sh.enc.AppendValues(nil, ls.open)})
			// A fresh slice, not a truncation: snapshots captured the
			// old day's header and keep reading it.
			ls.open = nil
		}
	}
	lt.applied.Add(applied)
	if logIt && len(sh.logBuf) > 0 {
		// Under the shard lock: the log's record order is exactly the
		// in-memory apply order for this shard.
		seq, err = lt.wlog.Append(si, sh.logBuf)
		if err != nil {
			return 0, false, err
		}
		logged = true
	}
	return seq, logged, nil
}

// snapItem is one household's captured state: an optional base segment
// column plus immutable tail headers.
type snapItem struct {
	id     timeseries.ID
	cons   int // base consumer index, -1 when tail-only
	baseH  int
	sealed []sealedDay
	open   []float64
}

// Snapshot implements core.Appender: a read-isolated cursor over the
// base segment plus every committed tail, with the epoch it was taken
// at. The cursor reads base columns through the engine's current
// residency mode (pager or resident image) and stays valid while
// appends continue; Load, Release or Checkpoint invalidate it.
func (e *Engine) Snapshot() (core.Cursor, core.Epoch, error) {
	lt, err := e.ensureLive()
	if err != nil {
		return nil, 0, err
	}
	lt.ingestMu.Lock()
	// Read the store reference inside the exclusive section: a
	// concurrent Checkpoint swaps it under the same lock, and the
	// captured tail state must pair with the base it grew on.
	st, pg := e.store, e.pager
	ep := core.Epoch(lt.epoch.Load())
	tails := make(map[timeseries.ID]*snapItem)
	for si := range lt.shards {
		for id, ls := range lt.shards[si].m {
			tails[id] = &snapItem{id: id, cons: -1, sealed: ls.sealed, open: ls.open}
		}
	}
	nTemp := lt.baseN + len(lt.tempTail)
	temp := make([]float64, 0, nTemp)
	if st != nil {
		temp = append(temp, st.temp...)
	}
	temp = append(temp, lt.tempTail...)
	lt.ingestMu.Unlock()

	var items []snapItem
	if st != nil {
		items = make([]snapItem, 0, st.consumers+len(tails))
		for c, id := range st.ids {
			it := snapItem{id: id, cons: c, baseH: st.n}
			if t, ok := tails[id]; ok {
				it.sealed, it.open = t.sealed, t.open
				delete(tails, id)
			}
			items = append(items, it)
		}
	} else {
		items = make([]snapItem, 0, len(tails))
	}
	for _, t := range tails {
		items = append(items, *t)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })
	return &snapCursor{st: st, pg: pg, items: items, temp: temp}, ep, nil
}

var _ core.Appender = (*Engine)(nil)

// snapCursor merges one base column with the captured tail per Next.
// Rows are fresh allocations: they must outlive the cursor while the
// pager recycles frames and writers keep appending.
type snapCursor struct {
	st      *segStore
	pg      *pager
	items   []snapItem
	temp    []float64
	ctx     context.Context
	scratch []byte
	i       int
	closed  bool
}

func (c *snapCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *snapCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= len(c.items) {
		return nil, io.EOF
	}
	it := &c.items[c.i]
	total := it.baseH + dayHours*len(it.sealed) + len(it.open)
	row := make([]float64, total)
	if it.baseH > 0 {
		if err := c.decodeBase(it.cons, row[:it.baseH]); err != nil {
			return nil, err
		}
	}
	off := it.baseH
	for b := range it.sealed {
		vals, _, err := colcodec.DecodeValues(it.sealed[b].payload, row[off:off:off+dayHours])
		if err != nil {
			return nil, err
		}
		if len(vals) != dayHours {
			return nil, fmt.Errorf("colstore: sealed day decoded to %d values", len(vals))
		}
		copy(row[off:off+dayHours], vals)
		off += dayHours
	}
	copy(row[off:], it.open)
	c.i++
	return &timeseries.Series{ID: it.id, Readings: row}, nil
}

// decodeBase reads one base consumer column through the pager in
// budgeted mode, or out of the resident image otherwise.
func (c *snapCursor) decodeBase(cons int, dst []float64) error {
	if c.pg != nil {
		st := c.pg.st
		for b := 0; b < st.blockCount; b++ {
			f, scratch, err := c.pg.fetch(cons, b, c.scratch)
			if err != nil {
				c.scratch = scratch
				return err
			}
			c.scratch = scratch
			copy(dst[f.start:f.start+len(f.vals)], f.vals)
			c.pg.unpin(f)
		}
		return nil
	}
	var err error
	c.scratch, err = c.st.decodeConsumerInto(cons, dst, c.scratch)
	return err
}

func (c *snapCursor) Reset() error {
	// Rows were handed out as fresh slices; replaying re-decodes the
	// same captured state.
	c.i = 0
	c.closed = false
	return nil
}

func (c *snapCursor) Close() error {
	c.closed = true
	c.scratch = nil
	return nil
}

func (c *snapCursor) SizeHint() (int, bool) { return len(c.items), true }

// SnapshotTemp implements core.SnapshotTemperature: the temperature
// column as captured at snapshot time.
func (c *snapCursor) SnapshotTemp() *timeseries.Temperature {
	return &timeseries.Temperature{Values: c.temp}
}

// Checkpoint folds the live tail into a fresh segment file and
// re-attaches it, making appended data durable in the read-optimized
// format and shrinking (or emptying) the tail. It is safe to run
// concurrently with Append and Snapshot: it takes the ingest lock
// exclusively, waits out in-flight batches, and stops the world for
// the fold. The fold cut is the minimum total hours over all
// households — everything below it moves into the new base, the
// remainders stay in the tail — so households need not be aligned. The
// segment rewrite is crash-safe (temp file, fsync, rename, directory
// fsync): a crash mid-checkpoint leaves the old segment intact and,
// with the WAL armed, the full log to replay over it. Epochs keep
// counting across a checkpoint, and snapshot cursors taken before it
// stay readable — the replaced store is retired, not closed, until
// Release.
func (e *Engine) Checkpoint() error {
	lt, err := e.ensureLive()
	if err != nil {
		return err
	}
	lt.ingestMu.Lock()
	defer lt.ingestMu.Unlock()
	return e.checkpointLocked(lt)
}

// ckptSeries is one household's fold state during a checkpoint.
type ckptSeries struct {
	id  timeseries.ID
	ls  *liveSeries // nil for base households with no tail
	rem []float64   // readings above the cut, kept in the new tail
}

// checkpointLocked is Checkpoint's body; the caller holds ingestMu
// exclusively, so shard maps, the temperature tail and e.store are all
// frozen.
func (e *Engine) checkpointLocked(lt *liveTail) error {
	st := e.store
	// Collect every household and its total hours; the fold cut is
	// the minimum, so the new base stays rectangular.
	var items []ckptSeries
	byID := make(map[timeseries.ID]*liveSeries)
	for si := range lt.shards {
		for id, ls := range lt.shards[si].m {
			byID[id] = ls
		}
	}
	cut := -1
	if st != nil {
		items = make([]ckptSeries, 0, st.consumers+len(byID))
		for _, id := range st.ids {
			ls := byID[id]
			delete(byID, id)
			h := st.n
			if ls != nil {
				h = ls.hours()
			}
			items = append(items, ckptSeries{id: id, ls: ls})
			if cut < 0 || h < cut {
				cut = h
			}
		}
	}
	for id, ls := range byID {
		items = append(items, ckptSeries{id: id, ls: ls})
		if h := ls.hours(); cut < 0 || h < cut {
			cut = h
		}
	}
	if len(items) == 0 {
		return fmt.Errorf("colstore: nothing to checkpoint")
	}
	if st != nil && cut <= st.n {
		// A laggard household pins the cut at (or below) the current
		// base: nothing can fold without truncating stored data.
		return nil
	}
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })

	fullTemp := make([]float64, 0, lt.baseN+len(lt.tempTail))
	if st != nil {
		fullTemp = append(fullTemp, st.temp...)
	}
	fullTemp = append(fullTemp, lt.tempTail...)
	if cut > len(fullTemp) {
		return fmt.Errorf("colstore: checkpoint: households cover %d hours, temperature only %d", cut, len(fullTemp))
	}

	var opts []WriterOption
	if st != nil {
		opts = append(opts, WithBlockRows(st.blockRows))
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return fmt.Errorf("colstore: %w", err)
	}
	tmp := e.path + ".tmp"
	w, err := NewSegmentWriter(tmp, fullTemp[:cut], opts...)
	if err != nil {
		return err
	}
	var row []float64
	var scratch []byte
	for i := range items {
		it := &items[i]
		row, scratch, err = lt.assembleRow(st, it, row, scratch)
		if err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
		if err := w.Append(it.id, row[:cut]); err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
		if len(row) > cut {
			it.rem = append([]float64(nil), row[cut:]...)
		}
	}
	if err := w.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, e.path); err != nil {
		return fmt.Errorf("colstore: checkpoint rename: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}

	// Swap in the new base. The old store is retired, not closed:
	// snapshot cursors taken before this checkpoint keep decoding it.
	if e.store != nil {
		e.retired = append(e.retired, e.store)
	}
	e.decoded = nil
	e.pager = nil
	if err := e.attach(); err != nil {
		return err
	}

	// Rebuild the tail in place (writers blocked on ingestMu resume
	// against the same liveTail): fresh shard maps hold only the
	// remainders, re-sealed at day granularity. The epoch keeps
	// counting — snapshots stay monotonic across the fold.
	lt.baseN = cut
	lt.baseIDs = make(map[timeseries.ID]int, e.store.consumers)
	for i, id := range e.store.ids {
		lt.baseIDs[id] = i
	}
	var remReadings int64
	for i := range lt.shards {
		lt.shards[i].m = make(map[timeseries.ID]*liveSeries)
	}
	for i := range items {
		it := &items[i]
		if len(it.rem) == 0 {
			continue
		}
		sh := &lt.shards[core.ShardFor(it.id, liveShards)]
		ls := &liveSeries{id: it.id, base: cut}
		rem := it.rem
		for len(rem) >= dayHours {
			ls.sealed = append(ls.sealed, sealedDay{payload: sh.enc.AppendValues(nil, rem[:dayHours])})
			rem = rem[dayHours:]
		}
		if len(rem) > 0 {
			ls.open = append([]float64(nil), rem...)
		}
		sh.m[it.id] = ls
		remReadings += int64(len(it.rem))
	}
	lt.tempTail = append([]float64(nil), fullTemp[cut:]...)
	lt.applied.Store(remReadings)

	// Shrink the log to the remainders. A crash between the segment
	// rename above and this rewrite is safe: the stale log replays
	// over the new base and every folded reading lands in the
	// duplicate no-op.
	if lt.wlog != nil {
		var batches [liveShards][][]core.Reading
		for i := range items {
			it := &items[i]
			if len(it.rem) == 0 {
				continue
			}
			b := make([]core.Reading, len(it.rem))
			for j, v := range it.rem {
				b[j] = core.Reading{
					ID:          it.id,
					Hour:        cut + j,
					Consumption: v,
					Temperature: fullTemp[cut+j],
				}
			}
			si := core.ShardFor(it.id, liveShards)
			batches[si] = append(batches[si], b)
		}
		for si := range batches {
			if err := lt.wlog.Rewrite(si, batches[si]); err != nil {
				return err
			}
		}
	}
	return nil
}

// assembleRow decodes one household's full series — base column,
// sealed tail days, open tail — into row, reusing the buffers.
func (lt *liveTail) assembleRow(st *segStore, it *ckptSeries, row []float64, scratch []byte) ([]float64, []byte, error) {
	baseH := 0
	cons := -1
	if st != nil {
		if c, ok := lt.baseIDs[it.id]; ok {
			baseH, cons = st.n, c
		}
	}
	total := baseH
	if it.ls != nil {
		total = it.ls.hours()
	}
	if cap(row) < total {
		row = make([]float64, total)
	}
	row = row[:total]
	if baseH > 0 {
		var err error
		scratch, err = st.decodeConsumerInto(cons, row[:baseH], scratch)
		if err != nil {
			return row, scratch, err
		}
	}
	if it.ls == nil {
		return row, scratch, nil
	}
	off := baseH
	for b := range it.ls.sealed {
		vals, _, err := colcodec.DecodeValues(it.ls.sealed[b].payload, row[off:off:off+dayHours])
		if err != nil {
			return row, scratch, err
		}
		if len(vals) != dayHours {
			return row, scratch, fmt.Errorf("colstore: sealed day decoded to %d values", len(vals))
		}
		copy(row[off:off+dayHours], vals)
		off += dayHours
	}
	copy(row[off:], it.ls.open)
	return row, scratch, nil
}
