package colstore

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Live ingestion (core.Appender). The read-optimized segment file never
// grows in place; instead each household accumulates an in-memory tail
// beyond the immutable base segment. Tails are sharded across
// independently locked maps so concurrent writers on disjoint
// households (core.ShardFor) never contend, and a tail seals every
// completed day into a compressed colcodec block — the same encoding
// SegmentWriter uses — so resident cost stays near the on-disk ratio.
// Checkpoint folds base + tails into a fresh segment file through
// SegmentWriter, making the tail durable.
//
// Isolation. Writers share ingestMu.RLock (their mutual exclusion is
// the per-shard locks); Snapshot takes ingestMu exclusively, so it
// waits out in-flight batches and can never observe half a batch.
// Captured tail state stays valid forever because tails are
// append-only: an append writes beyond every captured slice length (or
// reallocates), and sealing a day swaps in a fresh open slice rather
// than truncating the captured one.
//
// Durability. The tail lives in memory only: Release, Load and
// OpenExisting drop it. Call Checkpoint first to keep appended data.

// liveShards is the number of independently locked tail maps. Sixteen
// comfortably exceeds the writer counts the ingest benchmark drives
// (Workers:4) while keeping the snapshot sweep trivial.
const liveShards = 16

// dayHours is the sealing granularity: one compressed block per
// completed day, mirroring the hourly-readings-per-day layout the
// paper's tasks assume.
const dayHours = 24

// sealedDay is one full day of readings sealed into a colcodec block.
type sealedDay struct {
	payload []byte
}

// liveSeries is one household's in-memory tail beyond the base
// segment. sealed and open are append-only; see the isolation note
// above.
type liveSeries struct {
	id     timeseries.ID
	base   int // hours stored in the base segment (0 for new households)
	sealed []sealedDay
	open   []float64 // current partial day
}

// hours returns the household's total committed hours, base included.
func (ls *liveSeries) hours() int {
	return ls.base + dayHours*len(ls.sealed) + len(ls.open)
}

type liveShard struct {
	mu  sync.Mutex
	m   map[timeseries.ID]*liveSeries
	enc colcodec.Encoder
}

// liveTail is the engine's live-ingestion state.
type liveTail struct {
	// ingestMu is share-locked by writers and exclusively locked by
	// Snapshot: batch atomicity with respect to snapshots.
	ingestMu sync.RWMutex
	epoch    atomic.Uint64
	applied  atomic.Int64 // total tail readings committed (AppendDelta guard)

	baseN   int                   // base series length (0 without a base)
	baseIDs map[timeseries.ID]int // base household -> consumer index

	shards [liveShards]liveShard

	tempMu   sync.Mutex
	tempTail []float64 // temperature beyond the base column; append-only
}

// ensureLive lazily builds the live tail, attaching the base segment
// file when one exists (a missing file just means ingestion starts
// from empty).
func (e *Engine) ensureLive() (*liveTail, error) {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	if e.live != nil {
		return e.live, nil
	}
	if e.store == nil {
		if _, err := os.Stat(e.path); err == nil {
			if err := e.attach(); err != nil {
				return nil, err
			}
		}
	}
	lt := &liveTail{}
	if e.store != nil {
		lt.baseN = e.store.n
		lt.baseIDs = make(map[timeseries.ID]int, e.store.consumers)
		for i, id := range e.store.ids {
			lt.baseIDs[id] = i
		}
	}
	for i := range lt.shards {
		lt.shards[i].m = make(map[timeseries.ID]*liveSeries)
	}
	e.live = lt
	return lt, nil
}

// liveHours reports the number of tail readings currently resident.
func (e *Engine) liveHours() int64 {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	if e.live == nil {
		return 0
	}
	return e.live.applied.Load()
}

// Append implements core.Appender. It is safe for concurrent use with
// itself and Snapshot; writers whose batches touch disjoint shards
// (pre-split with core.ShardFor) proceed in parallel.
func (e *Engine) Append(batch []core.Reading) error {
	lt, err := e.ensureLive()
	if err != nil {
		return err
	}
	lt.ingestMu.RLock()
	defer lt.ingestMu.RUnlock()
	if err := lt.extendTemp(batch); err != nil {
		return err
	}
	var present [liveShards]bool
	for i := range batch {
		present[core.ShardFor(batch[i].ID, liveShards)] = true
	}
	for s := range present {
		if !present[s] {
			continue
		}
		if err := lt.applyShard(s, batch); err != nil {
			return err
		}
	}
	lt.epoch.Add(1)
	return nil
}

// extendTemp grows the shared temperature column to cover the batch.
// A reading at an hour the column already covers is a no-op (shared
// column, idempotent redelivery); a reading beyond the next hour is a
// gap — unreachable for callers honoring the per-household contiguity
// contract, since no household can be ahead of the column.
func (lt *liveTail) extendTemp(batch []core.Reading) error {
	lt.tempMu.Lock()
	defer lt.tempMu.Unlock()
	for i := range batch {
		r := &batch[i]
		if r.Hour < 0 {
			return fmt.Errorf("colstore: negative hour %d for household %d", r.Hour, r.ID)
		}
		n := lt.baseN + len(lt.tempTail)
		switch {
		case r.Hour < n:
			// temperature for this hour is already stored
		case r.Hour == n:
			lt.tempTail = append(lt.tempTail, r.Temperature)
		default:
			return fmt.Errorf("colstore: temperature gap: reading at hour %d, column covers %d", r.Hour, n)
		}
	}
	return nil
}

// applyShard applies the batch's readings belonging to shard si, in
// batch order. Redelivered hours (below the household's next expected
// hour) are skipped, making retried batches apply exactly once.
func (lt *liveTail) applyShard(si int, batch []core.Reading) error {
	sh := &lt.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var applied int64
	for i := range batch {
		r := &batch[i]
		if core.ShardFor(r.ID, liveShards) != si {
			continue
		}
		ls := sh.m[r.ID]
		if ls == nil {
			if r.ID <= 0 {
				return fmt.Errorf("colstore: household id must be positive, got %d", r.ID)
			}
			ls = &liveSeries{id: r.ID}
			if _, ok := lt.baseIDs[r.ID]; ok {
				ls.base = lt.baseN
			}
			sh.m[r.ID] = ls
		}
		expected := ls.hours()
		if r.Hour < expected {
			continue // duplicate redelivery: already committed
		}
		if r.Hour > expected {
			return fmt.Errorf("colstore: household %d: gap at hour %d, expected %d", r.ID, r.Hour, expected)
		}
		ls.open = append(ls.open, r.Consumption)
		applied++
		if len(ls.open) == dayHours {
			ls.sealed = append(ls.sealed, sealedDay{payload: sh.enc.AppendValues(nil, ls.open)})
			// A fresh slice, not a truncation: snapshots captured the
			// old day's header and keep reading it.
			ls.open = nil
		}
	}
	lt.applied.Add(applied)
	return nil
}

// snapItem is one household's captured state: an optional base segment
// column plus immutable tail headers.
type snapItem struct {
	id     timeseries.ID
	cons   int // base consumer index, -1 when tail-only
	baseH  int
	sealed []sealedDay
	open   []float64
}

// Snapshot implements core.Appender: a read-isolated cursor over the
// base segment plus every committed tail, with the epoch it was taken
// at. The cursor reads base columns through the engine's current
// residency mode (pager or resident image) and stays valid while
// appends continue; Load, Release or Checkpoint invalidate it.
func (e *Engine) Snapshot() (core.Cursor, core.Epoch, error) {
	lt, err := e.ensureLive()
	if err != nil {
		return nil, 0, err
	}
	st, pg := e.store, e.pager

	lt.ingestMu.Lock()
	ep := core.Epoch(lt.epoch.Load())
	tails := make(map[timeseries.ID]*snapItem)
	for si := range lt.shards {
		for id, ls := range lt.shards[si].m {
			tails[id] = &snapItem{id: id, cons: -1, sealed: ls.sealed, open: ls.open}
		}
	}
	nTemp := lt.baseN + len(lt.tempTail)
	temp := make([]float64, 0, nTemp)
	if st != nil {
		temp = append(temp, st.temp...)
	}
	temp = append(temp, lt.tempTail...)
	lt.ingestMu.Unlock()

	var items []snapItem
	if st != nil {
		items = make([]snapItem, 0, st.consumers+len(tails))
		for c, id := range st.ids {
			it := snapItem{id: id, cons: c, baseH: st.n}
			if t, ok := tails[id]; ok {
				it.sealed, it.open = t.sealed, t.open
				delete(tails, id)
			}
			items = append(items, it)
		}
	} else {
		items = make([]snapItem, 0, len(tails))
	}
	for _, t := range tails {
		items = append(items, *t)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })
	return &snapCursor{st: st, pg: pg, items: items, temp: temp}, ep, nil
}

var _ core.Appender = (*Engine)(nil)

// snapCursor merges one base column with the captured tail per Next.
// Rows are fresh allocations: they must outlive the cursor while the
// pager recycles frames and writers keep appending.
type snapCursor struct {
	st      *segStore
	pg      *pager
	items   []snapItem
	temp    []float64
	ctx     context.Context
	scratch []byte
	i       int
	closed  bool
}

func (c *snapCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *snapCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= len(c.items) {
		return nil, io.EOF
	}
	it := &c.items[c.i]
	total := it.baseH + dayHours*len(it.sealed) + len(it.open)
	row := make([]float64, total)
	if it.baseH > 0 {
		if err := c.decodeBase(it.cons, row[:it.baseH]); err != nil {
			return nil, err
		}
	}
	off := it.baseH
	for b := range it.sealed {
		vals, _, err := colcodec.DecodeValues(it.sealed[b].payload, row[off:off:off+dayHours])
		if err != nil {
			return nil, err
		}
		if len(vals) != dayHours {
			return nil, fmt.Errorf("colstore: sealed day decoded to %d values", len(vals))
		}
		copy(row[off:off+dayHours], vals)
		off += dayHours
	}
	copy(row[off:], it.open)
	c.i++
	return &timeseries.Series{ID: it.id, Readings: row}, nil
}

// decodeBase reads one base consumer column through the pager in
// budgeted mode, or out of the resident image otherwise.
func (c *snapCursor) decodeBase(cons int, dst []float64) error {
	if c.pg != nil {
		st := c.pg.st
		for b := 0; b < st.blockCount; b++ {
			f, scratch, err := c.pg.fetch(cons, b, c.scratch)
			if err != nil {
				c.scratch = scratch
				return err
			}
			c.scratch = scratch
			copy(dst[f.start:f.start+len(f.vals)], f.vals)
			c.pg.unpin(f)
		}
		return nil
	}
	var err error
	c.scratch, err = c.st.decodeConsumerInto(cons, dst, c.scratch)
	return err
}

func (c *snapCursor) Reset() error {
	// Rows were handed out as fresh slices; replaying re-decodes the
	// same captured state.
	c.i = 0
	c.closed = false
	return nil
}

func (c *snapCursor) Close() error {
	c.closed = true
	c.scratch = nil
	return nil
}

func (c *snapCursor) SizeHint() (int, bool) { return len(c.items), true }

// SnapshotTemp implements core.SnapshotTemperature: the temperature
// column as captured at snapshot time.
func (c *snapCursor) SnapshotTemp() *timeseries.Temperature {
	return &timeseries.Temperature{Values: c.temp}
}

// Checkpoint folds the live tail into a fresh segment file through
// SegmentWriter and re-attaches it, making appended data durable and
// resetting the tail. Every household must be aligned to the
// temperature column (equal total hours) — ingest to a day boundary
// shared by all households first. Checkpoint follows the base Engine
// contract: it must not run concurrently with Append or Snapshot.
func (e *Engine) Checkpoint() error {
	cur, _, err := e.Snapshot()
	if err != nil {
		return err
	}
	defer func() { _ = cur.Close() }()
	snap := cur.(*snapCursor)
	if len(snap.items) == 0 {
		return fmt.Errorf("colstore: nothing to checkpoint")
	}
	n := len(snap.temp)
	var opts []WriterOption
	if e.store != nil {
		opts = append(opts, WithBlockRows(e.store.blockRows))
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return fmt.Errorf("colstore: %w", err)
	}
	tmp := e.path + ".tmp"
	w, err := NewSegmentWriter(tmp, snap.temp, opts...)
	if err != nil {
		return err
	}
	for {
		s, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
		if len(s.Readings) != n {
			_ = w.Close()
			_ = os.Remove(tmp)
			return fmt.Errorf("colstore: checkpoint: household %d has %d hours, temperature has %d (ingest to a shared day boundary first)",
				s.ID, len(s.Readings), n)
		}
		if err := w.Append(s.ID, s.Readings); err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, e.path); err != nil {
		return fmt.Errorf("colstore: checkpoint rename: %w", err)
	}
	e.detach()
	return e.attach()
}
