package colstore

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// TestRecoverySweep runs the crash-injection conformance suite against
// the column store: a deterministic ingestion script (with a mid-script
// checkpoint) is killed at every injected disk operation, the fault
// disk reboots with torn unsynced tails, and the reopened engine must
// serve a bit-exact acked prefix whose analytics match the no-crash
// reference. SyncOff trades the acked-durability guarantee for speed,
// so its sweep only requires consistent (possibly shorter) prefixes.
func TestRecoverySweep(t *testing.T) {
	ids := []timeseries.ID{1, 2, 3, 4, 5, 6}
	for _, tc := range []struct {
		name    string
		policy  wal.SyncPolicy
		durable bool
	}{
		{"always", wal.SyncAlways, true},
		{"batch", wal.SyncBatch, true},
		{"off", wal.SyncOff, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := cursortest.RecoveryHarness{
				Open: func(t *testing.T, dir string, disk *fault.Disk) cursortest.RecoveryEngine {
					e := New(dir, WithWAL(tc.policy), WithWALFS(disk))
					// A checkpointed base segment must be reattached
					// before replay, or the log's remainder hours would
					// have nothing to land on.
					if _, err := os.Stat(filepath.Join(dir, SegmentFileName)); err == nil {
						if _, err := e.OpenExisting(); err != nil {
							t.Fatalf("reopen after crash: %v", err)
						}
					}
					return e
				},
				Checkpoint: func(eng cursortest.RecoveryEngine) error {
					return eng.(*Engine).Checkpoint()
				},
				Close: func(eng cursortest.RecoveryEngine) {
					if err := eng.(*Engine).Release(); err != nil {
						t.Errorf("release: %v", err)
					}
				},
				Run:     exec.RunSnapshot,
				Durable: tc.durable,
				Hours:   40,
			}
			cursortest.RunRecovery(t, h, ids)
		})
	}
}
