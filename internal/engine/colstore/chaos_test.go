package colstore

import (
	"context"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestCursorChaos(t *testing.T) {
	src, _ := writeSource(t, 20, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaos(t, func(t *testing.T) core.Cursor {
		// Keep every sub-check on the image-decoding cursor (draining one
		// installs the decoded dataset on the engine).
		e.decoded = nil
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		return cur
	})
}

func TestPartitionChaos(t *testing.T) {
	src, _ := writeSource(t, 20, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaosPartitioned(t, func(t *testing.T) core.PartitionedSource {
		e.decoded = nil
		return e
	})
}

func TestPipelineChaos(t *testing.T) {
	src, ds := writeSource(t, 20, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	ids := make([]timeseries.ID, len(ds.Series))
	for i, s := range ds.Series {
		ids[i] = s.ID
	}
	cursortest.RunPipelineChaos(t, ids, func(ctx context.Context, cfg fault.Config, spec core.Spec) (*core.Results, error) {
		e.decoded = nil
		return exec.RunContext(ctx, fault.New(e, cfg), spec)
	})
}

// TestSnapshotIsolationChaos races sharded live writers against
// snapshot readers on an engine born empty: every household starts at
// hour 0 through the live path.
func TestSnapshotIsolationChaos(t *testing.T) {
	e := New(t.TempDir())
	defer e.Release()
	ids := make([]timeseries.ID, 0, 12)
	for id := timeseries.ID(1); id <= 12; id++ {
		ids = append(ids, id)
	}
	cursortest.RunSnapshotIsolation(t, e, ids, 0, 72)
}

// TestSnapshotIsolationPagedChaos runs the same race with the base
// half of the stream sealed into an on-disk segment read back under a
// tiny memory budget, so snapshot reads page blocks in and out while
// appends land.
func TestSnapshotIsolationPagedChaos(t *testing.T) {
	dir := t.TempDir()
	ids := make([]timeseries.ID, 0, 8)
	for id := timeseries.ID(1); id <= 8; id++ {
		ids = append(ids, id)
	}
	const base = 48
	seeder := New(dir)
	for h := 0; h < base; h++ {
		batch := make([]core.Reading, 0, len(ids))
		for _, id := range ids {
			batch = append(batch, core.Reading{
				ID: id, Hour: h,
				Consumption: cursortest.IsolationValue(id, h),
				Temperature: cursortest.IsolationTemp(h),
			})
		}
		if err := seeder.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := seeder.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := seeder.Release(); err != nil {
		t.Fatal(err)
	}

	e := New(dir, WithMemBudget(1<<12))
	defer e.Release()
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	cursortest.RunSnapshotIsolation(t, e, ids, base, 48)
}
