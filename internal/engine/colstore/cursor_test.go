package colstore

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
)

func TestCursorConformance(t *testing.T) {
	src, _ := writeSource(t, 5, 10)

	t.Run("ColdSegmentCursor", func(t *testing.T) {
		e := New(t.TempDir())
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			// Draining a segment cursor installs the decoded dataset; drop
			// it so every sub-check exercises the image-decoding cursor.
			e.decoded = nil
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cur.(*flatCursor); !ok {
				t.Fatalf("cold engine yielded %T, want *flatCursor", cur)
			}
			return cur
		})
	})

	t.Run("WarmDatasetCursor", func(t *testing.T) {
		e := New(t.TempDir())
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})
}

func TestPartitionConformance(t *testing.T) {
	src, _ := writeSource(t, 7, 10)

	t.Run("Cold", func(t *testing.T) {
		e := New(t.TempDir())
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource {
			// Keep every pass on the image-decoding path.
			e.decoded = nil
			return e
		})
	})

	t.Run("Warm", func(t *testing.T) {
		e := New(t.TempDir())
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})
}

func TestSegmentCursorInstallsDecoded(t *testing.T) {
	src, _ := writeSource(t, 4, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	e.decoded = nil
	cur, err := e.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 4; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if e.decoded == nil {
		t.Fatal("draining the segment cursor did not cache the decoded dataset")
	}
	if got := len(e.decoded.Series); got != 4 {
		t.Fatalf("cached dataset has %d series, want 4", got)
	}
}
