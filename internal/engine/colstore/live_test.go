package colstore

import (
	"io"
	"strings"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// liveVal and liveTemp generate deterministic readings so snapshot
// output can be compared bit-identically to what was appended.
func liveVal(id timeseries.ID, hour int) float64 {
	return float64(id)*1000 + float64(hour) + 0.25
}

func liveTemp(hour int) float64 { return 10 + 0.5*float64(hour) }

// hourBatch is one reading per household for a single hour.
func hourBatch(ids []timeseries.ID, hour int) []core.Reading {
	batch := make([]core.Reading, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, core.Reading{
			ID: id, Hour: hour,
			Consumption: liveVal(id, hour),
			Temperature: liveTemp(hour),
		})
	}
	return batch
}

// drainSnap drains a snapshot cursor into a map keyed by household.
func drainSnap(t *testing.T, cur core.Cursor) map[timeseries.ID][]float64 {
	t.Helper()
	out := make(map[timeseries.ID][]float64)
	var prev timeseries.ID
	for {
		s, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.ID <= prev {
			t.Fatalf("cursor order: %d after %d", s.ID, prev)
		}
		prev = s.ID
		out[s.ID] = s.Readings
	}
	return out
}

func TestLiveAppendSnapshotFromEmpty(t *testing.T) {
	e := New(t.TempDir())
	ids := []timeseries.ID{7, 3, 12} // unsorted on purpose
	const hours = 48
	for h := 0; h < hours; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, ep, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if ep != hours {
		t.Errorf("epoch = %d, want %d", ep, hours)
	}
	rows := drainSnap(t, cur)
	if len(rows) != len(ids) {
		t.Fatalf("snapshot has %d households, want %d", len(rows), len(ids))
	}
	for _, id := range ids {
		got := rows[id]
		if len(got) != hours {
			t.Fatalf("household %d: %d hours, want %d", id, len(got), hours)
		}
		for h, v := range got {
			if v != liveVal(id, h) {
				t.Fatalf("household %d hour %d: %v, want %v", id, h, v, liveVal(id, h))
			}
		}
	}
	temp := cur.(core.SnapshotTemperature).SnapshotTemp()
	if len(temp.Values) != hours {
		t.Fatalf("temperature covers %d hours, want %d", len(temp.Values), hours)
	}
	for h, v := range temp.Values {
		if v != liveTemp(h) {
			t.Fatalf("temperature hour %d: %v, want %v", h, v, liveTemp(h))
		}
	}
}

func TestLiveSnapshotIsolation(t *testing.T) {
	e := New(t.TempDir())
	ids := []timeseries.ID{1, 2}
	for h := 0; h < 24; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, ep, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Appends after the snapshot must stay invisible to it, across a
	// Reset replay too.
	for h := 24; h < 48; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for id, row := range drainSnap(t, cur) {
			if len(row) != 24 {
				t.Fatalf("pass %d: household %d grew to %d hours inside an epoch-%d snapshot", pass, id, len(row), ep)
			}
		}
		if err := cur.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	cur2, ep2, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	if ep2 != ep+24 {
		t.Errorf("second epoch = %d, want %d", ep2, ep+24)
	}
	for id, row := range drainSnap(t, cur2) {
		if len(row) != 48 {
			t.Fatalf("household %d: fresh snapshot has %d hours, want 48", id, len(row))
		}
	}
}

func TestLiveDuplicateAndGap(t *testing.T) {
	e := New(t.TempDir())
	ids := []timeseries.ID{4, 5}
	var day []core.Reading
	for h := 0; h < 24; h++ {
		day = append(day, hourBatch(ids, h)...)
	}
	if err := e.Append(day); err != nil {
		t.Fatal(err)
	}
	if got := e.liveHours(); got != 48 {
		t.Fatalf("liveHours = %d, want 48", got)
	}
	// Redelivering the whole batch is an idempotent no-op.
	if err := e.Append(day); err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	if got := e.liveHours(); got != 48 {
		t.Fatalf("liveHours after redelivery = %d, want 48", got)
	}
	// Skipping an hour is a gap.
	gap := []core.Reading{{ID: 4, Hour: 25, Consumption: 1, Temperature: liveTemp(24)}}
	if err := e.Append(gap); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap append: err = %v", err)
	}
	if err := e.Append([]core.Reading{{ID: 4, Hour: -1}}); err == nil {
		t.Error("negative hour: want error")
	}
	if err := e.Append([]core.Reading{{ID: 0, Hour: 0}}); err == nil {
		t.Error("zero household id: want error")
	}
}

func TestLiveAppendOnBaseAndCheckpoint(t *testing.T) {
	src, ds := writeSource(t, 3, 2)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	baseN := len(ds.Temperature.Values)
	cur0, ep0, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ep0 != 0 {
		t.Errorf("pre-append epoch = %d", ep0)
	}
	base := drainSnap(t, cur0)
	cur0.Close()

	var ids []timeseries.ID
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	for h := baseN; h < baseN+24; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	// The bulk path must refuse to silently drop the tail.
	if err := e.AppendDelta(&timeseries.Dataset{}); err == nil || !strings.Contains(err.Error(), "live tail") {
		t.Errorf("AppendDelta with live tail: err = %v", err)
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rows := drainSnap(t, cur)
	for _, id := range ids {
		got := rows[id]
		if len(got) != baseN+24 {
			t.Fatalf("household %d: %d hours, want %d", id, len(got), baseN+24)
		}
		for h := 0; h < baseN; h++ {
			if got[h] != base[id][h] {
				t.Fatalf("household %d hour %d: base reading changed: %v vs %v", id, h, got[h], base[id][h])
			}
		}
		for h := baseN; h < baseN+24; h++ {
			if got[h] != liveVal(id, h) {
				t.Fatalf("household %d hour %d: tail reading %v, want %v", id, h, got[h], liveVal(id, h))
			}
		}
	}
	cur.Close()

	// Checkpoint folds base + tail into a fresh segment.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := e.liveHours(); got != 0 {
		t.Errorf("liveHours after checkpoint = %d", got)
	}
	cur2, ep2, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	// Epochs keep counting across a checkpoint (monotonic within one
	// engine instance); only a reopen restarts them at zero.
	if ep2 != 24 {
		t.Errorf("post-checkpoint epoch = %d, want 24 (monotonic across Checkpoint)", ep2)
	}
	for id, row := range drainSnap(t, cur2) {
		if len(row) != baseN+24 {
			t.Fatalf("household %d: checkpointed segment has %d hours, want %d", id, len(row), baseN+24)
		}
		for h := baseN; h < baseN+24; h++ {
			if row[h] != liveVal(id, h) {
				t.Fatalf("household %d hour %d lost in checkpoint", id, h)
			}
		}
	}
	temp, err := e.Temperature()
	if err != nil {
		t.Fatal(err)
	}
	if len(temp.Values) != baseN+24 {
		t.Errorf("checkpointed temperature covers %d hours, want %d", len(temp.Values), baseN+24)
	}
}

func TestLiveSnapshotUnderMemBudget(t *testing.T) {
	src, ds := writeSource(t, 3, 4)
	dir := t.TempDir()
	big := New(dir)
	if _, err := big.Load(src); err != nil {
		t.Fatal(err)
	}
	// Reopen the written segment under a tight budget so base columns
	// are decoded through the pager, then append a live tail on top.
	e := New(dir, WithMemBudget(1<<12))
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	baseN := len(ds.Temperature.Values)
	var ids []timeseries.ID
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	for h := baseN; h < baseN+2; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for id, row := range drainSnap(t, cur) {
		if len(row) != baseN+2 {
			t.Fatalf("household %d: %d hours, want %d", id, len(row), baseN+2)
		}
		if row[baseN+1] != liveVal(id, baseN+1) {
			t.Fatalf("household %d: paged snapshot tail mismatch", id)
		}
	}
}
