package colstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func writeSource(t *testing.T, consumers, days int) (*meterdata.Source, *timeseries.Dataset) {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	return src, ds
}

// writeAndDecode round-trips ds through a segment file on disk.
func writeAndDecode(t *testing.T, ds *timeseries.Dataset, inMemory bool) *timeseries.Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "segments.col")
	if err := writeDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	st, err := openStore(path, inMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	got, err := decodeAll(st)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, ds := writeSource(t, 5, 20)
	got := writeAndDecode(t, ds, true)
	if len(got.Series) != len(ds.Series) {
		t.Fatalf("series = %d", len(got.Series))
	}
	for i, s := range ds.Series {
		if got.Series[i].ID != s.ID {
			t.Fatalf("series %d id %d vs %d", i, got.Series[i].ID, s.ID)
		}
		for j := range s.Readings {
			if got.Series[i].Readings[j] != s.Readings[j] {
				t.Fatalf("series %d reading %d mismatch", i, j)
			}
		}
	}
	for j := range ds.Temperature.Values {
		if got.Temperature.Values[j] != ds.Temperature.Values[j] {
			t.Fatalf("temperature %d mismatch", j)
		}
	}
}

func TestDecodedColumnsPackZeroCopy(t *testing.T) {
	// The decoder lays all consumer columns in one contiguous buffer, so
	// the similarity engine's FlatMatrix packing must adopt that backing
	// zero-copy instead of re-copying every row.
	_, ds := writeSource(t, 6, 15)
	got := writeAndDecode(t, ds, true)
	m, err := got.Flat()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Shared() {
		t.Fatal("FlatMatrix copied the decoded columns; want zero-copy adoption")
	}
	if &m.Data()[0] != &got.Series[0].Readings[0] {
		t.Error("FlatMatrix data does not alias the decoded buffer")
	}
	// Zero-copy means the matrix sees writes through the series view.
	got.ReleaseFlat()
	got.Series[2].Readings[3] = 1234.5
	m, err = got.Flat()
	if err != nil {
		t.Fatal(err)
	}
	if m.Row(2)[3] != 1234.5 {
		t.Error("FlatMatrix row does not alias series readings")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, ds := writeSource(t, 2, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "segments.col")
	if err := writeDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"short":     func(b []byte) []byte { return b[:10] },
		"truncated": func(b []byte) []byte { return b[:len(b)-8] },
		"bad-magic": func(b []byte) []byte { b2 := append([]byte(nil), b...); b2[0] = 'X'; return b2 },
	} {
		bad := filepath.Join(dir, name+".col")
		if err := os.WriteFile(bad, mutate(img), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, inMemory := range []bool{true, false} {
			if st, err := openStore(bad, inMemory); err == nil {
				st.close()
				t.Errorf("%s (inMemory=%v): want error", name, inMemory)
			}
		}
	}
}

func TestEngineLoadRunRelease(t *testing.T) {
	src, ds := writeSource(t, 4, 30)
	e := New(t.TempDir())
	st, err := e.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumers != 4 || st.StorageBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
	for _, task := range core.Tasks {
		spec := core.Spec{Task: task, K: 2}
		got, err := e.Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", task, err)
		}
		want, err := core.RunReference(ds, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("%v: count %d vs %d", task, got.Count(), want.Count())
		}
	}
	// Release then cold-run again via Remap.
	if err := e.Release(); err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil || r.Count() != 4 {
		t.Fatalf("cold rerun: %d, %v", r.Count(), err)
	}
}

func TestEngineResultsMatchReferenceExactly(t *testing.T) {
	src, ds := writeSource(t, 3, 40)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(core.Spec{Task: core.TaskThreeLine})
	if err != nil {
		t.Fatal(err)
	}
	// The engine parses the same CSV, so values match the reference to
	// CSV precision.
	ref, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunReference(ref, core.Spec{Task: core.TaskThreeLine})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.ThreeLines {
		g, w := got.ThreeLines[i], want.ThreeLines[i]
		if g.ID != w.ID || math.Abs(g.HeatingGradient-w.HeatingGradient) > 1e-9 {
			t.Fatalf("3-line %d: %+v vs %+v", i, g, w)
		}
	}
	_ = ds
}

func TestEngineWarm(t *testing.T) {
	src, _ := writeSource(t, 2, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	if e.decoded == nil {
		t.Error("warm did not decode")
	}
	// Warm after release remaps from disk.
	e.Release()
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	if e.decoded == nil {
		t.Error("warm after release failed")
	}
}

func TestEngineRunWithoutLoad(t *testing.T) {
	e := New(t.TempDir())
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v, want ErrNotLoaded", err)
	}
}

func TestSegmentFilePersistsAcrossEngines(t *testing.T) {
	src, _ := writeSource(t, 3, 10)
	dir := t.TempDir()
	e1 := New(dir)
	if _, err := e1.Load(src); err != nil {
		t.Fatal(err)
	}
	// A second engine over the same dir can run from the segment file
	// alone (no Load).
	e2 := New(dir)
	r, err := e2.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil || r.Count() != 3 {
		t.Fatalf("second engine: %d, %v", r.Count(), err)
	}
}

func TestRemapMissingFile(t *testing.T) {
	e := New(t.TempDir())
	if err := e.Remap(); err == nil {
		t.Error("remap without file: want error")
	}
	// Corrupt file on disk surfaces as a decode error at Run.
	os.WriteFile(e.path, []byte("garbage"), 0o644)
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil {
		t.Error("corrupt file: want error")
	}
}

func TestAppendRewritesSegments(t *testing.T) {
	src, ds := writeSource(t, 3, 10)
	e := New(t.TempDir())
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	delta, err := seed.Generate(seed.Config{Consumers: 3, Days: 1, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendDelta(delta); err != nil {
		t.Fatal(err)
	}
	// New data visible immediately and after a cold remap.
	res, err := e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(11 * 24)
	for _, h := range res.Histograms {
		if h.Histogram.Total() != want {
			t.Fatalf("consumer %d total = %d, want %d", h.ID, h.Histogram.Total(), want)
		}
	}
	e.Release()
	res, err = e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histograms[0].Histogram.Total() != want {
		t.Error("append lost after remap")
	}
	_ = ds
}

func TestAppendValidation(t *testing.T) {
	e := New(t.TempDir())
	if err := e.AppendDelta(&timeseries.Dataset{}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("append before load: %v", err)
	}
	src, _ := writeSource(t, 2, 5)
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	wrong, err := seed.Generate(seed.Config{Consumers: 3, Days: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendDelta(wrong); err == nil {
		t.Error("wrong household count: want error")
	}
	// Missing household IDs (right count, wrong IDs).
	bad, err := seed.Generate(seed.Config{Consumers: 2, Days: 1, Seed: 1, FirstID: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendDelta(bad); err == nil {
		t.Error("unknown households: want error")
	}
}
