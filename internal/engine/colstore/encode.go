package colstore

import (
	"fmt"
	"sync"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// encodePool fans per-consumer block encoding out over a fixed worker
// pool while keeping file writes in appended order, so a pool-encoded
// segment is byte-identical to a serial one. The shape is the same
// deterministic-reorder discipline the exec prefetcher uses:
//
//	Append → copy readings → jobs ──► workers (quantize + encodeConsumer)
//	                                     │
//	            writer goroutine ◄── results (reordered by sequence)
//
// Only the writer goroutine touches the file, directory and offset;
// Append's validation and byte accounting stay on the caller's
// goroutine. Reading and value buffers recycle through bounded free
// lists, so the pool holds O(encoders) consumers in flight — the
// writer stays out-of-core at any consumer count. Errors are sticky:
// the first write failure is reported by the next Append or by Close,
// and later results drain without touching the file.
type encodePool struct {
	w          *SegmentWriter
	jobs       chan encodeJob
	results    chan encodeResult
	valsFree   chan []float64
	bufFree    chan []byte
	wg         sync.WaitGroup
	writerDone chan struct{}
	seq        int

	mu  sync.Mutex
	err error
}

type encodeJob struct {
	seq  int
	id   timeseries.ID
	vals []float64
}

type encodeResult struct {
	seq int
	id  timeseries.ID
	buf []byte
}

func newEncodePool(w *SegmentWriter) *encodePool {
	depth := 2 * w.encoders
	p := &encodePool{
		w:          w,
		jobs:       make(chan encodeJob, depth),
		results:    make(chan encodeResult, depth),
		valsFree:   make(chan []float64, depth+w.encoders+1),
		bufFree:    make(chan []byte, depth+w.encoders+1),
		writerDone: make(chan struct{}),
	}
	p.wg.Add(w.encoders)
	for i := 0; i < w.encoders; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.results)
	}()
	go p.writer()
	return p
}

func (p *encodePool) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *encodePool) sticky() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// append copies the caller's readings into an owned buffer and
// enqueues them; a full queue blocks, which is the pool's natural
// backpressure against generators that outrun the encoders.
func (p *encodePool) append(id timeseries.ID, readings []float64) error {
	if err := p.sticky(); err != nil {
		return err
	}
	var vals []float64
	select {
	case vals = <-p.valsFree:
	default:
		vals = make([]float64, len(readings))
	}
	vals = vals[:len(readings)]
	copy(vals, readings)
	p.jobs <- encodeJob{seq: p.seq, id: id, vals: vals}
	p.seq++
	return nil
}

// worker encodes consumers with private codec scratch. Quantization
// runs here, on the job's owned copy, so the whole per-consumer encode
// cost scales with the pool.
func (p *encodePool) worker() {
	defer p.wg.Done()
	var enc colcodec.Encoder
	var ls colcodec.LaneSummary
	for job := range p.jobs {
		if p.w.quantPow > 0 {
			quantizeInPlace(job.vals, p.w.quantPow)
		}
		var buf []byte
		select {
		case buf = <-p.bufFree:
		default:
		}
		buf = encodeConsumer(&enc, &ls, buf, job.vals, p.w.blockRows, p.w.blockCount, p.w.tsPayloads)
		select {
		case p.valsFree <- job.vals:
		default:
		}
		p.results <- encodeResult{seq: job.seq, id: job.id, buf: buf}
	}
}

// writer is the only goroutine that writes the file during appends: it
// reorders results by sequence number and emits them in appended
// order, so the bytes match the serial path exactly.
func (p *encodePool) writer() {
	defer close(p.writerDone)
	pending := make(map[int]encodeResult)
	next := 0
	for res := range p.results {
		pending[res.seq] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if p.sticky() == nil {
				if err := p.w.writeConsumer(r.id, r.buf); err != nil {
					p.setErr(fmt.Errorf("colstore: write segments: %w", err))
				}
			}
			select {
			case p.bufFree <- r.buf:
			default:
			}
			next++
		}
	}
}

// drain closes the job queue, waits for every in-flight consumer to be
// encoded and written, and returns the pool's sticky error.
func (p *encodePool) drain() error {
	close(p.jobs)
	<-p.writerDone
	return p.sticky()
}
