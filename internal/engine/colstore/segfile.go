package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Segment file layout v3 ("SMCOL3", little endian):
//
//	magic "SMCOL3\n" (7 bytes) + 1 pad byte
//	u32 consumers   (patched at Close)
//	u32 seriesLen
//	u32 blockRows
//	u32 reserved
//	u64 rawBytes    (patched at Close)
//	u64 dirOffset   (patched at Close)
//	u64 fileSize    (patched at Close)
//	temperature column: seriesLen x f64 (raw — one column per file)
//	per consumer, in ascending household order:
//	    blockCount x 64-byte block header:
//	        u32 start, u32 count, u32 nans,
//	        u32 payloadOff (relative to this consumer's payload area),
//	        u32 tsLen, u32 valLen, u32 laneLen, u32 flags,
//	        f64 min, f64 max, f64 sum, f64 sumSq
//	    payload area: per block, colcodec timestamps, then values, then
//	        the lane section (laneLen bytes): the 24 per-hour sums as a
//	        colcodec value payload, followed — when flags carry
//	        BlockHourPeriodic — by the 24-value tile pattern. Lane
//	        counts are not stored: they are derived from (start, count)
//	        on the implicit hourly grid. NaN-bearing blocks store no
//	        lane section (laneLen 0, no BlockHourLanes flag).
//	directory at dirOffset: consumers x 24-byte entry:
//	    u64 household id, u64 segOffset, u32 segLen, u32 blockCount
//
// The header fields a streaming writer cannot know up front are patched
// in place at Close, so a million-consumer file is written
// consumer-by-consumer without ever holding the raw matrix.
//
// v3 over v2: block headers grew lane length + structure flags (+8
// bytes), the default block size became day-aligned, and encoding can
// fan out over a worker pool — the file bytes are identical whichever
// encoder count produced them, because every consumer's bytes come
// from the same pure encodeConsumer function and land in appended
// order.

var magic3 = [8]byte{'S', 'M', 'C', 'O', 'L', '3', '\n', 0}

const (
	headerSize2  = 48
	blockHdrSize = 64
	dirEntSize   = 24

	// DefaultBlockRows is the row count per compressed block: 42 days
	// of hourly readings, ~8 KiB raw — large enough to amortize
	// per-block headers to ~1% and small enough that summary-driven
	// block skipping has resolution. Day-aligned (a multiple of 24) so
	// whole blocks sit on the hour grid and compressed-domain kernels
	// can consume their per-hour lanes without decoding.
	DefaultBlockRows = 1008
)

// blockHdr is the in-memory mirror of an on-disk block header.
type blockHdr struct {
	start, count, nans   uint32
	payloadOff           uint32
	tsLen, valLen        uint32
	laneLen, flags       uint32
	min, max, sum, sumSq float64
}

// SegmentWriter streams consumers into a v3 segment file in ascending
// household order. It holds a bounded number of consumers' encoded
// blocks at a time — never the dataset — so generation and load run
// out-of-core. With WithEncoders(n>1) block encoding fans out over a
// worker pool while file writes stay in append order.
type SegmentWriter struct {
	path       string
	f          *os.File
	w          *bufio.Writer
	n          int
	blockRows  int
	blockCount int
	quantPow   float64 // 0: no quantization
	off        int64
	consumers  int
	lastID     timeseries.ID
	rawBytes   int64
	dir        []byte
	enc        colcodec.Encoder
	ls         colcodec.LaneSummary
	buf        []byte
	qbuf       []float64
	tsPayloads [][]byte
	closed     bool

	encoders int
	pool     *encodePool
}

// WriterOption configures a SegmentWriter.
type WriterOption func(*SegmentWriter)

// WithBlockRows overrides the rows-per-block (tests use small blocks to
// exercise multi-block series with short datasets).
func WithBlockRows(rows int) WriterOption {
	return func(w *SegmentWriter) {
		if rows > 0 {
			w.blockRows = rows
		}
	}
}

// WithQuantize rounds every reading to the given number of decimal
// digits before encoding — the stored values ARE the dataset from then
// on (every engine reading this file sees the quantized values, so
// results stay bit-identical across engines). Generated data uses 3
// digits: Wh resolution, beyond any real meter, and what makes the
// fixed-point codec bite.
func WithQuantize(digits int) WriterOption {
	return func(w *SegmentWriter) {
		if digits >= 0 {
			w.quantPow = math.Pow(10, float64(digits))
		}
	}
}

// WithEncoders sets the number of concurrent block encoders. n <= 1
// keeps the historical serial path. The segment file is byte-identical
// whichever count is used; only wall-clock changes.
func WithEncoders(n int) WriterOption {
	return func(w *SegmentWriter) {
		if n > 1 {
			w.encoders = n
		}
	}
}

// NewSegmentWriter creates path (truncating any previous file) and
// writes the header and temperature column. Callers must Append every
// consumer in ascending ID order and then Close.
func NewSegmentWriter(path string, temp []float64, opts ...WriterOption) (*SegmentWriter, error) {
	w := &SegmentWriter{path: path, n: len(temp), blockRows: DefaultBlockRows}
	for _, opt := range opts {
		opt(w)
	}
	w.blockCount = 0
	if w.n > 0 {
		w.blockCount = (w.n + w.blockRows - 1) / w.blockRows
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: create segments: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 1<<20)
	hdr := make([]byte, headerSize2)
	copy(hdr, magic3[:])
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.n))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(w.blockRows))
	if _, err := w.w.Write(hdr); err != nil {
		return nil, w.fail(err)
	}
	col := make([]byte, 8*len(temp))
	for i, v := range temp {
		binary.LittleEndian.PutUint64(col[i*8:], math.Float64bits(v))
	}
	if _, err := w.w.Write(col); err != nil {
		return nil, w.fail(err)
	}
	w.off = int64(headerSize2 + len(col))
	// Block timestamps are the implicit hour grid — identical for every
	// consumer — so their payloads are encoded once and shared by all
	// encode paths (and, read-only, by all pool workers).
	w.tsPayloads = make([][]byte, w.blockCount)
	ts := make([]int64, w.blockRows)
	for b := 0; b < w.blockCount; b++ {
		start := b * w.blockRows
		end := start + w.blockRows
		if end > w.n {
			end = w.n
		}
		blkTs := ts[:end-start]
		for i := range blkTs {
			blkTs[i] = int64(start + i)
		}
		w.tsPayloads[b] = colcodec.AppendTimestamps(nil, blkTs)
	}
	if w.encoders > 1 {
		w.pool = newEncodePool(w)
	}
	return w, nil
}

func (w *SegmentWriter) fail(err error) error {
	w.closed = true
	_ = w.f.Close()
	return fmt.Errorf("colstore: write segments: %w", err)
}

// quantizeInPlace rounds vals to the writer's decimal resolution.
func quantizeInPlace(vals []float64, quantPow float64) {
	for i, v := range vals {
		vals[i] = math.Round(v*quantPow) / quantPow
	}
}

// encodeConsumer encodes one consumer's (already quantized) readings
// into buf: blockCount fixed-size block headers followed by the payload
// area, exactly the bytes Append writes for that consumer. It is a pure
// function of vals and the writer geometry — the serial path and every
// pool worker produce identical bytes — reusing buf and the caller's
// encoder/lane scratch. This is a per-reading hot path: no allocations
// beyond amortized buffer growth.
func encodeConsumer(enc *colcodec.Encoder, ls *colcodec.LaneSummary, buf []byte, vals []float64, blockRows, blockCount int, tsPayloads [][]byte) []byte {
	hdrLen := blockCount * blockHdrSize
	if cap(buf) < hdrLen {
		buf = make([]byte, hdrLen, hdrLen+2*len(vals))
	}
	buf = buf[:hdrLen]
	for b := 0; b < blockCount; b++ {
		start := b * blockRows
		end := start + blockRows
		if end > len(vals) {
			end = len(vals)
		}
		blk := vals[start:end]
		sum := colcodec.Summarize(blk)
		payloadOff := len(buf) - hdrLen
		buf = append(buf, tsPayloads[b]...)
		tsLen := len(buf) - hdrLen - payloadOff
		buf = enc.AppendValues(buf, blk)
		valLen := len(buf) - hdrLen - payloadOff - tsLen
		var flags core.BlockFlags
		laneLen := 0
		if colcodec.SummarizeHours(start, blk, ls) {
			flags |= core.BlockHourLanes
			mark := len(buf)
			buf = enc.AppendValues(buf, ls.Sums[:])
			if ls.Constant {
				flags |= core.BlockConstant
			} else if ls.Periodic && len(blk) > 24 {
				// The tile is stored explicitly: dividing lane sums by
				// counts would not reproduce the values bit-exactly.
				flags |= core.BlockHourPeriodic
				buf = enc.AppendValues(buf, ls.Pattern[:])
			}
			laneLen = len(buf) - mark
		}
		putBlockHdr(buf[b*blockHdrSize:], blockHdr{
			start:      uint32(start),
			count:      uint32(end - start),
			nans:       uint32(sum.NaNs),
			payloadOff: uint32(payloadOff),
			tsLen:      uint32(tsLen),
			valLen:     uint32(valLen),
			laneLen:    uint32(laneLen),
			flags:      uint32(flags),
			min:        sum.Min,
			max:        sum.Max,
			sum:        sum.Sum,
			sumSq:      sum.SumSq,
		})
	}
	return buf
}

// Append encodes one consumer's readings. IDs must arrive in strictly
// ascending order (the cursor contract downstream).
func (w *SegmentWriter) Append(id timeseries.ID, readings []float64) error {
	if w.closed {
		return fmt.Errorf("colstore: append to closed segment writer")
	}
	if len(readings) != w.n {
		return fmt.Errorf("colstore: consumer %d has %d readings, temperature has %d", id, len(readings), w.n)
	}
	if w.consumers > 0 && id <= w.lastID {
		return fmt.Errorf("colstore: appends must arrive in ascending household order: %d after %d", id, w.lastID)
	}
	w.rawBytes += int64(8 * len(readings))
	w.lastID = id
	w.consumers++
	if w.pool != nil {
		return w.pool.append(id, readings)
	}
	vals := readings
	if w.quantPow > 0 {
		if cap(w.qbuf) < len(readings) {
			w.qbuf = make([]float64, len(readings))
		}
		w.qbuf = w.qbuf[:len(readings)]
		copy(w.qbuf, readings)
		quantizeInPlace(w.qbuf, w.quantPow)
		vals = w.qbuf
	}
	w.buf = encodeConsumer(&w.enc, &w.ls, w.buf, vals, w.blockRows, w.blockCount, w.tsPayloads)
	if err := w.writeConsumer(id, w.buf); err != nil {
		return w.fail(err)
	}
	return nil
}

// writeConsumer appends one consumer's encoded bytes and directory
// entry. In pool mode it runs only on the pool's writer goroutine, in
// appended order; it must not touch the writer's closed/file state
// (the pool records its error and Close cleans up).
func (w *SegmentWriter) writeConsumer(id timeseries.ID, buf []byte) error {
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	var ent [dirEntSize]byte
	binary.LittleEndian.PutUint64(ent[0:], uint64(id))
	binary.LittleEndian.PutUint64(ent[8:], uint64(w.off))
	binary.LittleEndian.PutUint32(ent[16:], uint32(len(buf)))
	binary.LittleEndian.PutUint32(ent[20:], uint32(w.blockCount))
	w.dir = append(w.dir, ent[:]...)
	w.off += int64(len(buf))
	return nil
}

func putBlockHdr(dst []byte, h blockHdr) {
	binary.LittleEndian.PutUint32(dst[0:], h.start)
	binary.LittleEndian.PutUint32(dst[4:], h.count)
	binary.LittleEndian.PutUint32(dst[8:], h.nans)
	binary.LittleEndian.PutUint32(dst[12:], h.payloadOff)
	binary.LittleEndian.PutUint32(dst[16:], h.tsLen)
	binary.LittleEndian.PutUint32(dst[20:], h.valLen)
	binary.LittleEndian.PutUint32(dst[24:], h.laneLen)
	binary.LittleEndian.PutUint32(dst[28:], h.flags)
	binary.LittleEndian.PutUint64(dst[32:], math.Float64bits(h.min))
	binary.LittleEndian.PutUint64(dst[40:], math.Float64bits(h.max))
	binary.LittleEndian.PutUint64(dst[48:], math.Float64bits(h.sum))
	binary.LittleEndian.PutUint64(dst[56:], math.Float64bits(h.sumSq))
}

func parseBlockHdr(b []byte) blockHdr {
	return blockHdr{
		start:      binary.LittleEndian.Uint32(b[0:]),
		count:      binary.LittleEndian.Uint32(b[4:]),
		nans:       binary.LittleEndian.Uint32(b[8:]),
		payloadOff: binary.LittleEndian.Uint32(b[12:]),
		tsLen:      binary.LittleEndian.Uint32(b[16:]),
		valLen:     binary.LittleEndian.Uint32(b[20:]),
		laneLen:    binary.LittleEndian.Uint32(b[24:]),
		flags:      binary.LittleEndian.Uint32(b[28:]),
		min:        math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		max:        math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
		sum:        math.Float64frombits(binary.LittleEndian.Uint64(b[48:])),
		sumSq:      math.Float64frombits(binary.LittleEndian.Uint64(b[56:])),
	}
}

// RawBytes returns the uncompressed reading-matrix size appended so far.
func (w *SegmentWriter) RawBytes() int64 { return w.rawBytes }

// Consumers returns the number of consumers appended so far.
func (w *SegmentWriter) Consumers() int { return w.consumers }

// Close drains any encode pool, writes the directory, patches the
// header, fsyncs, and closes the file.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	if w.pool != nil {
		if err := w.pool.drain(); err != nil {
			w.closed = true
			_ = w.f.Close()
			return err
		}
	}
	w.closed = true
	if w.consumers == 0 {
		_ = w.f.Close()
		_ = os.Remove(w.path)
		return fmt.Errorf("colstore: empty dataset")
	}
	dirOff := w.off
	if _, err := w.w.Write(w.dir); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: write segments: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: write segments: %w", err)
	}
	fileSize := dirOff + int64(len(w.dir))
	var patch [40]byte
	binary.LittleEndian.PutUint32(patch[0:], uint32(w.consumers))
	binary.LittleEndian.PutUint32(patch[4:], uint32(w.n))
	binary.LittleEndian.PutUint32(patch[8:], uint32(w.blockRows))
	binary.LittleEndian.PutUint64(patch[16:], uint64(w.rawBytes))
	binary.LittleEndian.PutUint64(patch[24:], uint64(dirOff))
	binary.LittleEndian.PutUint64(patch[32:], uint64(fileSize))
	if _, err := w.f.WriteAt(patch[:], 8); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: patch header: %w", err)
	}
	// Fsync before close: callers rename this file over the live
	// segment, and the rename must never be able to outrun the data.
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: sync segments: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("colstore: close segments: %w", err)
	}
	return nil
}

// segStore is an attached v3 segment file: resident metadata (directory
// and block headers) plus either a fully resident image (in-core mode)
// or an open file handle for on-demand block reads (paged mode).
type segStore struct {
	path       string
	f          *os.File // nil in in-core mode
	img        []byte   // nil in paged mode
	consumers  int
	n          int
	blockRows  int
	blockCount int
	rawBytes   int64
	fileSize   int64
	temp       []float64
	ids        []timeseries.ID
	segOff     []int64
	hdrs       []blockHdr // consumers x blockCount, row-major
}

// openStore attaches a segment file. In-core mode reads the whole file
// once (the old "memory-mapped image" behavior); paged mode reads only
// header, temperature, directory and block headers, leaving payloads on
// disk for the pager.
func openStore(path string, inMemory bool) (*segStore, error) {
	st := &segStore{path: path}
	var hdr [headerSize2]byte
	if inMemory {
		img, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("colstore: open segments: %w", err)
		}
		if len(img) < headerSize2 {
			return nil, fmt.Errorf("%w: %d bytes", errCorrupt, len(img))
		}
		st.img = img
		copy(hdr[:], img)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("colstore: open segments: %w", err)
		}
		st.f = f
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
		}
	}
	if err := st.parseMeta(hdr); err != nil {
		st.close()
		return nil, err
	}
	return st, nil
}

func (st *segStore) parseMeta(hdr [headerSize2]byte) error {
	for i, b := range magic3 {
		if hdr[i] != b {
			return fmt.Errorf("%w: bad magic", errCorrupt)
		}
	}
	st.consumers = int(binary.LittleEndian.Uint32(hdr[8:]))
	st.n = int(binary.LittleEndian.Uint32(hdr[12:]))
	st.blockRows = int(binary.LittleEndian.Uint32(hdr[16:]))
	st.rawBytes = int64(binary.LittleEndian.Uint64(hdr[24:]))
	dirOff := int64(binary.LittleEndian.Uint64(hdr[32:]))
	st.fileSize = int64(binary.LittleEndian.Uint64(hdr[40:]))
	if st.consumers <= 0 || st.n < 0 || st.blockRows <= 0 {
		return fmt.Errorf("%w: header counts", errCorrupt)
	}
	if st.img != nil && int64(len(st.img)) != st.fileSize {
		return fmt.Errorf("%w: size %d, want %d", errCorrupt, len(st.img), st.fileSize)
	}
	if st.f != nil {
		fi, err := st.f.Stat()
		if err != nil || fi.Size() != st.fileSize {
			return fmt.Errorf("%w: size mismatch", errCorrupt)
		}
	}
	st.blockCount = 0
	if st.n > 0 {
		st.blockCount = (st.n + st.blockRows - 1) / st.blockRows
	}
	// Temperature column.
	tempRaw, err := st.read(headerSize2, 8*st.n, nil)
	if err != nil {
		return err
	}
	st.temp = make([]float64, st.n)
	for i := range st.temp {
		st.temp[i] = math.Float64frombits(binary.LittleEndian.Uint64(tempRaw[i*8:]))
	}
	// Directory.
	dirLen := st.consumers * dirEntSize
	if dirOff < headerSize2 || dirOff+int64(dirLen) != st.fileSize {
		return fmt.Errorf("%w: directory bounds", errCorrupt)
	}
	dir, err := st.read(dirOff, dirLen, nil)
	if err != nil {
		return err
	}
	st.ids = make([]timeseries.ID, st.consumers)
	st.segOff = make([]int64, st.consumers)
	st.hdrs = make([]blockHdr, st.consumers*st.blockCount)
	var scratch []byte
	for c := 0; c < st.consumers; c++ {
		ent := dir[c*dirEntSize:]
		st.ids[c] = timeseries.ID(binary.LittleEndian.Uint64(ent[0:]))
		st.segOff[c] = int64(binary.LittleEndian.Uint64(ent[8:]))
		if c > 0 && st.ids[c] <= st.ids[c-1] {
			return fmt.Errorf("%w: household order", errCorrupt)
		}
		if int(binary.LittleEndian.Uint32(ent[20:])) != st.blockCount {
			return fmt.Errorf("%w: block count", errCorrupt)
		}
		if st.segOff[c] < headerSize2 || st.segOff[c]+int64(st.blockCount*blockHdrSize) > dirOff {
			return fmt.Errorf("%w: segment bounds", errCorrupt)
		}
		scratch, err = st.readInto(st.segOff[c], st.blockCount*blockHdrSize, scratch)
		if err != nil {
			return err
		}
		for b := 0; b < st.blockCount; b++ {
			st.hdrs[c*st.blockCount+b] = parseBlockHdr(scratch[b*blockHdrSize:])
		}
	}
	return nil
}

// read returns length bytes at off: a zero-copy image subslice in
// in-core mode, a fresh (or reused) buffer in paged mode.
func (st *segStore) read(off int64, length int, scratch []byte) ([]byte, error) {
	if st.img != nil {
		if off < 0 || off+int64(length) > int64(len(st.img)) {
			return nil, fmt.Errorf("%w: read out of bounds", errCorrupt)
		}
		return st.img[off : off+int64(length)], nil
	}
	b, err := st.readInto(off, length, scratch)
	return b, err
}

func (st *segStore) readInto(off int64, length int, scratch []byte) ([]byte, error) {
	if cap(scratch) < length {
		scratch = make([]byte, length)
	}
	scratch = scratch[:length]
	if st.img != nil {
		if off < 0 || off+int64(length) > int64(len(st.img)) {
			return nil, fmt.Errorf("%w: read out of bounds", errCorrupt)
		}
		copy(scratch, st.img[off:])
		return scratch, nil
	}
	if _, err := st.f.ReadAt(scratch, off); err != nil {
		return nil, fmt.Errorf("%w: read: %v", errCorrupt, err)
	}
	return scratch, nil
}

func (st *segStore) close() {
	if st.f != nil {
		_ = st.f.Close()
		st.f = nil
	}
	st.img = nil
}

func (st *segStore) hdr(c, b int) *blockHdr { return &st.hdrs[c*st.blockCount+b] }

// payloadBase returns the absolute file offset of consumer c's payload
// area (its block headers precede it).
func (st *segStore) payloadBase(c int) int64 {
	return st.segOff[c] + int64(st.blockCount*blockHdrSize)
}

// readBlockVals decodes block b of consumer c into dst (which must hold
// h.count values) and returns the possibly-grown scratch buffer.
func (st *segStore) readBlockVals(c, b int, scratch []byte, dst []float64) ([]byte, error) {
	h := st.hdr(c, b)
	off := st.payloadBase(c) + int64(h.payloadOff) + int64(h.tsLen)
	raw, err := st.read(off, int(h.valLen), scratch)
	if err != nil {
		return scratch, err
	}
	if st.img == nil {
		scratch = raw
	}
	out, _, err := colcodec.DecodeValues(raw, dst[:0])
	if err != nil {
		return scratch, fmt.Errorf("colstore: consumer %d block %d: %w", st.ids[c], b, err)
	}
	if len(out) != int(h.count) {
		return scratch, fmt.Errorf("%w: block row count", errCorrupt)
	}
	return scratch, nil
}

// readBlockTs decodes block b of consumer c's timestamps.
func (st *segStore) readBlockTs(c, b int, scratch []byte, dst []int64) ([]int64, []byte, error) {
	h := st.hdr(c, b)
	off := st.payloadBase(c) + int64(h.payloadOff)
	raw, err := st.read(off, int(h.tsLen), scratch)
	if err != nil {
		return nil, scratch, err
	}
	if st.img == nil {
		scratch = raw
	}
	out, _, err := colcodec.DecodeTimestamps(raw, dst)
	if err != nil {
		return nil, scratch, fmt.Errorf("colstore: consumer %d block %d: %w", st.ids[c], b, err)
	}
	return out, scratch, nil
}

// readBlockLanes loads block b of consumer c's per-hour lane section
// into dst, deriving the lane counts from the block geometry. The
// caller must have checked the header carries BlockHourLanes.
func (st *segStore) readBlockLanes(c, b int, scratch []byte, dst *core.HourLanes) ([]byte, error) {
	h := st.hdr(c, b)
	off := st.payloadBase(c) + int64(h.payloadOff) + int64(h.tsLen) + int64(h.valLen)
	raw, err := st.read(off, int(h.laneLen), scratch)
	if err != nil {
		return scratch, err
	}
	if st.img == nil {
		scratch = raw
	}
	sums, used, err := colcodec.DecodeValues(raw, dst.Sums[:0])
	if err != nil || len(sums) != 24 {
		return scratch, fmt.Errorf("%w: lane sums (consumer %d block %d)", errCorrupt, st.ids[c], b)
	}
	if core.BlockFlags(h.flags)&core.BlockHourPeriodic != 0 {
		pat, _, err := colcodec.DecodeValues(raw[used:], dst.Pattern[:0])
		if err != nil || len(pat) != 24 {
			return scratch, fmt.Errorf("%w: lane pattern (consumer %d block %d)", errCorrupt, st.ids[c], b)
		}
	} else {
		dst.Pattern = [24]float64{}
	}
	// Counts are implicit in (start, count) on the hourly grid: every
	// lane holds count/24 rows, and the first count%24 hours after
	// start hold one more.
	base := int32(h.count / 24)
	for hh := range dst.Counts {
		dst.Counts[hh] = base
	}
	for i := 0; i < int(h.count%24); i++ {
		dst.Counts[(int(h.start)+i)%24]++
	}
	return scratch, nil
}

// decodeConsumerInto decodes consumer c's full series into dst (length
// st.n) and returns the possibly-grown scratch buffer.
func (st *segStore) decodeConsumerInto(c int, dst []float64, scratch []byte) ([]byte, error) {
	for b := 0; b < st.blockCount; b++ {
		h := st.hdr(c, b)
		var err error
		scratch, err = st.readBlockVals(c, b, scratch, dst[h.start:h.start+h.count])
		if err != nil {
			return scratch, err
		}
	}
	return scratch, nil
}

// metaBytes reports the resident metadata footprint (temperature,
// directory and block headers) — what an attached paged store costs
// before any block is decoded.
func (st *segStore) metaBytes() int64 {
	return int64(8*len(st.temp)) + int64(len(st.ids))*dirEntSize + int64(len(st.hdrs))*blockHdrSize
}
