package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Segment file layout v2 ("SMCOL2", little endian):
//
//	magic "SMCOL2\n" (7 bytes) + 1 pad byte
//	u32 consumers   (patched at Close)
//	u32 seriesLen
//	u32 blockRows
//	u32 reserved
//	u64 rawBytes    (patched at Close)
//	u64 dirOffset   (patched at Close)
//	u64 fileSize    (patched at Close)
//	temperature column: seriesLen x f64 (raw — one column per file)
//	per consumer, in ascending household order:
//	    blockCount x 56-byte block header:
//	        u32 start, u32 count, u32 nans,
//	        u32 payloadOff (relative to this consumer's payload area),
//	        u32 tsLen, u32 valLen,
//	        f64 min, f64 max, f64 sum, f64 sumSq
//	    payload area: per block, colcodec timestamps then values
//	directory at dirOffset: consumers x 24-byte entry:
//	    u64 household id, u64 segOffset, u32 segLen, u32 blockCount
//
// The header fields a streaming writer cannot know up front are patched
// in place at Close, so a million-consumer file is written
// consumer-by-consumer without ever holding the raw matrix.

var magic2 = [8]byte{'S', 'M', 'C', 'O', 'L', '2', '\n', 0}

const (
	headerSize2  = 48
	blockHdrSize = 56
	dirEntSize   = 24

	// DefaultBlockRows is the row count per compressed block: 8 KiB of
	// raw float64s, large enough to amortize per-block headers to <1%
	// and small enough that summary-driven block skipping has
	// resolution.
	DefaultBlockRows = 1024
)

// blockHdr is the in-memory mirror of an on-disk block header.
type blockHdr struct {
	start, count, nans     uint32
	payloadOff             uint32
	tsLen, valLen          uint32
	min, max, sum, sumSq   float64
}

// SegmentWriter streams consumers into a v2 segment file in ascending
// household order. It holds one consumer's encoded blocks at a time —
// never the dataset — so generation and load run out-of-core.
type SegmentWriter struct {
	path       string
	f          *os.File
	w          *bufio.Writer
	n          int
	blockRows  int
	blockCount int
	quantPow   float64 // 0: no quantization
	off        int64
	consumers  int
	lastID     timeseries.ID
	rawBytes   int64
	dir        []byte
	enc        colcodec.Encoder
	hdrBuf     []byte
	payload    []byte
	qbuf       []float64
	ts         []int64
	closed     bool
}

// WriterOption configures a SegmentWriter.
type WriterOption func(*SegmentWriter)

// WithBlockRows overrides the rows-per-block (tests use small blocks to
// exercise multi-block series with short datasets).
func WithBlockRows(rows int) WriterOption {
	return func(w *SegmentWriter) {
		if rows > 0 {
			w.blockRows = rows
		}
	}
}

// WithQuantize rounds every reading to the given number of decimal
// digits before encoding — the stored values ARE the dataset from then
// on (every engine reading this file sees the quantized values, so
// results stay bit-identical across engines). Generated data uses 3
// digits: Wh resolution, beyond any real meter, and what makes the
// fixed-point codec bite.
func WithQuantize(digits int) WriterOption {
	return func(w *SegmentWriter) {
		if digits >= 0 {
			w.quantPow = math.Pow(10, float64(digits))
		}
	}
}

// NewSegmentWriter creates path (truncating any previous file) and
// writes the header and temperature column. Callers must Append every
// consumer in ascending ID order and then Close.
func NewSegmentWriter(path string, temp []float64, opts ...WriterOption) (*SegmentWriter, error) {
	w := &SegmentWriter{path: path, n: len(temp), blockRows: DefaultBlockRows}
	for _, opt := range opts {
		opt(w)
	}
	w.blockCount = 0
	if w.n > 0 {
		w.blockCount = (w.n + w.blockRows - 1) / w.blockRows
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: create segments: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 1<<20)
	hdr := make([]byte, headerSize2)
	copy(hdr, magic2[:])
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.n))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(w.blockRows))
	if _, err := w.w.Write(hdr); err != nil {
		return nil, w.fail(err)
	}
	col := make([]byte, 8*len(temp))
	for i, v := range temp {
		binary.LittleEndian.PutUint64(col[i*8:], math.Float64bits(v))
	}
	if _, err := w.w.Write(col); err != nil {
		return nil, w.fail(err)
	}
	w.off = int64(headerSize2 + len(col))
	return w, nil
}

func (w *SegmentWriter) fail(err error) error {
	w.closed = true
	_ = w.f.Close()
	return fmt.Errorf("colstore: write segments: %w", err)
}

// Append encodes one consumer's readings. IDs must arrive in strictly
// ascending order (the cursor contract downstream).
func (w *SegmentWriter) Append(id timeseries.ID, readings []float64) error {
	if w.closed {
		return fmt.Errorf("colstore: append to closed segment writer")
	}
	if len(readings) != w.n {
		return fmt.Errorf("colstore: consumer %d has %d readings, temperature has %d", id, len(readings), w.n)
	}
	if w.consumers > 0 && id <= w.lastID {
		return fmt.Errorf("colstore: appends must arrive in ascending household order: %d after %d", id, w.lastID)
	}
	vals := readings
	if w.quantPow > 0 {
		if cap(w.qbuf) < len(readings) {
			w.qbuf = make([]float64, len(readings))
		}
		w.qbuf = w.qbuf[:len(readings)]
		for i, v := range readings {
			w.qbuf[i] = math.Round(v*w.quantPow) / w.quantPow
		}
		vals = w.qbuf
	}
	w.rawBytes += int64(8 * len(readings))
	w.hdrBuf = w.hdrBuf[:0]
	w.payload = w.payload[:0]
	if cap(w.ts) < w.blockRows {
		w.ts = make([]int64, w.blockRows)
	}
	for b := 0; b < w.blockCount; b++ {
		start := b * w.blockRows
		end := start + w.blockRows
		if end > w.n {
			end = w.n
		}
		blk := vals[start:end]
		sum := colcodec.Summarize(blk)
		ts := w.ts[:end-start]
		for i := range ts {
			ts[i] = int64(start + i)
		}
		payloadOff := len(w.payload)
		w.payload = colcodec.AppendTimestamps(w.payload, ts)
		tsLen := len(w.payload) - payloadOff
		w.payload = w.enc.AppendValues(w.payload, blk)
		valLen := len(w.payload) - payloadOff - tsLen
		w.hdrBuf = appendBlockHdr(w.hdrBuf, blockHdr{
			start:      uint32(start),
			count:      uint32(end - start),
			nans:       uint32(sum.NaNs),
			payloadOff: uint32(payloadOff),
			tsLen:      uint32(tsLen),
			valLen:     uint32(valLen),
			min:        sum.Min,
			max:        sum.Max,
			sum:        sum.Sum,
			sumSq:      sum.SumSq,
		})
	}
	if _, err := w.w.Write(w.hdrBuf); err != nil {
		return w.fail(err)
	}
	if _, err := w.w.Write(w.payload); err != nil {
		return w.fail(err)
	}
	segLen := len(w.hdrBuf) + len(w.payload)
	var ent [dirEntSize]byte
	binary.LittleEndian.PutUint64(ent[0:], uint64(id))
	binary.LittleEndian.PutUint64(ent[8:], uint64(w.off))
	binary.LittleEndian.PutUint32(ent[16:], uint32(segLen))
	binary.LittleEndian.PutUint32(ent[20:], uint32(w.blockCount))
	w.dir = append(w.dir, ent[:]...)
	w.off += int64(segLen)
	w.lastID = id
	w.consumers++
	return nil
}

func appendBlockHdr(dst []byte, h blockHdr) []byte {
	var buf [blockHdrSize]byte
	binary.LittleEndian.PutUint32(buf[0:], h.start)
	binary.LittleEndian.PutUint32(buf[4:], h.count)
	binary.LittleEndian.PutUint32(buf[8:], h.nans)
	binary.LittleEndian.PutUint32(buf[12:], h.payloadOff)
	binary.LittleEndian.PutUint32(buf[16:], h.tsLen)
	binary.LittleEndian.PutUint32(buf[20:], h.valLen)
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(h.min))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(h.max))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(h.sum))
	binary.LittleEndian.PutUint64(buf[48:], math.Float64bits(h.sumSq))
	return append(dst, buf[:]...)
}

func parseBlockHdr(b []byte) blockHdr {
	return blockHdr{
		start:      binary.LittleEndian.Uint32(b[0:]),
		count:      binary.LittleEndian.Uint32(b[4:]),
		nans:       binary.LittleEndian.Uint32(b[8:]),
		payloadOff: binary.LittleEndian.Uint32(b[12:]),
		tsLen:      binary.LittleEndian.Uint32(b[16:]),
		valLen:     binary.LittleEndian.Uint32(b[20:]),
		min:        math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		max:        math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		sum:        math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
		sumSq:      math.Float64frombits(binary.LittleEndian.Uint64(b[48:])),
	}
}

// RawBytes returns the uncompressed reading-matrix size appended so far.
func (w *SegmentWriter) RawBytes() int64 { return w.rawBytes }

// Consumers returns the number of consumers appended so far.
func (w *SegmentWriter) Consumers() int { return w.consumers }

// Close writes the directory, patches the header, and closes the file.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.consumers == 0 {
		_ = w.f.Close()
		_ = os.Remove(w.path)
		return fmt.Errorf("colstore: empty dataset")
	}
	dirOff := w.off
	if _, err := w.w.Write(w.dir); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: write segments: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: write segments: %w", err)
	}
	fileSize := dirOff + int64(len(w.dir))
	var patch [40]byte
	binary.LittleEndian.PutUint32(patch[0:], uint32(w.consumers))
	binary.LittleEndian.PutUint32(patch[4:], uint32(w.n))
	binary.LittleEndian.PutUint32(patch[8:], uint32(w.blockRows))
	binary.LittleEndian.PutUint64(patch[16:], uint64(w.rawBytes))
	binary.LittleEndian.PutUint64(patch[24:], uint64(dirOff))
	binary.LittleEndian.PutUint64(patch[32:], uint64(fileSize))
	if _, err := w.f.WriteAt(patch[:], 8); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("colstore: patch header: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("colstore: close segments: %w", err)
	}
	return nil
}

// segStore is an attached v2 segment file: resident metadata (directory
// and block headers) plus either a fully resident image (in-core mode)
// or an open file handle for on-demand block reads (paged mode).
type segStore struct {
	path       string
	f          *os.File // nil in in-core mode
	img        []byte   // nil in paged mode
	consumers  int
	n          int
	blockRows  int
	blockCount int
	rawBytes   int64
	fileSize   int64
	temp       []float64
	ids        []timeseries.ID
	segOff     []int64
	hdrs       []blockHdr // consumers x blockCount, row-major
}

// openStore attaches a segment file. In-core mode reads the whole file
// once (the old "memory-mapped image" behavior); paged mode reads only
// header, temperature, directory and block headers, leaving payloads on
// disk for the pager.
func openStore(path string, inMemory bool) (*segStore, error) {
	st := &segStore{path: path}
	var hdr [headerSize2]byte
	if inMemory {
		img, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("colstore: open segments: %w", err)
		}
		if len(img) < headerSize2 {
			return nil, fmt.Errorf("%w: %d bytes", errCorrupt, len(img))
		}
		st.img = img
		copy(hdr[:], img)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("colstore: open segments: %w", err)
		}
		st.f = f
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
		}
	}
	if err := st.parseMeta(hdr); err != nil {
		st.close()
		return nil, err
	}
	return st, nil
}

func (st *segStore) parseMeta(hdr [headerSize2]byte) error {
	for i, b := range magic2 {
		if hdr[i] != b {
			return fmt.Errorf("%w: bad magic", errCorrupt)
		}
	}
	st.consumers = int(binary.LittleEndian.Uint32(hdr[8:]))
	st.n = int(binary.LittleEndian.Uint32(hdr[12:]))
	st.blockRows = int(binary.LittleEndian.Uint32(hdr[16:]))
	st.rawBytes = int64(binary.LittleEndian.Uint64(hdr[24:]))
	dirOff := int64(binary.LittleEndian.Uint64(hdr[32:]))
	st.fileSize = int64(binary.LittleEndian.Uint64(hdr[40:]))
	if st.consumers <= 0 || st.n < 0 || st.blockRows <= 0 {
		return fmt.Errorf("%w: header counts", errCorrupt)
	}
	if st.img != nil && int64(len(st.img)) != st.fileSize {
		return fmt.Errorf("%w: size %d, want %d", errCorrupt, len(st.img), st.fileSize)
	}
	if st.f != nil {
		fi, err := st.f.Stat()
		if err != nil || fi.Size() != st.fileSize {
			return fmt.Errorf("%w: size mismatch", errCorrupt)
		}
	}
	st.blockCount = 0
	if st.n > 0 {
		st.blockCount = (st.n + st.blockRows - 1) / st.blockRows
	}
	// Temperature column.
	tempRaw, err := st.read(headerSize2, 8*st.n, nil)
	if err != nil {
		return err
	}
	st.temp = make([]float64, st.n)
	for i := range st.temp {
		st.temp[i] = math.Float64frombits(binary.LittleEndian.Uint64(tempRaw[i*8:]))
	}
	// Directory.
	dirLen := st.consumers * dirEntSize
	if dirOff < headerSize2 || dirOff+int64(dirLen) != st.fileSize {
		return fmt.Errorf("%w: directory bounds", errCorrupt)
	}
	dir, err := st.read(dirOff, dirLen, nil)
	if err != nil {
		return err
	}
	st.ids = make([]timeseries.ID, st.consumers)
	st.segOff = make([]int64, st.consumers)
	st.hdrs = make([]blockHdr, st.consumers*st.blockCount)
	var scratch []byte
	for c := 0; c < st.consumers; c++ {
		ent := dir[c*dirEntSize:]
		st.ids[c] = timeseries.ID(binary.LittleEndian.Uint64(ent[0:]))
		st.segOff[c] = int64(binary.LittleEndian.Uint64(ent[8:]))
		if c > 0 && st.ids[c] <= st.ids[c-1] {
			return fmt.Errorf("%w: household order", errCorrupt)
		}
		if int(binary.LittleEndian.Uint32(ent[20:])) != st.blockCount {
			return fmt.Errorf("%w: block count", errCorrupt)
		}
		if st.segOff[c] < headerSize2 || st.segOff[c]+int64(st.blockCount*blockHdrSize) > dirOff {
			return fmt.Errorf("%w: segment bounds", errCorrupt)
		}
		scratch, err = st.readInto(st.segOff[c], st.blockCount*blockHdrSize, scratch)
		if err != nil {
			return err
		}
		for b := 0; b < st.blockCount; b++ {
			st.hdrs[c*st.blockCount+b] = parseBlockHdr(scratch[b*blockHdrSize:])
		}
	}
	return nil
}

// read returns length bytes at off: a zero-copy image subslice in
// in-core mode, a fresh (or reused) buffer in paged mode.
func (st *segStore) read(off int64, length int, scratch []byte) ([]byte, error) {
	if st.img != nil {
		if off < 0 || off+int64(length) > int64(len(st.img)) {
			return nil, fmt.Errorf("%w: read out of bounds", errCorrupt)
		}
		return st.img[off : off+int64(length)], nil
	}
	b, err := st.readInto(off, length, scratch)
	return b, err
}

func (st *segStore) readInto(off int64, length int, scratch []byte) ([]byte, error) {
	if cap(scratch) < length {
		scratch = make([]byte, length)
	}
	scratch = scratch[:length]
	if st.img != nil {
		if off < 0 || off+int64(length) > int64(len(st.img)) {
			return nil, fmt.Errorf("%w: read out of bounds", errCorrupt)
		}
		copy(scratch, st.img[off:])
		return scratch, nil
	}
	if _, err := st.f.ReadAt(scratch, off); err != nil {
		return nil, fmt.Errorf("%w: read: %v", errCorrupt, err)
	}
	return scratch, nil
}

func (st *segStore) close() {
	if st.f != nil {
		_ = st.f.Close()
		st.f = nil
	}
	st.img = nil
}

func (st *segStore) hdr(c, b int) *blockHdr { return &st.hdrs[c*st.blockCount+b] }

// payloadBase returns the absolute file offset of consumer c's payload
// area (its block headers precede it).
func (st *segStore) payloadBase(c int) int64 {
	return st.segOff[c] + int64(st.blockCount*blockHdrSize)
}

// readBlockVals decodes block b of consumer c into dst (which must hold
// h.count values) and returns the possibly-grown scratch buffer.
func (st *segStore) readBlockVals(c, b int, scratch []byte, dst []float64) ([]byte, error) {
	h := st.hdr(c, b)
	off := st.payloadBase(c) + int64(h.payloadOff) + int64(h.tsLen)
	raw, err := st.read(off, int(h.valLen), scratch)
	if err != nil {
		return scratch, err
	}
	if st.img == nil {
		scratch = raw
	}
	out, _, err := colcodec.DecodeValues(raw, dst[:0])
	if err != nil {
		return scratch, fmt.Errorf("colstore: consumer %d block %d: %w", st.ids[c], b, err)
	}
	if len(out) != int(h.count) {
		return scratch, fmt.Errorf("%w: block row count", errCorrupt)
	}
	return scratch, nil
}

// readBlockTs decodes block b of consumer c's timestamps.
func (st *segStore) readBlockTs(c, b int, scratch []byte, dst []int64) ([]int64, []byte, error) {
	h := st.hdr(c, b)
	off := st.payloadBase(c) + int64(h.payloadOff)
	raw, err := st.read(off, int(h.tsLen), scratch)
	if err != nil {
		return nil, scratch, err
	}
	if st.img == nil {
		scratch = raw
	}
	out, _, err := colcodec.DecodeTimestamps(raw, dst)
	if err != nil {
		return nil, scratch, fmt.Errorf("colstore: consumer %d block %d: %w", st.ids[c], b, err)
	}
	return out, scratch, nil
}

// decodeConsumerInto decodes consumer c's full series into dst (length
// st.n) and returns the possibly-grown scratch buffer.
func (st *segStore) decodeConsumerInto(c int, dst []float64, scratch []byte) ([]byte, error) {
	for b := 0; b < st.blockCount; b++ {
		h := st.hdr(c, b)
		var err error
		scratch, err = st.readBlockVals(c, b, scratch, dst[h.start:h.start+h.count])
		if err != nil {
			return scratch, err
		}
	}
	return scratch, nil
}

// metaBytes reports the resident metadata footprint (temperature,
// directory and block headers) — what an attached paged store costs
// before any block is decoded.
func (st *segStore) metaBytes() int64 {
	return int64(8*len(st.temp)) + int64(len(st.ids))*dirEntSize + int64(len(st.hdrs))*blockHdrSize
}
