package colstore

import (
	"io"
	"math"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// buildSegments streams a seeded dataset into a segment file under dir
// with small blocks (so short test series still span several blocks)
// and returns the generating dataset for oracle comparisons.
func buildSegments(t *testing.T, dir string, consumers, days, blockRows int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewSegmentWriter(filepath.Join(dir, "segments.col"), ds.Temperature.Values, WithBlockRows(blockRows))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Series {
		if err := w.Append(s.ID, s.Readings); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// pagedEngine opens a paged engine (tight budget: a handful of blocks)
// over a pre-written segment dir.
func pagedEngine(t *testing.T, dir string, budget int64) *Engine {
	t.Helper()
	e := New(dir, WithMemBudget(budget))
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPagedMatchesInCoreBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ds := buildSegments(t, dir, 9, 10, 64)
	// Budget of two blocks: every consumer spans 4 blocks (240 rows /
	// 64), so the cache thrashes constantly — the adversarial case.
	e := pagedEngine(t, dir, 2*64*8)
	cur, err := e.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for _, want := range ds.Series {
		got, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID {
			t.Fatalf("id %d, want %d", got.ID, want.ID)
		}
		for j := range want.Readings {
			if math.Float64bits(got.Readings[j]) != math.Float64bits(want.Readings[j]) {
				t.Fatalf("consumer %d reading %d: %v != %v", got.ID, j, got.Readings[j], want.Readings[j])
			}
		}
	}
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	hits, misses, resident := e.PagerStats()
	if misses == 0 || hits+misses == 0 {
		t.Fatalf("pager stats hits=%d misses=%d", hits, misses)
	}
	if resident > 2*64*8 {
		t.Fatalf("resident %d exceeds budget with no pins held", resident)
	}
}

func TestPagerEvictionRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 6, 20, 32)
	budget := int64(3 * 32 * 8)
	e := pagedEngine(t, dir, budget)
	for pass := 0; pass < 2; pass++ {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := cur.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			if _, _, resident := e.PagerStats(); resident > budget {
				t.Fatalf("resident %d exceeds budget %d mid-scan", resident, budget)
			}
		}
		cur.Close()
	}
	hits, misses, _ := e.PagerStats()
	t.Logf("hits=%d misses=%d", hits, misses)
	if misses <= int64(6*15) { // two passes over 6 consumers x 15 blocks can't fit in 3 frames
		t.Fatalf("expected re-decodes under a thrashing budget, misses=%d", misses)
	}
}

func TestPagerCacheHitsUnderLargeBudget(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 4, 10, 64)
	e := pagedEngine(t, dir, 1<<30)
	for pass := 0; pass < 2; pass++ {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := cur.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		cur.Close()
	}
	hits, misses, _ := e.PagerStats()
	blocks := int64(4 * 4) // 4 consumers x ceil(240/64)
	if misses != blocks || hits != blocks {
		t.Fatalf("hits=%d misses=%d, want %d each (second pass fully cached)", hits, misses, blocks)
	}
}

func TestPagedCursorConformance(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 5, 10, 64)
	e := pagedEngine(t, dir, 2*64*8)
	cursortest.Run(t, func(t *testing.T) core.Cursor {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cur.(*pagedCursor); !ok {
			t.Fatalf("budgeted engine yielded %T, want *pagedCursor", cur)
		}
		return cur
	})
}

func TestPagedPartitionConformance(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 7, 10, 64)
	e := pagedEngine(t, dir, 2*64*8)
	cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
}

func TestPagedCursorChaos(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 20, 10, 64)
	e := pagedEngine(t, dir, 2*64*8)
	cursortest.RunChaos(t, func(t *testing.T) core.Cursor {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		return cur
	})
}

func TestPagedPartitionChaos(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 20, 10, 64)
	e := pagedEngine(t, dir, 2*64*8)
	cursortest.RunChaosPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
}

func TestPagedWarmPrefillsWithinBudget(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 6, 20, 32)
	budget := int64(4 * 32 * 8)
	e := pagedEngine(t, dir, budget)
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	if e.decoded != nil {
		t.Fatal("paged Warm must not materialize the dataset")
	}
	_, misses, resident := e.PagerStats()
	if resident == 0 || resident > budget {
		t.Fatalf("resident %d after Warm, budget %d", resident, budget)
	}
	if misses == 0 {
		t.Fatal("Warm decoded nothing")
	}
}

func TestSegmentWriterQuantize(t *testing.T) {
	dir := t.TempDir()
	temp := []float64{1, 2, 3, 4}
	w, err := NewSegmentWriter(filepath.Join(dir, "segments.col"), temp, WithQuantize(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []float64{1.23456789, 0.0004, 2.71828182, 100.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	e := New(dir)
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	cur, err := e.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	s, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.235, 0, 2.718, 100.5}
	for i := range want {
		if !stats.ExactEqual(s.Readings[i], want[i]) {
			t.Fatalf("reading %d = %v, want %v", i, s.Readings[i], want[i])
		}
	}
}

func TestSummaryCursorMatchesDecode(t *testing.T) {
	dir := t.TempDir()
	ds := buildSegments(t, dir, 5, 10, 64)
	e := New(dir) // in-core: summaries work in both modes
	if _, err := e.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	sc, err := e.NewSummaryCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	buf := make([]float64, DefaultBlockRows)
	for _, want := range ds.Series {
		id, blocks, err := sc.NextSummary()
		if err != nil {
			t.Fatal(err)
		}
		if id != want.ID {
			t.Fatalf("id %d, want %d", id, want.ID)
		}
		total := 0
		for b, bs := range blocks {
			ref := colcodec.Summarize(want.Readings[bs.Start : bs.Start+bs.Count])
			if !stats.ExactEqual(bs.Min, ref.Min) || !stats.ExactEqual(bs.Max, ref.Max) ||
				!stats.ExactEqual(bs.Sum, ref.Sum) || bs.NaNs != ref.NaNs {
				t.Fatalf("block %d summary %+v, want %+v", b, bs, ref)
			}
			if err := sc.DecodeBlock(b, buf[:bs.Count]); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < bs.Count; j++ {
				if math.Float64bits(buf[j]) != math.Float64bits(want.Readings[bs.Start+j]) {
					t.Fatalf("block %d row %d mismatch", b, j)
				}
			}
			total += bs.Count
		}
		if total != len(want.Readings) {
			t.Fatalf("blocks cover %d rows, want %d", total, len(want.Readings))
		}
	}
	if _, _, err := sc.NextSummary(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPagedEngineAgreesWithInCore(t *testing.T) {
	dir := t.TempDir()
	buildSegments(t, dir, 8, 15, 64)
	inCore := New(dir)
	if _, err := inCore.OpenExisting(); err != nil {
		t.Fatal(err)
	}
	paged := pagedEngine(t, dir, 3*64*8)
	for _, task := range core.Tasks {
		spec := core.Spec{Task: task, K: 2, Workers: 4}
		want, err := inCore.Run(spec)
		if err != nil {
			t.Fatalf("%v in-core: %v", task, err)
		}
		got, err := paged.Run(spec)
		if err != nil {
			t.Fatalf("%v paged: %v", task, err)
		}
		assertResultsIdentical(t, task, got, want)
	}
}

// assertResultsIdentical requires bit-identical task outputs.
func assertResultsIdentical(t *testing.T, task core.Task, got, want *core.Results) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%v: count %d vs %d", task, got.Count(), want.Count())
	}
	switch task {
	case core.TaskHistogram:
		for i := range want.Histograms {
			g, w := got.Histograms[i], want.Histograms[i]
			if g.ID != w.ID || !stats.ExactEqual(g.Histogram.Min, w.Histogram.Min) ||
				!stats.ExactEqual(g.Histogram.Max, w.Histogram.Max) {
				t.Fatalf("%v consumer %d: range differs", task, w.ID)
			}
			for b := range w.Histogram.Counts {
				if g.Histogram.Counts[b] != w.Histogram.Counts[b] {
					t.Fatalf("%v consumer %d bucket %d: %d vs %d",
						task, w.ID, b, g.Histogram.Counts[b], w.Histogram.Counts[b])
				}
			}
		}
	case core.TaskThreeLine:
		for i := range want.ThreeLines {
			g, w := got.ThreeLines[i], want.ThreeLines[i]
			if g.ID != w.ID || !stats.ExactEqual(g.HeatingGradient, w.HeatingGradient) ||
				!stats.ExactEqual(g.BaseLoad, w.BaseLoad) {
				t.Fatalf("%v consumer %d: %+v vs %+v", task, w.ID, g, w)
			}
		}
	case core.TaskPAR:
		for i := range want.Profiles {
			g, w := got.Profiles[i], want.Profiles[i]
			if g.ID != w.ID {
				t.Fatalf("%v row %d: id %d vs %d", task, i, g.ID, w.ID)
			}
			for j := range w.Profile {
				if !stats.ExactEqual(g.Profile[j], w.Profile[j]) {
					t.Fatalf("%v consumer %d hour %d: %v vs %v",
						task, w.ID, j, g.Profile[j], w.Profile[j])
				}
			}
		}
	case core.TaskSimilarity:
		for i := range want.Similar {
			g, w := got.Similar[i], want.Similar[i]
			if g.ID != w.ID || len(g.Matches) != len(w.Matches) {
				t.Fatalf("%v row %d: shape differs", task, i)
			}
			for j := range w.Matches {
				if g.Matches[j].ID != w.Matches[j].ID ||
					!stats.ExactEqual(g.Matches[j].Score, w.Matches[j].Score) {
					t.Fatalf("%v consumer %d match %d: %+v vs %+v",
						task, w.ID, j, g.Matches[j], w.Matches[j])
				}
			}
		}
	}
}
