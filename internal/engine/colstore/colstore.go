// Package colstore implements the benchmark's "System C" analogue: a
// main-memory column store geared towards time series.
//
// It reproduces the traits the paper measures for System C:
//
//   - Load converts the text source into a compact binary segment file
//     once; subsequent loads are a single sequential read of that image
//     with no text parsing — the memory-mapped I/O that makes System C
//     "easily the fastest and most efficient at data loading" (Fig. 4, 6).
//   - Analytics run over contiguous per-consumer float64 columns decoded
//     directly from the image, with the statistical operators
//     hand-written (System C ships no ML toolkit — every Table 1 cell in
//     its column is "no").
//
// Segment file layout (little endian):
//
//	magic "SMCOL1\n"  (7 bytes) + 1 pad byte
//	u32 consumer count, u32 series length
//	temperature column: seriesLen x f64
//	per consumer: i64 household id, seriesLen x f64 readings
package colstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

var magic = [8]byte{'S', 'M', 'C', 'O', 'L', '1', '\n', 0}

const headerSize = 8 + 4 + 4

// Engine is the System C analogue.
type Engine struct {
	dir     string
	path    string
	image   []byte // the "memory-mapped" segment image
	decoded *timeseries.Dataset
}

// New returns a column-store engine whose segment file lives under dir.
func New(dir string) *Engine {
	return &Engine{dir: dir, path: filepath.Join(dir, "segments.col")}
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "colstore (System C analogue)" }

// Capabilities implements core.Engine (Table 1, System C column: all
// operators hand-written).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportNone,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportNone,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: it parses the text source once, writes
// the binary segment file, and maps it into memory.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	img, err := encodeSegments(ds)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(e.path, img, 0o644); err != nil {
		return nil, fmt.Errorf("colstore: write segments: %w", err)
	}
	e.image = img
	e.decoded = nil
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{
		Consumers:    len(ds.Series),
		Readings:     readings,
		StorageBytes: int64(len(img)),
	}, nil
}

// Remap re-reads the segment file into memory — the cold-start path
// after a Release. It is the cheap binary load the paper credits to
// memory-mapped I/O.
func (e *Engine) Remap() error {
	img, err := os.ReadFile(e.path)
	if err != nil {
		return fmt.Errorf("colstore: remap: %w", err)
	}
	e.image = img
	return nil
}

// Warm decodes every column into float64 slices ahead of time.
func (e *Engine) Warm() error {
	if e.image == nil {
		if err := e.Remap(); err != nil {
			return err
		}
	}
	ds, err := decodeSegments(e.image)
	if err != nil {
		return err
	}
	e.decoded = ds
	return nil
}

// Release implements core.Engine: unmaps the image and drops decoded
// columns; the segment file stays on disk.
func (e *Engine) Release() error {
	e.image = nil
	e.decoded = nil
	return nil
}

// ensureImage maps the segment file into memory if it is not already.
func (e *Engine) ensureImage() error {
	if e.image != nil {
		return nil
	}
	if _, err := os.Stat(e.path); err != nil {
		return fmt.Errorf("colstore: %w", core.ErrNotLoaded)
	}
	return e.Remap()
}

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine: decoded columns after Warm (or a
// previous cold run), otherwise a cursor decoding one consumer column
// per Next straight from the segment image.
func (e *Engine) NewCursor() (core.Cursor, error) {
	if e.decoded != nil {
		return core.NewDatasetCursor(e.decoded), nil
	}
	if err := e.ensureImage(); err != nil {
		return nil, err
	}
	return newSegmentCursor(e, e.image)
}

// NewCursors implements core.PartitionedSource: contiguous groups of
// consumer segments, each decoded into its own flat buffer. After Warm
// (or a completed cold run) the partitions are range shards of the
// decoded arrays instead.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("colstore: NewCursors: max must be >= 1, got %d", max)
	}
	if e.decoded != nil {
		series := e.decoded.Series
		curs := make([]core.Cursor, 0, max)
		for _, r := range core.PartitionRanges(len(series), max) {
			part := series[r[0]:r[1]]
			curs = append(curs, core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
				return part, nil
			}, nil))
		}
		return curs, nil
	}
	if err := e.ensureImage(); err != nil {
		return nil, err
	}
	consumers, n, err := parseHeader(e.image)
	if err != nil {
		return nil, err
	}
	curs := make([]core.Cursor, 0, max)
	for _, r := range core.PartitionRanges(consumers, max) {
		curs = append(curs, &segmentRangeCursor{img: e.image, n: n, lo: r[0], hi: r[1]})
	}
	return curs, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// Temperature implements core.Engine, decoding the temperature column
// from the segment image when no decoded dataset is resident.
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.decoded != nil {
		return e.decoded.Temperature, nil
	}
	if err := e.ensureImage(); err != nil {
		return nil, err
	}
	_, n, err := parseHeader(e.image)
	if err != nil {
		return nil, err
	}
	return &timeseries.Temperature{Values: decodeColumn(e.image[headerSize:headerSize+8*n], n)}, nil
}

var _ core.Engine = (*Engine)(nil)

// errCorrupt reports a malformed segment image.
var errCorrupt = errors.New("colstore: corrupt segment image")

func encodeSegments(ds *timeseries.Dataset) ([]byte, error) {
	if len(ds.Series) == 0 {
		return nil, fmt.Errorf("colstore: empty dataset")
	}
	n := len(ds.Temperature.Values)
	for _, s := range ds.Series {
		if len(s.Readings) != n {
			return nil, fmt.Errorf("colstore: consumer %d has %d readings, temperature has %d",
				s.ID, len(s.Readings), n)
		}
	}
	size := headerSize + 8*n + len(ds.Series)*(8+8*n)
	img := make([]byte, size)
	copy(img, magic[:])
	binary.LittleEndian.PutUint32(img[8:], uint32(len(ds.Series)))
	binary.LittleEndian.PutUint32(img[12:], uint32(n))
	off := headerSize
	for _, v := range ds.Temperature.Values {
		binary.LittleEndian.PutUint64(img[off:], math.Float64bits(v))
		off += 8
	}
	for _, s := range ds.Series {
		binary.LittleEndian.PutUint64(img[off:], uint64(s.ID))
		off += 8
		for _, v := range s.Readings {
			binary.LittleEndian.PutUint64(img[off:], math.Float64bits(v))
			off += 8
		}
	}
	return img, nil
}

// parseHeader validates the segment image and returns its consumer
// count and series length.
func parseHeader(img []byte) (consumers, n int, err error) {
	if len(img) < headerSize {
		return 0, 0, fmt.Errorf("%w: %d bytes", errCorrupt, len(img))
	}
	for i, b := range magic {
		if img[i] != b {
			return 0, 0, fmt.Errorf("%w: bad magic", errCorrupt)
		}
	}
	consumers = int(binary.LittleEndian.Uint32(img[8:]))
	n = int(binary.LittleEndian.Uint32(img[12:]))
	want := headerSize + 8*n + consumers*(8+8*n)
	if len(img) != want {
		return 0, 0, fmt.Errorf("%w: size %d, want %d", errCorrupt, len(img), want)
	}
	return consumers, n, nil
}

func decodeSegments(img []byte) (*timeseries.Dataset, error) {
	consumers, n, err := parseHeader(img)
	if err != nil {
		return nil, err
	}
	off := headerSize
	temp := &timeseries.Temperature{Values: decodeColumn(img[off:off+8*n], n)}
	off += 8 * n
	// All consumer columns decode into one contiguous row-major buffer,
	// each series a back-to-back subslice of it. The similarity engine's
	// FlatMatrix packing detects this layout and adopts it zero-copy —
	// the column store hands its columns straight to the blocked kernel.
	// (Consequently a row's slice capacity extends over later rows:
	// never append to a decoded series' Readings in place.)
	flat := make([]float64, consumers*n)
	series := make([]*timeseries.Series, consumers)
	for i := 0; i < consumers; i++ {
		id := timeseries.ID(binary.LittleEndian.Uint64(img[off:]))
		off += 8
		row := flat[i*n : (i+1)*n]
		decodeColumnInto(row, img[off:off+8*n])
		series[i] = &timeseries.Series{ID: id, Readings: row}
		off += 8 * n
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

func decodeColumn(b []byte, n int) []float64 {
	out := make([]float64, n)
	decodeColumnInto(out, b)
	return out
}

func decodeColumnInto(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// Append implements core.Appender. The read-optimized segment image has
// no room to grow, so an append decodes the whole image, extends every
// column and rewrites the file — deliberately expensive, illustrating
// the paper's §3 remark that read-optimized structures "may be
// expensive to update".
func (e *Engine) Append(delta *timeseries.Dataset) error {
	if e.decoded == nil {
		if err := e.ensureImage(); err != nil {
			return err
		}
		ds, err := decodeSegments(e.image)
		if err != nil {
			return err
		}
		e.decoded = ds
	}
	cur := e.decoded
	if len(delta.Series) != len(cur.Series) {
		return fmt.Errorf("colstore: delta has %d households, segments have %d",
			len(delta.Series), len(cur.Series))
	}
	byID := make(map[timeseries.ID]*timeseries.Series, len(delta.Series))
	for _, s := range delta.Series {
		byID[s.ID] = s
	}
	n := len(delta.Temperature.Values)
	next := &timeseries.Dataset{
		Temperature: &timeseries.Temperature{
			Values: append(append([]float64(nil), cur.Temperature.Values...), delta.Temperature.Values...),
		},
	}
	for _, s := range cur.Series {
		d, ok := byID[s.ID]
		if !ok {
			return fmt.Errorf("colstore: delta is missing household %d", s.ID)
		}
		if len(d.Readings) != n {
			return fmt.Errorf("colstore: delta household %d has %d readings, temperature has %d",
				s.ID, len(d.Readings), n)
		}
		next.Series = append(next.Series, &timeseries.Series{
			ID:       s.ID,
			Readings: append(append([]float64(nil), s.Readings...), d.Readings...),
		})
	}
	img, err := encodeSegments(next)
	if err != nil {
		return err
	}
	if err := os.WriteFile(e.path, img, 0o644); err != nil {
		return fmt.Errorf("colstore: rewrite segments: %w", err)
	}
	e.image = img
	e.decoded = next
	return nil
}

var _ core.Appender = (*Engine)(nil)

// StorageBytes returns the size of the segment file on disk.
func (e *Engine) StorageBytes() (int64, error) {
	fi, err := os.Stat(e.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("colstore: %w", err)
	}
	return fi.Size(), nil
}
