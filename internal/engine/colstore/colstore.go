// Package colstore implements the benchmark's "System C" analogue: a
// column store geared towards time series, now backed by a compressed
// block-structured segment format.
//
// It reproduces the traits the paper measures for System C:
//
//   - Load converts the text source into a compressed binary segment
//     file once (colcodec delta-of-delta timestamps + fixed-point or
//     Gorilla-XOR values, lossless either way); subsequent loads read
//     only metadata — the cheap binary restart the paper credits to
//     memory-mapped I/O.
//   - Analytics run over per-consumer float64 columns decoded from
//     blocks, with the statistical operators hand-written (System C
//     ships no ML toolkit — every Table 1 cell in its column is "no").
//
// Two residency modes share the format. In-core mode (the default,
// MemBudget 0) reads the whole segment image into memory and keeps the
// old contract: Warm decodes everything into one contiguous flat
// matrix, a drained cold cursor installs the decoded dataset, the
// similarity kernel adopts the buffer zero-copy. Paged mode (MemBudget
// > 0) never materializes the matrix: cursors decode blocks on demand
// through a shared fixed-budget pager with LRU eviction and refcount
// pinning, so a dataset much larger than memory streams through the
// same pipeline. Block headers carry min/max/sum/sumSq summaries that
// the exec layer uses for compressed-domain fast paths.
package colstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// Engine is the System C analogue.
type Engine struct {
	dir     string
	path    string
	budget  int64
	store   *segStore
	pager   *pager
	decoded *timeseries.Dataset

	// Durability (see live.go). walOn arms the write-ahead log under
	// walPolicy/walFS; tailBudget (in tail readings) arms the
	// background-checkpoint trigger on ckptC.
	walOn      bool
	walPolicy  wal.SyncPolicy
	walFS      wal.FS
	tailBudget int64
	ckptC      chan struct{}

	// retired holds segment stores replaced by Checkpoint but kept
	// open so outstanding snapshot cursors stay readable; detach
	// closes them.
	retired []*segStore

	ckptErrMu sync.Mutex
	ckptErr   error

	// liveMu guards lazy creation of the live tail; the tail has its
	// own internal locking (see live.go).
	liveMu sync.Mutex
	live   *liveTail
}

// Option configures an Engine.
type Option func(*Engine)

// WithMemBudget caps the decoded-block cache at the given byte budget
// and switches the engine to paged (out-of-core) mode: cursors decode
// blocks on demand instead of materializing the dataset. A budget of 0
// keeps the in-core behavior.
func WithMemBudget(bytes int64) Option {
	return func(e *Engine) {
		if bytes > 0 {
			e.budget = bytes
		}
	}
}

// WithWAL arms the write-ahead log: every Append is framed into a
// per-shard log under <dir>/wal before it is acked, with the given
// fsync policy, and replayed through the idempotent append path on
// reopen. See internal/wal for the format and policy semantics.
func WithWAL(policy wal.SyncPolicy) Option {
	return func(e *Engine) {
		e.walOn = true
		e.walPolicy = policy
	}
}

// WithWALFS substitutes the filesystem under the write-ahead log — the
// crash-injection hook (fault.Disk). Implies nothing by itself; pair
// it with WithWAL.
func WithWALFS(fs wal.FS) Option {
	return func(e *Engine) { e.walFS = fs }
}

// WithTailBudget arms automatic background checkpointing: once the
// live tail holds at least this many readings, the engine signals the
// checkpointer goroutine (StartCheckpointer) to fold the tail into a
// fresh segment file. Zero disables the trigger.
func WithTailBudget(readings int64) Option {
	return func(e *Engine) {
		if readings > 0 {
			e.tailBudget = readings
		}
	}
}

// SegmentFileName is the segment file's name under the engine
// directory. Out-of-band writers (smgen's segments format, the scaleup
// experiment) create it directly with NewSegmentWriter and attach via
// OpenExisting.
const SegmentFileName = "segments.col"

// New returns a column-store engine whose segment file lives under dir.
func New(dir string, opts ...Option) *Engine {
	e := &Engine{
		dir:   dir,
		path:  filepath.Join(dir, SegmentFileName),
		ckptC: make(chan struct{}, 1),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "colstore (System C analogue)" }

// Capabilities implements core.Engine (Table 1, System C column: all
// operators hand-written).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportNone,
		Quantiles:        core.SupportNone,
		Regression:       core.SupportNone,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: it parses the text source once, streams
// the compressed segment file, and attaches it.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if err := writeDataset(e.path, ds); err != nil {
		return nil, err
	}
	e.detach()
	if e.walOn {
		// The fresh base replaces whatever state an old log belonged
		// to; replaying it would corrupt the new dataset.
		if err := wal.Clear(e.walDir(), liveShards, e.walFS); err != nil {
			return nil, fmt.Errorf("colstore: %w", err)
		}
	}
	if err := e.attach(); err != nil {
		return nil, err
	}
	var readings int64
	for _, s := range ds.Series {
		readings += int64(len(s.Readings))
	}
	return &core.LoadStats{
		Consumers:    len(ds.Series),
		Readings:     readings,
		StorageBytes: e.store.fileSize,
		RawBytes:     e.store.rawBytes,
	}, nil
}

// writeDataset streams ds into a fresh segment file at path (written to
// a temp name, then renamed). CSV-parsed values are stored unquantized:
// the codec's fixed-point probe already round-trips the text-sourced
// decimals bit-exactly, so every engine reading the same source agrees.
func writeDataset(path string, ds *timeseries.Dataset) error {
	if len(ds.Series) == 0 {
		return fmt.Errorf("colstore: empty dataset")
	}
	n := len(ds.Temperature.Values)
	for _, s := range ds.Series {
		if len(s.Readings) != n {
			return fmt.Errorf("colstore: consumer %d has %d readings, temperature has %d",
				s.ID, len(s.Readings), n)
		}
	}
	tmp := path + ".tmp"
	w, err := NewSegmentWriter(tmp, ds.Temperature.Values)
	if err != nil {
		return err
	}
	for _, s := range ds.Series {
		if err := w.Append(s.ID, s.Readings); err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("colstore: rename segments: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename into it survives a power
// failure — the second half of the temp-file-then-rename protocol.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("colstore: sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("colstore: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("colstore: sync dir: %w", err)
	}
	return nil
}

// walDir is where the engine's write-ahead log lives.
func (e *Engine) walDir() string { return filepath.Join(e.dir, "wal") }

// OpenExisting attaches an engine to a segment file that was written
// out-of-band (by a SegmentWriter — e.g. smgen's streaming generator)
// without re-ingesting any source, and reports its load stats. With
// the write-ahead log armed, any surviving log replays here: the
// reported readings include the recovered tail.
func (e *Engine) OpenExisting() (*core.LoadStats, error) {
	e.detach()
	if _, err := os.Stat(e.path); err != nil {
		return nil, fmt.Errorf("colstore: %w", core.ErrNotLoaded)
	}
	if err := e.attach(); err != nil {
		return nil, err
	}
	stats := &core.LoadStats{
		Consumers:    e.store.consumers,
		Readings:     int64(e.store.consumers) * int64(e.store.n),
		StorageBytes: e.store.fileSize,
		RawBytes:     e.store.rawBytes,
	}
	if e.walOn {
		lt, err := e.ensureLive()
		if err != nil {
			return nil, err
		}
		stats.Readings += lt.applied.Load()
	}
	return stats, nil
}

// Remap re-attaches the segment file — the cold-start path after a
// Release. In-core mode re-reads the whole image; paged mode reads only
// metadata.
func (e *Engine) Remap() error {
	e.detach()
	return e.attach()
}

func (e *Engine) attach() error {
	st, err := openStore(e.path, e.budget == 0)
	if err != nil {
		return err
	}
	e.store = st
	if e.budget > 0 {
		e.pager = newPager(st, e.budget)
	}
	return nil
}

func (e *Engine) detach() {
	if e.store != nil {
		e.store.close()
	}
	for _, st := range e.retired {
		st.close()
	}
	e.retired = nil
	e.store = nil
	e.pager = nil
	e.decoded = nil
	e.liveMu.Lock()
	lt := e.live
	e.live = nil
	e.liveMu.Unlock()
	if lt != nil && lt.wlog != nil {
		// Clean shutdown: a final sync-and-close; errors are
		// best-effort here because detach has no error path, and the
		// log's contents survive for the next open regardless.
		_ = lt.wlog.Close()
	}
}

// Warm readies the engine for hot runs. In-core mode decodes every
// column into one contiguous flat matrix ahead of time; paged mode
// pre-fills the block cache up to its byte budget instead (the matrix
// must never materialize).
func (e *Engine) Warm() error {
	if err := e.ensureStorage(); err != nil {
		return err
	}
	if e.budget == 0 {
		ds, err := decodeAll(e.store)
		if err != nil {
			return err
		}
		e.decoded = ds
		return nil
	}
	var scratch []byte
	for c := 0; c < e.store.consumers; c++ {
		for b := 0; b < e.store.blockCount; b++ {
			_, _, resident := e.pager.Stats()
			if resident >= e.budget {
				return nil
			}
			f, s, err := e.pager.fetch(c, b, scratch)
			if err != nil {
				return err
			}
			scratch = s
			e.pager.unpin(f)
		}
	}
	return nil
}

// Release implements core.Engine: drops the image, the block cache and
// decoded columns, and closes the file handle; the segment file stays
// on disk.
func (e *Engine) Release() error {
	e.detach()
	return nil
}

// ensureStorage attaches the segment file if it is not already.
func (e *Engine) ensureStorage() error {
	if e.store != nil {
		return nil
	}
	if _, err := os.Stat(e.path); err != nil {
		return fmt.Errorf("colstore: %w", core.ErrNotLoaded)
	}
	return e.attach()
}

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine: decoded columns after Warm (or a
// previous cold in-core run), a paged on-demand cursor under a memory
// budget, otherwise a cursor decoding one consumer per Next from the
// resident image.
func (e *Engine) NewCursor() (core.Cursor, error) {
	if e.decoded != nil {
		return core.NewDatasetCursor(e.decoded), nil
	}
	if err := e.ensureStorage(); err != nil {
		return nil, err
	}
	if e.pager != nil {
		return newPagedCursor(e.pager, 0, e.store.consumers), nil
	}
	return newFlatCursor(e), nil
}

// NewCursors implements core.PartitionedSource: contiguous consumer
// ranges. Paged partitions share the engine's block cache (the budget
// is global, not per-cursor); in-core partitions decode into private
// flat buffers; decoded partitions are range shards of the flat matrix.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("colstore: NewCursors: max must be >= 1, got %d", max)
	}
	if e.decoded != nil {
		series := e.decoded.Series
		curs := make([]core.Cursor, 0, max)
		for _, r := range core.PartitionRanges(len(series), max) {
			part := series[r[0]:r[1]]
			curs = append(curs, core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
				return part, nil
			}, nil))
		}
		return curs, nil
	}
	if err := e.ensureStorage(); err != nil {
		return nil, err
	}
	curs := make([]core.Cursor, 0, max)
	for _, r := range core.PartitionRanges(e.store.consumers, max) {
		if e.pager != nil {
			curs = append(curs, newPagedCursor(e.pager, r[0], r[1]))
		} else {
			curs = append(curs, &flatRangeCursor{st: e.store, lo: r[0], hi: r[1]})
		}
	}
	return curs, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// Temperature implements core.Engine; the temperature column is always
// resident (one column per file, stored raw).
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.decoded != nil {
		return e.decoded.Temperature, nil
	}
	if err := e.ensureStorage(); err != nil {
		return nil, err
	}
	return &timeseries.Temperature{Values: e.store.temp}, nil
}

var _ core.Engine = (*Engine)(nil)

// NewSummaryCursor implements core.SummarySource over the stored block
// headers. It never touches the pager: summaries are resident metadata.
func (e *Engine) NewSummaryCursor() (core.SummaryCursor, error) {
	if err := e.ensureStorage(); err != nil {
		return nil, err
	}
	return &summaryCursor{st: e.store}, nil
}

var _ core.SummarySource = (*Engine)(nil)

// PagerStats reports block-cache hits, misses and resident decoded
// bytes (all zero in in-core mode).
func (e *Engine) PagerStats() (hits, misses, resident int64) {
	if e.pager == nil {
		return 0, 0, 0
	}
	return e.pager.Stats()
}

// MetaBytes reports the resident metadata footprint of the attached
// store (temperature + directory + block headers), 0 when detached.
func (e *Engine) MetaBytes() int64 {
	if e.store == nil {
		return 0
	}
	return e.store.metaBytes()
}

// errCorrupt reports a malformed segment file.
var errCorrupt = errors.New("colstore: corrupt segment file")

// decodeAll materializes the dataset. All consumer columns decode into
// one contiguous row-major buffer, each series a back-to-back subslice
// of it. The similarity engine's FlatMatrix packing detects this layout
// and adopts it zero-copy — the column store hands its columns straight
// to the blocked kernel. (Consequently a row's slice capacity extends
// over later rows: never append to a decoded series' Readings in
// place.)
func decodeAll(st *segStore) (*timeseries.Dataset, error) {
	temp := &timeseries.Temperature{Values: st.temp}
	flat := make([]float64, st.consumers*st.n)
	series := make([]*timeseries.Series, st.consumers)
	var scratch []byte
	var err error
	for c := 0; c < st.consumers; c++ {
		row := flat[c*st.n : (c+1)*st.n]
		scratch, err = st.decodeConsumerInto(c, row, scratch)
		if err != nil {
			return nil, err
		}
		series[c] = &timeseries.Series{ID: st.ids[c], Readings: row}
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// AppendDelta implements core.DeltaAppender. The read-optimized
// segment file has no room to grow, so an append re-encodes every
// consumer — decode, extend, stream to a fresh file — deliberately
// expensive, illustrating the paper's §3 remark that read-optimized
// structures "may be expensive to update". The rewrite streams one
// consumer at a time, so paged engines append without materializing
// the matrix. It refuses to run while an uncheckpointed live tail
// exists (see Append): the rewrite would collide with tail hours.
func (e *Engine) AppendDelta(delta *timeseries.Dataset) error {
	if err := e.ensureStorage(); err != nil {
		return err
	}
	if e.liveHours() > 0 {
		return fmt.Errorf("colstore: live tail present; Checkpoint before AppendDelta")
	}
	st := e.store
	if len(delta.Series) != st.consumers {
		return fmt.Errorf("colstore: delta has %d households, segments have %d",
			len(delta.Series), st.consumers)
	}
	byID := make(map[timeseries.ID]*timeseries.Series, len(delta.Series))
	for _, s := range delta.Series {
		byID[s.ID] = s
	}
	dn := len(delta.Temperature.Values)
	newTemp := make([]float64, 0, st.n+dn)
	newTemp = append(newTemp, st.temp...)
	newTemp = append(newTemp, delta.Temperature.Values...)
	tmp := e.path + ".tmp"
	w, err := NewSegmentWriter(tmp, newTemp, WithBlockRows(st.blockRows))
	if err != nil {
		return err
	}
	row := make([]float64, st.n+dn)
	var scratch []byte
	for c := 0; c < st.consumers; c++ {
		id := st.ids[c]
		d, ok := byID[id]
		if !ok {
			_ = w.Close()
			_ = os.Remove(tmp)
			return fmt.Errorf("colstore: delta is missing household %d", id)
		}
		if len(d.Readings) != dn {
			_ = w.Close()
			_ = os.Remove(tmp)
			return fmt.Errorf("colstore: delta household %d has %d readings, temperature has %d",
				id, len(d.Readings), dn)
		}
		scratch, err = st.decodeConsumerInto(c, row[:st.n], scratch)
		if err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
		copy(row[st.n:], d.Readings)
		if err := w.Append(id, row); err != nil {
			_ = w.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, e.path); err != nil {
		return fmt.Errorf("colstore: rewrite segments: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	e.detach()
	return e.attach()
}

var _ core.DeltaAppender = (*Engine)(nil)

// StartCheckpointer runs background checkpointing until ctx is
// cancelled: whenever the live tail crosses the WithTailBudget
// threshold, the tail is folded into a fresh segment file and the
// write-ahead log is rewritten down to the remainders. The returned
// channel closes when the goroutine has exited (leak-free tests wait
// on it). Checkpoint errors are recorded for CheckpointErr — the
// ingestion path keeps running, bounded-loss, until the next trigger
// retries.
func (e *Engine) StartCheckpointer(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-e.ckptC:
				if err := e.Checkpoint(); err != nil {
					e.ckptErrMu.Lock()
					e.ckptErr = err
					e.ckptErrMu.Unlock()
				}
			}
		}
	}()
	return done
}

// CheckpointErr returns the most recent background-checkpoint failure,
// nil if none.
func (e *Engine) CheckpointErr() error {
	e.ckptErrMu.Lock()
	defer e.ckptErrMu.Unlock()
	return e.ckptErr
}

// triggerCheckpoint signals the checkpointer without blocking; a
// pending signal already covers the crossing.
func (e *Engine) triggerCheckpoint() {
	select {
	case e.ckptC <- struct{}{}:
	default:
	}
}

// Crash simulates a process death for recovery tests: every file
// handle drops with no flush, sync or checkpoint. The engine object is
// dead afterwards — recovery happens by opening a fresh engine over
// the same directory.
func (e *Engine) Crash() {
	e.liveMu.Lock()
	lt := e.live
	e.live = nil
	e.liveMu.Unlock()
	if lt != nil && lt.wlog != nil {
		lt.wlog.Drop()
	}
	if e.store != nil {
		e.store.close()
	}
	for _, st := range e.retired {
		st.close()
	}
	e.retired = nil
	e.store = nil
	e.pager = nil
	e.decoded = nil
}

// StorageBytes returns the size of the segment file on disk.
func (e *Engine) StorageBytes() (int64, error) {
	fi, err := os.Stat(e.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("colstore: %w", err)
	}
	return fi.Size(), nil
}
