package rowstore

import (
	"fmt"
)

// B+tree keyed by a composite (household id, sequence) pair, mapping to
// heap TIDs. The row layout stores one entry per reading (seq = hour);
// the array layout stores one entry per consumer (seq = 0). Keys must be
// non-negative; the table layer enforces this.
//
// Node page layout:
//
//	offset 0: uint16 flags (bit 0: leaf)
//	offset 2: uint16 key count n
//	offset 4: uint32 next-leaf page id (leaves only; InvalidPage at tail)
//	offset 8: payload
//	  leaf:     n x (key 16B, value 8B)
//	  internal: n x (key 16B) followed by (n+1) x (child 4B), with the
//	            child array at a fixed offset so splits need not slide it.
const (
	btreeHeaderSize = 8
	btreeKeySize    = 16
	btreeLeafVal    = 8
	btreeLeafEntry  = btreeKeySize + btreeLeafVal

	// leafCap: (8192-8)/24 = 341
	leafCap = (PageSize - btreeHeaderSize) / btreeLeafEntry
	// internalCap chosen so keys + (cap+1) children fit.
	internalCap = (PageSize - btreeHeaderSize - 4) / (btreeKeySize + 4)

	flagLeaf = uint16(1)
)

// internal node offsets: keys first, then the child array at a fixed
// position after space for internalCap keys.
const internalChildOff = btreeHeaderSize + internalCap*btreeKeySize

// key is the composite B+tree key.
type key struct {
	ID  uint64
	Seq uint64
}

func (k key) less(o key) bool {
	if k.ID != o.ID {
		return k.ID < o.ID
	}
	return k.Seq < o.Seq
}

func putKey(b []byte, off int, k key) {
	putU64(b, off, k.ID)
	putU64(b, off+8, k.Seq)
}

func getKey(b []byte, off int) key {
	return key{ID: getU64(b, off), Seq: getU64(b, off+8)}
}

func putTID(b []byte, off int, t TID) {
	putU32(b, off, uint32(t.Page))
	putU16(b, off+4, t.Slot)
	putU16(b, off+6, 0)
}

func getTID(b []byte, off int) TID {
	return TID{Page: PageID(getU32(b, off)), Slot: getU16(b, off+4)}
}

// btree is the index structure. All access goes through the buffer pool.
type btree struct {
	bp   *bufferPool
	root PageID
	// height is 1 for a lone leaf root.
	height int
}

// newBTree creates an empty tree with a leaf root.
func newBTree(bp *bufferPool) (*btree, error) {
	fr, err := bp.allocate()
	if err != nil {
		return nil, err
	}
	putU16(fr.data[:], 0, flagLeaf)
	putU16(fr.data[:], 2, 0)
	putU32(fr.data[:], 4, uint32(InvalidPage))
	bp.unpin(fr, true)
	return &btree{bp: bp, root: fr.id, height: 1}, nil
}

// openBTree re-attaches to an existing tree.
func openBTree(bp *bufferPool, root PageID, height int) *btree {
	return &btree{bp: bp, root: root, height: height}
}

func nodeIsLeaf(data []byte) bool  { return getU16(data, 0)&flagLeaf != 0 }
func nodeCount(data []byte) uint16 { return getU16(data, 2) }

func leafKey(data []byte, i int) key {
	return getKey(data, btreeHeaderSize+i*btreeLeafEntry)
}

func leafVal(data []byte, i int) TID {
	return getTID(data, btreeHeaderSize+i*btreeLeafEntry+btreeKeySize)
}

func leafSet(data []byte, i int, k key, v TID) {
	off := btreeHeaderSize + i*btreeLeafEntry
	putKey(data, off, k)
	putTID(data, off+btreeKeySize, v)
}

func leafNext(data []byte) PageID       { return PageID(getU32(data, 4)) }
func leafSetNext(data []byte, p PageID) { putU32(data, 4, uint32(p)) }

func internalKey(data []byte, i int) key {
	return getKey(data, btreeHeaderSize+i*btreeKeySize)
}

func internalSetKey(data []byte, i int, k key) {
	putKey(data, btreeHeaderSize+i*btreeKeySize, k)
}

func internalChild(data []byte, i int) PageID {
	return PageID(getU32(data, internalChildOff+i*4))
}

func internalSetChild(data []byte, i int, p PageID) {
	putU32(data, internalChildOff+i*4, uint32(p))
}

// lowerBound returns the first index i in [0, n) with keyAt(i) >= k,
// or n if none.
func lowerBound(n int, k key, keyAt func(int) key) int {
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if keyAt(mid).less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitResult reports a child split to the parent.
type splitResult struct {
	newPage PageID
	// sepKey is the smallest key in newPage.
	sepKey key
	split  bool
}

// insert adds a key/value pair. Duplicate exact keys are rejected.
func (t *btree) insert(k key, v TID) error {
	res, err := t.insertInto(t.root, k, v)
	if err != nil {
		return err
	}
	if !res.split {
		return nil
	}
	// Grow a new root.
	fr, err := t.bp.allocate()
	if err != nil {
		return err
	}
	putU16(fr.data[:], 0, 0) // internal
	putU16(fr.data[:], 2, 1)
	internalSetKey(fr.data[:], 0, res.sepKey)
	internalSetChild(fr.data[:], 0, t.root)
	internalSetChild(fr.data[:], 1, res.newPage)
	t.root = fr.id
	t.height++
	t.bp.unpin(fr, true)
	return nil
}

func (t *btree) insertInto(page PageID, k key, v TID) (splitResult, error) {
	fr, err := t.bp.fetch(page)
	if err != nil {
		return splitResult{}, err
	}
	data := fr.data[:]
	if nodeIsLeaf(data) {
		res, err := t.leafInsert(fr, k, v)
		t.bp.unpin(fr, true)
		return res, err
	}
	n := int(nodeCount(data))
	idx := lowerBound(n, k, func(i int) key { return internalKey(data, i) })
	// Descend right of equal separators.
	if idx < n && !k.less(internalKey(data, idx)) {
		idx++
	}
	child := internalChild(data, idx)
	// Unpin during recursion; re-fetch to apply a split. Single-threaded
	// access makes this safe.
	t.bp.unpin(fr, false)
	res, err := t.insertInto(child, k, v)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	fr, err = t.bp.fetch(page)
	if err != nil {
		return splitResult{}, err
	}
	out, err := t.internalInsert(fr, res.sepKey, res.newPage)
	t.bp.unpin(fr, true)
	return out, err
}

func (t *btree) leafInsert(fr *frame, k key, v TID) (splitResult, error) {
	data := fr.data[:]
	n := int(nodeCount(data))
	idx := lowerBound(n, k, func(i int) key { return leafKey(data, i) })
	if idx < n && leafKey(data, idx) == k {
		return splitResult{}, fmt.Errorf("rowstore: duplicate key (%d, %d)", k.ID, k.Seq)
	}
	if n < leafCap {
		// Shift and place.
		base := btreeHeaderSize
		copy(data[base+(idx+1)*btreeLeafEntry:base+(n+1)*btreeLeafEntry],
			data[base+idx*btreeLeafEntry:base+n*btreeLeafEntry])
		leafSet(data, idx, k, v)
		putU16(data, 2, uint16(n+1))
		return splitResult{}, nil
	}
	// Split: move the upper half to a new leaf.
	nfr, err := t.bp.allocate()
	if err != nil {
		return splitResult{}, err
	}
	ndata := nfr.data[:]
	putU16(ndata, 0, flagLeaf)
	mid := n / 2
	moved := n - mid
	copy(ndata[btreeHeaderSize:btreeHeaderSize+moved*btreeLeafEntry],
		data[btreeHeaderSize+mid*btreeLeafEntry:btreeHeaderSize+n*btreeLeafEntry])
	putU16(ndata, 2, uint16(moved))
	putU16(data, 2, uint16(mid))
	leafSetNext(ndata, leafNext(data))
	leafSetNext(data, nfr.id)

	// Insert into whichever half owns the key.
	if idx <= mid {
		if _, err := t.leafInsert(fr, k, v); err != nil {
			t.bp.unpin(nfr, true)
			return splitResult{}, err
		}
	} else {
		res, err := t.leafInsert(nfr, k, v)
		if err != nil || res.split {
			t.bp.unpin(nfr, true)
			if err == nil {
				err = fmt.Errorf("rowstore: split leaf overflowed")
			}
			return splitResult{}, err
		}
	}
	sep := leafKey(ndata, 0)
	id := nfr.id
	t.bp.unpin(nfr, true)
	return splitResult{newPage: id, sepKey: sep, split: true}, nil
}

func (t *btree) internalInsert(fr *frame, sep key, right PageID) (splitResult, error) {
	data := fr.data[:]
	n := int(nodeCount(data))
	idx := lowerBound(n, sep, func(i int) key { return internalKey(data, i) })
	if n < internalCap {
		copy(data[btreeHeaderSize+(idx+1)*btreeKeySize:btreeHeaderSize+(n+1)*btreeKeySize],
			data[btreeHeaderSize+idx*btreeKeySize:btreeHeaderSize+n*btreeKeySize])
		copy(data[internalChildOff+(idx+2)*4:internalChildOff+(n+2)*4],
			data[internalChildOff+(idx+1)*4:internalChildOff+(n+1)*4])
		internalSetKey(data, idx, sep)
		internalSetChild(data, idx+1, right)
		putU16(data, 2, uint16(n+1))
		return splitResult{}, nil
	}
	// Split the internal node: middle key moves up.
	nfr, err := t.bp.allocate()
	if err != nil {
		return splitResult{}, err
	}
	ndata := nfr.data[:]
	putU16(ndata, 0, 0)
	mid := n / 2
	upKey := internalKey(data, mid)
	movedKeys := n - mid - 1
	copy(ndata[btreeHeaderSize:btreeHeaderSize+movedKeys*btreeKeySize],
		data[btreeHeaderSize+(mid+1)*btreeKeySize:btreeHeaderSize+n*btreeKeySize])
	copy(ndata[internalChildOff:internalChildOff+(movedKeys+1)*4],
		data[internalChildOff+(mid+1)*4:internalChildOff+(n+1)*4])
	putU16(ndata, 2, uint16(movedKeys))
	putU16(data, 2, uint16(mid))

	if sep.less(upKey) {
		if _, err := t.internalInsert(fr, sep, right); err != nil {
			t.bp.unpin(nfr, true)
			return splitResult{}, err
		}
	} else {
		if _, err := t.internalInsert(nfr, sep, right); err != nil {
			t.bp.unpin(nfr, true)
			return splitResult{}, err
		}
	}
	id := nfr.id
	t.bp.unpin(nfr, true)
	return splitResult{newPage: id, sepKey: upKey, split: true}, nil
}

// seekLeaf descends to the leaf that may contain k and returns its page.
func (t *btree) seekLeaf(k key) (PageID, error) {
	page := t.root
	for {
		fr, err := t.bp.fetch(page)
		if err != nil {
			return InvalidPage, err
		}
		data := fr.data[:]
		if nodeIsLeaf(data) {
			t.bp.unpin(fr, false)
			return page, nil
		}
		n := int(nodeCount(data))
		idx := lowerBound(n, k, func(i int) key { return internalKey(data, i) })
		if idx < n && !k.less(internalKey(data, idx)) {
			idx++
		}
		next := internalChild(data, idx)
		t.bp.unpin(fr, false)
		page = next
	}
}

// scanRange calls fn for every entry with lo <= key < hi, in key order.
func (t *btree) scanRange(lo, hi key, fn func(k key, v TID) error) error {
	page, err := t.seekLeaf(lo)
	if err != nil {
		return err
	}
	for page != InvalidPage {
		fr, err := t.bp.fetch(page)
		if err != nil {
			return err
		}
		data := fr.data[:]
		n := int(nodeCount(data))
		start := lowerBound(n, lo, func(i int) key { return leafKey(data, i) })
		for i := start; i < n; i++ {
			k := leafKey(data, i)
			if !k.less(hi) {
				t.bp.unpin(fr, false)
				return nil
			}
			if err := fn(k, leafVal(data, i)); err != nil {
				t.bp.unpin(fr, false)
				return err
			}
		}
		next := leafNext(data)
		t.bp.unpin(fr, false)
		page = next
	}
	return nil
}

// get returns the TID for an exact key.
func (t *btree) get(k key) (TID, bool, error) {
	var out TID
	found := false
	err := t.scanRange(k, key{ID: k.ID, Seq: k.Seq + 1}, func(_ key, v TID) error {
		out, found = v, true
		return nil
	})
	return out, found, err
}
