package rowstore

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// sameRows asserts two snapshot maps are bit-identical.
func sameRows(t *testing.T, got, want map[timeseries.ID][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d households, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("household %d missing after recovery", id)
		}
		if len(g) != len(w) {
			t.Fatalf("household %d: recovered %d hours, want %d", id, len(g), len(w))
		}
		for h := range w {
			if g[h] != w[h] {
				t.Fatalf("household %d hour %d: recovered %v, want %v", id, h, g[h], w[h])
			}
		}
	}
}

// loadWAL loads a fresh WAL-armed engine over a generated base and
// returns it with its directory, household IDs and base length.
func loadWAL(t *testing.T, layout Layout) (e *Engine, dir string, ids []timeseries.ID, baseN int) {
	t.Helper()
	src, ds := writeSource(t, 4, 2)
	dir = t.TempDir()
	e = New(dir, WithLayout(layout), WithWAL(wal.SyncBatch))
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	return e, dir, ids, len(ds.Temperature.Values)
}

// TestWALRecoverAfterCrash: a crash drops the buffer pool's dirty
// pages (no-steal never wrote them back), so everything beyond the
// base lives only in the log — and replays bit-exactly on reopen.
func TestWALRecoverAfterCrash(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			e, dir, ids, baseN := loadWAL(t, layout)
			for h := baseN; h < baseN+24; h++ {
				if err := e.Append(hourBatch(ids, h)); err != nil {
					t.Fatal(err)
				}
			}
			cur, _, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			want := drainSnap(t, cur)
			wantTemp := cur.(core.SnapshotTemperature).SnapshotTemp()
			cur.Close()
			e.Crash()

			re := New(dir, WithWAL(wal.SyncBatch))
			defer re.Close()
			if err := re.Open(); err != nil {
				t.Fatal(err)
			}
			cur2, ep, err := re.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur2.Close()
			if ep != 0 {
				t.Errorf("post-recovery epoch = %d, want 0 (epochs restart per instance)", ep)
			}
			sameRows(t, drainSnap(t, cur2), want)
			temp := cur2.(core.SnapshotTemperature).SnapshotTemp()
			if len(temp.Values) != len(wantTemp.Values) {
				t.Fatalf("recovered temperature covers %d hours, want %d", len(temp.Values), len(wantTemp.Values))
			}
			for h, v := range temp.Values {
				if v != wantTemp.Values[h] {
					t.Fatalf("recovered temperature hour %d: %v, want %v", h, v, wantTemp.Values[h])
				}
			}
		})
	}
}

// TestWALCheckpointCrashRecover: a checkpoint folds the live tuples
// into the table file and truncates the log; appends after it land in
// the log again. A crash — with a torn checkpoint temp file abandoned
// next to the table, as a crash mid-rewrite would leave — recovers the
// checkpointed pages from the file and the rest from the log.
func TestWALCheckpointCrashRecover(t *testing.T) {
	e, dir, ids, baseN := loadWAL(t, LayoutArrays)
	for h := baseN; h < baseN+24; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := e.wlog.SizeBytes(); s > 16 {
		t.Errorf("wal holds %d bytes after checkpoint, want near-empty", s)
	}
	for h := baseN + 24; h < baseN+36; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()
	// Crash mid-checkpoint: the temp file exists, the rename never ran.
	torn := filepath.Join(dir, "table.db.tmp")
	if err := os.WriteFile(torn, []byte("torn mid-checkpoint page image"), 0o644); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	defer re.Close()
	if err := re.Open(); err != nil {
		t.Fatalf("reopen with abandoned checkpoint temp file: %v", err)
	}
	cur2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	sameRows(t, drainSnap(t, cur2), want)
}

// TestWALCleanCloseThenCrashlessReopen: Close checkpoints, so a
// reopened engine sees everything without replay; the log is empty.
func TestWALCleanCloseThenCrashlessReopen(t *testing.T) {
	e, dir, ids, baseN := loadWAL(t, LayoutRows)
	for h := baseN; h < baseN+10; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal", "wal-000.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 16 {
		t.Errorf("wal holds %d bytes after clean close, want near-empty", fi.Size())
	}

	re := New(dir, WithWAL(wal.SyncBatch))
	defer re.Close()
	if err := re.Open(); err != nil {
		t.Fatal(err)
	}
	cur2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	sameRows(t, drainSnap(t, cur2), want)
}

// TestWALTornShardTailRecovers: bytes chopped off the shard log — the
// torn-write shape a power failure leaves — must never surface a
// decode error; the reopened engine holds the base plus a bit-exact
// prefix of the appended tail.
func TestWALTornShardTailRecovers(t *testing.T) {
	e, dir, ids, baseN := loadWAL(t, LayoutArrays)
	const extra = 12
	for h := baseN; h < baseN+extra; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash()
	logPath := filepath.Join(dir, "wal", "wal-000.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	re := New(dir, WithWAL(wal.SyncBatch))
	defer re.Close()
	if err := re.Open(); err != nil {
		t.Fatal(err)
	}
	cur, _, err := re.Snapshot()
	if err != nil {
		t.Fatalf("reopen over torn log tail: %v", err)
	}
	defer cur.Close()
	rows := drainSnap(t, cur)
	for _, id := range ids {
		got := rows[id]
		if len(got) < baseN || len(got) > baseN+extra {
			t.Fatalf("household %d: recovered %d hours, want between %d and %d", id, len(got), baseN, baseN+extra)
		}
		for h := baseN; h < len(got); h++ {
			if got[h] != liveVal(id, h) {
				t.Fatalf("household %d hour %d: recovered %v, want %v (prefix must be bit-exact)", id, h, got[h], liveVal(id, h))
			}
		}
	}
}

// TestWALBackgroundCheckpointTrigger: crossing the tail budget wakes
// the background checkpointer, which truncates the log down to the
// post-fold remainder; a crash afterwards still recovers everything.
func TestWALBackgroundCheckpointTrigger(t *testing.T) {
	src, ds := writeSource(t, 4, 1)
	dir := t.TempDir()
	const budget = 50
	e := New(dir, WithWAL(wal.SyncBatch), WithTailBudget(budget))
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	var ids []timeseries.ID
	for _, s := range ds.Series {
		ids = append(ids, s.ID)
	}
	baseN := len(ds.Temperature.Values)
	ctx, cancel := context.WithCancel(context.Background())
	done := e.StartCheckpointer(ctx)
	const hours = 100 // 400 readings: crosses the budget repeatedly
	for h := baseN; h < baseN+hours; h++ {
		if err := e.Append(hourBatch(ids, h)); err != nil {
			t.Fatal(err)
		}
	}
	// After the last fold at most budget readings remain unfolded, so
	// the log settles below the byte cost of budget readings (28 bytes
	// each plus per-record framing); converging there proves a
	// checkpoint ran after (or at) the final budget crossing.
	limit := int64(8 + (budget/len(ids)+1)*(8+4+len(ids)*28))
	deadline := time.After(5 * time.Second)
	for e.wlog.SizeBytes() > limit {
		select {
		case <-deadline:
			t.Fatalf("background checkpoint never folded the log: %d bytes, limit %d", e.wlog.SizeBytes(), limit)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := e.CheckpointErr(); err != nil {
		t.Fatalf("background checkpoint error: %v", err)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("checkpointer did not exit on context cancel")
	}
	cur, _, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := drainSnap(t, cur)
	cur.Close()
	e.Crash()

	re := New(dir, WithWAL(wal.SyncBatch))
	defer re.Close()
	if err := re.Open(); err != nil {
		t.Fatal(err)
	}
	cur2, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	sameRows(t, drainSnap(t, cur2), want)
	for _, id := range ids {
		if got := len(want[id]); got != baseN+hours {
			t.Fatalf("household %d: %d hours before crash, want %d", id, got, baseN+hours)
		}
	}
}

// TestWALCheckpointAppendSnapshotChaos races Checkpoint against
// concurrent Appends and Snapshots under -race, for both layouts:
// epochs stay monotonic across folds and every snapshot stays a
// bit-exact gap-free prefix.
func TestWALCheckpointAppendSnapshotChaos(t *testing.T) {
	const base = 48
	ids := make([]timeseries.ID, 0, 10)
	ds := &timeseries.Dataset{Temperature: &timeseries.Temperature{}}
	for h := 0; h < base; h++ {
		ds.Temperature.Values = append(ds.Temperature.Values, cursortest.IsolationTemp(h))
	}
	for id := timeseries.ID(1); id <= 10; id++ {
		ids = append(ids, id)
		s := &timeseries.Series{ID: id}
		for h := 0; h < base; h++ {
			s.Readings = append(s.Readings, cursortest.IsolationValue(id, h))
		}
		ds.Series = append(ds.Series, s)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			e := New(t.TempDir(), WithLayout(layout), WithWAL(wal.SyncBatch))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.RunCheckpointChaos(t, e, e.Checkpoint, ids, base, 48)
		})
	}
}
