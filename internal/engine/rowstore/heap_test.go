package rowstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestHeapInsertGetScan(t *testing.T) {
	bp := testPool(t, 32)
	h, err := newHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	var tids []TID
	var want [][]byte
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		tuple := make([]byte, rng.Intn(60)+4)
		rng.Read(tuple)
		tid, err := h.insert(tuple)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		tids = append(tids, tid)
		want = append(want, tuple)
	}
	if h.tuples != 3000 {
		t.Errorf("tuples = %d", h.tuples)
	}
	// Random access.
	for _, i := range rng.Perm(len(tids)) {
		got, err := h.get(tids[i])
		if err != nil {
			t.Fatalf("get %v: %v", tids[i], err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("tuple %d mismatch", i)
		}
	}
	// Scan sees every tuple once in insertion order.
	idx := 0
	err = h.scan(func(tid TID, tuple []byte) error {
		if !bytes.Equal(tuple, want[idx]) {
			return fmt.Errorf("scan tuple %d mismatch", idx)
		}
		if tid != tids[idx] {
			return fmt.Errorf("scan tid %d: %v vs %v", idx, tid, tids[idx])
		}
		idx++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3000 {
		t.Errorf("scan saw %d tuples", idx)
	}
}

func TestHeapLargeTupleRejected(t *testing.T) {
	bp := testPool(t, 8)
	h, _ := newHeapFile(bp)
	if _, err := h.insert(make([]byte, PageSize)); err == nil {
		t.Error("oversized tuple: want error")
	}
	// A maximal tuple fits.
	if _, err := h.insert(make([]byte, PageSize-heapHeaderSize-slotSize)); err != nil {
		t.Errorf("maximal tuple: %v", err)
	}
}

func TestHeapPageChaining(t *testing.T) {
	bp := testPool(t, 8)
	h, _ := newHeapFile(bp)
	// Big tuples force one page each.
	big := make([]byte, PageSize/2)
	for i := 0; i < 10; i++ {
		if _, err := h.insert(big); err != nil {
			t.Fatal(err)
		}
	}
	if h.first == h.last {
		t.Error("expected chained pages")
	}
	count := 0
	h.scan(func(TID, []byte) error { count++; return nil })
	if count != 10 {
		t.Errorf("scan = %d", count)
	}
}

func TestOpenHeapFileReattach(t *testing.T) {
	bp := testPool(t, 8)
	h, _ := newHeapFile(bp)
	for i := 0; i < 500; i++ {
		h.insert([]byte("tuple-data-goes-here"))
	}
	re, err := openHeapFile(bp, h.first, h.tuples)
	if err != nil {
		t.Fatal(err)
	}
	if re.last != h.last {
		t.Errorf("reattached last = %d, want %d", re.last, h.last)
	}
	// Inserts continue on the tail page.
	if _, err := re.insert([]byte("more")); err != nil {
		t.Fatal(err)
	}
}

func TestHeapGetErrors(t *testing.T) {
	bp := testPool(t, 8)
	h, _ := newHeapFile(bp)
	h.insert([]byte("x"))
	if _, err := h.get(TID{Page: h.first, Slot: 99}); err == nil {
		t.Error("bad slot: want error")
	}
	if _, err := h.get(TID{Page: 9999, Slot: 0}); err == nil {
		t.Error("bad page: want error")
	}
}

func TestBufferPoolEvictionWriteback(t *testing.T) {
	pf, err := openPagedFile(t.TempDir() + "/wb.db")
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	bp := newBufferPool(pf, 2)
	// Write three pages through a 2-frame pool.
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := bp.allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.data[0] = byte(i + 1)
		ids = append(ids, fr.id)
		bp.unpin(fr, true)
	}
	// All three pages must read back correctly despite eviction.
	for i, id := range ids {
		fr, err := bp.fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.data[0] != byte(i+1) {
			t.Errorf("page %d data = %d", id, fr.data[0])
		}
		bp.unpin(fr, false)
	}
	if bp.Misses == 0 {
		t.Error("expected misses with pool of 2")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	pf, err := openPagedFile(t.TempDir() + "/pin.db")
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	bp := newBufferPool(pf, 2)
	a, _ := bp.allocate()
	b, _ := bp.allocate()
	if _, err := bp.allocate(); err == nil {
		t.Error("all pinned: want error")
	}
	bp.unpin(a, false)
	bp.unpin(b, false)
	if _, err := bp.allocate(); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

func TestPagedFileErrors(t *testing.T) {
	pf, err := openPagedFile(t.TempDir() + "/e.db")
	if err != nil {
		t.Fatal(err)
	}
	defer pf.close()
	var buf [PageSize]byte
	if err := pf.read(0, buf[:]); err == nil {
		t.Error("read past end: want error")
	}
	if err := pf.write(0, buf[:]); err == nil {
		t.Error("write past end: want error")
	}
}
