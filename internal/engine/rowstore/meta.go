package rowstore

import (
	"fmt"
)

// Meta page layout (always page 0 of the table file):
//
//	offset 0:  8-byte magic "SMROW1\n\0"
//	offset 8:  uint32 layout
//	offset 12: uint32 heap first page
//	offset 16: uint32 heap last page
//	offset 20: uint64 heap tuple count
//	offset 28: uint32 btree root page
//	offset 32: uint32 btree height
//	offset 36: uint32 series length (readings per consumer)
//	offset 40: uint32 consumer count
var rowMagic = [8]byte{'S', 'M', 'R', 'O', 'W', '1', '\n', 0}

// metaPage is the decoded meta page.
type metaPage struct {
	layout    Layout
	heapFirst PageID
	heapLast  PageID
	tuples    int64
	root      PageID
	height    int
	seriesLen int
	consumers int
}

// writeMeta persists the meta page through the buffer pool.
func writeMeta(bp *bufferPool, m metaPage) error {
	fr, err := bp.fetch(0)
	if err != nil {
		return err
	}
	data := fr.data[:]
	copy(data, rowMagic[:])
	putU32(data, 8, uint32(m.layout))
	putU32(data, 12, uint32(m.heapFirst))
	putU32(data, 16, uint32(m.heapLast))
	putU64(data, 20, uint64(m.tuples))
	putU32(data, 28, uint32(m.root))
	putU32(data, 32, uint32(m.height))
	putU32(data, 36, uint32(m.seriesLen))
	putU32(data, 40, uint32(m.consumers))
	bp.unpin(fr, true)
	return bp.flush()
}

// readMeta loads and validates the meta page.
func readMeta(bp *bufferPool) (metaPage, error) {
	fr, err := bp.fetch(0)
	if err != nil {
		return metaPage{}, err
	}
	defer bp.unpin(fr, false)
	data := fr.data[:]
	for i, b := range rowMagic {
		if data[i] != b {
			return metaPage{}, fmt.Errorf("rowstore: bad meta magic (not a rowstore file)")
		}
	}
	m := metaPage{
		layout:    Layout(getU32(data, 8)),
		heapFirst: PageID(getU32(data, 12)),
		heapLast:  PageID(getU32(data, 16)),
		tuples:    int64(getU64(data, 20)),
		root:      PageID(getU32(data, 28)),
		height:    int(getU32(data, 32)),
		seriesLen: int(getU32(data, 36)),
		consumers: int(getU32(data, 40)),
	}
	if m.layout != LayoutRows && m.layout != LayoutArrays {
		return metaPage{}, fmt.Errorf("rowstore: meta has unknown layout %d", m.layout)
	}
	return m, nil
}
