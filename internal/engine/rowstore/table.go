package rowstore

import (
	"fmt"
	"math"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Layout selects the physical schema (paper Figure 9).
type Layout int

const (
	// LayoutRows stores one reading per tuple:
	// (household, hour, temperature, consumption) — the paper's Table 1.
	LayoutRows Layout = iota
	// LayoutArrays stores one row per consumer with consumption and
	// temperature arrays — the paper's Table 2. Arrays larger than a
	// page are chunked across tuples (a TOAST-like scheme), keyed by
	// (household, chunk).
	LayoutArrays
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutRows:
		return "row-per-reading"
	case LayoutArrays:
		return "array-per-consumer"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// rowTupleSize is the encoded size of a LayoutRows tuple.
const rowTupleSize = 8 + 4 + 8 + 8

// chunkHours is the number of hours per LayoutArrays chunk; each chunk
// carries both consumption and temperature, so the tuple stays within a
// page: 16 + 480*16 = 7696 bytes.
const chunkHours = 480

// encodeRowTuple encodes one reading row.
func encodeRowTuple(buf []byte, id timeseries.ID, hour int, temp, cons float64) []byte {
	buf = buf[:0]
	var tmp [rowTupleSize]byte
	putU64(tmp[:], 0, uint64(id))
	putU32(tmp[:], 8, uint32(hour))
	putU64(tmp[:], 12, math.Float64bits(temp))
	putU64(tmp[:], 20, math.Float64bits(cons))
	return append(buf, tmp[:]...)
}

// decodeRowTuple decodes a reading row.
func decodeRowTuple(t []byte) (id timeseries.ID, hour int, temp, cons float64, err error) {
	if len(t) != rowTupleSize {
		return 0, 0, 0, 0, fmt.Errorf("rowstore: row tuple of %d bytes", len(t))
	}
	id = timeseries.ID(getU64(t, 0))
	hour = int(getU32(t, 8))
	temp = math.Float64frombits(getU64(t, 12))
	cons = math.Float64frombits(getU64(t, 20))
	return id, hour, temp, cons, nil
}

// encodeArrayChunk encodes one LayoutArrays chunk tuple:
// household(8) startHour(4) count(4) cons[count] temp[count].
func encodeArrayChunk(buf []byte, id timeseries.ID, startHour int, cons, temp []float64) ([]byte, error) {
	if len(cons) != len(temp) {
		return nil, fmt.Errorf("rowstore: chunk arrays differ: %d vs %d", len(cons), len(temp))
	}
	n := len(cons)
	size := 16 + n*16
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	putU64(buf, 0, uint64(id))
	putU32(buf, 8, uint32(startHour))
	putU32(buf, 12, uint32(n))
	for i := 0; i < n; i++ {
		putU64(buf, 16+i*8, math.Float64bits(cons[i]))
		putU64(buf, 16+(n+i)*8, math.Float64bits(temp[i]))
	}
	return buf, nil
}

// decodeArrayChunk decodes a chunk tuple, appending into cons/temp at
// the encoded start hour (the slices must already be sized).
func decodeArrayChunk(t []byte, cons, temp []float64) (timeseries.ID, error) {
	if len(t) < 16 {
		return 0, fmt.Errorf("rowstore: chunk tuple of %d bytes", len(t))
	}
	id := timeseries.ID(getU64(t, 0))
	start := int(getU32(t, 8))
	n := int(getU32(t, 12))
	if len(t) != 16+n*16 {
		return 0, fmt.Errorf("rowstore: chunk tuple size %d, want %d", len(t), 16+n*16)
	}
	if start+n > len(cons) || start+n > len(temp) {
		return 0, fmt.Errorf("rowstore: chunk [%d, %d) outside series of %d", start, start+n, len(cons))
	}
	for i := 0; i < n; i++ {
		cons[start+i] = math.Float64frombits(getU64(t, 16+i*8))
		temp[start+i] = math.Float64frombits(getU64(t, 16+(n+i)*8))
	}
	return id, nil
}

// table is a stored relation: a heap file plus a B+tree on the
// composite key.
type table struct {
	layout Layout
	heap   *heapFile
	index  *btree
	// seriesLen is the (uniform) number of readings per consumer.
	seriesLen int
	// consumers is the number of distinct households.
	consumers int
}

// insertSeries stores one consumer's data under the table's layout.
// Temperature is stored alongside consumption, as in both of the
// paper's schemas.
func (tb *table) insertSeries(s *timeseries.Series, temp *timeseries.Temperature) error {
	if s.ID <= 0 {
		return fmt.Errorf("rowstore: household id must be positive, got %d", s.ID)
	}
	if len(s.Readings) != len(temp.Values) {
		return fmt.Errorf("rowstore: consumer %d has %d readings but %d temperatures",
			s.ID, len(s.Readings), len(temp.Values))
	}
	if tb.seriesLen == 0 {
		tb.seriesLen = len(s.Readings)
	} else if tb.seriesLen != len(s.Readings) {
		return fmt.Errorf("rowstore: consumer %d length %d differs from table's %d",
			s.ID, len(s.Readings), tb.seriesLen)
	}
	switch tb.layout {
	case LayoutRows:
		var buf []byte
		for h, c := range s.Readings {
			buf = encodeRowTuple(buf, s.ID, h, temp.Values[h], c)
			tid, err := tb.heap.insert(buf)
			if err != nil {
				return err
			}
			if err := tb.index.insert(key{ID: uint64(s.ID), Seq: uint64(h)}, tid); err != nil {
				return err
			}
		}
	case LayoutArrays:
		if err := tb.insertChunks(s.ID, 0, 0, s.Readings, temp.Values); err != nil {
			return err
		}
	default:
		return fmt.Errorf("rowstore: unknown layout %v", tb.layout)
	}
	tb.consumers++
	return nil
}

// insertChunks stores a run of readings as array chunks starting at the
// given hour offset and chunk sequence number.
func (tb *table) insertChunks(id timeseries.ID, firstSeq uint64, hourOffset int, cons, temps []float64) error {
	var buf []byte
	seq := firstSeq
	for start := 0; start < len(cons); start += chunkHours {
		end := start + chunkHours
		if end > len(cons) {
			end = len(cons)
		}
		var err error
		buf, err = encodeArrayChunk(buf, id, hourOffset+start, cons[start:end], temps[start:end])
		if err != nil {
			return err
		}
		tid, err := tb.heap.insert(buf)
		if err != nil {
			return err
		}
		if err := tb.index.insert(key{ID: uint64(id), Seq: seq}, tid); err != nil {
			return err
		}
		seq++
	}
	return nil
}

// maxSeq returns the highest stored sequence number for a household and
// whether any entry exists.
func (tb *table) maxSeq(id timeseries.ID) (uint64, bool, error) {
	var last uint64
	found := false
	err := tb.index.scanRange(key{ID: uint64(id)}, key{ID: uint64(id) + 1}, func(k key, _ TID) error {
		last = k.Seq
		found = true
		return nil
	})
	return last, found, err
}

// appendReadings extends one household's series with new hourly data
// (the benchmark's future-work "add a day's worth of new points"). The
// caller must extend every household identically and then bump
// tb.seriesLen once via setSeriesLen.
func (tb *table) appendReadings(id timeseries.ID, cons, temps []float64) error {
	if len(cons) != len(temps) {
		return fmt.Errorf("rowstore: append arrays differ: %d vs %d", len(cons), len(temps))
	}
	switch tb.layout {
	case LayoutRows:
		var buf []byte
		for i, c := range cons {
			h := tb.seriesLen + i
			buf = encodeRowTuple(buf, id, h, temps[i], c)
			tid, err := tb.heap.insert(buf)
			if err != nil {
				return err
			}
			if err := tb.index.insert(key{ID: uint64(id), Seq: uint64(h)}, tid); err != nil {
				return err
			}
		}
		return nil
	case LayoutArrays:
		last, found, err := tb.maxSeq(id)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("rowstore: household %d not found", id)
		}
		return tb.insertChunks(id, last+1, tb.seriesLen, cons, temps)
	default:
		return fmt.Errorf("rowstore: unknown layout %v", tb.layout)
	}
}

// setSeriesLen records the new uniform series length after appends.
func (tb *table) setSeriesLen(n int) { tb.seriesLen = n }

// readSeries extracts one consumer via an index scan, decoding tuples
// one at a time (the per-row cost the paper attributes to the DBMS).
// It reads the published seriesLen prefix: live-appended tuples beyond
// it (see live.go) are invisible to the base view until a bulk
// AppendDelta or reload publishes a new length.
func (tb *table) readSeries(id timeseries.ID) (*timeseries.Series, *timeseries.Temperature, error) {
	cons, temp, err := tb.readSeriesInto(id, tb.seriesLen)
	if err != nil {
		return nil, nil, err
	}
	return &timeseries.Series{ID: id, Readings: cons}, &timeseries.Temperature{Values: temp}, nil
}

// readSeriesUpTo extracts the first n hours of one consumer — the
// snapshot cursors' truncating read: n is a household length captured
// at snapshot time, so tuples appended after the capture are skipped.
func (tb *table) readSeriesUpTo(id timeseries.ID, n int) (*timeseries.Series, error) {
	cons, _, err := tb.readSeriesInto(id, n)
	if err != nil {
		return nil, err
	}
	return &timeseries.Series{ID: id, Readings: cons}, nil
}

// readSeriesInto scans one household's index range, decoding tuples
// into n-hour consumption and temperature arrays. Tuples at or beyond
// hour n terminate the scan: the index orders a household's tuples by
// sequence, so everything after the first out-of-prefix tuple is also
// out of prefix. An array chunk straddling n is an invariant breach —
// chunks never span an append batch, and prefixes are only ever cut at
// batch boundaries.
func (tb *table) readSeriesInto(id timeseries.ID, n int) ([]float64, []float64, error) {
	cons := make([]float64, n)
	temp := make([]float64, n)
	found := false
	lo := key{ID: uint64(id), Seq: 0}
	hi := key{ID: uint64(id) + 1, Seq: 0}
	err := tb.index.scanRange(lo, hi, func(k key, v TID) error {
		t, err := tb.heap.get(v)
		if err != nil {
			return err
		}
		found = true
		switch tb.layout {
		case LayoutRows:
			_, hour, tv, cv, err := decodeRowTuple(t)
			if err != nil {
				return err
			}
			if hour >= n {
				return errStopScan
			}
			cons[hour], temp[hour] = cv, tv
		case LayoutArrays:
			start, count, err := chunkBounds(t)
			if err != nil {
				return err
			}
			if start >= n {
				return errStopScan
			}
			if start+count > n {
				return fmt.Errorf("rowstore: prefix of %d hours cuts chunk [%d, %d)", n, start, start+count)
			}
			_, err = decodeArrayChunk(t, cons, temp)
			return err
		}
		return nil
	})
	if err == errStopScan {
		err = nil
	}
	if err != nil {
		return nil, nil, err
	}
	if !found {
		return nil, nil, fmt.Errorf("rowstore: household %d not found", id)
	}
	return cons, temp, nil
}

// chunkBounds decodes just the [start, start+count) hour range from a
// LayoutArrays chunk tuple header.
func chunkBounds(t []byte) (start, count int, err error) {
	if len(t) < 16 {
		return 0, 0, fmt.Errorf("rowstore: chunk tuple of %d bytes", len(t))
	}
	return int(getU32(t, 8)), int(getU32(t, 12)), nil
}

// distinctIDs returns every stored household ID in ascending order by
// hopping across the index (seek to (id+1, 0) after each hit).
func (tb *table) distinctIDs() ([]timeseries.ID, error) {
	var ids []timeseries.ID
	next := key{ID: 0, Seq: 0}
	for {
		var got *key
		err := tb.index.scanRange(next, key{ID: math.MaxUint64, Seq: math.MaxUint64},
			func(k key, _ TID) error {
				got = &k
				return errStopScan
			})
		if err != nil && err != errStopScan {
			return nil, err
		}
		if got == nil {
			return ids, nil
		}
		ids = append(ids, timeseries.ID(got.ID))
		next = key{ID: got.ID + 1, Seq: 0}
	}
}

// errStopScan terminates a scan early; it never escapes this package's
// public API.
var errStopScan = fmt.Errorf("rowstore: stop scan")
