package rowstore

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
)

func TestCursorConformance(t *testing.T) {
	src, _ := writeSource(t, 5, 10)

	t.Run("ColdScanCursor", func(t *testing.T) {
		e := New(t.TempDir())
		defer e.Close()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cur.(*scanCursor); !ok {
				t.Fatalf("cold engine yielded %T, want *scanCursor", cur)
			}
			return cur
		})
	})

	t.Run("ArrayLayoutScanCursor", func(t *testing.T) {
		e := New(t.TempDir(), WithLayout(LayoutArrays))
		defer e.Close()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})

	t.Run("WarmDatasetCursor", func(t *testing.T) {
		e := New(t.TempDir())
		defer e.Close()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.Run(t, func(t *testing.T) core.Cursor {
			cur, err := e.NewCursor()
			if err != nil {
				t.Fatal(err)
			}
			return cur
		})
	})
}

func TestPartitionConformance(t *testing.T) {
	src, _ := writeSource(t, 7, 10)

	t.Run("Cold", func(t *testing.T) {
		e := New(t.TempDir())
		defer e.Close()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})

	t.Run("Warm", func(t *testing.T) {
		e := New(t.TempDir())
		defer e.Close()
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		if err := e.Warm(); err != nil {
			t.Fatal(err)
		}
		cursortest.RunPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
	})
}
