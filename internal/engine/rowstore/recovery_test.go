package rowstore

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// TestRecoverySweep runs the crash-injection conformance suite against
// the row store: every trial bulk-loads a base day, then a
// deterministic append script (with a mid-script copy-on-write
// checkpoint) is killed at an injected disk operation. The reopened
// engine must recover the checkpointed table plus every acked log
// batch, bit-exact, with analytics matching the no-crash reference.
func TestRecoverySweep(t *testing.T) {
	const base = 24
	ids := []timeseries.ID{1, 2, 3, 4, 5, 6}
	ds := &timeseries.Dataset{Temperature: &timeseries.Temperature{}}
	for h := 0; h < base; h++ {
		ds.Temperature.Values = append(ds.Temperature.Values, cursortest.IsolationTemp(h))
	}
	for _, id := range ids {
		s := &timeseries.Series{ID: id}
		for h := 0; h < base; h++ {
			s.Readings = append(s.Readings, cursortest.IsolationValue(id, h))
		}
		ds.Series = append(ds.Series, s)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			h := cursortest.RecoveryHarness{
				Open: func(t *testing.T, dir string, disk *fault.Disk) cursortest.RecoveryEngine {
					e := New(dir, WithLayout(layout), WithWAL(wal.SyncBatch), WithWALFS(disk))
					// Fresh trial dirs have no table yet; Seed installs
					// it. After a crash the checkpointed table must be
					// opened before the log replays onto it.
					if _, err := os.Stat(filepath.Join(dir, "table.db")); err == nil {
						if err := e.Open(); err != nil {
							t.Fatalf("reopen after crash: %v", err)
						}
					}
					return e
				},
				Seed: func(t *testing.T, eng cursortest.RecoveryEngine) {
					if _, err := eng.(*Engine).Load(src); err != nil {
						t.Fatal(err)
					}
				},
				Checkpoint: func(eng cursortest.RecoveryEngine) error {
					return eng.(*Engine).Checkpoint()
				},
				Close: func(eng cursortest.RecoveryEngine) {
					if err := eng.(*Engine).Close(); err != nil {
						t.Errorf("close: %v", err)
					}
				},
				Run:     exec.RunSnapshot,
				Durable: true,
				Base:    base,
				Hours:   60,
			}
			cursortest.RunRecovery(t, h, ids)
		})
	}
}
