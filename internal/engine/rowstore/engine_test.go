package rowstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func writeSource(t *testing.T, consumers, days int) (*meterdata.Source, *timeseries.Dataset) {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	return src, ds
}

func TestEngineLoadAndExtract(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 5, 30)
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			st, err := e.Load(src)
			if err != nil {
				t.Fatal(err)
			}
			if st.Consumers != 5 {
				t.Errorf("consumers = %d", st.Consumers)
			}
			if st.Readings != int64(5*30*24) {
				t.Errorf("readings = %d", st.Readings)
			}
			if st.StorageBytes <= 0 {
				t.Errorf("storage = %d", st.StorageBytes)
			}
			// Extract each consumer and compare against the source data.
			for _, want := range ds.Series {
				s, temp, err := e.table.readSeries(want.ID)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Readings {
					if math.Abs(s.Readings[i]-want.Readings[i]) > 1e-4 {
						t.Fatalf("consumer %d reading %d: %g vs %g",
							want.ID, i, s.Readings[i], want.Readings[i])
					}
					if math.Abs(temp.Values[i]-ds.Temperature.Values[i]) > 1e-4 {
						t.Fatalf("consumer %d temp %d mismatch", want.ID, i)
					}
				}
			}
		})
	}
}

func TestEngineRunMatchesReference(t *testing.T) {
	src, _ := writeSource(t, 4, 40)
	ref, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		e := New(t.TempDir(), WithLayout(layout))
		if _, err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		for _, task := range core.Tasks {
			spec := core.Spec{Task: task, K: 3}
			got, err := e.Run(spec)
			if err != nil {
				t.Fatalf("%v/%v: %v", layout, task, err)
			}
			want, err := core.RunReference(ref, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("%v/%v: count %d vs %d", layout, task, got.Count(), want.Count())
			}
			compareResults(t, got, want)
		}
		e.Close()
	}
}

// compareResults spot-checks engine output against the reference oracle.
func compareResults(t *testing.T, got, want *core.Results) {
	t.Helper()
	switch got.Task {
	case core.TaskHistogram:
		for i := range want.Histograms {
			g, w := got.Histograms[i], want.Histograms[i]
			if g.ID != w.ID {
				t.Fatalf("histogram %d: ID %d vs %d", i, g.ID, w.ID)
			}
			for b := range w.Histogram.Counts {
				if g.Histogram.Counts[b] != w.Histogram.Counts[b] {
					t.Fatalf("histogram %d bucket %d: %d vs %d",
						i, b, g.Histogram.Counts[b], w.Histogram.Counts[b])
				}
			}
		}
	case core.TaskThreeLine:
		for i := range want.ThreeLines {
			g, w := got.ThreeLines[i], want.ThreeLines[i]
			if g.ID != w.ID {
				t.Fatalf("3-line %d: ID mismatch", i)
			}
			if math.Abs(g.HeatingGradient-w.HeatingGradient) > 1e-6 {
				t.Fatalf("3-line %d: heating %g vs %g", i, g.HeatingGradient, w.HeatingGradient)
			}
		}
	case core.TaskPAR:
		for i := range want.Profiles {
			g, w := got.Profiles[i], want.Profiles[i]
			if g.ID != w.ID {
				t.Fatalf("PAR %d: ID mismatch", i)
			}
			for h := range w.Profile {
				if math.Abs(g.Profile[h]-w.Profile[h]) > 1e-6 {
					t.Fatalf("PAR %d hour %d: %g vs %g", i, h, g.Profile[h], w.Profile[h])
				}
			}
		}
	case core.TaskSimilarity:
		for i := range want.Similar {
			g, w := got.Similar[i], want.Similar[i]
			if g.ID != w.ID || len(g.Matches) != len(w.Matches) {
				t.Fatalf("similarity %d: shape mismatch", i)
			}
			for j := range w.Matches {
				if g.Matches[j].ID != w.Matches[j].ID ||
					math.Abs(g.Matches[j].Score-w.Matches[j].Score) > 1e-9 {
					t.Fatalf("similarity %d match %d: %+v vs %+v",
						i, j, g.Matches[j], w.Matches[j])
				}
			}
		}
	}
}

func TestEngineWarmAndRelease(t *testing.T) {
	src, _ := writeSource(t, 3, 20)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	if e.cache == nil {
		t.Fatal("warm did not populate cache")
	}
	r, err := e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 3 {
		t.Errorf("count = %d", r.Count())
	}
	if err := e.Release(); err != nil {
		t.Fatal(err)
	}
	if e.cache != nil {
		t.Error("release kept cache")
	}
	// Still runnable cold after release.
	r, err = e.Run(core.Spec{Task: core.TaskHistogram})
	if err != nil || r.Count() != 3 {
		t.Errorf("cold rerun: count=%d err=%v", r.Count(), err)
	}
}

func TestEngineRunWithoutLoad(t *testing.T) {
	e := New(t.TempDir())
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("err = %v, want ErrNotLoaded", err)
	}
	if err := e.Warm(); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("warm err = %v", err)
	}
}

func TestEngineParallelRun(t *testing.T) {
	src, _ := writeSource(t, 6, 20)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	seq, err := e.Run(core.Spec{Task: core.TaskPAR, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par4, err := e.Run(core.Spec{Task: core.TaskPAR, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, par4, seq)
}

func TestArrayLayoutUsesFewerTuples(t *testing.T) {
	src, _ := writeSource(t, 3, 30)
	rows := New(t.TempDir(), WithLayout(LayoutRows))
	defer rows.Close()
	arrays := New(t.TempDir(), WithLayout(LayoutArrays))
	defer arrays.Close()
	if _, err := rows.Load(src); err != nil {
		t.Fatal(err)
	}
	if _, err := arrays.Load(src); err != nil {
		t.Fatal(err)
	}
	if arrays.table.heap.tuples >= rows.table.heap.tuples {
		t.Errorf("array tuples %d >= row tuples %d",
			arrays.table.heap.tuples, rows.table.heap.tuples)
	}
}

func TestTableRejectsBadSeries(t *testing.T) {
	src, _ := writeSource(t, 2, 5)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	tb := e.table
	bad := &timeseries.Series{ID: -1, Readings: make([]float64, 24)}
	temp := &timeseries.Temperature{Values: make([]float64, 24)}
	if err := tb.insertSeries(bad, temp); err == nil {
		t.Error("negative id: want error")
	}
	mismatch := &timeseries.Series{ID: 50, Readings: make([]float64, 48)}
	if err := tb.insertSeries(mismatch, temp); err == nil {
		t.Error("length mismatch vs temp: want error")
	}
	if _, _, err := tb.readSeries(9999); err == nil {
		t.Error("missing household: want error")
	}
}

func TestDistinctIDs(t *testing.T) {
	src, ds := writeSource(t, 7, 5)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	ids, err := e.table.distinctIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(ds.Series) {
		t.Fatalf("ids = %v", ids)
	}
	for i, s := range ds.Series {
		if ids[i] != s.ID {
			t.Errorf("ids[%d] = %d, want %d", i, ids[i], s.ID)
		}
	}
}

func TestPoolStatsAndLayoutAccessors(t *testing.T) {
	src, _ := writeSource(t, 2, 5)
	e := New(t.TempDir(), WithLayout(LayoutArrays), WithPoolPages(16))
	defer e.Close()
	if e.Layout() != LayoutArrays {
		t.Error("Layout accessor")
	}
	if h, m := e.PoolStats(); h != 0 || m != 0 {
		t.Error("stats before load")
	}
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err != nil {
		t.Fatal(err)
	}
	h, m := e.PoolStats()
	if h == 0 && m == 0 {
		t.Error("no pool activity recorded")
	}
}

func TestOpenReattachesStorage(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 4, 20)
			dir := t.TempDir()
			e1 := New(dir, WithLayout(layout))
			if _, err := e1.Load(src); err != nil {
				t.Fatal(err)
			}
			want, err := e1.Run(core.Spec{Task: core.TaskThreeLine})
			if err != nil {
				t.Fatal(err)
			}
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}
			// A brand-new engine over the same directory reopens the
			// stored pages without reloading. Note the layout is recovered
			// from the meta page, not the constructor option.
			e2 := New(dir)
			if err := e2.Open(); err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if e2.Layout() != layout {
				t.Errorf("recovered layout = %v, want %v", e2.Layout(), layout)
			}
			got, err := e2.Run(core.Spec{Task: core.TaskThreeLine})
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, got, want)
			if len(e2.ids) != len(ds.Series) {
				t.Errorf("recovered %d consumers, want %d", len(e2.ids), len(ds.Series))
			}
		})
	}
}

func TestOpenErrors(t *testing.T) {
	e := New(t.TempDir())
	if err := e.Open(); err == nil {
		t.Error("open without file: want error")
	}
	// A file that is not a rowstore file is rejected by the magic check.
	dir := t.TempDir()
	path := filepath.Join(dir, "table.db")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := New(dir)
	if err := bad.Open(); err == nil {
		t.Error("bad magic: want error")
	}
}

func deltaFor(t *testing.T, ds *timeseries.Dataset, days int) *timeseries.Dataset {
	t.Helper()
	d, err := seed.Generate(seed.Config{Consumers: len(ds.Series), Days: days, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAppendExtendsEverySeries(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 3, 10)
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			delta := deltaFor(t, ds, 2)
			if err := e.AppendDelta(delta); err != nil {
				t.Fatal(err)
			}
			// Every series must now hold 12 days and the appended values
			// must round-trip exactly.
			for i, want := range delta.Series {
				s, temp, err := e.table.readSeries(ds.Series[i].ID)
				if err != nil {
					t.Fatal(err)
				}
				if len(s.Readings) != 12*timeseries.HoursPerDay {
					t.Fatalf("series %d has %d readings", s.ID, len(s.Readings))
				}
				off := 10 * timeseries.HoursPerDay
				for j, v := range want.Readings {
					if s.Readings[off+j] != v {
						t.Fatalf("series %d appended reading %d: %g vs %g", s.ID, j, s.Readings[off+j], v)
					}
					if temp.Values[off+j] != delta.Temperature.Values[j] {
						t.Fatalf("series %d appended temp %d mismatch", s.ID, j)
					}
				}
			}
			// The append survives a close/reopen cycle (meta page updated).
			dir := e.dir
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			re := New(dir)
			if err := re.Open(); err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			s, _, err := re.table.readSeries(ds.Series[0].ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Readings) != 12*timeseries.HoursPerDay {
				t.Errorf("after reopen: %d readings", len(s.Readings))
			}
		})
	}
}

func TestAppendValidation(t *testing.T) {
	src, ds := writeSource(t, 3, 5)
	e := New(t.TempDir())
	defer e.Close()
	empty := New(t.TempDir())
	defer empty.Close()
	if err := empty.AppendDelta(&timeseries.Dataset{}); err == nil || !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("append before load: %v", err)
	}
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	// Wrong household count.
	short := deltaFor(t, ds, 1)
	short.Series = short.Series[:2]
	if err := e.AppendDelta(short); err == nil {
		t.Error("short delta: want error")
	}
	// Readings/temperature mismatch.
	bad := deltaFor(t, ds, 1)
	bad.Series[0].Readings = bad.Series[0].Readings[:12]
	if err := e.AppendDelta(bad); err == nil {
		t.Error("ragged delta: want error")
	}
}

// Ablation: buffer pool capacity vs cold-scan performance. A pool too
// small for the working set forces re-reads from disk on every
// extraction (DESIGN.md's called-out buffer pool design choice).
func BenchmarkBufferPoolSize(b *testing.B) {
	ds, err := seed.Generate(seed.Config{Consumers: 12, Days: 90, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	src, err := meterdata.WriteUnpartitioned(b.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		b.Fatal(err)
	}
	for _, pages := range []int{8, 64, 4096} {
		b.Run(fmt.Sprintf("pages-%d", pages), func(b *testing.B) {
			e := New(b.TempDir(), WithPoolPages(pages))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Release(); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(core.Spec{Task: core.TaskHistogram}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
