package rowstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// DefaultPoolPages is the default buffer pool capacity (3072 pages =
// 24 MiB, echoing the paper's shared_buffers=3072MB scaled to bench
// size).
const DefaultPoolPages = 3072

// Engine is the PostgreSQL/MADLib analogue.
type Engine struct {
	dir       string
	layout    Layout
	poolPages int

	// Durability (see durable.go). walOn arms a single-shard
	// write-ahead log under walPolicy/walFS — one shard because this
	// engine's writers already serialize on readMu — and switches the
	// buffer pool to no-steal so the table file changes only at
	// checkpoints. tailBudget (in live readings) arms the
	// background-checkpoint trigger on ckptC.
	walOn      bool
	walPolicy  wal.SyncPolicy
	walFS      wal.FS
	wlog       *wal.Log
	tailBudget int64
	ckptC      chan struct{}
	// ckptAppended is ls.appended at the last checkpoint; the trigger
	// fires on the difference. Guarded by readMu.
	ckptAppended int64

	ckptErrMu sync.Mutex
	ckptErr   error

	pf    *pagedFile
	bp    *bufferPool
	table *table
	ids   []timeseries.ID
	cache *timeseries.Dataset
	temp  *timeseries.Temperature

	// readMu serializes tuple extraction: the buffer pool and B+tree are
	// not thread-safe, so concurrent partition cursors take this lock
	// per readSeries — the analogue of connections contending on the
	// shared buffer latch. heap.get copies tuple bytes out before
	// unpinning, so nothing pool-owned escapes the critical section.
	// Live ingestion (live.go) runs entirely under the same latch:
	// Append holds it across a whole batch, so a snapshot (or any
	// reader) observes batches atomically.
	readMu sync.Mutex

	// live is the lazily built live-ingestion state (live.go), guarded
	// by readMu.
	live *liveState
}

// Option configures the engine.
type Option func(*Engine)

// WithLayout selects the physical schema (default LayoutRows).
func WithLayout(l Layout) Option { return func(e *Engine) { e.layout = l } }

// WithPoolPages sets the buffer pool capacity in pages.
func WithPoolPages(n int) Option { return func(e *Engine) { e.poolPages = n } }

// WithWAL arms the write-ahead log: every Append is framed into a log
// under <dir>/wal before it is acked, with the given fsync policy, and
// replayed through the idempotent append path on reopen. See
// internal/wal for the format and policy semantics.
func WithWAL(policy wal.SyncPolicy) Option {
	return func(e *Engine) {
		e.walOn = true
		e.walPolicy = policy
	}
}

// WithWALFS substitutes the filesystem under the write-ahead log — the
// crash-injection hook (fault.Disk). Pair it with WithWAL.
func WithWALFS(fs wal.FS) Option {
	return func(e *Engine) { e.walFS = fs }
}

// WithTailBudget arms automatic background checkpointing: once at
// least this many readings have been appended since the last
// checkpoint, the engine signals the checkpointer goroutine
// (StartCheckpointer) to fold them into the table file. Zero disables
// the trigger.
func WithTailBudget(readings int64) Option {
	return func(e *Engine) {
		if readings > 0 {
			e.tailBudget = readings
		}
	}
}

// New returns a row-store engine whose storage lives under dir.
func New(dir string, opts ...Option) *Engine {
	e := &Engine{
		dir:       dir,
		layout:    LayoutRows,
		poolPages: DefaultPoolPages,
		ckptC:     make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements core.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("rowstore/%s (PostgreSQL-MADLib analogue)", e.layout)
}

// Capabilities implements core.Engine (Table 1, MADLib column).
func (e *Engine) Capabilities() core.Capabilities {
	return core.Capabilities{
		Histogram:        core.SupportBuiltin,
		Quantiles:        core.SupportBuiltin,
		Regression:       core.SupportBuiltin,
		CosineSimilarity: core.SupportNone,
	}
}

// Load implements core.Engine: it bulk-loads the CSV source into heap
// pages and builds the household B+tree, tuple by tuple — the cost
// profile behind the paper's Figure 4 MADLib bars.
func (e *Engine) Load(src *meterdata.Source) (*core.LoadStats, error) {
	if err := e.closeStorage(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return nil, fmt.Errorf("rowstore: %w", err)
	}
	path := filepath.Join(e.dir, "table.db")
	if err := os.RemoveAll(path); err != nil {
		return nil, fmt.Errorf("rowstore: %w", err)
	}
	pf, err := openPagedFile(path)
	if err != nil {
		return nil, err
	}
	bp := newBufferPool(pf, e.poolPages)
	bp.noSteal = e.walOn
	// Page 0 is reserved for the meta page.
	metaFr, err := bp.allocate()
	if err != nil {
		_ = pf.close()
		return nil, err
	}
	bp.unpin(metaFr, true)
	heap, err := newHeapFile(bp)
	if err != nil {
		_ = pf.close()
		return nil, err
	}
	idx, err := newBTree(bp)
	if err != nil {
		_ = pf.close()
		return nil, err
	}
	tb := &table{layout: e.layout, heap: heap, index: idx}

	// The source may be one big CSV or many small files; bulk loading
	// one big file is faster for the DBMS (paper §5.3.1), a difference
	// that emerges naturally from per-file open/parse overhead.
	ds, err := meterdata.ReadDataset(src)
	if err != nil {
		_ = pf.close()
		return nil, err
	}
	var readings int64
	for _, s := range ds.Series {
		if err := tb.insertSeries(s, ds.Temperature); err != nil {
			_ = pf.close()
			return nil, err
		}
		readings += int64(len(s.Readings))
	}
	if err := writeMeta(bp, metaPage{
		layout:    tb.layout,
		heapFirst: heap.first,
		heapLast:  heap.last,
		tuples:    heap.tuples,
		root:      idx.root,
		height:    idx.height,
		seriesLen: tb.seriesLen,
		consumers: tb.consumers,
	}); err != nil {
		_ = pf.close()
		return nil, err
	}
	if e.walOn {
		// The fresh base is a durability point: everything on disk and
		// fsynced, and any old log — which belonged to replaced state —
		// cleared so it cannot replay into the new table.
		if err := bp.flush(); err != nil {
			_ = pf.close()
			return nil, err
		}
		if err := pf.sync(); err != nil {
			_ = pf.close()
			return nil, err
		}
		if err := wal.Clear(e.walDir(), 1, e.walFS); err != nil {
			_ = pf.close()
			return nil, fmt.Errorf("rowstore: %w", err)
		}
	}
	e.pf, e.bp, e.table = pf, bp, tb
	e.ids = nil
	for _, s := range ds.Series {
		e.ids = append(e.ids, s.ID)
	}
	e.cache = nil
	e.temp = ds.Temperature
	return &core.LoadStats{
		Consumers:    len(ds.Series),
		Readings:     readings,
		StorageBytes: pf.sizeBytes(),
	}, nil
}

// Open re-attaches the engine to storage previously written by Load in
// the same directory, without re-ingesting any data — the durability
// path a restarted database server takes.
func (e *Engine) Open() error {
	if err := e.closeStorage(); err != nil {
		return err
	}
	pf, err := openPagedFile(filepath.Join(e.dir, "table.db"))
	if err != nil {
		return err
	}
	if pf.nPages == 0 {
		_ = pf.close()
		return fmt.Errorf("rowstore: %s holds no data", e.dir)
	}
	bp := newBufferPool(pf, e.poolPages)
	bp.noSteal = e.walOn
	m, err := readMeta(bp)
	if err != nil {
		_ = pf.close()
		return err
	}
	heap := &heapFile{bp: bp, first: m.heapFirst, last: m.heapLast, tuples: m.tuples}
	idx := openBTree(bp, m.root, m.height)
	tb := &table{
		layout:    m.layout,
		heap:      heap,
		index:     idx,
		seriesLen: m.seriesLen,
		consumers: m.consumers,
	}
	ids, err := tb.distinctIDs()
	if err != nil {
		_ = pf.close()
		return err
	}
	e.layout = m.layout
	e.pf, e.bp, e.table = pf, bp, tb
	e.ids = ids
	e.cache = nil
	e.temp = nil
	return nil
}

// Warm implements the benchmark's warm start: it extracts every series
// from the stored pages into memory (the paper's "run SELECT queries to
// extract the data we need").
func (e *Engine) Warm() error {
	if e.table == nil {
		return fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	ds, err := e.materialize()
	if err != nil {
		return err
	}
	e.cache = ds
	return nil
}

// Release implements core.Engine: drops the tuple cache and empties the
// buffer pool, so the next Run pays cold-start I/O again. With the
// write-ahead log armed, the pool's dirty pages cannot be written back
// in place (no-steal), so a checkpoint folds them atomically first.
func (e *Engine) Release() error {
	e.cache = nil
	e.temp = nil
	if e.bp == nil {
		return nil
	}
	if e.walOn && e.wlog != nil {
		if err := e.Checkpoint(); err != nil {
			return err
		}
	}
	return e.bp.reset()
}

// Close flushes and closes the underlying file.
func (e *Engine) Close() error { return e.closeStorage() }

func (e *Engine) closeStorage() error {
	if e.pf == nil {
		return nil
	}
	var first error
	if e.walOn && e.wlog != nil {
		// Clean shutdown with a log open: fold the pool's dirty pages
		// atomically (no-steal pools must not flush in place) and
		// truncate the log. On failure fall through to the plain flush —
		// the log survives on disk and replays next open.
		e.readMu.Lock()
		first = e.checkpointLocked()
		e.readMu.Unlock()
	}
	if err := e.bp.flush(); err != nil && first == nil {
		first = err
	}
	if e.wlog != nil {
		if err := e.wlog.Close(); err != nil && first == nil {
			first = err
		}
		e.wlog = nil
	}
	if err := e.pf.close(); err != nil && first == nil {
		first = err
	}
	e.pf, e.bp, e.table = nil, nil, nil
	e.cache = nil
	e.temp = nil
	e.live = nil
	e.ckptAppended = 0
	return first
}

// materialize extracts the full dataset from stored tuples.
func (e *Engine) materialize() (*timeseries.Dataset, error) {
	series := make([]*timeseries.Series, 0, len(e.ids))
	var temp *timeseries.Temperature
	for _, id := range e.ids {
		s, t, err := e.table.readSeries(id)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
		if temp == nil {
			temp = t
		}
	}
	if temp == nil {
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// Run implements core.Engine by handing the engine's cursor to the
// shared execution pipeline. Cold runs extract each consumer with an
// index scan and decode tuples one at a time; warm runs reuse the
// in-memory arrays built by Warm.
func (e *Engine) Run(spec core.Spec) (*core.Results, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext implements core.Engine: Run under a caller-supplied context
// governing cancellation and deadlines.
func (e *Engine) RunContext(ctx context.Context, spec core.Spec) (*core.Results, error) {
	if e.table == nil {
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	return exec.RunContext(ctx, e, spec)
}

// NewCursor implements core.Engine: in-memory arrays after Warm,
// otherwise a serial index-scan cursor through the buffer pool.
func (e *Engine) NewCursor() (core.Cursor, error) {
	if e.table == nil {
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	if e.cache != nil {
		return core.NewDatasetCursor(e.cache), nil
	}
	return &scanCursor{e: e}, nil
}

// NewCursors implements core.PartitionedSource: contiguous household
// ranges of the sorted ID list, which are contiguous heap-page ranges
// because Load inserts tuples in household order. All range cursors
// funnel through readSeriesShared, sharing the single buffer pool under
// the engine's read lock.
func (e *Engine) NewCursors(max int) ([]core.Cursor, error) {
	if max < 1 {
		return nil, fmt.Errorf("rowstore: NewCursors: max must be >= 1, got %d", max)
	}
	if e.table == nil {
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	if e.cache != nil {
		series := e.cache.Series
		curs := make([]core.Cursor, 0, max)
		for _, r := range core.PartitionRanges(len(series), max) {
			part := series[r[0]:r[1]]
			curs = append(curs, core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
				return part, nil
			}, nil))
		}
		return curs, nil
	}
	curs := make([]core.Cursor, 0, max)
	for _, r := range core.PartitionRanges(len(e.ids), max) {
		curs = append(curs, &rangeCursor{e: e, lo: r[0], hi: r[1]})
	}
	return curs, nil
}

var _ core.PartitionedSource = (*Engine)(nil)

// readSeriesShared is the one extraction path every cursor uses: it
// holds readMu across the index scan and tuple decode, and memoizes the
// temperature column read alongside the first consumer.
func (e *Engine) readSeriesShared(id timeseries.ID) (*timeseries.Series, error) {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	s, temp, err := e.table.readSeries(id)
	if err != nil {
		return nil, err
	}
	if e.temp == nil {
		e.temp = temp
	}
	return s, nil
}

// Temperature implements core.Engine. The temperature column is read
// alongside the first consumer's tuples and cached until the next
// Load/Open/Release.
func (e *Engine) Temperature() (*timeseries.Temperature, error) {
	if e.cache != nil {
		return e.cache.Temperature, nil
	}
	if e.table == nil {
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	if e.temp != nil {
		return e.temp, nil
	}
	if len(e.ids) == 0 {
		return nil, fmt.Errorf("rowstore: table holds no households")
	}
	if _, err := e.readSeriesShared(e.ids[0]); err != nil {
		return nil, err
	}
	return e.temp, nil
}

// Layout returns the engine's physical schema.
func (e *Engine) Layout() Layout { return e.layout }

// PoolStats returns buffer pool hit/miss counters for diagnostics.
func (e *Engine) PoolStats() (hits, misses int64) {
	if e.bp == nil {
		return 0, 0
	}
	return e.bp.Hits, e.bp.Misses
}

var _ core.Engine = (*Engine)(nil)

// AppendDelta implements core.DeltaAppender: new readings become
// ordinary tuple inserts (cheap — the write-optimized side of the
// trade-off). It refuses to run while live-ingested tuples exist (see
// Append in live.go): delta hours would collide with live hours.
func (e *Engine) AppendDelta(delta *timeseries.Dataset) error {
	if e.table == nil {
		return fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	if e.walOn {
		// An unreplayed log may hold live tuples the length checks below
		// cannot see; materialize the live state (replaying the log)
		// before deciding the delta is collision-free.
		e.readMu.Lock()
		_, err := e.ensureLive()
		e.readMu.Unlock()
		if err != nil {
			return err
		}
	}
	if e.live != nil && e.live.appended > 0 {
		return fmt.Errorf("rowstore: live tuples present; AppendDelta is unsupported after live Append")
	}
	if len(delta.Series) != len(e.ids) {
		return fmt.Errorf("rowstore: delta has %d households, table has %d", len(delta.Series), len(e.ids))
	}
	n := len(delta.Temperature.Values)
	for _, s := range delta.Series {
		if len(s.Readings) != n {
			return fmt.Errorf("rowstore: delta household %d has %d readings, temperature has %d",
				s.ID, len(s.Readings), n)
		}
	}
	for _, s := range delta.Series {
		if err := e.table.appendReadings(s.ID, s.Readings, delta.Temperature.Values); err != nil {
			return err
		}
	}
	e.table.setSeriesLen(e.table.seriesLen + n)
	e.cache = nil
	e.temp = nil
	e.live = nil // series lengths changed; rebuild lazily
	if err := writeMeta(e.bp, metaPage{
		layout:    e.table.layout,
		heapFirst: e.table.heap.first,
		heapLast:  e.table.heap.last,
		tuples:    e.table.heap.tuples,
		root:      e.table.index.root,
		height:    e.table.index.height,
		seriesLen: e.table.seriesLen,
		consumers: e.table.consumers,
	}); err != nil {
		return err
	}
	if e.walOn && e.wlog != nil {
		// Bulk deltas never ride the log; a checkpoint makes them
		// durable with the same atomic rewrite an Append fold uses.
		e.readMu.Lock()
		defer e.readMu.Unlock()
		e.ckptAppended = 0
		return e.checkpointLocked()
	}
	return nil
}

var _ core.DeltaAppender = (*Engine)(nil)

// StorageBytes returns the current size of the engine's table file.
func (e *Engine) StorageBytes() int64 {
	if e.pf == nil {
		return 0
	}
	return e.pf.sizeBytes()
}
