package rowstore

import (
	"context"
	"io"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// scanCursor extracts one consumer per Next with an index scan through
// the buffer pool — the engine's native cold path. The buffer pool is
// not thread-safe (one database connection in the paper), so every
// tuple read goes through readSeriesShared's engine-level lock; with a
// single cursor the lock is uncontended and extraction is effectively
// serial, while partition cursors (rangeCursor) interleave their index
// scans through the same pool the way concurrent connections share
// shared_buffers.
type scanCursor struct {
	e      *Engine
	ctx    context.Context
	i      int
	closed bool
}

func (c *scanCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *scanCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= len(c.e.ids) {
		return nil, io.EOF
	}
	s, err := c.e.readSeriesShared(c.e.ids[c.i])
	if err != nil {
		return nil, err
	}
	c.i++
	return s, nil
}

func (c *scanCursor) Reset() error {
	c.i = 0
	c.closed = false
	return nil
}

func (c *scanCursor) Close() error {
	c.closed = true
	return nil
}

// SizeHint is exact: the B+tree knows every household.
func (c *scanCursor) SizeHint() (int, bool) { return len(c.e.ids), true }

// rangeCursor is one partition of the heap: the households whose rank in
// the sorted ID list falls into [lo, hi). Tuples are bulk-loaded in
// ascending household order, so a contiguous ID range is a contiguous
// heap-page range — partition cursors mostly touch disjoint pages and
// contend only on the shared buffer pool latch.
type rangeCursor struct {
	e      *Engine
	ctx    context.Context
	lo, hi int
	i      int
	closed bool
}

func (c *rangeCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *rangeCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.lo+c.i >= c.hi {
		return nil, io.EOF
	}
	s, err := c.e.readSeriesShared(c.e.ids[c.lo+c.i])
	if err != nil {
		return nil, err
	}
	c.i++
	return s, nil
}

func (c *rangeCursor) Reset() error {
	c.i = 0
	c.closed = false
	return nil
}

func (c *rangeCursor) Close() error {
	c.closed = true
	return nil
}

func (c *rangeCursor) SizeHint() (int, bool) { return c.hi - c.lo, true }
