package rowstore

import (
	"io"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// scanCursor extracts one consumer per Next with an index scan through
// the buffer pool — the engine's native cold path. The pool is
// single-threaded (one database connection per worker in the paper), so
// extraction stays serial here; the pipeline fans out only the compute
// stage.
type scanCursor struct {
	e      *Engine
	i      int
	closed bool
}

func (c *scanCursor) Next() (*timeseries.Series, error) {
	if c.closed || c.i >= len(c.e.ids) {
		return nil, io.EOF
	}
	s, temp, err := c.e.table.readSeries(c.e.ids[c.i])
	if err != nil {
		return nil, err
	}
	if c.e.temp == nil {
		c.e.temp = temp
	}
	c.i++
	return s, nil
}

func (c *scanCursor) Reset() error {
	c.i = 0
	c.closed = false
	return nil
}

func (c *scanCursor) Close() error {
	c.closed = true
	return nil
}

// SizeHint is exact: the B+tree knows every household.
func (c *scanCursor) SizeHint() (int, bool) { return len(c.e.ids), true }
