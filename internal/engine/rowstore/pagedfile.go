// Package rowstore implements the benchmark's PostgreSQL/MADLib
// analogue: a disk-based row-store with slotted heap pages, an LRU
// buffer pool, a B+tree index on the household ID, and in-database
// analytics executed against the stored tuples.
//
// It reproduces the row-store traits the paper measures:
//
//   - bulk CSV loading is the slowest of the single-node systems
//     (Figure 4): every reading becomes a slotted tuple behind a buffer
//     pool, and the index is built per row;
//   - extracting one consumer's series costs an index scan plus
//     tuple-at-a-time decoding (the MADLib overhead visible in Figure 7);
//   - the alternative array layout — one row per consumer with all
//     readings in an array column (Figure 9's Table 2) — removes most of
//     that overhead, which §5.3.3 measures as a 1.4-1.7x speedup.
package rowstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// PageSize is the fixed page size (8 KiB, PostgreSQL's default).
const PageSize = 8192

// PageID identifies a page within a paged file.
type PageID uint32

// InvalidPage is the sentinel for "no page".
const InvalidPage = PageID(0xFFFFFFFF)

// pagedFile is a file composed of fixed-size pages.
type pagedFile struct {
	f      *os.File
	nPages PageID
}

func openPagedFile(path string) (*pagedFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rowstore: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("rowstore: stat %s: %w", path, err)
	}
	if fi.Size()%PageSize != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("rowstore: %s size %d is not page aligned", path, fi.Size())
	}
	return &pagedFile{f: f, nPages: PageID(fi.Size() / PageSize)}, nil
}

// allocate appends a zeroed page and returns its ID.
func (pf *pagedFile) allocate() (PageID, error) {
	id := pf.nPages
	var zero [PageSize]byte
	if _, err := pf.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("rowstore: allocate page %d: %w", id, err)
	}
	pf.nPages++
	return id, nil
}

func (pf *pagedFile) read(id PageID, buf []byte) error {
	if id >= pf.nPages {
		return fmt.Errorf("rowstore: read past end: page %d of %d", id, pf.nPages)
	}
	if _, err := pf.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("rowstore: read page %d: %w", id, err)
	}
	return nil
}

func (pf *pagedFile) write(id PageID, buf []byte) error {
	if id >= pf.nPages {
		return fmt.Errorf("rowstore: write past end: page %d of %d", id, pf.nPages)
	}
	if _, err := pf.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("rowstore: write page %d: %w", id, err)
	}
	return nil
}

func (pf *pagedFile) close() error { return pf.f.Close() }

// sync fsyncs the underlying file — the durability point after a bulk
// load or checkpoint flush.
func (pf *pagedFile) sync() error {
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("rowstore: sync table file: %w", err)
	}
	return nil
}

// sizeBytes returns the current file size.
func (pf *pagedFile) sizeBytes() int64 { return int64(pf.nPages) * PageSize }

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
	// LRU chain.
	prev, next *frame
}

// bufferPool caches pages of one pagedFile with LRU replacement.
// It is not safe for concurrent use; the engine serializes access.
type bufferPool struct {
	pf     *pagedFile
	frames map[PageID]*frame
	cap    int
	// noSteal forbids evicting dirty frames (the pool grows past cap
	// instead). With the write-ahead log armed, the table file may only
	// change at a checkpoint: an evicted dirty page would overwrite
	// checkpointed state in place, and a crash mid-write would leave a
	// torn page the log cannot repair.
	noSteal bool
	// lruHead is the most recently used frame; lruTail the least.
	lruHead, lruTail *frame
	// Misses and Hits count page lookups for diagnostics.
	Misses, Hits int64
}

// errPoolFull is returned when every frame is pinned.
var errPoolFull = errors.New("rowstore: buffer pool exhausted (all pages pinned)")

func newBufferPool(pf *pagedFile, capacity int) *bufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &bufferPool{pf: pf, frames: make(map[PageID]*frame, capacity), cap: capacity}
}

func (bp *bufferPool) lruRemove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if bp.lruHead == fr {
		bp.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if bp.lruTail == fr {
		bp.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (bp *bufferPool) lruPushFront(fr *frame) {
	fr.prev, fr.next = nil, bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = fr
	}
	bp.lruHead = fr
	if bp.lruTail == nil {
		bp.lruTail = fr
	}
}

// fetch pins a page and returns its frame. The caller must unpin it.
func (bp *bufferPool) fetch(id PageID) (*frame, error) {
	if fr, ok := bp.frames[id]; ok {
		bp.Hits++
		fr.pins++
		bp.lruRemove(fr)
		bp.lruPushFront(fr)
		return fr, nil
	}
	bp.Misses++
	fr, err := bp.victim()
	if err != nil {
		return nil, err
	}
	if err := bp.pf.read(id, fr.data[:]); err != nil {
		// Return the frame to the pool unused.
		bp.lruPushFront(fr)
		bp.frames[fr.id] = fr
		return nil, err
	}
	fr.id = id
	fr.dirty = false
	fr.pins = 1
	bp.frames[id] = fr
	bp.lruPushFront(fr)
	return fr, nil
}

// allocate creates a new page and returns its pinned frame.
func (bp *bufferPool) allocate() (*frame, error) {
	id, err := bp.pf.allocate()
	if err != nil {
		return nil, err
	}
	fr, err := bp.victim()
	if err != nil {
		return nil, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.id = id
	fr.dirty = true
	fr.pins = 1
	bp.frames[id] = fr
	bp.lruPushFront(fr)
	return fr, nil
}

// victim returns an empty frame, evicting the least recently used
// unpinned page if the pool is at capacity. The returned frame is
// detached from the map and LRU list.
func (bp *bufferPool) victim() (*frame, error) {
	if len(bp.frames) < bp.cap {
		return &frame{}, nil
	}
	for fr := bp.lruTail; fr != nil; fr = fr.prev {
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if bp.noSteal {
				continue
			}
			if err := bp.pf.write(fr.id, fr.data[:]); err != nil {
				return nil, err
			}
		}
		bp.lruRemove(fr)
		delete(bp.frames, fr.id)
		return fr, nil
	}
	if bp.noSteal {
		// Every unpinned frame is dirty: grow past cap and let the next
		// checkpoint clean the pool back down.
		return &frame{}, nil
	}
	return nil, errPoolFull
}

func (bp *bufferPool) unpin(fr *frame, dirty bool) {
	if dirty {
		fr.dirty = true
	}
	if fr.pins > 0 {
		fr.pins--
	}
}

// flush writes back every dirty page.
func (bp *bufferPool) flush() error {
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.pf.write(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// reset drops all cached frames (after flushing), returning the pool to
// a cold state.
func (bp *bufferPool) reset() error {
	if err := bp.flush(); err != nil {
		return err
	}
	bp.frames = make(map[PageID]*frame, bp.cap)
	bp.lruHead, bp.lruTail = nil, nil
	return nil
}

// u16 / u32 / u64 helpers for page encoding.
func putU16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:], v) }
func getU16(b []byte, off int) uint16    { return binary.LittleEndian.Uint16(b[off:]) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off:]) }
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off:]) }
