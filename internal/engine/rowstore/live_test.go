package rowstore

import (
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func liveVal(id timeseries.ID, hour int) float64 {
	return float64(id)*1000 + float64(hour) + 0.25
}

func liveTemp(hour int) float64 { return 10 + 0.5*float64(hour) }

func hourBatch(ids []timeseries.ID, hour int) []core.Reading {
	batch := make([]core.Reading, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, core.Reading{
			ID: id, Hour: hour,
			Consumption: liveVal(id, hour),
			Temperature: liveTemp(hour),
		})
	}
	return batch
}

func drainSnap(t *testing.T, cur core.Cursor) map[timeseries.ID][]float64 {
	t.Helper()
	out := make(map[timeseries.ID][]float64)
	var prev timeseries.ID
	for {
		s, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.ID <= prev {
			t.Fatalf("cursor order: %d after %d", s.ID, prev)
		}
		prev = s.ID
		out[s.ID] = s.Readings
	}
	return out
}

func TestLiveAppendSnapshot(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 4, 2)
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			baseN := len(ds.Temperature.Values)
			var ids []timeseries.ID
			base := make(map[timeseries.ID][]float64)
			for _, s := range ds.Series {
				ids = append(ids, s.ID)
				got, _, err := e.table.readSeries(s.ID)
				if err != nil {
					t.Fatal(err)
				}
				base[s.ID] = got.Readings
			}
			const extra = 48
			for h := baseN; h < baseN+extra; h++ {
				if err := e.Append(hourBatch(ids, h)); err != nil {
					t.Fatal(err)
				}
			}
			// The base view stays frozen at the published series length.
			for _, id := range ids {
				s, _, err := e.table.readSeries(id)
				if err != nil {
					t.Fatal(err)
				}
				if len(s.Readings) != baseN {
					t.Fatalf("base view of %d grew to %d hours", id, len(s.Readings))
				}
			}
			cur, ep, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			if ep != extra {
				t.Errorf("epoch = %d, want %d", ep, extra)
			}
			rows := drainSnap(t, cur)
			for _, id := range ids {
				got := rows[id]
				if len(got) != baseN+extra {
					t.Fatalf("household %d: %d hours, want %d", id, len(got), baseN+extra)
				}
				for h := 0; h < baseN; h++ {
					if got[h] != base[id][h] {
						t.Fatalf("household %d hour %d: base reading changed", id, h)
					}
				}
				for h := baseN; h < baseN+extra; h++ {
					if got[h] != liveVal(id, h) {
						t.Fatalf("household %d hour %d: %v, want %v", id, h, got[h], liveVal(id, h))
					}
				}
			}
			temp := cur.(core.SnapshotTemperature).SnapshotTemp()
			if len(temp.Values) != baseN+extra {
				t.Fatalf("temperature covers %d hours, want %d", len(temp.Values), baseN+extra)
			}
			for h := baseN; h < baseN+extra; h++ {
				if temp.Values[h] != liveTemp(h) {
					t.Fatalf("temperature hour %d: %v, want %v", h, temp.Values[h], liveTemp(h))
				}
			}
			// The bulk path must refuse to mix with live tuples.
			if err := e.AppendDelta(&timeseries.Dataset{}); err == nil || !strings.Contains(err.Error(), "live tuples") {
				t.Errorf("AppendDelta with live tuples: err = %v", err)
			}
		})
	}
}

func TestLiveSnapshotIsolation(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 3, 1)
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			baseN := len(ds.Temperature.Values)
			var ids []timeseries.ID
			for _, s := range ds.Series {
				ids = append(ids, s.ID)
			}
			for h := baseN; h < baseN+24; h++ {
				if err := e.Append(hourBatch(ids, h)); err != nil {
					t.Fatal(err)
				}
			}
			cur, ep, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			for h := baseN + 24; h < baseN+48; h++ {
				if err := e.Append(hourBatch(ids, h)); err != nil {
					t.Fatal(err)
				}
			}
			for pass := 0; pass < 2; pass++ {
				for id, row := range drainSnap(t, cur) {
					if len(row) != baseN+24 {
						t.Fatalf("pass %d: household %d has %d hours inside an epoch-%d snapshot, want %d",
							pass, id, len(row), ep, baseN+24)
					}
				}
				if err := cur.Reset(); err != nil {
					t.Fatal(err)
				}
			}
			cur2, ep2, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur2.Close()
			if ep2 != ep+24 {
				t.Errorf("second epoch = %d, want %d", ep2, ep+24)
			}
			for id, row := range drainSnap(t, cur2) {
				if len(row) != baseN+48 {
					t.Fatalf("household %d: fresh snapshot has %d hours, want %d", id, len(row), baseN+48)
				}
			}
		})
	}
}

func TestLiveDuplicateGapAndNewHousehold(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 2, 1)
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			baseN := len(ds.Temperature.Values)
			var ids []timeseries.ID
			for _, s := range ds.Series {
				ids = append(ids, s.ID)
			}
			var day []core.Reading
			for h := baseN; h < baseN+24; h++ {
				day = append(day, hourBatch(ids, h)...)
			}
			if err := e.Append(day); err != nil {
				t.Fatal(err)
			}
			// Redelivery is an idempotent no-op.
			if err := e.Append(day); err != nil {
				t.Fatalf("redelivery: %v", err)
			}
			// A brand-new household starts at hour 0 and rides the same
			// temperature column.
			nb := []core.Reading{
				{ID: 9999, Hour: 0, Consumption: liveVal(9999, 0), Temperature: liveTemp(0)},
				{ID: 9999, Hour: 1, Consumption: liveVal(9999, 1), Temperature: liveTemp(1)},
			}
			if err := e.Append(nb); err != nil {
				t.Fatal(err)
			}
			cur, _, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			rows := drainSnap(t, cur)
			if len(rows) != len(ids)+1 {
				t.Fatalf("snapshot has %d households, want %d", len(rows), len(ids)+1)
			}
			for _, id := range ids {
				if len(rows[id]) != baseN+24 {
					t.Fatalf("household %d: %d hours, want %d (redelivery must not double-apply)",
						id, len(rows[id]), baseN+24)
				}
			}
			if got := rows[9999]; len(got) != 2 || got[0] != liveVal(9999, 0) || got[1] != liveVal(9999, 1) {
				t.Fatalf("new household: %v", got)
			}
			// Errors: gap, negative hour, bad id.
			if err := e.Append([]core.Reading{{ID: ids[0], Hour: baseN + 30}}); err == nil || !strings.Contains(err.Error(), "gap") {
				t.Errorf("gap: err = %v", err)
			}
			if err := e.Append([]core.Reading{{ID: ids[0], Hour: -2}}); err == nil {
				t.Error("negative hour: want error")
			}
			if err := e.Append([]core.Reading{{ID: 0, Hour: 0}}); err == nil {
				t.Error("zero household id: want error")
			}
		})
	}
}

func TestLiveDurableAcrossReopen(t *testing.T) {
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			src, ds := writeSource(t, 3, 2)
			dir := t.TempDir()
			e1 := New(dir, WithLayout(layout))
			if _, err := e1.Load(src); err != nil {
				t.Fatal(err)
			}
			baseN := len(ds.Temperature.Values)
			var ids []timeseries.ID
			for _, s := range ds.Series {
				ids = append(ids, s.ID)
			}
			for h := baseN; h < baseN+24; h++ {
				if err := e1.Append(hourBatch(ids, h)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}
			// Live tuples are ordinary pages: a reopened engine recovers
			// them from the index even though seriesLen never advanced.
			e2 := New(dir)
			if err := e2.Open(); err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			cur, ep, err := e2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			if ep != 0 {
				t.Errorf("epoch after reopen = %d, want 0", ep)
			}
			for _, id := range ids {
				row := drainSnap(t, cur)[id]
				if len(row) != baseN+24 {
					t.Fatalf("household %d: %d hours after reopen, want %d", id, len(row), baseN+24)
				}
				if row[baseN] != liveVal(id, baseN) {
					t.Fatalf("household %d: recovered tail mismatch", id)
				}
				if err := cur.Reset(); err != nil {
					t.Fatal(err)
				}
			}
			temp := cur.(core.SnapshotTemperature).SnapshotTemp()
			if len(temp.Values) != baseN+24 {
				t.Errorf("recovered temperature covers %d hours, want %d", len(temp.Values), baseN+24)
			}
		})
	}
}

func TestLiveAppendWithoutLoad(t *testing.T) {
	e := New(t.TempDir())
	if err := e.Append(hourBatch([]timeseries.ID{1}, 0)); !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("append without load: err = %v", err)
	}
	if _, _, err := e.Snapshot(); !errors.Is(err, core.ErrNotLoaded) {
		t.Errorf("snapshot without load: err = %v", err)
	}
}
