package rowstore

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
	"github.com/smartmeter/smartbench/internal/wal"
)

// Live ingestion (core.Appender). New readings become ordinary tuple
// inserts through the same heap/B+tree machinery as the bulk loader —
// page append behind the buffer-pool latch. The whole batch is applied
// while holding readMu, the engine's single extraction latch, which
// makes writers serial (deliberately contrasting colstore's sharded
// tail: this engine models connections contending on a shared buffer
// pool) and makes batches atomic with respect to snapshots and
// readers for free.
//
// Visibility. table.seriesLen is the published base length: NewCursor,
// Run and Warm keep reading exactly the seriesLen prefix, so the base
// view is stable while ingestion runs. Snapshot captures the
// per-household live lengths and serves the full committed state
// through truncating prefix reads (readSeriesUpTo), so a snapshot at
// epoch E never observes a batch committed after E.
//
// Durability. Live tuples are real pages: every Append rewrites the
// meta page, and the buffer pool flushes on Close/Release, so a
// reopened engine rebuilds its live lengths from the index (ensureLive
// scans lazily — the cold-start path pays nothing until the first
// Append or Snapshot). That baseline loses whatever a crash catches in
// the pool; WithWAL closes the hole: the batch is framed into a
// single-shard write-ahead log before Append acks — the whole batch,
// duplicates included, because a batch applied in memory whose log
// write failed must re-log entirely on retry or the retry's ack would
// promise durability the log cannot deliver — the pool switches to
// no-steal so the table file only changes at checkpoints, and reopen
// replays the log through applyBatch, which skips duplicates exactly
// like live delivery. See durable.go for the checkpoint protocol.

// liveState tracks per-household committed lengths beyond the
// published seriesLen. Guarded by Engine.readMu.
type liveState struct {
	epoch    uint64
	appended int64                    // tuples inserted through live Append this session
	lens     map[timeseries.ID]int    // household -> total committed hours
	seqs     map[timeseries.ID]uint64 // next index sequence (LayoutArrays chunk seq)
	ids      []timeseries.ID          // ascending, base + live-only households
	temp     []float64                // full temperature column incl. live hours
}

// ensureLive lazily builds the live state from the index. Callers hold
// readMu.
func (e *Engine) ensureLive() (*liveState, error) {
	if e.live != nil {
		return e.live, nil
	}
	ls := &liveState{
		lens: make(map[timeseries.ID]int, len(e.ids)),
		seqs: make(map[timeseries.ID]uint64, len(e.ids)),
		ids:  append([]timeseries.ID(nil), e.ids...),
	}
	maxLen := 0
	var maxID timeseries.ID
	for _, id := range e.ids {
		n, seq, err := e.committedLen(id)
		if err != nil {
			return nil, err
		}
		ls.lens[id] = n
		ls.seqs[id] = seq
		if n > maxLen {
			maxLen, maxID = n, id
		}
	}
	if maxLen > 0 {
		// The longest household's tuples carry the full temperature
		// column (every committed hour appears in at least that one).
		_, temp, err := e.table.readSeriesInto(maxID, maxLen)
		if err != nil {
			return nil, err
		}
		ls.temp = temp
	}
	if e.walOn && e.wlog == nil {
		// First touch after open: replay whatever the log holds on top
		// of the checkpointed base. Batches apply through the same
		// duplicate-skipping path as live delivery, so a log that
		// overlaps the base (clean shutdown mid-ingest) is harmless.
		lg, err := wal.Open(wal.Options{
			Dir:    e.walDir(),
			Shards: 1,
			Policy: e.walPolicy,
			FS:     e.walFS,
		})
		if err != nil {
			return nil, fmt.Errorf("rowstore: %w", err)
		}
		replayed := false
		if err := lg.Replay(func(shard int, batch []core.Reading) error {
			replayed = true
			return e.applyBatch(ls, batch)
		}); err != nil {
			_ = lg.Close()
			return nil, fmt.Errorf("rowstore: wal replay: %w", err)
		}
		e.wlog = lg
		if replayed {
			tb := e.table
			if err := writeMeta(e.bp, metaPage{
				layout:    tb.layout,
				heapFirst: tb.heap.first,
				heapLast:  tb.heap.last,
				tuples:    tb.heap.tuples,
				root:      tb.index.root,
				height:    tb.index.height,
				seriesLen: tb.seriesLen,
				consumers: tb.consumers,
			}); err != nil {
				return nil, err
			}
		}
	}
	e.live = ls
	return ls, nil
}

// committedLen scans one household's index range for its total
// committed hours (live tuples included) and next sequence number.
func (e *Engine) committedLen(id timeseries.ID) (hours int, nextSeq uint64, err error) {
	var lastK key
	var lastT TID
	found := false
	err = e.table.index.scanRange(key{ID: uint64(id)}, key{ID: uint64(id) + 1}, func(k key, v TID) error {
		lastK, lastT, found = k, v, true
		return nil
	})
	if err != nil || !found {
		return 0, 0, err
	}
	switch e.table.layout {
	case LayoutRows:
		return int(lastK.Seq) + 1, lastK.Seq + 1, nil
	case LayoutArrays:
		t, err := e.table.heap.get(lastT)
		if err != nil {
			return 0, 0, err
		}
		start, count, err := chunkBounds(t)
		if err != nil {
			return 0, 0, err
		}
		return start + count, lastK.Seq + 1, nil
	default:
		return 0, 0, fmt.Errorf("rowstore: unknown layout %v", e.table.layout)
	}
}

// Append implements core.Appender. The batch is applied under readMu —
// serial writers, atomic batches — with redelivered hours skipped, so
// a retried batch applies exactly once. The meta page is rewritten per
// batch for durability.
func (e *Engine) Append(batch []core.Reading) error {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	if e.table == nil {
		return fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	ls, err := e.ensureLive()
	if err != nil {
		return err
	}
	if err := e.applyBatch(ls, batch); err != nil {
		return err
	}
	if e.wlog != nil && len(batch) > 0 {
		// Log the batch verbatim before acking. A failed write or sync
		// surfaces here and the ack never happens; the producer's retry
		// re-applies (duplicates skip) and re-logs the whole batch.
		seq, err := e.wlog.Append(0, batch)
		if err != nil {
			return fmt.Errorf("rowstore: %w", err)
		}
		if err := e.wlog.Commit(0, seq); err != nil {
			return fmt.Errorf("rowstore: %w", err)
		}
	}
	if e.tailBudget > 0 && ls.appended-e.ckptAppended >= e.tailBudget {
		e.triggerCheckpoint()
	}
	ls.epoch++
	tb := e.table
	return writeMeta(e.bp, metaPage{
		layout:    tb.layout,
		heapFirst: tb.heap.first,
		heapLast:  tb.heap.last,
		tuples:    tb.heap.tuples,
		root:      tb.index.root,
		height:    tb.index.height,
		seriesLen: tb.seriesLen,
		consumers: tb.consumers,
	})
}

// applyBatch inserts the batch's fresh readings. LayoutArrays
// coalesces each maximal contiguous same-household run into chunk
// tuples, so chunks never span a batch — the invariant the truncating
// prefix reads rely on. Household lengths advance only once tuples are
// actually inserted, so an aborted batch leaves a retryable state.
func (e *Engine) applyBatch(ls *liveState, batch []core.Reading) error {
	tb := e.table
	var buf []byte
	var runID timeseries.ID
	var runStart int
	var runCons, runTemps []float64
	flushRun := func() error {
		if len(runCons) == 0 {
			return nil
		}
		seq := ls.seqs[runID]
		if err := tb.insertChunks(runID, seq, runStart, runCons, runTemps); err != nil {
			return err
		}
		ls.seqs[runID] = seq + uint64((len(runCons)+chunkHours-1)/chunkHours)
		ls.lens[runID] = runStart + len(runCons)
		ls.appended += int64(len(runCons))
		runCons, runTemps = runCons[:0], runTemps[:0]
		return nil
	}
	for i := range batch {
		r := &batch[i]
		if r.Hour < 0 {
			return fmt.Errorf("rowstore: negative hour %d for household %d", r.Hour, r.ID)
		}
		expected, known := ls.lens[r.ID]
		if !known {
			if r.ID <= 0 {
				return fmt.Errorf("rowstore: household id must be positive, got %d", r.ID)
			}
			expected = 0
		}
		if tb.layout == LayoutArrays && r.ID == runID && len(runCons) > 0 {
			// The pending run extends this household past its flushed
			// length.
			if end := runStart + len(runCons); end > expected {
				expected = end
			}
		}
		if r.Hour < expected {
			continue // duplicate redelivery: already committed
		}
		if r.Hour > expected {
			return fmt.Errorf("rowstore: household %d: gap at hour %d, expected %d", r.ID, r.Hour, expected)
		}
		if !known {
			// First reading of a new household: register it in the
			// ascending ID list (base households were pre-registered).
			pos := sort.Search(len(ls.ids), func(j int) bool { return ls.ids[j] >= r.ID })
			ls.ids = append(ls.ids, 0)
			copy(ls.ids[pos+1:], ls.ids[pos:])
			ls.ids[pos] = r.ID
			ls.lens[r.ID] = 0
		}
		switch {
		case r.Hour == len(ls.temp):
			ls.temp = append(ls.temp, r.Temperature)
		case r.Hour > len(ls.temp):
			return fmt.Errorf("rowstore: temperature gap: reading at hour %d, column covers %d", r.Hour, len(ls.temp))
		}
		switch tb.layout {
		case LayoutRows:
			buf = encodeRowTuple(buf, r.ID, r.Hour, r.Temperature, r.Consumption)
			tid, err := tb.heap.insert(buf)
			if err != nil {
				return err
			}
			if err := tb.index.insert(key{ID: uint64(r.ID), Seq: uint64(r.Hour)}, tid); err != nil {
				return err
			}
			ls.lens[r.ID] = r.Hour + 1
			ls.appended++
		case LayoutArrays:
			if r.ID != runID || len(runCons) == 0 || r.Hour != runStart+len(runCons) {
				if err := flushRun(); err != nil {
					return err
				}
				runID, runStart = r.ID, r.Hour
			}
			runCons = append(runCons, r.Consumption)
			runTemps = append(runTemps, r.Temperature)
		default:
			return fmt.Errorf("rowstore: unknown layout %v", tb.layout)
		}
	}
	return flushRun()
}

// Snapshot implements core.Appender: a read-isolated cursor over the
// full committed state — published base plus live tuples — in
// ascending household-ID order, with the epoch it was taken at. The
// cursor re-reads tuples through the shared latch per Next, truncated
// to the lengths captured here, so later appends are invisible to it.
func (e *Engine) Snapshot() (core.Cursor, core.Epoch, error) {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	if e.table == nil {
		return nil, 0, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	ls, err := e.ensureLive()
	if err != nil {
		return nil, 0, err
	}
	lens := make(map[timeseries.ID]int, len(ls.lens))
	for id, n := range ls.lens {
		lens[id] = n
	}
	return &rowSnapCursor{
		e:    e,
		ids:  append([]timeseries.ID(nil), ls.ids...),
		lens: lens,
		temp: append([]float64(nil), ls.temp...),
	}, core.Epoch(ls.epoch), nil
}

var _ core.Appender = (*Engine)(nil)

// rowSnapCursor serves one captured-length prefix read per Next.
type rowSnapCursor struct {
	e      *Engine
	ids    []timeseries.ID
	lens   map[timeseries.ID]int
	temp   []float64
	ctx    context.Context
	i      int
	closed bool
}

func (c *rowSnapCursor) BindContext(ctx context.Context) { c.ctx = ctx }

func (c *rowSnapCursor) Next() (*timeseries.Series, error) {
	if err := core.CtxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.closed || c.i >= len(c.ids) {
		return nil, io.EOF
	}
	id := c.ids[c.i]
	c.e.readMu.Lock()
	if c.e.table == nil {
		c.e.readMu.Unlock()
		return nil, fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	s, err := c.e.table.readSeriesUpTo(id, c.lens[id])
	c.e.readMu.Unlock()
	if err != nil {
		return nil, err
	}
	c.i++
	return s, nil
}

func (c *rowSnapCursor) Reset() error {
	c.i = 0
	c.closed = false
	return nil
}

func (c *rowSnapCursor) Close() error {
	c.closed = true
	return nil
}

func (c *rowSnapCursor) SizeHint() (int, bool) { return len(c.ids), true }

// SnapshotTemp implements core.SnapshotTemperature.
func (c *rowSnapCursor) SnapshotTemp() *timeseries.Temperature {
	return &timeseries.Temperature{Values: c.temp}
}
