package rowstore

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func testPool(t *testing.T, pages int) *bufferPool {
	t.Helper()
	pf, err := openPagedFile(filepath.Join(t.TempDir(), "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.close() })
	return newBufferPool(pf, pages)
}

func TestBTreeInsertAndGet(t *testing.T) {
	bp := testPool(t, 64)
	bt, err := newBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := key{ID: uint64(i % 10), Seq: uint64(i / 10)}
		if err := bt.insert(k, TID{Page: PageID(i), Slot: uint16(i)}); err != nil {
			t.Fatalf("insert %v: %v", k, err)
		}
	}
	for i := 0; i < 1000; i++ {
		k := key{ID: uint64(i % 10), Seq: uint64(i / 10)}
		v, ok, err := bt.get(k)
		if err != nil || !ok {
			t.Fatalf("get %v: ok=%v err=%v", k, ok, err)
		}
		if v.Page != PageID(i) || v.Slot != uint16(i) {
			t.Fatalf("get %v = %+v", k, v)
		}
	}
	if _, ok, _ := bt.get(key{ID: 99, Seq: 0}); ok {
		t.Error("found missing key")
	}
}

func TestBTreeDuplicateRejected(t *testing.T) {
	bp := testPool(t, 16)
	bt, err := newBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	k := key{ID: 1, Seq: 1}
	if err := bt.insert(k, TID{}); err != nil {
		t.Fatal(err)
	}
	if err := bt.insert(k, TID{}); err == nil {
		t.Error("duplicate insert: want error")
	}
}

func TestBTreeSplitsWithManyKeys(t *testing.T) {
	bp := testPool(t, 256)
	bt, err := newBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Enough keys to force multiple leaf splits and at least one internal
	// split (leafCap = 341).
	const n = 50000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := bt.insert(key{ID: uint64(i), Seq: 0}, TID{Page: PageID(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if bt.height < 2 {
		t.Errorf("height = %d, expected splits", bt.height)
	}
	// Full scan must return all keys in sorted order.
	var prev key
	count := 0
	err = bt.scanRange(key{}, key{ID: ^uint64(0), Seq: ^uint64(0)}, func(k key, v TID) error {
		if count > 0 && !prev.less(k) {
			t.Fatalf("out of order: %v then %v", prev, k)
		}
		if v.Page != PageID(k.ID) {
			t.Fatalf("key %v maps to %v", k, v)
		}
		prev = k
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d keys, want %d", count, n)
	}
}

func TestBTreeRangeScan(t *testing.T) {
	bp := testPool(t, 64)
	bt, err := newBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 5; id++ {
		for seq := uint64(0); seq < 100; seq++ {
			if err := bt.insert(key{ID: id, Seq: seq}, TID{Page: PageID(id), Slot: uint16(seq)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Scan only household 3.
	var got []uint64
	err = bt.scanRange(key{ID: 3}, key{ID: 4}, func(k key, v TID) error {
		if k.ID != 3 {
			t.Fatalf("leaked key %v", k)
		}
		got = append(got, k.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, s)
		}
	}
	// Empty range.
	count := 0
	bt.scanRange(key{ID: 9}, key{ID: 10}, func(key, TID) error { count++; return nil })
	if count != 0 {
		t.Errorf("empty range returned %d", count)
	}
}

func TestBTreeScanEarlyStop(t *testing.T) {
	bp := testPool(t, 16)
	bt, _ := newBTree(bp)
	for i := 0; i < 10; i++ {
		bt.insert(key{ID: uint64(i)}, TID{})
	}
	count := 0
	err := bt.scanRange(key{}, key{ID: ^uint64(0)}, func(key, TID) error {
		count++
		if count == 3 {
			return errStopScan
		}
		return nil
	})
	if err != errStopScan || count != 3 {
		t.Errorf("early stop: count=%d err=%v", count, err)
	}
}

func TestBTreeSurvivesPoolPressure(t *testing.T) {
	// A tiny pool forces constant eviction and re-reads from disk.
	bp := testPool(t, 4)
	bt, err := newBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := bt.insert(key{ID: uint64(i)}, TID{Page: PageID(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	count := 0
	err = bt.scanRange(key{}, key{ID: ^uint64(0)}, func(k key, v TID) error {
		if v.Page != PageID(k.ID) {
			t.Fatalf("key %v -> %v", k, v)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("count = %d", count)
	}
	if bp.Misses == 0 {
		t.Error("expected pool misses under pressure")
	}
}

func TestOpenBTreeReattach(t *testing.T) {
	bp := testPool(t, 32)
	bt, _ := newBTree(bp)
	for i := 0; i < 2000; i++ {
		bt.insert(key{ID: uint64(i)}, TID{Page: PageID(i)})
	}
	re := openBTree(bp, bt.root, bt.height)
	v, ok, err := re.get(key{ID: 1234})
	if err != nil || !ok || v.Page != 1234 {
		t.Errorf("reattached get = %+v ok=%v err=%v", v, ok, err)
	}
}
