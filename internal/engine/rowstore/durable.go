package rowstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/smartmeter/smartbench/internal/core"
)

// Crash-safe ingestion for the row store. The engine pairs a no-steal
// buffer pool with a single-shard write-ahead log (internal/wal): the
// table file on disk only ever holds the last checkpoint, every acked
// Append is framed into the log first, and recovery is "open the
// checkpointed file, replay the log through the idempotent append
// path". A checkpoint is a copy-on-write rewrite — stream every page
// (dirty frames from the pool, the rest from the file) into a temp
// file, fsync, rename over the table, fsync the directory, then
// truncate the log — so a crash at any point leaves either the old
// file with its full log or the new file with an empty one, never a
// torn mix.

// walDir is where the engine's write-ahead log lives.
func (e *Engine) walDir() string { return filepath.Join(e.dir, "wal") }

// syncDir fsyncs a directory so a rename into it survives a power
// failure — the second half of the temp-file-then-rename protocol.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("rowstore: sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("rowstore: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("rowstore: sync dir: %w", err)
	}
	return nil
}

// Checkpoint folds every page dirtied since the last checkpoint into
// the table file with an atomic rewrite and truncates the write-ahead
// log. Safe to call concurrently with Append/Snapshot: it serializes
// on the engine's extraction latch.
func (e *Engine) Checkpoint() error {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	if e.table == nil {
		return fmt.Errorf("rowstore: %w", core.ErrNotLoaded)
	}
	// ensureLive replays any unreplayed log before we truncate it.
	if _, err := e.ensureLive(); err != nil {
		return err
	}
	return e.checkpointLocked()
}

// checkpointLocked is Checkpoint under readMu. The caller must have
// replayed the write-ahead log (ensureLive) if one exists on disk.
func (e *Engine) checkpointLocked() error {
	tb := e.table
	// The meta page must describe the state being checkpointed; Append
	// rewrites it per batch but replayed batches do not.
	if err := writeMeta(e.bp, metaPage{
		layout:    tb.layout,
		heapFirst: tb.heap.first,
		heapLast:  tb.heap.last,
		tuples:    tb.heap.tuples,
		root:      tb.index.root,
		height:    tb.index.height,
		seriesLen: tb.seriesLen,
		consumers: tb.consumers,
	}); err != nil {
		return err
	}
	path := filepath.Join(e.dir, "table.db")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("rowstore: checkpoint: %w", err)
	}
	fail := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	var buf [PageSize]byte
	for id := PageID(0); id < e.pf.nPages; id++ {
		src := buf[:]
		if fr, ok := e.bp.frames[id]; ok {
			src = fr.data[:]
		} else if err := e.pf.read(id, buf[:]); err != nil {
			return fail(err)
		}
		if _, err := f.Write(src); err != nil {
			return fail(fmt.Errorf("rowstore: checkpoint write page %d: %w", id, err))
		}
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("rowstore: checkpoint sync: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("rowstore: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("rowstore: checkpoint rename: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	// Swap the file handle under the pool; cached frames keep their
	// page IDs (the rewrite preserved every offset) and are now clean.
	npf, err := openPagedFile(path)
	if err != nil {
		return err
	}
	old := e.pf
	e.pf = npf
	e.bp.pf = npf
	for _, fr := range e.bp.frames {
		fr.dirty = false
	}
	if e.live != nil {
		e.ckptAppended = e.live.appended
	}
	if err := old.close(); err != nil {
		return err
	}
	// The checkpoint covers everything the log held.
	if e.wlog != nil {
		if err := e.wlog.Rewrite(0, nil); err != nil {
			return fmt.Errorf("rowstore: %w", err)
		}
	}
	return nil
}

// StartCheckpointer runs background checkpointing until ctx is
// cancelled: whenever WithTailBudget readings accumulate past the last
// checkpoint, they are folded into the table file and the log
// truncated. The returned channel closes when the goroutine exits.
// Errors are recorded for CheckpointErr; ingestion keeps running until
// the next trigger retries.
func (e *Engine) StartCheckpointer(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-e.ckptC:
				if err := e.Checkpoint(); err != nil {
					e.ckptErrMu.Lock()
					e.ckptErr = err
					e.ckptErrMu.Unlock()
				}
			}
		}
	}()
	return done
}

// CheckpointErr returns the most recent background-checkpoint failure,
// nil if none.
func (e *Engine) CheckpointErr() error {
	e.ckptErrMu.Lock()
	defer e.ckptErrMu.Unlock()
	return e.ckptErr
}

// triggerCheckpoint signals the checkpointer without blocking; a
// pending signal already covers the crossing.
func (e *Engine) triggerCheckpoint() {
	select {
	case e.ckptC <- struct{}{}:
	default:
	}
}

// Crash simulates a process death for recovery tests: every file
// handle drops with no flush, sync or checkpoint. The engine object is
// dead afterwards — recovery happens by opening a fresh engine over
// the same directory.
func (e *Engine) Crash() {
	if e.wlog != nil {
		e.wlog.Drop()
		e.wlog = nil
	}
	if e.pf != nil {
		_ = e.pf.close()
	}
	e.pf, e.bp, e.table = nil, nil, nil
	e.cache = nil
	e.temp = nil
	e.live = nil
	e.ckptAppended = 0
}
