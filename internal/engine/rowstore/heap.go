package rowstore

import (
	"fmt"
)

// Slotted heap page layout:
//
//	offset 0:  uint16 slot count
//	offset 2:  uint16 free-space start (grows up)
//	offset 4:  uint16 free-space end   (grows down; tuples at the top)
//	offset 6:  uint32 next page id (heap chain), InvalidPage at tail
//	offset 10: slot array, 4 bytes per slot: uint16 offset, uint16 length
//
// Tuples are stored back-to-front from the end of the page.
const (
	heapHeaderSize = 10
	slotSize       = 4
)

// TID addresses one tuple: page plus slot.
type TID struct {
	Page PageID
	Slot uint16
}

func heapInitPage(data []byte) {
	putU16(data, 0, 0)
	putU16(data, 2, heapHeaderSize)
	putU16(data, 4, PageSize)
	putU32(data, 6, uint32(InvalidPage))
}

// heapPageFree returns the usable free bytes (accounting for the slot
// entry a new tuple would need).
func heapPageFree(data []byte) int {
	free := int(getU16(data, 4)) - int(getU16(data, 2))
	free -= slotSize
	if free < 0 {
		return 0
	}
	return free
}

// heapPageInsert places the tuple in the page and returns its slot.
// The caller must have checked heapPageFree.
func heapPageInsert(data []byte, tuple []byte) (uint16, error) {
	n := getU16(data, 0)
	top := getU16(data, 4)
	if int(top)-len(tuple) < int(getU16(data, 2))+slotSize {
		return 0, fmt.Errorf("rowstore: page overflow inserting %d bytes", len(tuple))
	}
	top -= uint16(len(tuple))
	copy(data[top:], tuple)
	slotOff := heapHeaderSize + int(n)*slotSize
	putU16(data, slotOff, top)
	putU16(data, slotOff+2, uint16(len(tuple)))
	putU16(data, 0, n+1)
	putU16(data, 2, uint16(slotOff+slotSize))
	putU16(data, 4, top)
	return n, nil
}

// heapPageTuple returns the bytes of one slot (a view into data).
func heapPageTuple(data []byte, slot uint16) ([]byte, error) {
	n := getU16(data, 0)
	if slot >= n {
		return nil, fmt.Errorf("rowstore: slot %d of %d", slot, n)
	}
	slotOff := heapHeaderSize + int(slot)*slotSize
	off := getU16(data, slotOff)
	length := getU16(data, slotOff+2)
	if int(off)+int(length) > PageSize {
		return nil, fmt.Errorf("rowstore: corrupt slot %d", slot)
	}
	return data[off : int(off)+int(length)], nil
}

func heapPageSlotCount(data []byte) uint16 { return getU16(data, 0) }
func heapPageNext(data []byte) PageID      { return PageID(getU32(data, 6)) }
func heapPageSetNext(data []byte, id PageID) {
	putU32(data, 6, uint32(id))
}

// heapFile is a chain of slotted pages behind a buffer pool.
type heapFile struct {
	bp          *bufferPool
	first, last PageID
	// tuples counts inserted tuples.
	tuples int64
}

// newHeapFile creates an empty heap with one allocated page.
func newHeapFile(bp *bufferPool) (*heapFile, error) {
	fr, err := bp.allocate()
	if err != nil {
		return nil, err
	}
	heapInitPage(fr.data[:])
	bp.unpin(fr, true)
	return &heapFile{bp: bp, first: fr.id, last: fr.id}, nil
}

// openHeapFile re-attaches to an existing heap chain starting at first.
func openHeapFile(bp *bufferPool, first PageID, tuples int64) (*heapFile, error) {
	h := &heapFile{bp: bp, first: first, last: first, tuples: tuples}
	// Walk to the tail so inserts can continue.
	id := first
	for {
		fr, err := bp.fetch(id)
		if err != nil {
			return nil, err
		}
		next := heapPageNext(fr.data[:])
		bp.unpin(fr, false)
		if next == InvalidPage {
			h.last = id
			return h, nil
		}
		id = next
	}
}

// insert appends one tuple and returns its TID.
func (h *heapFile) insert(tuple []byte) (TID, error) {
	if len(tuple) > PageSize-heapHeaderSize-slotSize {
		return TID{}, fmt.Errorf("rowstore: tuple of %d bytes exceeds page capacity", len(tuple))
	}
	fr, err := h.bp.fetch(h.last)
	if err != nil {
		return TID{}, err
	}
	if heapPageFree(fr.data[:]) < len(tuple) {
		// Chain a fresh page.
		nfr, err := h.bp.allocate()
		if err != nil {
			h.bp.unpin(fr, false)
			return TID{}, err
		}
		heapInitPage(nfr.data[:])
		heapPageSetNext(fr.data[:], nfr.id)
		h.bp.unpin(fr, true)
		h.last = nfr.id
		fr = nfr
	}
	slot, err := heapPageInsert(fr.data[:], tuple)
	if err != nil {
		h.bp.unpin(fr, false)
		return TID{}, err
	}
	tid := TID{Page: fr.id, Slot: slot}
	h.bp.unpin(fr, true)
	h.tuples++
	return tid, nil
}

// get copies the tuple at tid into a fresh slice.
func (h *heapFile) get(tid TID) ([]byte, error) {
	fr, err := h.bp.fetch(tid.Page)
	if err != nil {
		return nil, err
	}
	t, err := heapPageTuple(fr.data[:], tid.Slot)
	if err != nil {
		h.bp.unpin(fr, false)
		return nil, err
	}
	out := make([]byte, len(t))
	copy(out, t)
	h.bp.unpin(fr, false)
	return out, nil
}

// scan calls fn for every tuple in heap order. The tuple slice is only
// valid during the callback.
func (h *heapFile) scan(fn func(tid TID, tuple []byte) error) error {
	id := h.first
	for id != InvalidPage {
		fr, err := h.bp.fetch(id)
		if err != nil {
			return err
		}
		n := heapPageSlotCount(fr.data[:])
		for s := uint16(0); s < n; s++ {
			t, err := heapPageTuple(fr.data[:], s)
			if err != nil {
				h.bp.unpin(fr, false)
				return err
			}
			if err := fn(TID{Page: id, Slot: s}, t); err != nil {
				h.bp.unpin(fr, false)
				return err
			}
		}
		next := heapPageNext(fr.data[:])
		h.bp.unpin(fr, false)
		id = next
	}
	return nil
}
