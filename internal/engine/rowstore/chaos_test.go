package rowstore

import (
	"context"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func TestCursorChaos(t *testing.T) {
	src, _ := writeSource(t, 20, 10)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaos(t, func(t *testing.T) core.Cursor {
		cur, err := e.NewCursor()
		if err != nil {
			t.Fatal(err)
		}
		return cur
	})
}

func TestPartitionChaos(t *testing.T) {
	src, _ := writeSource(t, 20, 10)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	cursortest.RunChaosPartitioned(t, func(t *testing.T) core.PartitionedSource { return e })
}

func TestPipelineChaos(t *testing.T) {
	src, ds := writeSource(t, 20, 10)
	e := New(t.TempDir())
	defer e.Close()
	if _, err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	ids := make([]timeseries.ID, len(ds.Series))
	for i, s := range ds.Series {
		ids[i] = s.ID
	}
	cursortest.RunPipelineChaos(t, ids, func(ctx context.Context, cfg fault.Config, spec core.Spec) (*core.Results, error) {
		return exec.RunContext(ctx, fault.New(e, cfg), spec)
	})
}

// TestSnapshotIsolationChaos races sharded live writers against
// snapshot readers over a loaded base, for both page layouts. The base
// is seeded with the suite's deterministic values so every snapshot
// can verify the full prefix, base and tail alike.
func TestSnapshotIsolationChaos(t *testing.T) {
	const base = 48
	ids := make([]timeseries.ID, 0, 10)
	ds := &timeseries.Dataset{Temperature: &timeseries.Temperature{}}
	for h := 0; h < base; h++ {
		ds.Temperature.Values = append(ds.Temperature.Values, cursortest.IsolationTemp(h))
	}
	for id := timeseries.ID(1); id <= 10; id++ {
		ids = append(ids, id)
		s := &timeseries.Series{ID: id}
		for h := 0; h < base; h++ {
			s.Readings = append(s.Readings, cursortest.IsolationValue(id, h))
		}
		ds.Series = append(ds.Series, s)
	}
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), ds, meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{LayoutRows, LayoutArrays} {
		t.Run(layout.String(), func(t *testing.T) {
			e := New(t.TempDir(), WithLayout(layout))
			defer e.Close()
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			cursortest.RunSnapshotIsolation(t, e, ids, base, 48)
		})
	}
}
