package dfs

import (
	"errors"
	"testing"
)

func TestKillNodeSurvivesWithReplicas(t *testing.T) {
	fs := testFS(t, 5, WithReplication(3), WithBlockSize(16))
	data := []byte("a,b,c\nd,e,f\ng,h,i\nj,k,l\n")
	if err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	fs.KillNode(0)
	splits, err := fs.Splits([]string{"f"}, true)
	if err != nil {
		t.Fatalf("one dead node with 3 replicas: %v", err)
	}
	for _, s := range splits {
		for _, n := range s.PreferredNodes {
			if n == 0 {
				t.Fatal("dead node still listed as replica")
			}
		}
	}
	// Content is intact through the surviving replicas.
	var all []byte
	for _, s := range splits {
		all = append(all, s.Data()...)
	}
	if string(all) != string(data) {
		t.Error("data corrupted after node loss")
	}
}

func TestAllReplicasLost(t *testing.T) {
	fs := testFS(t, 3, WithReplication(2))
	fs.Write("f", []byte("x\n"))
	fs.KillNode(0)
	fs.KillNode(1)
	fs.KillNode(2)
	_, err := fs.Splits([]string{"f"}, true)
	if !errors.Is(err, ErrBlockLost) {
		t.Errorf("err = %v, want ErrBlockLost", err)
	}
	// Non-splittable path hits the same error.
	_, err = fs.Splits([]string{"f"}, false)
	if !errors.Is(err, ErrBlockLost) {
		t.Errorf("non-splittable err = %v", err)
	}
	// Revival restores access.
	fs.ReviveNode(1)
	if _, err := fs.Splits([]string{"f"}, true); err != nil {
		t.Errorf("after revive: %v", err)
	}
}
