package dfs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/distsim"
)

func testFS(t *testing.T, nodes int, opts ...Option) *FS {
	t.Helper()
	c, err := distsim.New(distsim.Config{
		Nodes: nodes, SlotsPerNode: 2,
		TransferLatency: time.Microsecond, BytesPerSecond: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := testFS(t, 4, WithBlockSize(64))
	data := []byte(strings.Repeat("line-one\nline-two\nline-three\n", 20))
	if err := fs.Write("f.csv", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	sz, err := fs.Size("f.csv")
	if err != nil || sz != int64(len(data)) {
		t.Errorf("size = %d, %v", sz, err)
	}
}

func TestBlocksSplitOnLineBoundaries(t *testing.T) {
	fs := testFS(t, 4, WithBlockSize(10))
	data := []byte("aaaaaaaaaaaaaaaaaa\nbb\ncccccccccccc\n")
	if err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits([]string{"f"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("expected multiple splits, got %d", len(splits))
	}
	for i, s := range splits {
		d := s.Data()
		if len(d) > 0 && d[len(d)-1] != '\n' {
			t.Errorf("split %d does not end on a line boundary: %q", i, d)
		}
	}
	// Concatenation preserves content.
	var all []byte
	for _, s := range splits {
		all = append(all, s.Data()...)
	}
	if !bytes.Equal(all, data) {
		t.Error("splits lost data")
	}
}

func TestNonSplittableFiles(t *testing.T) {
	fs := testFS(t, 4, WithBlockSize(8))
	data := []byte("1,0,1.0\n1,1,2.0\n1,2,3.0\n1,3,4.0\n")
	fs.Write("g1", data)
	fs.Write("g2", data)
	splits, err := fs.Splits([]string{"g1", "g2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("non-splittable: %d splits, want 2", len(splits))
	}
	if !bytes.Equal(splits[0].Data(), data) {
		t.Error("whole-file split mismatch")
	}
	if splits[0].Bytes() != int64(len(data)) {
		t.Errorf("split bytes = %d", splits[0].Bytes())
	}
}

func TestReplication(t *testing.T) {
	fs := testFS(t, 5, WithReplication(3))
	fs.Write("f", []byte("data\n"))
	splits, _ := fs.Splits([]string{"f"}, true)
	if len(splits[0].PreferredNodes) != 3 {
		t.Errorf("replicas = %v", splits[0].PreferredNodes)
	}
	// Replication clamps to node count.
	small := testFS(t, 2, WithReplication(10))
	small.Write("f", []byte("x\n"))
	sp, _ := small.Splits([]string{"f"}, true)
	if len(sp[0].PreferredNodes) != 2 {
		t.Errorf("clamped replicas = %v", sp[0].PreferredNodes)
	}
}

func TestErrorsAndDelete(t *testing.T) {
	fs := testFS(t, 2)
	if err := fs.Write("", []byte("x")); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := fs.Read("missing"); err == nil {
		t.Error("missing read: want error")
	}
	if _, err := fs.Size("missing"); err == nil {
		t.Error("missing size: want error")
	}
	if _, err := fs.Splits([]string{"missing"}, true); err == nil {
		t.Error("missing splits: want error")
	}
	fs.Write("a", []byte("x\n"))
	fs.Write("b", []byte("y\n"))
	if got := fs.List(); len(got) != 2 || got[0] != "a" {
		t.Errorf("list = %v", got)
	}
	fs.Delete("a")
	fs.Delete("a") // idempotent
	if got := fs.List(); len(got) != 1 || got[0] != "b" {
		t.Errorf("after delete: %v", got)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := testFS(t, 2)
	if err := fs.Write("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty read = %q, %v", got, err)
	}
	splits, err := fs.Splits([]string{"empty"}, true)
	if err != nil || len(splits) != 1 {
		t.Errorf("empty splits = %d, %v", len(splits), err)
	}
}

func TestBadOptions(t *testing.T) {
	c, _ := distsim.New(distsim.Config{Nodes: 1, SlotsPerNode: 1, BytesPerSecond: 1})
	if _, err := New(c, WithBlockSize(0)); err == nil {
		t.Error("zero block size: want error")
	}
	if _, err := New(c, WithReplication(0)); err == nil {
		t.Error("zero replication: want error")
	}
}

func TestOverwrite(t *testing.T) {
	fs := testFS(t, 2)
	fs.Write("f", []byte("old\n"))
	fs.Write("f", []byte("new-contents\n"))
	got, _ := fs.Read("f")
	if string(got) != "new-contents\n" {
		t.Errorf("overwrite = %q", got)
	}
}
