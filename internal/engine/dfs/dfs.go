// Package dfs is the benchmark's HDFS analogue: files split into
// fixed-size blocks, each block replicated on a subset of the simulated
// cluster's nodes. The distributed engines read inputs through splits,
// which carry the replica locations so the scheduler can place tasks
// data-locally — and so the paper's third data format can be modelled
// faithfully by marking files non-splittable (isSplitable() == false,
// §5.4.2), forcing each file to be "processed in a self-contained manner
// by a single mapper".
package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/smartmeter/smartbench/internal/distsim"
)

// DefaultBlockSize mirrors HDFS's classic 64 MiB default, scaled down so
// benchmark-sized files still produce multiple blocks.
const DefaultBlockSize = 1 << 20 // 1 MiB

// DefaultReplication is the HDFS default replica count.
const DefaultReplication = 3

// FS is an in-memory distributed file system over a simulated cluster.
// It is safe for concurrent use.
type FS struct {
	mu          sync.RWMutex
	cluster     *distsim.Cluster
	blockSize   int
	replication int
	files       map[string]*file
	nextNode    int
	dead        map[int]bool
}

type file struct {
	name   string
	blocks []Block
	size   int64
}

// Block is one stored chunk of a file.
type Block struct {
	// Index is the block's position within its file.
	Index int
	// Data is the block's contents.
	Data []byte
	// Nodes lists the nodes holding replicas.
	Nodes []int
}

// Option configures the file system.
type Option func(*FS)

// WithBlockSize overrides the block size.
func WithBlockSize(n int) Option { return func(f *FS) { f.blockSize = n } }

// WithReplication overrides the replica count.
func WithReplication(n int) Option { return func(f *FS) { f.replication = n } }

// New creates a file system over the cluster.
func New(cluster *distsim.Cluster, opts ...Option) (*FS, error) {
	fs := &FS{
		cluster:     cluster,
		blockSize:   DefaultBlockSize,
		replication: DefaultReplication,
		files:       make(map[string]*file),
		dead:        make(map[int]bool),
	}
	for _, o := range opts {
		o(fs)
	}
	if fs.blockSize <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", fs.blockSize)
	}
	if fs.replication <= 0 {
		return nil, fmt.Errorf("dfs: replication must be positive, got %d", fs.replication)
	}
	if fs.replication > cluster.Nodes() {
		fs.replication = cluster.Nodes()
	}
	return fs, nil
}

// Write stores data as a new file, splitting into blocks on line
// boundaries (so text records never straddle blocks, like HDFS text
// input splits after record alignment). Overwrites any existing file.
func (fs *FS) Write(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("dfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &file{name: name, size: int64(len(data))}
	for off := 0; off < len(data); {
		end := off + fs.blockSize
		if end >= len(data) {
			end = len(data)
		} else {
			// Extend to the end of the current line.
			for end < len(data) && data[end-1] != '\n' {
				end++
			}
		}
		blk := Block{
			Index: len(f.blocks),
			Data:  append([]byte(nil), data[off:end]...),
			Nodes: fs.placeReplicas(),
		}
		f.blocks = append(f.blocks, blk)
		off = end
	}
	if len(data) == 0 {
		f.blocks = append(f.blocks, Block{Index: 0, Nodes: fs.placeReplicas()})
	}
	fs.files[name] = f
	return nil
}

// placeReplicas picks replica nodes round-robin (caller holds the lock).
func (fs *FS) placeReplicas() []int {
	nodes := make([]int, 0, fs.replication)
	for i := 0; i < fs.replication; i++ {
		nodes = append(nodes, (fs.nextNode+i)%fs.cluster.Nodes())
	}
	fs.nextNode = (fs.nextNode + 1) % fs.cluster.Nodes()
	return nodes
}

// Read returns a file's full contents (driver-side, no transfer cost).
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		out = append(out, b.Data...)
	}
	return out, nil
}

// Delete removes a file. Deleting a missing file is not an error.
func (fs *FS) Delete(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// List returns all file names in sorted order.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns a file's length in bytes.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q not found", name)
	}
	return f.size, nil
}

// Split is one unit of input handed to a map task.
type Split struct {
	// File is the source file name.
	File string
	// Blocks holds the split's data blocks in order.
	Blocks []Block
	// PreferredNodes are nodes holding replicas of the split's data.
	PreferredNodes []int
}

// Bytes returns the split's total payload size.
func (s *Split) Bytes() int64 {
	var n int64
	for _, b := range s.Blocks {
		n += int64(len(b.Data))
	}
	return n
}

// Data concatenates the split's blocks.
func (s *Split) Data() []byte {
	out := make([]byte, 0, s.Bytes())
	for _, b := range s.Blocks {
		out = append(out, b.Data...)
	}
	return out
}

// Reader streams the split's blocks in order without concatenating them
// into a fresh buffer — the zero-copy way for map tasks to scan their
// input.
func (s *Split) Reader() io.Reader {
	readers := make([]io.Reader, len(s.Blocks))
	for i, b := range s.Blocks {
		readers[i] = bytes.NewReader(b.Data)
	}
	return io.MultiReader(readers...)
}

// KillNode marks a node's replicas as lost, like a DataNode crash. A
// block whose replicas are all on dead nodes becomes unreadable until
// the node is revived. Placement of new blocks also avoids dead nodes.
func (fs *FS) KillNode(node int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dead[node] = true
}

// ReviveNode brings a dead node's replicas back.
func (fs *FS) ReviveNode(node int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.dead, node)
}

// liveReplicas filters a block's replica set to live nodes (caller
// holds at least the read lock).
func (fs *FS) liveReplicas(nodes []int) []int {
	out := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if !fs.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

// ErrBlockLost reports a block with no surviving replicas.
var ErrBlockLost = errors.New("dfs: block lost (no live replicas)")

// Splits computes the input splits for a set of files. When splittable,
// each block becomes one split (HDFS text input); otherwise each file is
// one split whose preferred nodes are those holding its first block —
// the paper's custom isSplitable()==false input format for data format 3.
// Splits fails with ErrBlockLost if any needed block has no surviving
// replica.
func (fs *FS) Splits(names []string, splittable bool) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []Split
	for _, name := range names {
		f, ok := fs.files[name]
		if !ok {
			return nil, fmt.Errorf("dfs: file %q not found", name)
		}
		if splittable {
			for _, b := range f.blocks {
				live := fs.liveReplicas(b.Nodes)
				if len(live) == 0 {
					return nil, fmt.Errorf("%w: %s block %d", ErrBlockLost, name, b.Index)
				}
				b.Nodes = live
				out = append(out, Split{
					File:           name,
					Blocks:         []Block{b},
					PreferredNodes: live,
				})
			}
		} else {
			blocks := make([]Block, len(f.blocks))
			for i, b := range f.blocks {
				live := fs.liveReplicas(b.Nodes)
				if len(live) == 0 {
					return nil, fmt.Errorf("%w: %s block %d", ErrBlockLost, name, b.Index)
				}
				b.Nodes = live
				blocks[i] = b
			}
			var pref []int
			if len(blocks) > 0 {
				pref = blocks[0].Nodes
			}
			out = append(out, Split{File: name, Blocks: blocks, PreferredNodes: pref})
		}
	}
	return out, nil
}

// Cluster returns the underlying simulated cluster.
func (fs *FS) Cluster() *distsim.Cluster { return fs.cluster }
