package distsim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func testCluster(t *testing.T, nodes, slots int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:           nodes,
		SlotsPerNode:    slots,
		TransferLatency: time.Microsecond,
		BytesPerSecond:  1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0, SlotsPerNode: 1, BytesPerSecond: 1},
		{Nodes: 1, SlotsPerNode: 0, BytesPerSecond: 1},
		{Nodes: 1, SlotsPerNode: 1, BytesPerSecond: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 16 {
		t.Errorf("nodes = %d", c.Nodes())
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	c := testCluster(t, 4, 2)
	var count atomic.Int64
	tasks := make([]Task, 50)
	for i := range tasks {
		tasks[i] = Task{Fn: func(ctx *TaskCtx) error {
			count.Add(1)
			return nil
		}}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 50 {
		t.Errorf("ran %d tasks", count.Load())
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := testCluster(t, 2, 1)
	boom := errors.New("boom")
	tasks := []Task{
		{Fn: func(*TaskCtx) error { return nil }},
		{Fn: func(*TaskCtx) error { return boom }},
	}
	if err := c.Run(tasks); err != boom {
		t.Errorf("err = %v", err)
	}
	if err := c.Run(nil); err != nil {
		t.Errorf("empty run err = %v", err)
	}
}

func TestSlotLimitEnforced(t *testing.T) {
	c := testCluster(t, 2, 3) // 6 slots total
	var running, peak atomic.Int64
	tasks := make([]Task, 30)
	for i := range tasks {
		tasks[i] = Task{Fn: func(*TaskCtx) error {
			r := running.Add(1)
			for {
				p := peak.Load()
				if r <= p || peak.CompareAndSwap(p, r) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		}}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 6 {
		t.Errorf("peak concurrency %d exceeds 6 slots", peak.Load())
	}
}

func TestDataLocalityPreferred(t *testing.T) {
	c := testCluster(t, 4, 4)
	var onPreferred atomic.Int64
	tasks := make([]Task, 20)
	for i := range tasks {
		want := i % 4
		tasks[i] = Task{
			PreferredNodes: []int{want},
			Fn: func(ctx *TaskCtx) error {
				if ctx.Node() == want {
					onPreferred.Add(1)
				}
				return nil
			},
		}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	// With ample slots every task should land on its preferred node.
	if onPreferred.Load() != 20 {
		t.Errorf("only %d/20 tasks were data-local", onPreferred.Load())
	}
}

func TestTransferAccounting(t *testing.T) {
	c := testCluster(t, 3, 1)
	c.Transfer(0, 1, 1000)
	c.Transfer(1, 1, 9999) // local: free
	c.Transfer(2, 0, 500)
	s := c.Stats()
	if s.BytesMoved != 1500 || s.Transfers != 2 {
		t.Errorf("stats = %+v", s)
	}
	c.ResetStats()
	if s := c.Stats(); s.BytesMoved != 0 || s.Transfers != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestTransferTakesTime(t *testing.T) {
	c, err := New(Config{
		Nodes: 2, SlotsPerNode: 1,
		TransferLatency: 0,
		BytesPerSecond:  1 << 20, // 1 MiB/s
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Transfer(0, 1, 1<<18) // 256 KiB at 1 MiB/s = 250ms
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Errorf("transfer took %v, want >= 200ms", d)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := testCluster(t, 2, 1)
	err := c.Run([]Task{{
		PreferredNodes: []int{0},
		Fn: func(ctx *TaskCtx) error {
			ctx.Alloc(1000)
			ctx.Alloc(500)
			ctx.Free(200)
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.MemPeakPerNode[0] != 1500 {
		t.Errorf("peak = %d, want 1500", s.MemPeakPerNode[0])
	}
	if s.PeakMemory() != 1500 {
		t.Errorf("total peak = %d", s.PeakMemory())
	}
	// Task exit auto-frees the remainder; node usage returns to zero.
	if got := c.nodes[0].memUsed.Load(); got != 0 {
		t.Errorf("memUsed after task = %d", got)
	}
}

func TestAllocFreeNode(t *testing.T) {
	c := testCluster(t, 2, 1)
	c.AllocNode(1, 4096)
	if c.Stats().MemPeakPerNode[1] != 4096 {
		t.Error("AllocNode not recorded")
	}
	c.FreeNode(1, 4096)
	if c.nodes[1].memUsed.Load() != 0 {
		t.Error("FreeNode not applied")
	}
	// Out-of-range and non-positive are no-ops.
	c.AllocNode(-1, 100)
	c.AllocNode(5, 100)
	c.AllocNode(0, -5)
	c.FreeNode(9, 10)
}

func TestReadBlockLocality(t *testing.T) {
	c := testCluster(t, 3, 1)
	err := c.Run([]Task{{
		PreferredNodes: []int{0},
		Fn: func(ctx *TaskCtx) error {
			ctx.ReadBlock([]int{ctx.Node()}, 100)     // local
			ctx.ReadBlock([]int{ctx.Node() + 1}, 100) // remote
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.LocalReads != 1 || s.RemoteReads != 1 {
		t.Errorf("reads = %d local, %d remote", s.LocalReads, s.RemoteReads)
	}
}

func TestInjectedFailuresAreRetried(t *testing.T) {
	c := testCluster(t, 4, 2)
	c.InjectFailures(0.4, 20, 1)
	var count atomic.Int64
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{PreferredNodes: []int{i % 4}, Fn: func(*TaskCtx) error {
			count.Add(1)
			return nil
		}}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatalf("tasks lost despite retries: %v", err)
	}
	if count.Load() != 40 {
		t.Errorf("ran %d tasks, want 40", count.Load())
	}
	if c.Stats().TaskRetries == 0 {
		t.Error("no retries recorded at 40% failure rate")
	}
}

func TestFailuresExhaustRetryBudget(t *testing.T) {
	c := testCluster(t, 2, 1)
	c.InjectFailures(1.0, 3, 2) // every attempt fails
	err := c.Run([]Task{{Fn: func(*TaskCtx) error { return nil }}})
	if !errors.Is(err, ErrTaskLost) {
		t.Errorf("err = %v, want ErrTaskLost", err)
	}
}

func TestPermanentErrorsNotRetried(t *testing.T) {
	c := testCluster(t, 2, 1)
	c.InjectFailures(0, 5, 3)
	var attempts atomic.Int64
	boom := errors.New("boom")
	err := c.Run([]Task{{Fn: func(*TaskCtx) error {
		attempts.Add(1)
		return boom
	}}})
	if err != boom {
		t.Errorf("err = %v", err)
	}
	if attempts.Load() != 1 {
		t.Errorf("permanent error retried %d times", attempts.Load())
	}
}

func TestComputeChargesSimulatedTime(t *testing.T) {
	c, err := New(Config{
		Nodes: 2, SlotsPerNode: 1, BytesPerSecond: 1 << 40,
		ComputeBytesPerSecond: 1 << 20, // 1 MiB/s
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.Run([]Task{{Fn: func(ctx *TaskCtx) error {
		ctx.Compute(1 << 18) // 256 KiB at 1 MiB/s = 250ms
		return nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Errorf("compute took %v, want >= 200ms", d)
	}
	// Disabled rate is a no-op.
	off := testCluster(t, 1, 1)
	start = time.Now()
	off.Run([]Task{{Fn: func(ctx *TaskCtx) error { ctx.Compute(1 << 30); return nil }}})
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("disabled compute slept %v", d)
	}
}
