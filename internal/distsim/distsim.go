// Package distsim simulates the paper's 16-worker commodity cluster so
// the distributed engines (the Hive and Spark analogues) run against a
// realistic substrate on one machine.
//
// The simulator models what the paper's cluster experiments measure:
//
//   - per-node task slots (the paper caps parallel executors / MapReduce
//     tasks at the 12 physical cores per node);
//   - a gigabit-Ethernet-like network: every remote byte moved during a
//     shuffle, broadcast or non-local read costs latency plus
//     bytes/bandwidth of real wall-clock delay, so shuffle-bound jobs
//     (data format 1) are measurably slower than map-only jobs (formats
//     2 and 3), as in Figures 13-19;
//   - per-node memory accounting, powering the Figure 15 comparison of
//     Spark's and Hive's footprints.
//
// Delays are scaled down (configurable) so whole experiment suites run
// in seconds while preserving the relative costs.
package distsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// SleepCtx sleeps for d or until ctx is cancelled, whichever comes
// first. All simulated costs (network, compute, dispatch) go through it
// so a cancelled run stops paying modeled delays immediately.
func SleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes (the paper uses 16).
	Nodes int
	// SlotsPerNode is the number of concurrent task slots per node
	// (the paper uses up to 12, the physical core count).
	SlotsPerNode int
	// TransferLatency is the fixed cost per remote transfer.
	TransferLatency time.Duration
	// BytesPerSecond is the simulated per-transfer network bandwidth.
	BytesPerSecond float64
	// ComputeBytesPerSecond, when positive, is the simulated per-slot
	// processing rate charged by TaskCtx.Compute. It lets a cluster
	// larger than the host's physical core count show genuine scaling:
	// simulated compute is sleep-based, so it parallelizes across all
	// simulated slots rather than being capped by real CPUs. Zero
	// disables the charge (tasks cost only their real CPU time).
	ComputeBytesPerSecond float64
}

// DefaultConfig returns a 16-node cluster with a scaled-down
// gigabit-like network (high bandwidth so test suites stay fast, but
// non-zero so shuffles cost real time).
func DefaultConfig() Config {
	return Config{
		Nodes:           16,
		SlotsPerNode:    12,
		TransferLatency: 50 * time.Microsecond,
		BytesPerSecond:  2 << 30, // 2 GiB/s simulated
	}
}

// Cluster is a simulated cluster. It is safe for concurrent use.
type Cluster struct {
	cfg   Config
	nodes []*Node

	bytesMoved  atomic.Int64
	transfers   atomic.Int64
	localReads  atomic.Int64
	remoteReads atomic.Int64
	retries     atomic.Int64

	// failure injection (see InjectFailures)
	failMu     sync.Mutex
	failRate   float64
	failRng    *rand.Rand
	maxRetries int
}

// Node is one simulated worker.
type Node struct {
	id    int
	slots chan struct{}

	memUsed atomic.Int64
	memPeak atomic.Int64
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("distsim: nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.SlotsPerNode <= 0 {
		return nil, fmt.Errorf("distsim: slots must be positive, got %d", cfg.SlotsPerNode)
	}
	if cfg.BytesPerSecond <= 0 {
		return nil, fmt.Errorf("distsim: bandwidth must be positive, got %g", cfg.BytesPerSecond)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{id: i, slots: make(chan struct{}, cfg.SlotsPerNode)}
		for s := 0; s < cfg.SlotsPerNode; s++ {
			n.slots <- struct{}{}
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Nodes returns the number of worker nodes.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// TaskCtx is handed to every running task for memory accounting and
// data movement.
type TaskCtx struct {
	cluster *Cluster
	node    *Node
	held    int64
	// ctx is the run's cancellation context (nil for Run without one);
	// modeled sleeps in Compute and ReadBlock select on it.
	ctx context.Context
}

// Context returns the cancellation context the task runs under, never
// nil. Task bodies with long real (not simulated) work should poll it.
func (t *TaskCtx) Context() context.Context {
	if t.ctx == nil {
		return context.Background()
	}
	return t.ctx
}

// Node returns the node the task runs on.
func (t *TaskCtx) Node() int { return t.node.id }

// Alloc records bytes of working memory held by this task.
func (t *TaskCtx) Alloc(bytes int64) {
	if bytes <= 0 {
		return
	}
	t.held += bytes
	used := t.node.memUsed.Add(bytes)
	for {
		peak := t.node.memPeak.Load()
		if used <= peak || t.node.memPeak.CompareAndSwap(peak, used) {
			break
		}
	}
}

// Free releases previously recorded working memory.
func (t *TaskCtx) Free(bytes int64) {
	if bytes <= 0 {
		return
	}
	if bytes > t.held {
		bytes = t.held
	}
	t.held -= bytes
	t.node.memUsed.Add(-bytes)
}

// Compute charges the simulated processing cost of handling the given
// number of input bytes on this task's slot. A no-op when the cluster
// has no configured compute rate.
func (t *TaskCtx) Compute(bytes int64) {
	rate := t.cluster.cfg.ComputeBytesPerSecond
	if rate <= 0 || bytes <= 0 {
		return
	}
	SleepCtx(t.ctx, time.Duration(float64(bytes)/rate*float64(time.Second)))
}

// ReadBlock models reading one stored block: free if a replica lives on
// this node, a network transfer otherwise.
func (t *TaskCtx) ReadBlock(replicaNodes []int, bytes int64) {
	for _, n := range replicaNodes {
		if n == t.node.id {
			t.cluster.localReads.Add(1)
			return
		}
	}
	t.cluster.remoteReads.Add(1)
	src := t.node.id
	if len(replicaNodes) > 0 {
		src = replicaNodes[0]
	}
	t.cluster.transfer(t.ctx, src, t.node.id, bytes)
}

// Transfer models moving bytes between two nodes (or from a node to the
// driver with to < 0). Local "transfers" are free.
func (c *Cluster) Transfer(from, to int, bytes int64) {
	c.transfer(nil, from, to, bytes)
}

func (c *Cluster) transfer(ctx context.Context, from, to int, bytes int64) {
	if from == to {
		return
	}
	c.transfers.Add(1)
	c.bytesMoved.Add(bytes)
	delay := c.cfg.TransferLatency +
		time.Duration(float64(bytes)/c.cfg.BytesPerSecond*float64(time.Second))
	SleepCtx(ctx, delay)
}

// Move describes one pending transfer for TransferConcurrent.
type Move struct {
	From, To int
	Bytes    int64
}

// TransferConcurrent performs a batch of transfers in parallel, as a
// real network would: the wall-clock cost is the slowest single
// transfer, not the sum. Shuffles and broadcasts use this.
func (c *Cluster) TransferConcurrent(moves []Move) {
	c.TransferConcurrentCtx(nil, moves)
}

// TransferConcurrentCtx is TransferConcurrent under a cancellation
// context: cancelled transfers stop sleeping (the byte accounting still
// happens — the run is aborting anyway).
func (c *Cluster) TransferConcurrentCtx(ctx context.Context, moves []Move) {
	switch len(moves) {
	case 0:
		return
	case 1:
		c.transfer(ctx, moves[0].From, moves[0].To, moves[0].Bytes)
		return
	}
	var wg sync.WaitGroup
	for _, m := range moves {
		if m.From == m.To {
			continue
		}
		wg.Add(1)
		go func(m Move) {
			defer wg.Done()
			c.transfer(ctx, m.From, m.To, m.Bytes)
		}(m)
	}
	wg.Wait()
}

// AllocNode records long-lived memory held on a node beyond any single
// task's lifetime (e.g. a cached RDD partition). Pair with FreeNode.
func (c *Cluster) AllocNode(node int, bytes int64) {
	if node < 0 || node >= len(c.nodes) || bytes <= 0 {
		return
	}
	n := c.nodes[node]
	used := n.memUsed.Add(bytes)
	for {
		peak := n.memPeak.Load()
		if used <= peak || n.memPeak.CompareAndSwap(peak, used) {
			break
		}
	}
}

// FreeNode releases memory recorded with AllocNode.
func (c *Cluster) FreeNode(node int, bytes int64) {
	if node < 0 || node >= len(c.nodes) || bytes <= 0 {
		return
	}
	c.nodes[node].memUsed.Add(-bytes)
}

// Task is one schedulable unit of work.
type Task struct {
	// PreferredNodes lists nodes holding the task's input (data
	// locality); empty means any node.
	PreferredNodes []int
	// Fn is the task body.
	Fn func(ctx *TaskCtx) error
}

// ErrTaskLost is returned when a task keeps hitting injected failures
// beyond the retry budget.
var ErrTaskLost = errors.New("distsim: task lost after retries")

// InjectFailures makes each task attempt fail with the given probability
// before its body runs (a simulated mid-task node crash). Failed
// attempts are retried up to maxRetries times, like a MapReduce or Spark
// scheduler re-executing lost tasks. A rate of 0 disables injection.
func (c *Cluster) InjectFailures(rate float64, maxRetries int, seed int64) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	c.failRate = rate
	c.maxRetries = maxRetries
	c.failRng = rand.New(rand.NewSource(seed))
}

// attemptFails draws the injected failure decision for one attempt.
func (c *Cluster) attemptFails() bool {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failRate <= 0 || c.failRng == nil {
		return false
	}
	return c.failRng.Float64() < c.failRate
}

// Run executes the tasks across the cluster, honouring slot limits and
// preferring data-local placement. Injected task failures (see
// InjectFailures) are retried, speculatively avoiding the failed node;
// errors returned by task bodies are permanent. Run returns the first
// permanent error.
func (c *Cluster) Run(tasks []Task) error {
	return c.RunCtx(nil, tasks)
}

// RunCtx is Run under a cancellation context: tasks not yet started
// when ctx fires are skipped, running tasks stop paying modeled delays,
// and the first ctx error wins over task errors so callers see a clean
// context.Canceled / DeadlineExceeded.
func (c *Cluster) RunCtx(runCtx context.Context, tasks []Task) error {
	if len(tasks) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(tasks))
	for i := range tasks {
		task := tasks[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			pref := task.PreferredNodes
			for attempt := 0; ; attempt++ {
				if runCtx != nil && runCtx.Err() != nil {
					return
				}
				node := c.acquire(pref)
				if c.attemptFails() {
					node.slots <- struct{}{}
					c.retries.Add(1)
					if attempt >= c.maxRetries {
						errCh <- fmt.Errorf("%w: %d attempts", ErrTaskLost, attempt+1)
						return
					}
					// Re-place away from the failed node.
					pref = without(pref, node.id)
					continue
				}
				ctx := &TaskCtx{cluster: c, node: node, ctx: runCtx}
				err := task.Fn(ctx)
				ctx.Free(ctx.held)
				node.slots <- struct{}{}
				if err != nil {
					errCh <- err
				}
				return
			}
		}()
	}
	wg.Wait()
	if runCtx != nil && runCtx.Err() != nil {
		return runCtx.Err()
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// without returns nodes minus the given node id.
func without(nodes []int, id int) []int {
	out := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if n != id {
			out = append(out, n)
		}
	}
	return out
}

// acquire takes a slot, preferring the task's local nodes but falling
// back to any free node rather than waiting forever.
func (c *Cluster) acquire(preferred []int) *Node {
	// Fast path: a preferred node has a free slot.
	for _, p := range preferred {
		if p >= 0 && p < len(c.nodes) {
			select {
			case <-c.nodes[p].slots:
				return c.nodes[p]
			default:
			}
		}
	}
	// Otherwise take the first slot anywhere, scanning round-robin from
	// the first preference to keep placement roughly balanced.
	start := 0
	if len(preferred) > 0 && preferred[0] >= 0 {
		start = preferred[0] % len(c.nodes)
	}
	for {
		for i := 0; i < len(c.nodes); i++ {
			n := c.nodes[(start+i)%len(c.nodes)]
			select {
			case <-n.slots:
				return n
			default:
			}
		}
		// Everything busy: block on the first preferred (or first) node.
		n := c.nodes[start]
		<-n.slots
		return n
	}
}

// Stats is a snapshot of cluster counters.
type Stats struct {
	BytesMoved  int64
	Transfers   int64
	LocalReads  int64
	RemoteReads int64
	// TaskRetries counts injected-failure retries.
	TaskRetries int64
	// MemPeakPerNode is each node's peak task memory in bytes.
	MemPeakPerNode []int64
}

// Stats returns a snapshot of the cluster's counters.
func (c *Cluster) Stats() Stats {
	s := Stats{
		BytesMoved:  c.bytesMoved.Load(),
		Transfers:   c.transfers.Load(),
		LocalReads:  c.localReads.Load(),
		RemoteReads: c.remoteReads.Load(),
		TaskRetries: c.retries.Load(),
	}
	for _, n := range c.nodes {
		s.MemPeakPerNode = append(s.MemPeakPerNode, n.memPeak.Load())
	}
	return s
}

// PeakMemory returns the summed per-node peak memory.
func (s Stats) PeakMemory() int64 {
	var total int64
	for _, m := range s.MemPeakPerNode {
		total += m
	}
	return total
}

// MemoryInUse returns the bytes currently allocated across all nodes
// (task working memory plus long-lived AllocNode pins). Unlike
// PeakMemory it falls back to zero once everything is freed, so tests
// can assert that caches were released.
func (c *Cluster) MemoryInUse() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.memUsed.Load()
	}
	return total
}

// ResetStats zeroes all counters (between experiment runs).
func (c *Cluster) ResetStats() {
	c.bytesMoved.Store(0)
	c.transfers.Store(0)
	c.localReads.Store(0)
	c.remoteReads.Store(0)
	c.retries.Store(0)
	for _, n := range c.nodes {
		n.memPeak.Store(0)
		n.memUsed.Store(0)
	}
}
