package distsim

import (
	"sync/atomic"
	"testing"
)

// fastConfig keeps the simulated network instant so race tests spend
// their time exercising concurrency, not sleeping.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.TransferLatency = 0
	cfg.BytesPerSecond = 1 << 40
	return cfg
}

// TestClusterRunRace is the race-regression test for the task scheduler
// (distsim.go Run): every task body runs on its own goroutine, acquires
// node slots, bumps the atomic transfer/memory counters and reports
// through a shared error channel.
func TestClusterRunRace(t *testing.T) {
	c, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	tasks := make([]Task, 200)
	for i := range tasks {
		node := i % c.Nodes()
		tasks[i] = Task{
			PreferredNodes: []int{node},
			Fn: func(ctx *TaskCtx) error {
				ctx.Alloc(1 << 16)
				ctx.ReadBlock([]int{node}, 1<<12)
				ctx.Compute(1 << 10)
				ran.Add(1)
				return nil
			},
		}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != int64(len(tasks)) {
		t.Errorf("ran %d tasks, want %d", got, len(tasks))
	}
}

// TestClusterRunRetriesRace drives the failure-injection path, whose
// rng sits behind failMu while tasks race to draw from it.
func TestClusterRunRetriesRace(t *testing.T) {
	c, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.InjectFailures(0.3, 50, 17)
	tasks := make([]Task, 100)
	for i := range tasks {
		tasks[i] = Task{Fn: func(ctx *TaskCtx) error { return nil }}
	}
	if err := c.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TaskRetries == 0 {
		t.Error("expected injected failures to cause retries")
	}
}

// TestTransferConcurrentRace covers the batched shuffle path: parallel
// transfers all update the shared byte/transfer counters.
func TestTransferConcurrentRace(t *testing.T) {
	c, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	moves := make([]Move, 256)
	for i := range moves {
		moves[i] = Move{From: i % c.Nodes(), To: (i + 1) % c.Nodes(), Bytes: 1 << 10}
	}
	c.TransferConcurrent(moves)
	st := c.Stats()
	if st.Transfers != int64(len(moves)) {
		t.Errorf("transfers = %d, want %d", st.Transfers, len(moves))
	}
	if st.BytesMoved != int64(len(moves))<<10 {
		t.Errorf("bytes moved = %d, want %d", st.BytesMoved, int64(len(moves))<<10)
	}
}
