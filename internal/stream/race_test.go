package stream

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/timeseries"
)

// TestProcessorRunRace is the race-regression test for the streaming
// worker pool (stream.go): events are partitioned by household across
// workers, per-worker counters merge under the processor mutex, and the
// alert channel is shared. -race verifies all three under a full fan-out.
func TestProcessorRunRace(t *testing.T) {
	p, err := NewProcessor(NewSigmaDetector(3, 24), 8)
	if err != nil {
		t.Fatal(err)
	}
	const households, hours = 64, 48
	events := make(chan Event, 256)
	go func() {
		defer close(events)
		for h := 0; h < hours; h++ {
			for id := 1; id <= households; id++ {
				events <- Event{
					ID:          timeseries.ID(id),
					Hour:        h,
					Consumption: float64(id%7) + float64(h%24)/24,
					Temperature: 15,
				}
			}
		}
	}()
	out := make(chan Alert, 64)
	done := make(chan error, 1)
	go func() { done <- p.Run(events, out) }()
	for range out {
		// Drain alerts concurrently with the workers producing them.
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	processed, alerted := p.Stats()
	if processed != households*hours {
		t.Errorf("processed = %d, want %d", processed, households*hours)
	}
	if alerted < 0 || alerted > processed {
		t.Errorf("alerted = %d out of range", alerted)
	}
}
