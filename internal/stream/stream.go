// Package stream implements the paper's §6 future-work direction:
// real-time smart meter applications — "alerts due to unusual
// consumption readings, using data stream processing technologies".
//
// A Processor consumes an unbounded stream of readings, maintains
// per-household online state, and emits alerts when a reading deviates
// from the household's learned behaviour. Two detectors are provided:
//
//   - SigmaDetector: per hour-of-day streaming mean/variance (Welford);
//     a reading more than K standard deviations from its hour's mean is
//     anomalous. Cheap and model-free.
//   - ProfileDetector: expectation = a trained PAR daily profile plus a
//     per-household thermal gradient applied to the current temperature;
//     alerts on large residuals. Catches anomalies that sigma-style
//     detectors miss in thermally driven homes.
//
// Work is partitioned across goroutines by household, like the
// benchmark's other per-consumer parallel tasks.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Event is one streamed meter reading. It is the ingestion path's
// core.Reading, not a parallel type: what the detectors observe is
// exactly what the storage engines commit, so an alert can always be
// joined back to the stored reading it fired on.
type Event = core.Reading

// Alert is an anomaly notification.
type Alert struct {
	Event Event
	// Expected is the detector's expectation for the reading.
	Expected float64
	// Score is the anomaly magnitude (detector-specific; for
	// SigmaDetector it is |x-mean|/std).
	Score float64
	// Detector names the detector that fired.
	Detector string
}

// Detector is per-household anomaly detection state. Implementations
// need not be safe for concurrent use; the Processor partitions events
// so each household's detector runs on one goroutine.
type Detector interface {
	// Name identifies the detector in alerts.
	Name() string
	// Observe consumes one event and reports whether it is anomalous.
	// Detectors should learn from normal events and may choose not to
	// learn from anomalous ones.
	Observe(e Event) (Alert, bool)
}

// NewDetector constructs a fresh detector for one household.
type NewDetector func(id timeseries.ID) Detector

// SigmaDetector flags readings far from the household's running
// per-hour-of-day mean.
type SigmaDetector struct {
	id timeseries.ID
	// K is the alert threshold in standard deviations.
	K float64
	// MinSamples is the per-hour warmup before alerting.
	MinSamples int64
	hours      [timeseries.HoursPerDay]stats.Moments
}

// NewSigmaDetector returns a NewDetector for SigmaDetectors with the
// given threshold (default 4) and warmup (default 7 samples per hour of
// day, i.e. one week).
func NewSigmaDetector(k float64, minSamples int64) NewDetector {
	if k <= 0 {
		k = 4
	}
	if minSamples <= 0 {
		minSamples = 7
	}
	return func(id timeseries.ID) Detector {
		return &SigmaDetector{id: id, K: k, MinSamples: minSamples}
	}
}

// Name implements Detector.
func (d *SigmaDetector) Name() string { return "sigma" }

// Observe implements Detector.
func (d *SigmaDetector) Observe(e Event) (Alert, bool) {
	h := ((e.Hour % timeseries.HoursPerDay) + timeseries.HoursPerDay) % timeseries.HoursPerDay
	m := &d.hours[h]
	if m.N() >= d.MinSamples {
		std := m.StdDev()
		if std > 1e-9 {
			score := math.Abs(e.Consumption-m.Mean()) / std
			if score > d.K {
				// Do not absorb the anomaly into the running statistics.
				return Alert{
					Event:    e,
					Expected: m.Mean(),
					Score:    score,
					Detector: d.Name(),
				}, true
			}
		}
	}
	m.Add(e.Consumption)
	return Alert{}, false
}

// Profile is the trained expectation model for one household used by
// ProfileDetector.
type Profile struct {
	// Daily is the 24-hour habitual load (a PAR profile).
	Daily [timeseries.HoursPerDay]float64
	// HeatingGradient and CoolingGradient are thermal sensitivities in
	// kWh per degree below/above the references (3-line output).
	HeatingGradient, CoolingGradient float64
	// HeatingRef and CoolingRef delimit the comfort band.
	HeatingRef, CoolingRef float64
	// Bias is a calibration offset added to every expectation; training
	// sets it to the mean residual so the daily profile and thermal
	// terms need not be perfectly disjoint.
	Bias float64
	// Tolerance is the absolute residual above which a reading alerts.
	Tolerance float64
}

// Expected returns the model's expectation for an hour of day and
// temperature.
func (p *Profile) Expected(hourOfDay int, temperature float64) float64 {
	v := p.Daily[hourOfDay] + p.Bias +
		p.HeatingGradient*math.Max(0, p.HeatingRef-temperature) +
		p.CoolingGradient*math.Max(0, temperature-p.CoolingRef)
	if v < 0 {
		v = 0
	}
	return v
}

// ProfileDetector alerts when readings deviate from a trained profile.
type ProfileDetector struct {
	id      timeseries.ID
	profile Profile
}

// NewProfileDetector returns a NewDetector that looks up each
// household's trained profile; households without a profile never alert.
func NewProfileDetector(profiles map[timeseries.ID]Profile) NewDetector {
	return func(id timeseries.ID) Detector {
		p, ok := profiles[id]
		if !ok {
			return &ProfileDetector{id: id, profile: Profile{Tolerance: math.Inf(1)}}
		}
		if p.Tolerance <= 0 {
			p.Tolerance = 1
		}
		return &ProfileDetector{id: id, profile: p}
	}
}

// Name implements Detector.
func (d *ProfileDetector) Name() string { return "profile" }

// Observe implements Detector.
func (d *ProfileDetector) Observe(e Event) (Alert, bool) {
	h := ((e.Hour % timeseries.HoursPerDay) + timeseries.HoursPerDay) % timeseries.HoursPerDay
	want := d.profile.Expected(h, e.Temperature)
	resid := math.Abs(e.Consumption - want)
	if resid > d.profile.Tolerance {
		return Alert{
			Event:    e,
			Expected: want,
			Score:    resid / d.profile.Tolerance,
			Detector: d.Name(),
		}, true
	}
	return Alert{}, false
}

// Processor runs detectors over an event stream.
type Processor struct {
	newDetector NewDetector
	workers     int

	mu        sync.Mutex
	processed int64
	alerted   int64
}

// ErrNoDetector is returned when the processor has no detector factory.
var ErrNoDetector = errors.New("stream: no detector factory")

// NewProcessor builds a processor with the given detector factory and
// worker count (0 means 4).
func NewProcessor(nd NewDetector, workers int) (*Processor, error) {
	if nd == nil {
		return nil, ErrNoDetector
	}
	if workers <= 0 {
		workers = 4
	}
	return &Processor{newDetector: nd, workers: workers}, nil
}

// Stats returns the number of events processed and alerts raised.
func (p *Processor) Stats() (processed, alerted int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed, p.alerted
}

// Run consumes events until the channel closes, sending alerts to out.
// Events are partitioned by household across the processor's workers so
// per-household state stays single-threaded; within a household, order
// is preserved. Run closes out when done.
func (p *Processor) Run(events <-chan Event, out chan<- Alert) error {
	defer close(out)
	chans := make([]chan Event, p.workers)
	var wg sync.WaitGroup
	for w := range chans {
		chans[w] = make(chan Event, 256)
		wg.Add(1)
		go func(in <-chan Event) {
			defer wg.Done()
			detectors := make(map[timeseries.ID]Detector)
			var processed, alerted int64
			for e := range in {
				d, ok := detectors[e.ID]
				if !ok {
					d = p.newDetector(e.ID)
					detectors[e.ID] = d
				}
				processed++
				if alert, bad := d.Observe(e); bad {
					alerted++
					out <- alert
				}
			}
			p.mu.Lock()
			p.processed += processed
			p.alerted += alerted
			p.mu.Unlock()
		}(chans[w])
	}
	for e := range events {
		if e.ID < 0 {
			// Drain workers before reporting, so state is consistent.
			for _, c := range chans {
				close(c)
			}
			wg.Wait()
			return fmt.Errorf("stream: negative household id %d", e.ID)
		}
		chans[core.ShardFor(e.ID, p.workers)] <- e
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	return nil
}

// Feeder bridges the ingestion fan-out to a running Processor: it
// satisfies the executor's reading-sink shape, forwarding every
// committed batch into the processor's event channel. Close the
// channel when ingestion ends to let Run drain and return.
type Feeder struct {
	Events chan<- Event
}

// Consume forwards one committed batch to the stream processor.
func (f Feeder) Consume(batch []core.Reading) error {
	for _, r := range batch {
		f.Events <- r
	}
	return nil
}

// Replay streams a dataset's readings hour by hour (all households'
// readings for hour 0, then hour 1, ...) into a channel, the shape a
// live meter feed would have. It closes the channel when done.
func Replay(ds *timeseries.Dataset, out chan<- Event) {
	defer close(out)
	if len(ds.Series) == 0 {
		return
	}
	hours := len(ds.Temperature.Values)
	for h := 0; h < hours; h++ {
		for _, s := range ds.Series {
			if h >= len(s.Readings) {
				continue
			}
			out <- Event{
				ID:          s.ID,
				Hour:        h,
				Consumption: s.Readings[h],
				Temperature: ds.Temperature.Values[h],
			}
		}
	}
}
