package stream

import (
	"math"

	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// TrainProfiles fits a Profile for every household in a historical
// dataset: the PAR daily profile supplies the habitual load, the 3-line
// model supplies the thermal gradients and comfort band, and the
// tolerance is set to sigmaMult times the residual standard deviation
// of the fitted model over the training data (default 4).
func TrainProfiles(ds *timeseries.Dataset, sigmaMult float64) (map[timeseries.ID]Profile, error) {
	if sigmaMult <= 0 {
		sigmaMult = 4
	}
	out := make(map[timeseries.ID]Profile, len(ds.Series))
	for _, s := range ds.Series {
		pr, err := par.Compute(s, ds.Temperature)
		if err != nil {
			return nil, err
		}
		tl, err := threeline.Compute(s, ds.Temperature)
		if err != nil {
			return nil, err
		}
		p := Profile{
			HeatingGradient: math.Max(0, tl.HeatingGradient),
			CoolingGradient: math.Max(0, tl.CoolingGradient),
			HeatingRef:      tl.High.Break1,
			CoolingRef:      tl.High.Break2,
		}
		for h := 0; h < timeseries.HoursPerDay; h++ {
			p.Daily[h] = math.Max(0, pr.Profile[h])
		}
		// Calibrate: absorb the mean residual into a bias term, then set
		// the tolerance from the centred residual spread.
		var m stats.Moments
		for i, c := range s.Readings {
			h := i % timeseries.HoursPerDay
			m.Add(c - p.Expected(h, ds.Temperature.Values[i]))
		}
		p.Bias = m.Mean()
		tol := sigmaMult * m.StdDev()
		if tol <= 0 {
			tol = 1
		}
		p.Tolerance = tol
		out[s.ID] = p
	}
	return out, nil
}
