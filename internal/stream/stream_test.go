package stream

import (
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

func collectAlerts(t *testing.T, p *Processor, events <-chan Event) []Alert {
	t.Helper()
	out := make(chan Alert, 1024)
	errCh := make(chan error, 1)
	go func() { errCh <- p.Run(events, out) }()
	var alerts []Alert
	for a := range out {
		alerts = append(alerts, a)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return alerts
}

func steadyEvents(id timeseries.ID, hours int, value float64) []Event {
	evs := make([]Event, hours)
	for h := range evs {
		evs[h] = Event{ID: id, Hour: h, Consumption: value, Temperature: 15}
	}
	return evs
}

func sendAll(evs []Event) <-chan Event {
	ch := make(chan Event, len(evs))
	for _, e := range evs {
		ch <- e
	}
	close(ch)
	return ch
}

func TestSigmaDetectorFlagsSpike(t *testing.T) {
	evs := steadyEvents(1, 21*24, 1.0)
	// Slight natural variation so std > 0.
	for i := range evs {
		evs[i].Consumption += 0.01 * float64(i%5)
	}
	spikeAt := 20 * 24
	evs[spikeAt].Consumption = 25 // gross anomaly after warmup
	p, err := NewProcessor(NewSigmaDetector(4, 7), 2)
	if err != nil {
		t.Fatal(err)
	}
	alerts := collectAlerts(t, p, sendAll(evs))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (%v)", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Event.Hour != spikeAt || a.Detector != "sigma" {
		t.Errorf("alert = %+v", a)
	}
	if a.Score < 4 {
		t.Errorf("score = %g", a.Score)
	}
	processed, alerted := p.Stats()
	if processed != int64(len(evs)) || alerted != 1 {
		t.Errorf("stats = %d, %d", processed, alerted)
	}
}

func TestSigmaDetectorWarmupSuppressesAlerts(t *testing.T) {
	// A spike during warmup must not alert (not enough history).
	evs := steadyEvents(1, 3*24, 1.0)
	evs[30].Consumption = 50
	p, _ := NewProcessor(NewSigmaDetector(4, 7), 1)
	alerts := collectAlerts(t, p, sendAll(evs))
	if len(alerts) != 0 {
		t.Errorf("warmup alerts = %d", len(alerts))
	}
}

func TestSigmaDetectorDoesNotLearnAnomalies(t *testing.T) {
	d := NewSigmaDetector(3, 5)(1).(*SigmaDetector)
	// Warm hour 0 with stable values.
	for i := 0; i < 10; i++ {
		d.Observe(Event{ID: 1, Hour: i * 24, Consumption: 1 + 0.05*float64(i%3)})
	}
	before := d.hours[0].N()
	if _, bad := d.Observe(Event{ID: 1, Hour: 240, Consumption: 100}); !bad {
		t.Fatal("spike not detected")
	}
	if d.hours[0].N() != before {
		t.Error("anomaly was absorbed into the statistics")
	}
	// Normal reading afterwards still learns.
	if _, bad := d.Observe(Event{ID: 1, Hour: 264, Consumption: 1.02}); bad {
		t.Error("normal reading flagged after spike")
	}
	if d.hours[0].N() != before+1 {
		t.Error("normal reading not learned")
	}
}

func TestProfileDetector(t *testing.T) {
	profile := Profile{
		HeatingGradient: 0.2, CoolingGradient: 0.1,
		HeatingRef: 15, CoolingRef: 22,
		Tolerance: 0.5,
	}
	for h := range profile.Daily {
		profile.Daily[h] = 1
	}
	nd := NewProfileDetector(map[timeseries.ID]Profile{7: profile})
	d := nd(7)

	// Expected at -5 C: 1 + 0.2*20 = 5. A matching reading passes.
	if _, bad := d.Observe(Event{ID: 7, Hour: 0, Consumption: 5.1, Temperature: -5}); bad {
		t.Error("reading within tolerance flagged")
	}
	// The same kWh at a mild temperature is anomalous.
	alert, bad := d.Observe(Event{ID: 7, Hour: 1, Consumption: 5.1, Temperature: 18})
	if !bad {
		t.Fatal("thermally impossible reading not flagged")
	}
	if math.Abs(alert.Expected-1) > 1e-9 {
		t.Errorf("expected = %g, want 1", alert.Expected)
	}
	// Unknown households never alert.
	u := nd(99)
	if _, bad := u.Observe(Event{ID: 99, Hour: 0, Consumption: 1e6}); bad {
		t.Error("unknown household alerted")
	}
	_ = u.Name()
}

func TestTrainProfilesAndDetect(t *testing.T) {
	// Train on a year, then stream the same data: the trained model
	// should consider its own training data normal, and flag injected
	// anomalies.
	ds, err := seed.Generate(seed.Config{Consumers: 5, Days: 365, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := TrainProfiles(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 5 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	// Inject a gross spike into one consumer's replayed data.
	spiked := &timeseries.Dataset{Temperature: ds.Temperature}
	for _, s := range ds.Series {
		spiked.Series = append(spiked.Series, s.Clone())
	}
	spikeHour := 5000
	spiked.Series[2].Readings[spikeHour] += 50

	p, err := NewProcessor(NewProfileDetector(profiles), 3)
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan Event, 1024)
	go Replay(spiked, events)
	alerts := collectAlerts(t, p, events)

	foundSpike := false
	for _, a := range alerts {
		if a.Event.ID == spiked.Series[2].ID && a.Event.Hour == spikeHour {
			foundSpike = true
		}
	}
	if !foundSpike {
		t.Error("injected spike not detected")
	}
	// False positive rate stays tiny at 6 sigma.
	processed, alerted := p.Stats()
	if processed != int64(5*365*24) {
		t.Errorf("processed = %d", processed)
	}
	if float64(alerted)/float64(processed) > 0.001 {
		t.Errorf("alert rate %d/%d too high", alerted, processed)
	}
}

func TestProcessorValidation(t *testing.T) {
	if _, err := NewProcessor(nil, 2); err != ErrNoDetector {
		t.Errorf("err = %v", err)
	}
	p, _ := NewProcessor(NewSigmaDetector(0, 0), 0)
	events := make(chan Event, 1)
	events <- Event{ID: -5}
	close(events)
	out := make(chan Alert, 1)
	if err := p.Run(events, out); err == nil {
		t.Error("negative id: want error")
	}
}

func TestReplayOrderAndCompleteness(t *testing.T) {
	ds, err := seed.Generate(seed.Config{Consumers: 3, Days: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Event, 1024)
	go Replay(ds, ch)
	count := 0
	lastHour := -1
	for e := range ch {
		if e.Hour < lastHour {
			t.Fatalf("hour went backwards: %d after %d", e.Hour, lastHour)
		}
		lastHour = e.Hour
		count++
	}
	if count != 3*2*24 {
		t.Errorf("replayed %d events", count)
	}
	// Empty dataset closes immediately.
	empty := make(chan Event)
	go Replay(&timeseries.Dataset{Temperature: &timeseries.Temperature{}}, empty)
	if _, ok := <-empty; ok {
		t.Error("empty replay emitted events")
	}
}
