package exec

import (
	"context"
	"io"
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/colcodec"
	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// summarySource wraps a dataset with an in-memory core.SummarySource:
// each series is sliced into fixed-size blocks summarized via
// colcodec.Summarize — the same summaries the column store's segment
// headers carry — so the fast path can be pitted against the generic
// cursor pipeline over identical data.
type summarySource struct {
	datasetSource
	blockRows int
}

func (s summarySource) NewSummaryCursor() (core.SummaryCursor, error) {
	return &memSummaryCursor{ds: s.ds, blockRows: s.blockRows, i: -1}, nil
}

type memSummaryCursor struct {
	ds        *timeseries.Dataset
	blockRows int
	i         int
	closed    bool
}

func (c *memSummaryCursor) NextSummary() (timeseries.ID, []core.BlockStats, error) {
	if c.closed {
		return 0, nil, io.EOF
	}
	c.i++
	if c.i >= len(c.ds.Series) {
		return 0, nil, io.EOF
	}
	s := c.ds.Series[c.i]
	var blocks []core.BlockStats
	for start := 0; start < len(s.Readings); start += c.blockRows {
		end := start + c.blockRows
		if end > len(s.Readings) {
			end = len(s.Readings)
		}
		sum := colcodec.Summarize(s.Readings[start:end])
		blocks = append(blocks, core.BlockStats{
			Start: start, Count: sum.Count, NaNs: sum.NaNs,
			Min: sum.Min, Max: sum.Max, Sum: sum.Sum, SumSq: sum.SumSq,
			Flags: memBlockFlags(start, s.Readings[start:end]),
		})
	}
	return s.ID, blocks, nil
}

// memBlockFlags mirrors the segment encoder's flag policy: lanes on
// every NaN-free block, Constant when bit-constant, and a stored
// pattern only for aligned multi-day tilings that are not constant.
func memBlockFlags(start int, blk []float64) core.BlockFlags {
	var ls colcodec.LaneSummary
	if !colcodec.SummarizeHours(start, blk, &ls) {
		return 0
	}
	f := core.BlockHourLanes
	if ls.Constant {
		f |= core.BlockConstant
	} else if ls.Periodic && len(blk) > 24 {
		f |= core.BlockHourPeriodic
	}
	return f
}

func (c *memSummaryCursor) HourLanes(b int, dst *core.HourLanes) (bool, error) {
	s := c.ds.Series[c.i]
	start := b * c.blockRows
	end := start + c.blockRows
	if end > len(s.Readings) {
		end = len(s.Readings)
	}
	blk := s.Readings[start:end]
	var ls colcodec.LaneSummary
	if !colcodec.SummarizeHours(start, blk, &ls) {
		return false, nil
	}
	dst.Sums = ls.Sums
	dst.Counts = ls.Counts
	if ls.Periodic && !ls.Constant && len(blk) > 24 {
		dst.Pattern = ls.Pattern
	} else {
		dst.Pattern = [24]float64{}
	}
	return true, nil
}

func (c *memSummaryCursor) DecodeBlock(b int, dst []float64) error {
	s := c.ds.Series[c.i]
	start := b * c.blockRows
	copy(dst, s.Readings[start:])
	return nil
}

func (c *memSummaryCursor) Close() error {
	c.closed = true
	return nil
}

// summaryDataset builds a dataset that exercises every fast-path branch:
// smooth multi-block series (AddN all blocks), a wide-spread series
// (bucket-straddling blocks forcing partial decode), a constant series
// (zero-width histogram), and fallback consumers carrying NaN and ±Inf.
func summaryDataset(t *testing.T) *timeseries.Dataset {
	t.Helper()
	ds := makeDataset(t, 4, 20)
	n := len(ds.Series[0].Readings)

	nan := make([]float64, n)
	copy(nan, ds.Series[1].Readings)
	nan[7] = math.NaN()
	nan[n-1] = math.NaN()

	inf := make([]float64, n)
	copy(inf, ds.Series[2].Readings)
	inf[0] = math.Inf(1)
	inf[n/2] = math.Inf(-1)

	konst := make([]float64, n)
	for i := range konst {
		konst[i] = 1.25
	}

	spread := make([]float64, n)
	for i := range spread {
		spread[i] = float64(i%97) * 3.5
	}

	ds.Series = append(ds.Series,
		&timeseries.Series{ID: 900, Readings: nan},
		&timeseries.Series{ID: 901, Readings: inf},
		&timeseries.Series{ID: 902, Readings: konst},
		&timeseries.Series{ID: 903, Readings: spread},
	)
	return ds
}

// TestSummaryHistogramBitIdentical proves the compressed-domain path
// returns the same buckets, ranges and result order as the generic
// cursor pipeline over the same data, including the NaN/Inf fallbacks.
func TestSummaryHistogramBitIdentical(t *testing.T) {
	ds := summaryDataset(t)
	for _, blockRows := range []int{1, 7, 64, 1 << 20} {
		src := summarySource{datasetSource{ds: ds}, blockRows}
		got, err := Run(src, core.Spec{Task: core.TaskHistogram})
		if err != nil {
			t.Fatalf("blockRows=%d: %v", blockRows, err)
		}
		want, err := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskHistogram})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Histograms) != len(ds.Series) {
			t.Fatalf("blockRows=%d: %d results, want %d", blockRows, len(got.Histograms), len(ds.Series))
		}
		compareResults(t, got, want)
		for i, g := range got.Histograms {
			w := want.Histograms[i]
			if math.Float64bits(g.Histogram.Min) != math.Float64bits(w.Histogram.Min) ||
				math.Float64bits(g.Histogram.Max) != math.Float64bits(w.Histogram.Max) {
				t.Fatalf("blockRows=%d consumer %d: range [%g,%g] vs [%g,%g]",
					blockRows, g.ID, g.Histogram.Min, g.Histogram.Max, w.Histogram.Min, w.Histogram.Max)
			}
		}
	}
}

// TestSummaryHistogramEmptySeriesError checks the fallback preserves the
// generic path's error contract: an empty series aborts a FailFast run
// with the kernel's wrapped ErrEmptyInput.
func TestSummaryHistogramEmptySeriesError(t *testing.T) {
	ds := makeDataset(t, 2, 10)
	ds.Series = append(ds.Series, &timeseries.Series{ID: 950, Readings: nil})
	src := summarySource{datasetSource{ds: ds}, 16}
	_, gotErr := Run(src, core.Spec{Task: core.TaskHistogram})
	_, wantErr := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskHistogram})
	if gotErr == nil || wantErr == nil {
		t.Fatalf("errors: fast=%v generic=%v, want both non-nil", gotErr, wantErr)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("fast path error %q, generic %q", gotErr, wantErr)
	}
}

// TestSummaryGateScope checks the fast path stays off for non-histogram
// tasks and non-FailFast policies.
func TestSummaryGateScope(t *testing.T) {
	src := summarySource{datasetSource{ds: makeDataset(t, 2, 10)}, 16}
	if _, ok := summaryHistogramApplies(src, core.Spec{Task: core.TaskThreeLine, FailPolicy: core.FailFast}.WithDefaults()); ok {
		t.Fatal("fast path claimed a 3-line run")
	}
	if _, ok := summaryHistogramApplies(src, core.Spec{Task: core.TaskHistogram, FailPolicy: core.Quarantine}.WithDefaults()); ok {
		t.Fatal("fast path claimed a Quarantine run")
	}
	if _, ok := summaryHistogramApplies(NewDatasetSource(makeDataset(t, 2, 10)), core.Spec{Task: core.TaskHistogram}.WithDefaults()); ok {
		t.Fatal("fast path claimed a source without summaries")
	}
	if _, ok := summaryHistogramApplies(src, core.Spec{Task: core.TaskHistogram}.WithDefaults()); !ok {
		t.Fatal("fast path declined an eligible run")
	}
}

// TestSummaryHistogramPhases checks the fast path still populates the
// three-stage phase counters the benchmark reports parse.
func TestSummaryHistogramPhases(t *testing.T) {
	ds := makeDataset(t, 5, 20)
	src := summarySource{datasetSource{ds: ds}, 64}
	res, err := Run(src, core.Spec{Task: core.TaskHistogram})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases
	if ph.Extract.Rows != 5 || ph.Compute.Rows != 5 || ph.Emit.Rows != 5 {
		t.Fatalf("phase rows = %d/%d/%d, want 5/5/5",
			ph.Extract.Rows, ph.Compute.Rows, ph.Emit.Rows)
	}
}

// TestSummaryHistogramCancel checks a cancelled context aborts the scan.
func TestSummaryHistogramCancel(t *testing.T) {
	ds := makeDataset(t, 4, 20)
	src := summarySource{datasetSource{ds: ds}, 64}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, src, core.Spec{Task: core.TaskHistogram}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
