// Package cursortest is a conformance suite for core.Cursor
// implementations. Every engine's cursor is run through the same
// checks: it exhausts to io.EOF and stays exhausted, Reset replays the
// identical sequence, Close is idempotent, and a partial read followed
// by Close leaks neither goroutines nor file descriptors.
//
// RunPartitioned is the companion suite for core.PartitionedSource: the
// partition cursors must be pairwise disjoint, their union must equal
// the full cursor's ID set, and each partition cursor must itself pass
// the Cursor conformance checks.
package cursortest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// snapshot is one drained series, with readings copied out so a
// replay's buffer reuse cannot alias the first pass.
type snapshot struct {
	id       timeseries.ID
	readings []float64
}

// Run exercises one cursor implementation. open must return a fresh
// cursor positioned at the first consumer; it is called once per
// sub-check.
func Run(t *testing.T, open func(t *testing.T) core.Cursor) {
	t.Helper()

	t.Run("ExhaustsAndStaysExhausted", func(t *testing.T) {
		cur := open(t)
		defer func() { _ = cur.Close() }()
		first := drain(t, cur)
		if len(first) == 0 {
			t.Fatal("cursor yielded no series")
		}
		for i := 0; i < 2; i++ {
			if _, err := cur.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("Next after EOF #%d: err = %v, want io.EOF", i+1, err)
			}
		}
		for i := 1; i < len(first); i++ {
			if first[i-1].id >= first[i].id {
				t.Fatalf("IDs not strictly ascending: %d then %d", first[i-1].id, first[i].id)
			}
		}
	})

	t.Run("ResetReplaysIdentically", func(t *testing.T) {
		cur := open(t)
		defer func() { _ = cur.Close() }()
		first := drain(t, cur)
		if err := cur.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		second := drain(t, cur)
		if len(first) != len(second) {
			t.Fatalf("replay yielded %d series, first pass %d", len(second), len(first))
		}
		for i := range first {
			if first[i].id != second[i].id {
				t.Fatalf("series %d: replay ID %d, first pass %d", i, second[i].id, first[i].id)
			}
			if len(first[i].readings) != len(second[i].readings) {
				t.Fatalf("series %d: replay has %d readings, first pass %d",
					i, len(second[i].readings), len(first[i].readings))
			}
			for j := range first[i].readings {
				if !stats.ExactEqual(first[i].readings[j], second[i].readings[j]) {
					t.Fatalf("series %d reading %d: replay %v, first pass %v",
						i, j, second[i].readings[j], first[i].readings[j])
				}
			}
		}
	})

	t.Run("CloseIdempotent", func(t *testing.T) {
		cur := open(t)
		if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("Next: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := cur.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("Next after Close: err = %v, want io.EOF", err)
		}
	})

	t.Run("PartialReadCloseLeaksNothing", func(t *testing.T) {
		goroutines := runtime.NumGoroutine()
		fds := openFDs(t)
		cur := open(t)
		if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("Next: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		waitStable(ctx, t, "goroutines", goroutines, func() int { return runtime.NumGoroutine() })
		if fds >= 0 {
			waitStable(ctx, t, "fds", fds, func() int { return openFDs(t) })
		}
	})
}

// RunPartitioned exercises a PartitionedSource implementation against
// the partition contract. open must return a fresh source with data
// loaded; it is called once per sub-check (and once per partition in
// the per-partition conformance pass). The source's serial NewCursor
// provides the reference ID set the partition union is compared to.
func RunPartitioned(t *testing.T, open func(t *testing.T) core.PartitionedSource) {
	t.Helper()

	t.Run("CoversExactlyOnce", func(t *testing.T) {
		src := open(t)
		for _, max := range []int{1, 2, 3, 7} {
			curs, err := src.NewCursors(max)
			if err != nil {
				t.Fatalf("NewCursors(%d): %v", max, err)
			}
			if len(curs) > max {
				t.Fatalf("NewCursors(%d) returned %d cursors", max, len(curs))
			}
			seen := map[timeseries.ID]int{} // id -> partition that yielded it
			for p, cur := range curs {
				for _, s := range drain(t, cur) {
					if prev, dup := seen[s.id]; dup {
						t.Fatalf("max=%d: household %d in partitions %d and %d", max, s.id, prev, p)
					}
					seen[s.id] = p
				}
				if err := cur.Close(); err != nil {
					t.Fatalf("max=%d: partition %d Close: %v", max, p, err)
				}
			}
			fullCur, err := serialCursor(src)
			if err != nil {
				t.Fatalf("max=%d: full cursor: %v", max, err)
			}
			var missing, extra []timeseries.ID
			fullCount := 0
			for _, s := range drain(t, fullCur) {
				fullCount++
				if _, ok := seen[s.id]; !ok {
					missing = append(missing, s.id)
				}
				delete(seen, s.id)
			}
			_ = fullCur.Close()
			for id := range seen {
				extra = append(extra, id)
			}
			if len(missing) > 0 || len(extra) > 0 {
				t.Fatalf("max=%d: union != full ID set (missing %v, extra %v)", max, missing, extra)
			}
			if fullCount == 0 {
				t.Fatalf("max=%d: full cursor yielded no series", max)
			}
		}
	})

	t.Run("EachPartitionConformant", func(t *testing.T) {
		src := open(t)
		curs, err := src.NewCursors(3)
		if err != nil {
			t.Fatalf("NewCursors(3): %v", err)
		}
		empty := make([]bool, len(curs))
		for p, cur := range curs {
			empty[p] = len(drain(t, cur)) == 0
			_ = cur.Close()
		}
		for p := range curs {
			if empty[p] {
				// Padding cursors past the data are legal; the Cursor
				// suite requires at least one series, so skip them.
				continue
			}
			p := p
			t.Run(fmt.Sprintf("partition%d", p), func(t *testing.T) {
				Run(t, func(t *testing.T) core.Cursor {
					cs, err := open(t).NewCursors(len(curs))
					if err != nil {
						t.Fatalf("NewCursors: %v", err)
					}
					for q, c := range cs {
						if q != p {
							_ = c.Close()
						}
					}
					if p >= len(cs) {
						t.Fatalf("NewCursors returned %d cursors, want >= %d", len(cs), p+1)
					}
					return cs[p]
				})
			})
		}
	})

	t.Run("MaxOneMatchesSerialOrFewer", func(t *testing.T) {
		src := open(t)
		curs, err := src.NewCursors(1)
		if err != nil {
			t.Fatalf("NewCursors(1): %v", err)
		}
		if len(curs) != 1 {
			t.Fatalf("NewCursors(1) returned %d cursors, want 1", len(curs))
		}
		got := drain(t, curs[0])
		_ = curs[0].Close()
		fullCur, err := serialCursor(src)
		if err != nil {
			t.Fatalf("full cursor: %v", err)
		}
		want := drain(t, fullCur)
		_ = fullCur.Close()
		if len(got) != len(want) {
			t.Fatalf("single partition yielded %d series, serial %d", len(got), len(want))
		}
		for i := range want {
			if got[i].id != want[i].id {
				t.Fatalf("series %d: partition ID %d, serial %d", i, got[i].id, want[i].id)
			}
		}
	})
}

// serialCursor opens the source's full serial cursor; every
// PartitionedSource in this repo is also an exec.Source.
func serialCursor(src core.PartitionedSource) (core.Cursor, error) {
	s, ok := src.(interface{ NewCursor() (core.Cursor, error) })
	if !ok {
		return nil, fmt.Errorf("cursortest: source %T has no NewCursor", src)
	}
	return s.NewCursor()
}

// drain reads the cursor to io.EOF, snapshotting every series.
func drain(t *testing.T, cur core.Cursor) []snapshot {
	t.Helper()
	var out []snapshot
	for {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, snapshot{
			id:       s.ID,
			readings: append([]float64(nil), s.Readings...),
		})
	}
}

// openFDs counts this process's open file descriptors, or -1 when the
// platform offers no /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// waitStable retries until the counter drops back to the baseline (GC
// and runtime bookkeeping can lag a Close). The context bounds the
// whole wait so a wedged runtime cannot stall the suite past its
// deadline.
func waitStable(ctx context.Context, t *testing.T, what string, base int, count func() int) {
	t.Helper()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var n int
	for i := 0; i < 50; i++ {
		n = count()
		if n <= base {
			return
		}
		runtime.GC()
		select {
		case <-ctx.Done():
			t.Fatalf("%s did not settle before %v: %d before, %d after", what, ctx.Err(), base, n)
		case <-tick.C:
		}
	}
	t.Fatalf("%s leaked: %d before, %d after", what, base, n)
}
