// Package cursortest is a conformance suite for core.Cursor
// implementations. Every engine's cursor is run through the same
// checks: it exhausts to io.EOF and stays exhausted, Reset replays the
// identical sequence, Close is idempotent, and a partial read followed
// by Close leaks neither goroutines nor file descriptors.
package cursortest

import (
	"errors"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// snapshot is one drained series, with readings copied out so a
// replay's buffer reuse cannot alias the first pass.
type snapshot struct {
	id       timeseries.ID
	readings []float64
}

// Run exercises one cursor implementation. open must return a fresh
// cursor positioned at the first consumer; it is called once per
// sub-check.
func Run(t *testing.T, open func(t *testing.T) core.Cursor) {
	t.Helper()

	t.Run("ExhaustsAndStaysExhausted", func(t *testing.T) {
		cur := open(t)
		defer func() { _ = cur.Close() }()
		first := drain(t, cur)
		if len(first) == 0 {
			t.Fatal("cursor yielded no series")
		}
		for i := 0; i < 2; i++ {
			if _, err := cur.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("Next after EOF #%d: err = %v, want io.EOF", i+1, err)
			}
		}
		for i := 1; i < len(first); i++ {
			if first[i-1].id >= first[i].id {
				t.Fatalf("IDs not strictly ascending: %d then %d", first[i-1].id, first[i].id)
			}
		}
	})

	t.Run("ResetReplaysIdentically", func(t *testing.T) {
		cur := open(t)
		defer func() { _ = cur.Close() }()
		first := drain(t, cur)
		if err := cur.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		second := drain(t, cur)
		if len(first) != len(second) {
			t.Fatalf("replay yielded %d series, first pass %d", len(second), len(first))
		}
		for i := range first {
			if first[i].id != second[i].id {
				t.Fatalf("series %d: replay ID %d, first pass %d", i, second[i].id, first[i].id)
			}
			if len(first[i].readings) != len(second[i].readings) {
				t.Fatalf("series %d: replay has %d readings, first pass %d",
					i, len(second[i].readings), len(first[i].readings))
			}
			for j := range first[i].readings {
				if !stats.ExactEqual(first[i].readings[j], second[i].readings[j]) {
					t.Fatalf("series %d reading %d: replay %v, first pass %v",
						i, j, second[i].readings[j], first[i].readings[j])
				}
			}
		}
	})

	t.Run("CloseIdempotent", func(t *testing.T) {
		cur := open(t)
		if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("Next: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := cur.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("Next after Close: err = %v, want io.EOF", err)
		}
	})

	t.Run("PartialReadCloseLeaksNothing", func(t *testing.T) {
		goroutines := runtime.NumGoroutine()
		fds := openFDs(t)
		cur := open(t)
		if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("Next: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		waitStable(t, "goroutines", goroutines, func() int { return runtime.NumGoroutine() })
		if fds >= 0 {
			waitStable(t, "fds", fds, func() int { return openFDs(t) })
		}
	})
}

// drain reads the cursor to io.EOF, snapshotting every series.
func drain(t *testing.T, cur core.Cursor) []snapshot {
	t.Helper()
	var out []snapshot
	for {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, snapshot{
			id:       s.ID,
			readings: append([]float64(nil), s.Readings...),
		})
	}
}

// openFDs counts this process's open file descriptors, or -1 when the
// platform offers no /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// waitStable retries until the counter drops back to the baseline (GC
// and runtime bookkeeping can lag a Close).
func waitStable(t *testing.T, what string, base int, count func() int) {
	t.Helper()
	var n int
	for i := 0; i < 50; i++ {
		n = count()
		if n <= base {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s leaked: %d before, %d after", what, base, n)
}
