package cursortest

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// chaosConfig is the shared fault mix for the chaos suites: every fault
// kind, seeded, at rates that hit a handful of consumers in a
// 20-consumer fixture.
func chaosConfig() fault.Config {
	return fault.Config{
		Seed:      0xC4A05,
		Permanent: 0.08, Transient: 0.12,
		AllMissing: 0.06, Corrupt: 0.10,
	}
}

// RetryBudget mirrors the pipeline's transient retry budget
// (exec.ExtractAttempts; cursortest cannot import exec — the exec
// package's own tests import cursortest, and a test import cycle is
// illegal — so the value is pinned here and asserted equal to exec's in
// the exec package tests).
const RetryBudget = 4

// RunChaos exercises one cursor implementation under seeded fault
// injection and mid-run cancellation, the way the pipeline's
// containment layer drives it: transient errors are retried up to the
// budget, exhausted and permanent consumers are skipped and recorded,
// and cancelling the bound context must stop the stream promptly
// without leaking goroutines or file descriptors. open must return a
// fresh cursor positioned at the first consumer; it is called once per
// sub-check.
func RunChaos(t *testing.T, open func(t *testing.T) core.Cursor) {
	t.Helper()
	cfg := chaosConfig()

	t.Run("FaultsContainExactly", func(t *testing.T) {
		baseline := drain(t, open(t))
		if len(baseline) == 0 {
			t.Fatal("cursor yielded no series")
		}
		wantFailed := permanentIDs(cfg, baseline)

		cur := fault.WrapCursor(open(t), cfg)
		defer func() { _ = cur.Close() }()
		served, failed := chaosDrain(t, cur)

		if len(served)+len(failed) != len(baseline) {
			t.Fatalf("%d served + %d failed != %d consumers", len(served), len(failed), len(baseline))
		}
		if len(failed) != len(wantFailed) {
			t.Fatalf("failed = %v, want %v", failed, wantFailed)
		}
		for i := range wantFailed {
			if failed[i] != wantFailed[i] {
				t.Fatalf("failed[%d] = %d, want %d", i, failed[i], wantFailed[i])
			}
		}
		for i := 1; i < len(served); i++ {
			if served[i-1].id >= served[i].id {
				t.Fatalf("served IDs not strictly ascending: %d then %d", served[i-1].id, served[i].id)
			}
		}
		// Output parity: consumers that drew no fault are bit-identical
		// to the clean drain.
		byID := map[timeseries.ID]snapshot{}
		for _, s := range baseline {
			byID[s.id] = s
		}
		for _, s := range served {
			if cfg.Decide(s.id) != fault.None {
				continue
			}
			want := byID[s.id]
			if len(s.readings) != len(want.readings) {
				t.Fatalf("consumer %d: %d readings under chaos, %d clean", s.id, len(s.readings), len(want.readings))
			}
			for j := range want.readings {
				if !stats.ExactEqual(s.readings[j], want.readings[j]) {
					t.Fatalf("consumer %d reading %d: %v under chaos, %v clean",
						s.id, j, s.readings[j], want.readings[j])
				}
			}
		}
	})

	t.Run("ResetReplaysChaosIdentically", func(t *testing.T) {
		cur := fault.WrapCursor(open(t), cfg)
		defer func() { _ = cur.Close() }()
		served1, failed1 := chaosDrain(t, cur)
		if err := cur.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		served2, failed2 := chaosDrain(t, cur)
		if len(served1) != len(served2) || len(failed1) != len(failed2) {
			t.Fatalf("replay drifted: served %d/%d, failed %d/%d",
				len(served1), len(served2), len(failed1), len(failed2))
		}
		for i := range served1 {
			if served1[i].id != served2[i].id {
				t.Fatalf("served[%d]: %d vs %d", i, served1[i].id, served2[i].id)
			}
		}
		for i := range failed1 {
			if failed1[i] != failed2[i] {
				t.Fatalf("failed[%d]: %d vs %d", i, failed1[i], failed2[i])
			}
		}
	})

	t.Run("CloseIdempotentUnderFaults", func(t *testing.T) {
		cur := fault.WrapCursor(open(t), cfg)
		// Read a little — including, likely, a fault — then close twice.
		for i := 0; i < 3; i++ {
			if _, err := cur.Next(); errors.Is(err, io.EOF) {
				break
			}
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := cur.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("Next after Close: err = %v, want io.EOF", err)
		}
	})

	t.Run("CancelledContextStopsNext", func(t *testing.T) {
		cur := open(t)
		defer func() { _ = cur.Close() }()
		if _, ok := cur.(core.ContextCursor); !ok {
			t.Skipf("cursor %T has no context support", cur)
		}
		ctx, cancel := context.WithCancel(context.Background())
		core.BindContext(cur, ctx)
		if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("Next before cancel: %v", err)
		}
		cancel()
		start := time.Now()
		_, err := cur.Next()
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("Next after cancel: err = %v, want the context error", err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("Next took %v after cancellation", d)
		}
	})

	t.Run("CancelMidStreamLeaksNothing", func(t *testing.T) {
		baseGoroutines := numGoroutines()
		baseFDs := openFDs(t)

		slow := cfg
		slow.Delay = 2 * time.Millisecond
		cur := fault.WrapCursor(open(t), slow)
		ctx, cancel := context.WithCancel(context.Background())
		core.BindContext(cur, ctx)
		done := make(chan error, 1)
		go func() {
			for {
				_, err := cur.Next()
				if err == nil {
					continue
				}
				if ce, ok := core.AsConsumerError(err); ok {
					if ce.Transient {
						_ = cur.Skip()
					}
					continue
				}
				done <- err
				return
			}
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if errors.Is(err, io.EOF) {
				t.Log("cursor drained before the cancel landed; cancellation path untested this run")
			} else if !errors.Is(err, context.Canceled) {
				t.Fatalf("drain stopped with %v, want context.Canceled", err)
			}
		case <-time.After(time.Second):
			t.Fatal("drain did not stop within 1s of cancellation")
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer wcancel()
		waitStable(wctx, t, "goroutines", baseGoroutines, numGoroutines)
		if baseFDs >= 0 {
			waitStable(wctx, t, "fds", baseFDs, func() int { return openFDs(t) })
		}
	})
}

// RunChaosPartitioned exercises a PartitionedSource's cursors under the
// chaos fault mix: wrapped partitions must stay pairwise disjoint,
// their served+failed union must equal the full clean ID set, and each
// partition must contain exactly its own permanent consumers.
func RunChaosPartitioned(t *testing.T, open func(t *testing.T) core.PartitionedSource) {
	t.Helper()
	cfg := chaosConfig()

	t.Run("ChaosUnionCoversExactlyOnce", func(t *testing.T) {
		src := open(t)
		fullCur, err := serialCursor(src)
		if err != nil {
			t.Fatalf("full cursor: %v", err)
		}
		baseline := drain(t, fullCur)
		_ = fullCur.Close()
		wantFailed := permanentIDs(cfg, baseline)

		for _, max := range []int{2, 3} {
			curs, err := src.NewCursors(max)
			if err != nil {
				t.Fatalf("NewCursors(%d): %v", max, err)
			}
			seen := map[timeseries.ID]int{}
			var failed []timeseries.ID
			for p, inner := range curs {
				cur := fault.WrapCursor(inner, cfg)
				served, partFailed := chaosDrain(t, cur)
				for _, s := range served {
					if prev, dup := seen[s.id]; dup {
						t.Fatalf("max=%d: household %d in partitions %d and %d", max, s.id, prev, p)
					}
					seen[s.id] = p
				}
				failed = append(failed, partFailed...)
				if err := cur.Close(); err != nil {
					t.Fatalf("max=%d: partition %d Close: %v", max, p, err)
				}
			}
			sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
			if len(failed) != len(wantFailed) {
				t.Fatalf("max=%d: failed = %v, want %v", max, failed, wantFailed)
			}
			for i := range wantFailed {
				if failed[i] != wantFailed[i] {
					t.Fatalf("max=%d: failed[%d] = %d, want %d", max, i, failed[i], wantFailed[i])
				}
			}
			if len(seen)+len(failed) != len(baseline) {
				t.Fatalf("max=%d: %d served + %d failed != %d consumers",
					max, len(seen), len(failed), len(baseline))
			}
			for _, s := range baseline {
				if _, ok := seen[s.id]; !ok && cfg.Decide(s.id) != fault.Permanent {
					t.Fatalf("max=%d: household %d lost (drew %v)", max, s.id, cfg.Decide(s.id))
				}
			}
		}
	})

	t.Run("CancelOnePartitionLeaksNothing", func(t *testing.T) {
		baseGoroutines := numGoroutines()
		src := open(t)
		curs, err := src.NewCursors(3)
		if err != nil {
			t.Fatalf("NewCursors(3): %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		for _, cur := range curs {
			core.BindContext(cur, ctx)
		}
		// Read one series off each partition, cancel, then verify every
		// partition refuses further reads and closes cleanly.
		for _, cur := range curs {
			if _, err := cur.Next(); err != nil && !errors.Is(err, io.EOF) {
				t.Fatalf("Next before cancel: %v", err)
			}
		}
		cancel()
		for p, cur := range curs {
			if _, ok := cur.(core.ContextCursor); !ok {
				continue
			}
			if _, err := cur.Next(); err == nil || errors.Is(err, io.EOF) {
				t.Fatalf("partition %d: Next after cancel: err = %v, want the context error", p, err)
			}
		}
		for p, cur := range curs {
			if err := cur.Close(); err != nil {
				t.Fatalf("partition %d Close: %v", p, err)
			}
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer wcancel()
		waitStable(wctx, t, "goroutines", baseGoroutines, numGoroutines)
	})
}

// chaosDrain drives a fault-wrapped cursor the way the pipeline's
// containment layer does: transient consumer errors retry up to the
// budget then skip, permanent consumer errors are recorded, EOF ends
// the stream. Fatal (non-consumer) errors fail the test.
func chaosDrain(t *testing.T, cur *fault.Cursor) (served []snapshot, failed []timeseries.ID) {
	t.Helper()
	attempts := 0
	for {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return served, failed
		}
		if err != nil {
			ce, ok := core.AsConsumerError(err)
			if !ok {
				t.Fatalf("Next: %v", err)
			}
			if ce.Transient {
				attempts++
				if attempts < RetryBudget {
					continue
				}
				if err := cur.Skip(); err != nil {
					t.Fatalf("Skip: %v", err)
				}
			}
			attempts = 0
			failed = append(failed, ce.ID)
			continue
		}
		attempts = 0
		served = append(served, snapshot{
			id:       s.ID,
			readings: append([]float64(nil), s.Readings...),
		})
	}
}

// permanentIDs lists, ascending, the consumers the chaos config fails
// at the cursor level: permanent faults (corrupt and all-missing series
// are data-quality faults handled above the cursor, and transient
// faults recover within the retry budget).
func permanentIDs(cfg fault.Config, baseline []snapshot) []timeseries.ID {
	var out []timeseries.ID
	for _, s := range baseline {
		if cfg.Decide(s.id) == fault.Permanent {
			out = append(out, s.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func numGoroutines() int { return runtime.NumGoroutine() }

// RunPipelineChaos exercises a full engine run under the chaos fault
// mix and under cancellation. ids is the engine's full consumer set, in
// any order; run must execute the given spec over the fault-injected
// engine — typically
//
//	exec.RunContext(ctx, fault.New(engine, cfg), spec)
//
// The indirection keeps cursortest import-cycle-free: engine test
// packages supply the exec call.
func RunPipelineChaos(t *testing.T, ids []timeseries.ID,
	run func(ctx context.Context, cfg fault.Config, spec core.Spec) (*core.Results, error)) {
	t.Helper()
	cfg := chaosConfig()

	t.Run("QuarantineReportsExactlyInjected", func(t *testing.T) {
		want := cfg.FailingIDs(ids, core.Quarantine, RetryBudget)
		if len(want) == 0 {
			t.Fatalf("chaos config injured no consumer out of %d; enlarge the fixture", len(ids))
		}
		for _, task := range []core.Task{core.TaskHistogram, core.TaskSimilarity} {
			for _, workers := range []int{1, 4} {
				spec := core.Spec{Task: task, K: 3, Workers: workers, FailPolicy: core.Quarantine}
				got, err := run(context.Background(), cfg, spec)
				if err != nil {
					t.Fatalf("%v w%d: %v", task, workers, err)
				}
				gotIDs := got.FailedIDs()
				if len(gotIDs) != len(want) {
					t.Fatalf("%v w%d: failed %v, want %v", task, workers, gotIDs, want)
				}
				for i := range want {
					if gotIDs[i] != want[i] {
						t.Fatalf("%v w%d: failed[%d] = %d, want %d", task, workers, i, gotIDs[i], want[i])
					}
				}
				if got.Count()+len(gotIDs) != len(ids) {
					t.Fatalf("%v w%d: %d results + %d failed != %d consumers",
						task, workers, got.Count(), len(gotIDs), len(ids))
				}
			}
		}
	})

	t.Run("RepairSavesCorrupt", func(t *testing.T) {
		want := cfg.FailingIDs(ids, core.Repair, RetryBudget)
		spec := core.Spec{Task: core.TaskHistogram, Workers: 2, FailPolicy: core.Repair}
		got, err := run(context.Background(), cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs := got.FailedIDs()
		if len(gotIDs) != len(want) {
			t.Fatalf("failed %v, want %v", gotIDs, want)
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("failed[%d] = %d, want %d", i, gotIDs[i], want[i])
			}
		}
		if got.Count()+len(gotIDs) != len(ids) {
			t.Fatalf("%d results + %d failed != %d consumers", got.Count(), len(gotIDs), len(ids))
		}
	})

	t.Run("CancelMidExtractReturnsPromptly", func(t *testing.T) {
		baseGoroutines := numGoroutines()
		slow := cfg
		slow.Delay = 2 * time.Millisecond
		ctx, cancel := context.WithCancel(context.Background())
		type outcome struct {
			err      error
			returned time.Time
		}
		done := make(chan outcome, 1)
		for _, workers := range []int{1, 4} {
			go func(ctx context.Context, workers int) {
				spec := core.Spec{Task: core.TaskHistogram, Workers: workers, FailPolicy: core.Quarantine}
				_, err := run(ctx, slow, spec)
				done <- outcome{err: err, returned: time.Now()}
			}(ctx, workers)
			time.Sleep(10 * time.Millisecond)
			cancelled := time.Now()
			cancel()
			select {
			case o := <-done:
				if o.err == nil {
					t.Logf("w%d: run finished before the cancel landed; latency untested", workers)
				} else if !errors.Is(o.err, context.Canceled) {
					t.Fatalf("w%d: err = %v, want context.Canceled", workers, o.err)
				} else if d := o.returned.Sub(cancelled); d > 100*time.Millisecond {
					t.Fatalf("w%d: run returned %v after cancellation, want <= 100ms", workers, d)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("w%d: run did not return after cancellation", workers)
			}
			ctx, cancel = context.WithCancel(context.Background())
		}
		cancel()
		wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer wcancel()
		waitStable(wctx, t, "goroutines", baseGoroutines, numGoroutines)
	})
}
