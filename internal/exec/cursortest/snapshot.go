package cursortest

import (
	"io"
	"sync"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/stats"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Snapshot-isolation chaos suite for core.Appender implementations.
// Sharded writers append hour batches concurrently — with deterministic
// duplicate redelivery — while a reader takes snapshots the whole time.
// Every snapshot must be a gap-free, bit-exact prefix of the expected
// stream for each household, replay identically under Reset even after
// later epochs commit, and never shrink relative to an earlier
// snapshot. Engine tests call this under -race; the data races the
// contract must exclude are exactly the ones the race detector sees.

// IsolationValue is the deterministic consumption value writers append
// for household id at the given absolute hour. Engine tests that
// pre-load a base must seed it with the same function. The values are
// dyadic rationals within 6 significant digits (for id ≤ 19 and hour <
// 500) so they survive the meterdata text format bit-exactly when a
// test routes the base through Load.
func IsolationValue(id timeseries.ID, hour int) float64 {
	return float64(id)*500 + float64(hour) + 0.25
}

// IsolationTemp is the deterministic temperature for an absolute hour.
func IsolationTemp(hour int) float64 { return 10 + 0.5*float64(hour) }

// isolationWriters is the concurrent writer count; households map onto
// writers with core.ShardFor, so each household has exactly one writer
// and the per-household ordering contract is the writer's program
// order.
const isolationWriters = 4

// RunSnapshotIsolation drives the appender with isolationWriters
// concurrent sharded writers for extra hours beyond base (the hours
// already present for ids, seeded with IsolationValue/IsolationTemp),
// snapshotting throughout. Run it from a test whose name matches the
// CI chaos pattern so it executes under -race.
func RunSnapshotIsolation(t *testing.T, app core.Appender, ids []timeseries.ID, base, extra int) {
	t.Helper()
	runSnapshotIsolation(t, app, nil, ids, base, extra)
}

// RunCheckpointChaos is RunSnapshotIsolation with a checkpointer
// thrown into the race: ckpt is called back-to-back for the whole run,
// so snapshots and appends land before, during and after base folds.
// The invariants are the same — epochs never go backwards and every
// snapshot is a bit-exact gap-free prefix — which is exactly what a
// checkpoint could break by resetting the epoch or serving a torn
// base/tail pair.
func RunCheckpointChaos(t *testing.T, app core.Appender, ckpt func() error, ids []timeseries.ID, base, extra int) {
	t.Helper()
	runSnapshotIsolation(t, app, ckpt, ids, base, extra)
}

func runSnapshotIsolation(t *testing.T, app core.Appender, ckpt func() error, ids []timeseries.ID, base, extra int) {
	t.Helper()

	var wg sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, isolationWriters+1)
	for w := 0; w < isolationWriters; w++ {
		var own []timeseries.ID
		for _, id := range ids {
			if core.ShardFor(id, isolationWriters) == w {
				own = append(own, id)
			}
		}
		wg.Add(1)
		go func(own []timeseries.ID) {
			defer wg.Done()
			for h := base; h < base+extra; h++ {
				batch := make([]core.Reading, 0, len(own))
				for _, id := range own {
					batch = append(batch, core.Reading{
						ID: id, Hour: h,
						Consumption: IsolationValue(id, h),
						Temperature: IsolationTemp(h),
					})
				}
				if err := app.Append(batch); err != nil {
					errs <- err
					return
				}
				// Deterministic redelivery: every third batch is
				// offered again and must apply as a no-op.
				if h%3 == 0 {
					if err := app.Append(batch); err != nil {
						errs <- err
						return
					}
				}
			}
		}(own)
	}
	go func() { wg.Wait(); close(done) }()

	ckptDone := make(chan struct{})
	if ckpt != nil {
		go func() {
			defer close(ckptDone)
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := ckpt(); err != nil {
					errs <- err
					return
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	seen := make(map[timeseries.ID]int, len(ids))
	var lastEpoch core.Epoch
	running := true
	for running {
		select {
		case <-done:
			running = false
		default:
		}
		cur, epoch, err := app.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if epoch < lastEpoch {
			t.Fatalf("epoch went backwards: %d after %d", epoch, lastEpoch)
		}
		lastEpoch = epoch
		first := drainIsolation(t, cur, base+extra, seen)
		// Replaying after more epochs commit must reproduce the
		// snapshot bit-for-bit: later writes belong to epochs this
		// cursor never observes.
		if err := cur.Reset(); err != nil {
			t.Fatal(err)
		}
		second := drainIsolation(t, cur, base+extra, nil)
		if len(first) != len(second) {
			t.Fatalf("replay households: %d vs %d", len(second), len(first))
		}
		for id, vals := range first {
			re := second[id]
			if len(re) != len(vals) {
				t.Fatalf("household %d replay length: %d vs %d", id, len(re), len(vals))
			}
			for i := range vals {
				if !stats.ExactEqual(re[i], vals[i]) {
					t.Fatalf("household %d hour %d replay differs", id, i)
				}
			}
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
	}

	<-ckptDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The final snapshot sees everything.
	cur, _, err := app.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cur.Close() }()
	final := drainIsolation(t, cur, base+extra, nil)
	if len(final) != len(ids) {
		t.Fatalf("final households = %d, want %d", len(final), len(ids))
	}
	for id, vals := range final {
		if len(vals) != base+extra {
			t.Fatalf("household %d final length = %d, want %d", id, len(vals), base+extra)
		}
	}
}

// drainIsolation drains one snapshot cursor and checks the invariants:
// ascending household order, per-household bit-exact gap-free prefixes
// of the expected stream no longer than maxLen, a matching temperature
// prefix, and (when seen is non-nil) no household shrinking below a
// previously observed length.
func drainIsolation(t *testing.T, cur core.Cursor, maxLen int, seen map[timeseries.ID]int) map[timeseries.ID][]float64 {
	t.Helper()
	out := make(map[timeseries.ID][]float64)
	longest := 0
	var prev timeseries.ID
	for {
		s, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.ID <= prev {
			t.Fatalf("cursor order: household %d after %d", s.ID, prev)
		}
		prev = s.ID
		if len(s.Readings) > maxLen {
			t.Fatalf("household %d: %d hours, max %d", s.ID, len(s.Readings), maxLen)
		}
		for i, v := range s.Readings {
			if !stats.ExactEqual(v, IsolationValue(s.ID, i)) {
				t.Fatalf("household %d hour %d: got %v, want %v",
					s.ID, i, v, IsolationValue(s.ID, i))
			}
		}
		if seen != nil {
			if n := seen[s.ID]; len(s.Readings) < n {
				t.Fatalf("household %d shrank: %d after %d", s.ID, len(s.Readings), n)
			}
			seen[s.ID] = len(s.Readings)
		}
		if len(s.Readings) > longest {
			longest = len(s.Readings)
		}
		out[s.ID] = append([]float64(nil), s.Readings...)
	}
	if st, ok := cur.(core.SnapshotTemperature); ok {
		temp := st.SnapshotTemp()
		if len(temp.Values) < longest {
			t.Fatalf("snapshot temperature covers %d hours, series reach %d",
				len(temp.Values), longest)
		}
		for i, v := range temp.Values {
			if !stats.ExactEqual(v, IsolationTemp(i)) {
				t.Fatalf("temperature hour %d: got %v, want %v", i, v, IsolationTemp(i))
			}
		}
	}
	return out
}
