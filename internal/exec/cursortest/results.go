package cursortest

import (
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/stats"
)

// CompareResults fails the test unless got agrees bit-for-bit with
// want on every task's result set. It lives here, next to the cursor
// conformance suites, so both the exec package's own tests and engine
// tests (which cannot share exec's internal test helpers) assert the
// same notion of "identical to the reference".
func CompareResults(t *testing.T, got, want *core.Results) {
	t.Helper()
	if len(got.Histograms) != len(want.Histograms) {
		t.Fatalf("histograms: %d vs %d", len(got.Histograms), len(want.Histograms))
	}
	for i := range want.Histograms {
		g, w := got.Histograms[i], want.Histograms[i]
		if g.ID != w.ID {
			t.Fatalf("histogram %d: ID %d vs %d", i, g.ID, w.ID)
		}
		for j := range w.Histogram.Counts {
			if g.Histogram.Counts[j] != w.Histogram.Counts[j] {
				t.Fatalf("histogram %d bucket %d: %d vs %d",
					i, j, g.Histogram.Counts[j], w.Histogram.Counts[j])
			}
		}
	}
	if len(got.ThreeLines) != len(want.ThreeLines) {
		t.Fatalf("3-lines: %d vs %d", len(got.ThreeLines), len(want.ThreeLines))
	}
	for i := range want.ThreeLines {
		g, w := got.ThreeLines[i], want.ThreeLines[i]
		if g.ID != w.ID ||
			!stats.ExactEqual(g.HeatingGradient, w.HeatingGradient) ||
			!stats.ExactEqual(g.CoolingGradient, w.CoolingGradient) ||
			!stats.ExactEqual(g.BaseLoad, w.BaseLoad) {
			t.Fatalf("3-line %d: %+v vs %+v", i, g, w)
		}
	}
	if len(got.Profiles) != len(want.Profiles) {
		t.Fatalf("profiles: %d vs %d", len(got.Profiles), len(want.Profiles))
	}
	for i := range want.Profiles {
		g, w := got.Profiles[i], want.Profiles[i]
		if g.ID != w.ID {
			t.Fatalf("profile %d: ID %d vs %d", i, g.ID, w.ID)
		}
		for h := range w.Profile {
			if !stats.ExactEqual(g.Profile[h], w.Profile[h]) {
				t.Fatalf("profile %d hour %d differs", i, h)
			}
		}
	}
	if len(got.Similar) != len(want.Similar) {
		t.Fatalf("similar: %d vs %d", len(got.Similar), len(want.Similar))
	}
	for i := range want.Similar {
		g, w := got.Similar[i], want.Similar[i]
		if g.ID != w.ID {
			t.Fatalf("similar %d: ID %d vs %d", i, g.ID, w.ID)
		}
		if len(g.Matches) != len(w.Matches) {
			t.Fatalf("similar %d: %d vs %d matches", i, len(g.Matches), len(w.Matches))
		}
		for j := range w.Matches {
			if g.Matches[j].ID != w.Matches[j].ID ||
				!stats.ExactEqual(g.Matches[j].Score, w.Matches[j].Score) {
				t.Fatalf("similar %d match %d differs", i, j)
			}
		}
	}
}
