package cursortest

import (
	"context"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/fault"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Crash-recovery conformance suite for WAL-armed core.Appender
// implementations. A probe run over a deterministic in-memory disk
// (fault.Disk) counts every write/sync/rename the engine's log issues
// for a fixed ingestion script; the suite then sweeps a crash across
// those operations — every injected point kills the engine mid-flight,
// reboots the disk (resolving unsynced suffixes to deterministically
// torn, possibly bit-flipped tails), reopens the engine, and asserts:
//
//   - every household recovers a bit-exact, gap-free prefix of the
//     offered stream (torn or corrupt log tails must be truncated,
//     never decoded into readings);
//   - under a durable fsync policy, every batch acked before the
//     crash survives it (acked ⊆ recovered ⊆ offered);
//   - analytics over the recovered snapshot are bit-identical to the
//     reference implementation over the same logical data — the
//     no-crash oracle.
//
// At least one sweep trial must observe a torn file, so the CRC
// truncation path is provably exercised.

// RecoveryEngine is the slice of an engine the recovery suite drives.
type RecoveryEngine interface {
	core.Appender
	// Crash simulates process death: drop every handle, no flush.
	Crash()
}

// RecoveryHarness wires one engine into the crash-injection sweep.
type RecoveryHarness struct {
	// Open opens a fresh engine over dir with its write-ahead log
	// routed through disk. Called at trial start and again after each
	// simulated crash; it must attach whatever state survives under
	// dir and replay the log.
	Open func(t *testing.T, dir string, disk *fault.Disk) RecoveryEngine
	// Seed optionally installs Base hours of bulk-loaded state on a
	// freshly opened engine, seeded with IsolationValue/IsolationTemp
	// so recovered prefixes verify uniformly. Runs once per trial,
	// before any swept crash point.
	Seed func(t *testing.T, eng RecoveryEngine)
	// Checkpoint optionally folds the live tail mid-script, so the
	// sweep visits crash windows inside the checkpoint protocol.
	// Errors after the crash point has been hit are expected.
	Checkpoint func(eng RecoveryEngine) error
	// Close cleanly shuts the recovered engine down at trial end.
	Close func(eng RecoveryEngine)
	// Run executes spec over a snapshot of the recovered engine for
	// the no-crash oracle — pass exec.RunSnapshot. It is injected
	// rather than imported because internal/exec's own tests import
	// this package.
	Run func(ctx context.Context, app core.Appender, spec core.Spec) (*core.Results, core.Epoch, error)
	// Durable asserts acked-batch recovery (wal.SyncAlways and
	// wal.SyncBatch; false for wal.SyncOff, which forfeits it).
	Durable bool
	// Base is the number of hours Seed installs (0 without Seed).
	Base int
	// Hours is how many live hours the script appends after Base.
	Hours int
}

const (
	// minCrashPoints is the floor on sweepable operations a harness
	// script must generate; scripts shorter than this leave crash
	// windows unvisited and fail loudly instead.
	minCrashPoints = 100
	// maxRecoveryTrials caps the sweep; wider ranges are sampled with
	// an even stride.
	maxRecoveryTrials = 160
	// recoverySeed drives every deterministic disk decision.
	recoverySeed = 0x5eed0c0de
)

// RunRecovery sweeps a deterministic crash across every write-ahead
// log operation of a fixed ingestion script and asserts acked-prefix
// recovery after each one. ids follow the IsolationValue constraints
// (id ≤ 19 when Seed routes the base through the text format).
func RunRecovery(t *testing.T, h RecoveryHarness, ids []timeseries.ID) {
	t.Helper()
	if h.Run == nil {
		t.Fatal("RecoveryHarness.Run is required (pass exec.RunSnapshot)")
	}

	// Probe: same script, never-crashing disk, to bound the sweep.
	probe := fault.NewDisk(fault.DiskConfig{Seed: recoverySeed})
	eng := h.Open(t, t.TempDir(), probe)
	if h.Seed != nil {
		h.Seed(t, eng)
	}
	opsSeed := probe.Ops()
	feedRecoveryScript(t, h, eng, probe, ids)
	opsEnd := probe.Ops()
	if h.Close != nil {
		h.Close(eng)
	}
	points := opsEnd - opsSeed
	if points < minCrashPoints {
		t.Fatalf("script generates %d crash points, need at least %d: lengthen Hours", points, minCrashPoints)
	}

	trials := points
	if trials > maxRecoveryTrials {
		trials = maxRecoveryTrials
	}
	tornTotal := 0
	for i := int64(0); i < trials; i++ {
		// Evenly strided crash ops in (opsSeed, opsEnd].
		op := opsSeed + ((i+1)*points)/trials
		tornTotal += runRecoveryTrial(t, h, ids, op)
		if t.Failed() {
			t.Fatalf("crash at disk op %d: see failures above", op)
		}
	}
	if tornTotal == 0 {
		t.Errorf("no sweep trial observed a torn file; the CRC truncation path went unexercised")
	}
}

// feedRecoveryScript drives the deterministic ingestion script: one
// batch per hour across all ids, every 4th hour redelivered, one
// checkpoint two-thirds through. It returns the count of fully acked
// hours and the count of offered hours (acked plus the batch the
// crash may have caught half-logged).
func feedRecoveryScript(t *testing.T, h RecoveryHarness, eng RecoveryEngine, disk *fault.Disk, ids []timeseries.ID) (acked, offered int) {
	t.Helper()
	acked, offered = h.Base, h.Base
	ckptAt := h.Base + (2*h.Hours)/3
	for hr := h.Base; hr < h.Base+h.Hours; hr++ {
		batch := make([]core.Reading, 0, len(ids))
		for _, id := range ids {
			batch = append(batch, core.Reading{
				ID: id, Hour: hr,
				Consumption: IsolationValue(id, hr),
				Temperature: IsolationTemp(hr),
			})
		}
		offered = hr + 1
		if err := eng.Append(batch); err != nil {
			if disk.Crashed() {
				return acked, offered
			}
			t.Fatalf("append hour %d: %v", hr, err)
		}
		acked = hr + 1
		if hr%4 == 0 {
			// Deterministic redelivery: must ack as a no-op, and under
			// a WAL it re-frames the duplicates — more crash windows.
			if err := eng.Append(batch); err != nil {
				if disk.Crashed() {
					return acked, offered
				}
				t.Fatalf("redeliver hour %d: %v", hr, err)
			}
		}
		if hr == ckptAt && h.Checkpoint != nil {
			if err := h.Checkpoint(eng); err != nil && !disk.Crashed() {
				t.Fatalf("checkpoint at hour %d: %v", hr, err)
			}
			if disk.Crashed() {
				return acked, offered
			}
		}
	}
	return acked, offered
}

// runRecoveryTrial runs the script against a disk that crashes at op,
// reboots, reopens, and verifies recovery. Returns the number of torn
// files the reboot produced.
func runRecoveryTrial(t *testing.T, h RecoveryHarness, ids []timeseries.ID, op int64) int {
	t.Helper()
	disk := fault.NewDisk(fault.DiskConfig{Seed: recoverySeed, CrashAtOp: op})
	dir := t.TempDir()
	eng := h.Open(t, dir, disk)
	if h.Seed != nil {
		h.Seed(t, eng)
	}
	acked, offered := feedRecoveryScript(t, h, eng, disk, ids)
	if !disk.Crashed() {
		t.Fatalf("crash at op %d never fired (script ended at %d acked hours)", op, acked)
	}
	eng.Crash()
	disk.Reboot()
	torn := disk.TornFiles()

	re := h.Open(t, dir, disk)
	cur, _, err := re.Snapshot()
	if err != nil {
		t.Fatalf("crash at op %d: snapshot after recovery: %v", op, err)
	}
	// drainIsolation asserts ascending order, bit-exact gap-free
	// prefixes no longer than offered, and the temperature prefix — a
	// decoded torn tail would fail the bit-exactness check here.
	recovered := drainIsolation(t, cur, offered, nil)
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Durable {
		for _, id := range ids {
			if got := len(recovered[id]); got < acked {
				t.Fatalf("crash at op %d: household %d recovered %d hours, %d were acked before the crash",
					op, id, got, acked)
			}
		}
	}

	// No-crash oracle: analytics over the recovered snapshot must be
	// bit-identical to the reference implementation over the same
	// logical data.
	total := 0
	maxLen := 0
	ds := &timeseries.Dataset{Temperature: &timeseries.Temperature{}}
	for _, id := range ids {
		n := len(recovered[id])
		total += n
		if n > maxLen {
			maxLen = n
		}
		if n == 0 {
			continue
		}
		s := &timeseries.Series{ID: id, Readings: make([]float64, n)}
		for hr := 0; hr < n; hr++ {
			s.Readings[hr] = IsolationValue(id, hr)
		}
		ds.Series = append(ds.Series, s)
	}
	if total > 0 {
		for hr := 0; hr < maxLen; hr++ {
			ds.Temperature.Values = append(ds.Temperature.Values, IsolationTemp(hr))
		}
		spec := core.Spec{Task: core.TaskHistogram, Workers: 2}
		got, _, err := h.Run(context.Background(), re, spec)
		if err != nil {
			t.Fatalf("crash at op %d: analytics over recovered snapshot: %v", op, err)
		}
		want, err := core.RunReference(ds, spec)
		if err != nil {
			t.Fatalf("crash at op %d: reference: %v", op, err)
		}
		CompareResults(t, got, want)
	}
	if h.Close != nil {
		h.Close(re)
	}
	return torn
}
