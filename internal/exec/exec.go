// Package exec is the shared execution layer under all five engines:
// one extract → compute → emit pipeline that runs any benchmark task
// from any core.Cursor, with per-stage wall-clock and volume counters
// surfaced on core.Results.Phases.
//
// The split of responsibilities mirrors the paper's cost anatomy
// (Figure 6): the *engine* owns extraction — its native decode path,
// exposed as a cursor — while the pipeline owns task dispatch, worker
// fan-out (internal/sched), and deterministic result assembly. Engines
// therefore shrink to Load + NewCursor + capabilities; none of them
// re-implements task switching.
//
// Per-consumer tasks stream: the pipeline pulls a small block of series
// off the cursor (extract), fans the task kernel out over workers
// (compute), and appends the block's results in cursor order (emit).
// Blocks keep a partitioned file engine's memory flat (Figure 8) while
// still feeding enough work per scheduling round. The whole-dataset
// similarity task instead materializes the cursor once and runs the
// blocked kernel; a warm engine's DatasetCursor short-circuits that
// materialization so the dataset's cached flat-matrix packing survives.
//
// When the engine also implements core.PartitionedSource and the spec
// asks for more than one worker, streaming tasks take the overlapped
// path instead (prefetch.go): decode goroutines drain disjoint
// partition cursors into a bounded block channel that compute workers
// consume, phase times become per-goroutine busy sums, and a reorder
// stage keyed by household ID keeps results bit-identical to the serial
// path. core.PrefetchOff pins the serial path for A/B runs.
package exec

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/sched"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Source is what the pipeline needs from an engine: a cursor over the
// loaded series and the shared temperature year. core.Engine satisfies
// it.
type Source interface {
	NewCursor() (core.Cursor, error)
	Temperature() (*timeseries.Temperature, error)
}

// ParallelHinter is optionally implemented by sources whose natural
// intra-task parallelism exceeds a single thread even when the spec does
// not ask for workers — the cluster engines report their total task
// slots, so node-count sweeps keep scaling compute. The hint applies
// only when Spec.Workers is unset; an explicit worker count always wins.
type ParallelHinter interface {
	ParallelHint() int
}

// NewDatasetSource adapts an in-memory dataset to Source. Tests and the
// pipeline-vs-legacy benchmark use it as the minimal engine.
func NewDatasetSource(ds *timeseries.Dataset) Source { return datasetSource{ds: ds} }

type datasetSource struct{ ds *timeseries.Dataset }

func (s datasetSource) NewCursor() (core.Cursor, error) { return core.NewDatasetCursor(s.ds), nil }

func (s datasetSource) Temperature() (*timeseries.Temperature, error) {
	return s.ds.Temperature, nil
}

// blockFor sizes the extract block: enough rows to keep every worker
// busy for a few scheduler pulls, small enough that a streaming cursor
// (the partitioned file engine, the row store) holds only a bounded
// number of decoded series at a time.
func blockFor(workers int) int {
	b := 4 * workers
	if b < 16 {
		b = 16
	}
	return b
}

// Run executes one task from the source's cursor through the
// instrumented three-stage pipeline. Result order is ascending
// household ID — the order the Cursor contract fixes for serial
// extraction and the order core.RunReference produces — so engines stay
// bit-identical to the oracle on both the serial and the overlapped
// path.
func Run(src Source, spec core.Spec) (*core.Results, error) {
	requested := spec.Workers
	spec = spec.WithDefaults()
	workers := spec.Workers
	if requested <= 0 {
		if h, ok := src.(ParallelHinter); ok {
			if n := h.ParallelHint(); n > workers {
				workers = n
			}
		}
	}

	ph := &core.Phases{}
	// Temperature comes first on every path so engine-side caching it
	// triggers (e.g. the row store memoizing the shared series) is
	// sequenced before any cursor goroutine starts.
	start := time.Now()
	temp, err := src.Temperature()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return nil, err
	}

	out := &core.Results{Task: spec.Task, Phases: ph}

	// Overlapped extraction: streaming task + >1 worker + engine exposes
	// disjoint partitions + the spec didn't pin the serial path. A
	// single-partition answer falls back to the serial loop over that
	// cursor; an empty one to the plain NewCursor path.
	if spec.Task != core.TaskSimilarity && workers > 1 && spec.Prefetch != core.PrefetchOff {
		if ps, ok := src.(core.PartitionedSource); ok {
			start = time.Now()
			curs, err := ps.NewCursors(workers)
			ph.Extract.Wall += time.Since(start)
			if err != nil {
				return nil, err
			}
			if len(curs) >= 2 {
				if err := runPrefetch(curs, temp, spec, workers, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			if len(curs) == 1 {
				cur := curs[0]
				defer func() { _ = cur.Close() }()
				if err := runStreaming(cur, temp, spec, workers, out); err != nil {
					return nil, err
				}
				return out, nil
			}
		}
	}

	start = time.Now()
	cur, err := src.NewCursor()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return nil, err
	}
	defer func() { _ = cur.Close() }()

	if spec.Task == core.TaskSimilarity {
		if err := runSimilarity(cur, temp, spec, workers, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := runStreaming(cur, temp, spec, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runSimilarity materializes the cursor (extract) and runs the blocked
// all-pairs kernel (compute); emit is the assignment of the merged
// top-k lists.
func runSimilarity(cur core.Cursor, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results) error {
	ph := out.Phases
	start := time.Now()
	ds, err := materialize(cur, temp)
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return err
	}
	ph.Extract.Rows += int64(len(ds.Series))
	ph.Extract.Bytes += seriesBytes(ds.Series)

	start = time.Now()
	rs, err := similarity.ComputeParallel(ds, spec.K, workers)
	ph.Compute.Wall += time.Since(start)
	ph.Compute.Rows += int64(len(ds.Series))
	if err != nil {
		return err
	}

	start = time.Now()
	out.Similar = rs
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows += int64(len(rs))
	return nil
}

// materialize drains the cursor into a dataset. A DatasetCursor (warm
// engine) short-circuits: its backing dataset is used as-is, keeping
// any cached flat-matrix packing.
func materialize(cur core.Cursor, temp *timeseries.Temperature) (*timeseries.Dataset, error) {
	if dc, ok := cur.(core.DatasetCursor); ok {
		return dc.Dataset(), nil
	}
	var series []*timeseries.Series
	if h, ok := cur.(core.SizeHinter); ok {
		if n, hOK := h.SizeHint(); hOK {
			series = make([]*timeseries.Series, 0, n)
		}
	}
	for {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// runStreaming is the per-consumer path: extract a block of series,
// compute the kernel over workers, emit in cursor order, repeat.
func runStreaming(cur core.Cursor, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results) error {
	switch spec.Task {
	case core.TaskHistogram, core.TaskThreeLine, core.TaskPAR:
	default:
		return fmt.Errorf("exec: unknown task %v", spec.Task)
	}
	ph := out.Phases
	block := blockFor(workers)
	buf := make([]*timeseries.Series, 0, block)
	// Per-worker 3-line sub-phase accumulators (summed at the end so the
	// compute fan-out stays write-disjoint).
	tims := make([]threeline.Timing, workers)
	for {
		buf = buf[:0]
		start := time.Now()
		drained, err := fill(cur, &buf, block)
		ph.Extract.Wall += time.Since(start)
		if err != nil {
			return err
		}
		ph.Extract.Rows += int64(len(buf))
		ph.Extract.Bytes += seriesBytes(buf)
		if len(buf) > 0 {
			if err := computeBlock(buf, temp, spec, workers, out, tims); err != nil {
				return err
			}
		}
		if drained {
			break
		}
	}
	for _, tm := range tims {
		ph.T1Quantiles += tm.T1Quantiles
		ph.T2Regression += tm.T2Regression
		ph.T3Adjust += tm.T3Adjust
	}
	return nil
}

// fill pulls up to block series off the cursor; drained reports that the
// cursor hit io.EOF.
func fill(cur core.Cursor, buf *[]*timeseries.Series, block int) (drained bool, err error) {
	for len(*buf) < block {
		s, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		*buf = append(*buf, s)
	}
	return false, nil
}

// computeBlock runs the per-consumer kernel over one extracted block and
// appends the results in block order.
func computeBlock(buf []*timeseries.Series, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, tims []threeline.Timing) error {
	ph := out.Phases
	n := len(buf)
	start := time.Now()
	var hists []*histogram.Result
	var lines []*threeline.Result
	var profs []*par.Result
	switch spec.Task {
	case core.TaskHistogram:
		hists = make([]*histogram.Result, n)
	case core.TaskThreeLine:
		lines = make([]*threeline.Result, n)
	case core.TaskPAR:
		profs = make([]*par.Result, n)
	}
	err := sched.Run(n, 1, workers, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := buf[i]
			switch spec.Task {
			case core.TaskHistogram:
				r, err := histogram.ComputeBuckets(s, spec.Buckets)
				if err != nil {
					return err
				}
				hists[i] = r
			case core.TaskThreeLine:
				r, tm, err := threeline.ComputeTimed(s, temp, threeline.DefaultConfig())
				if err != nil {
					return err
				}
				tims[w].T1Quantiles += tm.T1Quantiles
				tims[w].T2Regression += tm.T2Regression
				tims[w].T3Adjust += tm.T3Adjust
				lines[i] = r
			case core.TaskPAR:
				r, err := par.ComputeOrder(s, temp, spec.Order)
				if err != nil {
					return err
				}
				profs[i] = r
			}
		}
		return nil
	})
	ph.Compute.Wall += time.Since(start)
	ph.Compute.Rows += int64(n)
	if err != nil {
		return err
	}

	start = time.Now()
	out.Histograms = append(out.Histograms, hists...)
	out.ThreeLines = append(out.ThreeLines, lines...)
	out.Profiles = append(out.Profiles, profs...)
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows += int64(n)
	return nil
}

// seriesBytes approximates the decoded payload of a series slice (8
// bytes per reading).
func seriesBytes(series []*timeseries.Series) int64 {
	var b int64
	for _, s := range series {
		b += int64(8 * len(s.Readings))
	}
	return b
}
