// Package exec is the shared execution layer under all five engines:
// one extract → compute → emit pipeline that runs any benchmark task
// from any core.Cursor, with per-stage wall-clock and volume counters
// surfaced on core.Results.Phases.
//
// The split of responsibilities mirrors the paper's cost anatomy
// (Figure 6): the *engine* owns extraction — its native decode path,
// exposed as a cursor — while the pipeline owns task dispatch, worker
// fan-out (internal/sched), and deterministic result assembly. Engines
// therefore shrink to Load + NewCursor + capabilities; none of them
// re-implements task switching.
//
// Per-consumer tasks stream: the pipeline pulls a small block of series
// off the cursor (extract), fans the task kernel out over workers
// (compute), and appends the block's results in cursor order (emit).
// Blocks keep a partitioned file engine's memory flat (Figure 8) while
// still feeding enough work per scheduling round. The whole-dataset
// similarity task instead materializes the cursor once and runs the
// blocked kernel; a warm engine's DatasetCursor short-circuits that
// materialization so the dataset's cached flat-matrix packing survives.
//
// When the engine also implements core.PartitionedSource and the spec
// asks for more than one worker, streaming tasks take the overlapped
// path instead (prefetch.go): decode goroutines drain disjoint
// partition cursors into a bounded block channel that compute workers
// consume, phase times become per-goroutine busy sums, and a reorder
// stage keyed by household ID keeps results bit-identical to the serial
// path. core.PrefetchOff pins the serial path for A/B runs.
//
// # Failure containment
//
// Every path runs under a context.Context (RunContext): cancelling it
// stops extraction promptly — the context is bound to every cursor that
// supports it (core.ContextCursor) and checked between Next calls — and
// the pipeline joins all of its goroutines and closes every cursor
// before returning the context's error.
//
// Spec.FailPolicy scopes failures to the consumer they belong to
// instead of the run (see core.FailPolicy). Under Quarantine or Repair:
// transient cursor errors (core.ConsumerError with Transient set) are
// retried with capped exponential backoff; permanent per-consumer
// errors, exhausted retries, kernel errors and recovered kernel panics
// land on Results.Failed; a series with missing (NaN) readings is
// quarantined, or — under Repair — routed through the hybrid imputer
// (internal/impute) and demoted to quarantine only when every reading
// is missing. Unaffected consumers produce bit-identical results to a
// run over a dataset without the failed series.
package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/histogram"
	"github.com/smartmeter/smartbench/internal/impute"
	"github.com/smartmeter/smartbench/internal/par"
	"github.com/smartmeter/smartbench/internal/sched"
	"github.com/smartmeter/smartbench/internal/similarity"
	"github.com/smartmeter/smartbench/internal/threeline"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// Source is what the pipeline needs from an engine: a cursor over the
// loaded series and the shared temperature year. core.Engine satisfies
// it.
type Source interface {
	NewCursor() (core.Cursor, error)
	Temperature() (*timeseries.Temperature, error)
}

// ParallelHinter is optionally implemented by sources whose natural
// intra-task parallelism exceeds a single thread even when the spec does
// not ask for workers — the cluster engines report their total task
// slots, so node-count sweeps keep scaling compute. The hint applies
// only when Spec.Workers is unset; an explicit worker count always wins.
type ParallelHinter interface {
	ParallelHint() int
}

// NewDatasetSource adapts an in-memory dataset to Source. Tests and the
// pipeline-vs-legacy benchmark use it as the minimal engine.
func NewDatasetSource(ds *timeseries.Dataset) Source { return datasetSource{ds: ds} }

type datasetSource struct{ ds *timeseries.Dataset }

func (s datasetSource) NewCursor() (core.Cursor, error) { return core.NewDatasetCursor(s.ds), nil }

func (s datasetSource) Temperature() (*timeseries.Temperature, error) {
	return s.ds.Temperature, nil
}

// blockFor sizes the extract block: enough rows to keep every worker
// busy for a few scheduler pulls, small enough that a streaming cursor
// (the partitioned file engine, the row store) holds only a bounded
// number of decoded series at a time.
func blockFor(workers int) int {
	b := 4 * workers
	if b < 16 {
		b = 16
	}
	return b
}

// Extraction retry schedule for transient per-consumer errors under
// Quarantine/Repair: ExtractAttempts total tries per consumer, backing
// off exponentially from retryBase and capping at retryCap so a run
// over a flaky source makes progress without hammering the storage.
// ExtractAttempts is exported so fault-injection tests can choose
// whether an injected transient error recovers or exhausts the budget.
const (
	ExtractAttempts = 4
	retryBase       = 200 * time.Microsecond
	retryCap        = 2 * time.Millisecond
)

// retryBackoff returns the sleep before retry attempt (1-based).
func retryBackoff(attempt int) time.Duration {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	return d
}

// sleepCtx sleeps for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// contain carries one run's failure-containment state: the policy and
// the quarantined consumers. add is safe for concurrent use (the
// overlapped path's decode goroutines and compute workers share one
// collector).
type contain struct {
	policy core.FailPolicy

	mu     sync.Mutex
	failed []core.ConsumerFailure
}

func (c *contain) add(id timeseries.ID, phase string, err error) {
	c.mu.Lock()
	c.failed = append(c.failed, core.ConsumerFailure{ID: id, Phase: phase, Err: err})
	c.mu.Unlock()
}

// finish moves the collected failures onto the results in ascending
// household-ID order.
func (c *contain) finish(out *core.Results) {
	c.mu.Lock()
	failed := c.failed
	c.failed = nil
	c.mu.Unlock()
	sort.Slice(failed, func(i, j int) bool { return failed[i].ID < failed[j].ID })
	out.Failed = failed
}

// next pulls one series off the cursor under the fail policy.
// Outcomes: (s, nil) on success; (nil, io.EOF) when drained; (nil, nil)
// when a consumer was quarantined (failure recorded); (nil, err) when
// the run must abort.
func (c *contain) next(ctx context.Context, cur core.Cursor) (*timeseries.Series, error) {
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := cur.Next()
		if err == nil {
			return s, nil
		}
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		if ctx.Err() != nil {
			// A bound cursor surfaces cancellation as its own error;
			// report the cancellation, not a consumer failure.
			return nil, ctx.Err()
		}
		if c.policy == core.FailFast {
			return nil, err
		}
		ce, ok := core.AsConsumerError(err)
		if !ok {
			// Not scoped to one consumer: the storage layer itself is
			// broken. Fatal under every policy.
			return nil, err
		}
		if ce.Transient {
			if attempt < ExtractAttempts {
				if err := sleepCtx(ctx, retryBackoff(attempt)); err != nil {
					return nil, err
				}
				continue
			}
			// Retries exhausted. The cursor is still positioned on the
			// failing consumer (the transient contract), so it must be
			// able to skip past it for the run to make progress.
			sk, ok := cur.(core.Skipper)
			if !ok {
				return nil, fmt.Errorf("exec: consumer %d still failing after %d attempts and cursor %T cannot skip: %w",
					ce.ID, ExtractAttempts, cur, ce.Err)
			}
			if err := sk.Skip(); err != nil {
				return nil, err
			}
			c.add(ce.ID, core.PhaseExtract, fmt.Errorf("transient error persisted after %d attempts: %w", ExtractAttempts, ce.Err))
			return nil, nil
		}
		// Permanent: the cursor has advanced past the consumer.
		c.add(ce.ID, core.PhaseExtract, err)
		return nil, nil
	}
}

// countMissing returns the number of NaN readings.
func countMissing(readings []float64) int {
	n := 0
	for _, v := range readings {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// screen inspects an extracted series for missing readings under
// Quarantine/Repair. It returns the series to compute (possibly a
// repaired copy — engine-owned buffers are never mutated), or nil when
// the consumer was quarantined. FailFast skips the scan entirely, so
// the default path pays nothing.
func (c *contain) screen(s *timeseries.Series) *timeseries.Series {
	if c.policy == core.FailFast {
		return s
	}
	miss := countMissing(s.Readings)
	if miss == 0 {
		return s
	}
	if c.policy == core.Quarantine {
		c.add(s.ID, core.PhaseExtract, fmt.Errorf("%w (%d of %d)", core.ErrMissingData, miss, len(s.Readings)))
		return nil
	}
	// Repair: impute a copy with the hybrid strategy. A series the
	// imputer cannot save (every reading missing) demotes to
	// quarantine.
	cp := s.Clone()
	if err := impute.CleanSeries(cp, 0); err != nil {
		c.add(s.ID, core.PhaseRepair, err)
		return nil
	}
	return cp
}

// computeErr decides whether a per-consumer compute error (kernel error
// or recovered panic) is quarantined (returns nil) or fatal.
func (c *contain) computeErr(id timeseries.ID, err error) error {
	if c.policy == core.FailFast {
		return err
	}
	c.add(id, core.PhaseCompute, err)
	return nil
}

// Run executes one task from the source's cursor through the
// instrumented three-stage pipeline with a background context. See
// RunContext.
func Run(src Source, spec core.Spec) (*core.Results, error) {
	return RunContext(context.Background(), src, spec)
}

// RunContext executes one task from the source's cursor through the
// instrumented three-stage pipeline. Result order is ascending
// household ID — the order the Cursor contract fixes for serial
// extraction and the order core.RunReference produces — so engines stay
// bit-identical to the oracle on both the serial and the overlapped
// path. Cancelling ctx stops the run promptly with every pipeline
// goroutine joined and every cursor closed.
func RunContext(ctx context.Context, src Source, spec core.Spec) (*core.Results, error) {
	requested := spec.Workers
	spec = spec.WithDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if requested <= 0 {
		if h, ok := src.(ParallelHinter); ok {
			if n := h.ParallelHint(); n > workers {
				workers = n
			}
		}
	}

	ph := &core.Phases{}
	// Temperature comes first on every path so engine-side caching it
	// triggers (e.g. the row store memoizing the shared series) is
	// sequenced before any cursor goroutine starts.
	start := time.Now()
	temp, err := src.Temperature()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return nil, err
	}

	out := &core.Results{Task: spec.Task, Phases: ph}
	cn := &contain{policy: spec.FailPolicy}

	// Compressed-domain fast path: the histogram task over a source that
	// publishes per-block summaries skips decoding blocks whose min and
	// max share a bucket. Results are bit-identical to the cursor
	// pipeline (see summary.go for the argument); fault-injecting
	// wrappers don't forward SummarySource, so chaos runs keep
	// exercising the generic path.
	if ss, ok := summaryHistogramApplies(src, spec); ok {
		if err := runHistogramSummaries(ctx, ss, spec, out); err != nil {
			return nil, err
		}
		cn.finish(out)
		return out, nil
	}

	// Compressed-domain PAR fast path: assemble series from block
	// headers (constant fills, single-day lane sums, periodic tiles),
	// decoding only the blocks the headers cannot reconstruct, and run
	// the unchanged PAR kernel over them (see summary_par.go).
	if ss, ok := summaryPARApplies(src, spec); ok {
		if err := runPARSummaries(ctx, ss, temp, spec, workers, out, cn); err != nil {
			return nil, err
		}
		cn.finish(out)
		return out, nil
	}

	// Overlapped extraction: streaming task + >1 worker + engine exposes
	// disjoint partitions + the spec didn't pin the serial path. A
	// single-partition answer falls back to the serial loop over that
	// cursor; an empty one to the plain NewCursor path.
	if spec.Task != core.TaskSimilarity && workers > 1 && spec.Prefetch != core.PrefetchOff {
		if ps, ok := src.(core.PartitionedSource); ok {
			start = time.Now()
			curs, err := ps.NewCursors(workers)
			ph.Extract.Wall += time.Since(start)
			if err != nil {
				return nil, err
			}
			for _, cur := range curs {
				core.BindContext(cur, ctx)
			}
			if len(curs) >= 2 {
				if err := runPrefetch(ctx, curs, temp, spec, workers, out, cn); err != nil {
					return nil, err
				}
				cn.finish(out)
				return out, nil
			}
			if len(curs) == 1 {
				cur := curs[0]
				defer func() { _ = cur.Close() }()
				if err := runStreaming(ctx, cur, temp, spec, workers, out, cn); err != nil {
					return nil, err
				}
				cn.finish(out)
				return out, nil
			}
		}
	}

	start = time.Now()
	cur, err := src.NewCursor()
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return nil, err
	}
	core.BindContext(cur, ctx)
	defer func() { _ = cur.Close() }()

	if spec.Task == core.TaskSimilarity {
		if err := runSimilarity(ctx, cur, temp, spec, workers, out, cn); err != nil {
			return nil, err
		}
		cn.finish(out)
		return out, nil
	}
	if err := runStreaming(ctx, cur, temp, spec, workers, out, cn); err != nil {
		return nil, err
	}
	cn.finish(out)
	return out, nil
}

// runSimilarity materializes the cursor (extract) and runs the blocked
// all-pairs kernel (compute); emit is the assignment of the merged
// top-k lists.
func runSimilarity(ctx context.Context, cur core.Cursor, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, cn *contain) error {
	ph := out.Phases
	start := time.Now()
	ds, err := materialize(ctx, cur, temp, cn)
	ph.Extract.Wall += time.Since(start)
	if err != nil {
		return err
	}
	ph.Extract.Rows += int64(len(ds.Series))
	ph.Extract.Bytes += seriesBytes(ds.Series)

	start = time.Now()
	rs, err := safeSimilarity(ds, spec.K, workers)
	ph.Compute.Wall += time.Since(start)
	ph.Compute.Rows += int64(len(ds.Series))
	if err != nil {
		return err
	}

	start = time.Now()
	out.Similar = rs
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows += int64(len(rs))
	return nil
}

// safeSimilarity runs the all-pairs kernel with a panic backstop: the
// whole-dataset task has no per-consumer attribution, so a recovered
// panic aborts the run with a debuggable error instead of killing the
// process.
func safeSimilarity(ds *timeseries.Dataset, k, workers int) (rs []*similarity.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("exec: similarity kernel: %w", core.NewPanicError(v))
		}
	}()
	return similarity.ComputeParallel(ds, k, workers)
}

// materialize drains the cursor into a dataset under the fail policy. A
// DatasetCursor (warm engine) short-circuits: its backing dataset is
// screened in place and used as-is when clean, keeping any cached
// flat-matrix packing.
func materialize(ctx context.Context, cur core.Cursor, temp *timeseries.Temperature, cn *contain) (*timeseries.Dataset, error) {
	if dc, ok := cur.(core.DatasetCursor); ok {
		return screenDataset(ctx, dc.Dataset(), cn)
	}
	var series []*timeseries.Series
	if h, ok := cur.(core.SizeHinter); ok {
		if n, hOK := h.SizeHint(); hOK {
			series = make([]*timeseries.Series, 0, n)
		}
	}
	for {
		s, err := cn.next(ctx, cur)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if s == nil {
			continue // quarantined
		}
		if s = cn.screen(s); s == nil {
			continue
		}
		series = append(series, s)
	}
	return &timeseries.Dataset{Series: series, Temperature: temp}, nil
}

// screenDataset applies the fail policy to an already materialized
// dataset. The clean common case returns the dataset untouched (cached
// flat-matrix packing survives); a dataset with dirty series gets a
// fresh Series slice holding repaired copies or omitting quarantined
// consumers.
func screenDataset(ctx context.Context, ds *timeseries.Dataset, cn *contain) (*timeseries.Dataset, error) {
	if cn.policy == core.FailFast {
		return ds, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dirty := false
	for _, s := range ds.Series {
		if countMissing(s.Readings) > 0 {
			dirty = true
			break
		}
	}
	if !dirty {
		return ds, nil
	}
	series := make([]*timeseries.Series, 0, len(ds.Series))
	for _, s := range ds.Series {
		if s = cn.screen(s); s != nil {
			series = append(series, s)
		}
	}
	return &timeseries.Dataset{Series: series, Temperature: ds.Temperature}, nil
}

// runStreaming is the per-consumer path: extract a block of series,
// compute the kernel over workers, emit in cursor order, repeat.
func runStreaming(ctx context.Context, cur core.Cursor, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, cn *contain) error {
	switch spec.Task {
	case core.TaskHistogram, core.TaskThreeLine, core.TaskPAR:
	default:
		return fmt.Errorf("exec: unknown task %v", spec.Task)
	}
	ph := out.Phases
	block := blockFor(workers)
	buf := make([]*timeseries.Series, 0, block)
	// Per-worker 3-line sub-phase accumulators (summed at the end so the
	// compute fan-out stays write-disjoint).
	tims := make([]threeline.Timing, workers)
	for {
		buf = buf[:0]
		start := time.Now()
		drained, err := fill(ctx, cur, &buf, block, cn)
		ph.Extract.Wall += time.Since(start)
		if err != nil {
			return err
		}
		ph.Extract.Rows += int64(len(buf))
		ph.Extract.Bytes += seriesBytes(buf)
		if len(buf) > 0 {
			if err := computeBlock(buf, temp, spec, workers, out, tims, cn); err != nil {
				return err
			}
		}
		if drained {
			break
		}
	}
	for _, tm := range tims {
		ph.T1Quantiles += tm.T1Quantiles
		ph.T2Regression += tm.T2Regression
		ph.T3Adjust += tm.T3Adjust
	}
	return nil
}

// fill pulls up to block computable series off the cursor, retrying and
// quarantining per the fail policy; drained reports that the cursor hit
// io.EOF.
func fill(ctx context.Context, cur core.Cursor, buf *[]*timeseries.Series, block int, cn *contain) (drained bool, err error) {
	for len(*buf) < block {
		s, err := cn.next(ctx, cur)
		if errors.Is(err, io.EOF) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		if s == nil {
			continue // quarantined
		}
		if s = cn.screen(s); s == nil {
			continue
		}
		*buf = append(*buf, s)
	}
	return false, nil
}

// Per-kernel panic guards: a panic inside one consumer's kernel (the
// similarity tile-index and stats matrix invariants panic on malformed
// shapes) becomes a per-consumer error carrying the stack, so the fail
// policy can quarantine the consumer instead of losing the run.

func safeBuckets(s *timeseries.Series, buckets int) (r *histogram.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &core.ConsumerError{ID: s.ID, Err: core.NewPanicError(v)}
		}
	}()
	return histogram.ComputeBuckets(s, buckets)
}

func safeThreeLine(s *timeseries.Series, temp *timeseries.Temperature) (r *threeline.Result, tm threeline.Timing, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &core.ConsumerError{ID: s.ID, Err: core.NewPanicError(v)}
		}
	}()
	return threeline.ComputeTimed(s, temp, threeline.DefaultConfig())
}

func safePAR(s *timeseries.Series, temp *timeseries.Temperature, order int) (r *par.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &core.ConsumerError{ID: s.ID, Err: core.NewPanicError(v)}
		}
	}()
	return par.ComputeOrder(s, temp, order)
}

// computeBlock runs the per-consumer kernel over one extracted block and
// appends the surviving results in block order.
func computeBlock(buf []*timeseries.Series, temp *timeseries.Temperature, spec core.Spec, workers int, out *core.Results, tims []threeline.Timing, cn *contain) error {
	ph := out.Phases
	n := len(buf)
	start := time.Now()
	var hists []*histogram.Result
	var lines []*threeline.Result
	var profs []*par.Result
	switch spec.Task {
	case core.TaskHistogram:
		hists = make([]*histogram.Result, n)
	case core.TaskThreeLine:
		lines = make([]*threeline.Result, n)
	case core.TaskPAR:
		profs = make([]*par.Result, n)
	}
	err := sched.Run(n, 1, workers, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := buf[i]
			switch spec.Task {
			case core.TaskHistogram:
				r, err := safeBuckets(s, spec.Buckets)
				if err != nil {
					if err := cn.computeErr(s.ID, err); err != nil {
						return err
					}
					continue
				}
				hists[i] = r
			case core.TaskThreeLine:
				r, tm, err := safeThreeLine(s, temp)
				if err != nil {
					if err := cn.computeErr(s.ID, err); err != nil {
						return err
					}
					continue
				}
				tims[w].T1Quantiles += tm.T1Quantiles
				tims[w].T2Regression += tm.T2Regression
				tims[w].T3Adjust += tm.T3Adjust
				lines[i] = r
			case core.TaskPAR:
				r, err := safePAR(s, temp, spec.Order)
				if err != nil {
					if err := cn.computeErr(s.ID, err); err != nil {
						return err
					}
					continue
				}
				profs[i] = r
			}
		}
		return nil
	})
	ph.Compute.Wall += time.Since(start)
	ph.Compute.Rows += int64(n)
	if err != nil {
		return err
	}

	start = time.Now()
	emitted := 0
	for _, r := range hists {
		if r != nil {
			out.Histograms = append(out.Histograms, r)
			emitted++
		}
	}
	for _, r := range lines {
		if r != nil {
			out.ThreeLines = append(out.ThreeLines, r)
			emitted++
		}
	}
	for _, r := range profs {
		if r != nil {
			out.Profiles = append(out.Profiles, r)
			emitted++
		}
	}
	ph.Emit.Wall += time.Since(start)
	ph.Emit.Rows += int64(emitted)
	return nil
}

// seriesBytes approximates the decoded payload of a series slice (8
// bytes per reading).
func seriesBytes(series []*timeseries.Series) int64 {
	var b int64
	for _, s := range series {
		b += int64(8 * len(s.Readings))
	}
	return b
}
