package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// partitionedSource is the minimal PartitionedSource for pipeline tests:
// an in-memory dataset sharded either into contiguous ID ranges (like
// the storage engines) or round-robin (like the cluster engines' hash
// partitions, whose ID ranges interleave).
type partitionedSource struct {
	ds          *timeseries.Dataset
	roundRobin  bool
	cursorCalls *int // increments on NewCursor (serial path probe)
	partCalls   *int // increments on NewCursors
	maxParts    int  // cap on partitions handed out (0 = no cap)
}

func (s partitionedSource) NewCursor() (core.Cursor, error) {
	if s.cursorCalls != nil {
		*s.cursorCalls++
	}
	return core.NewDatasetCursor(s.ds), nil
}

func (s partitionedSource) Temperature() (*timeseries.Temperature, error) {
	return s.ds.Temperature, nil
}

func (s partitionedSource) NewCursors(max int) ([]core.Cursor, error) {
	if s.partCalls != nil {
		*s.partCalls++
	}
	if s.maxParts > 0 && max > s.maxParts {
		max = s.maxParts
	}
	var parts [][]*timeseries.Series
	if s.roundRobin {
		n := max
		if n > len(s.ds.Series) {
			n = len(s.ds.Series)
		}
		parts = make([][]*timeseries.Series, n)
		for i, ser := range s.ds.Series {
			parts[i%n] = append(parts[i%n], ser)
		}
	} else {
		for _, r := range core.PartitionRanges(len(s.ds.Series), max) {
			parts = append(parts, s.ds.Series[r[0]:r[1]])
		}
	}
	curs := make([]core.Cursor, len(parts))
	for i, p := range parts {
		p := p
		curs[i] = core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) {
			return p, nil
		}, nil)
	}
	return curs, nil
}

var streamingTasks = []core.Task{core.TaskHistogram, core.TaskThreeLine, core.TaskPAR}

// TestPrefetchMatchesReference pins the overlapped path bit-identical to
// the oracle for contiguous and interleaved (hash-style) partitions.
func TestPrefetchMatchesReference(t *testing.T) {
	ds := makeDataset(t, 11, 30)
	for _, rr := range []bool{false, true} {
		for _, task := range streamingTasks {
			for _, workers := range []int{2, 4, 7} {
				name := fmt.Sprintf("%v_w%d_rr%v", task, workers, rr)
				t.Run(name, func(t *testing.T) {
					spec := core.Spec{Task: task, Workers: workers}
					src := partitionedSource{ds: ds, roundRobin: rr}
					got, err := Run(src, spec)
					if err != nil {
						t.Fatal(err)
					}
					want, err := core.RunReference(ds, spec)
					if err != nil {
						t.Fatal(err)
					}
					if got.Count() != want.Count() {
						t.Fatalf("count = %d, want %d", got.Count(), want.Count())
					}
					compareResults(t, got, want)
				})
			}
		}
	}
}

// TestPrefetchOffPinsSerial checks the escape hatch: with PrefetchOff
// the pipeline must not even ask for partitions.
func TestPrefetchOffPinsSerial(t *testing.T) {
	ds := makeDataset(t, 6, 20)
	var cursorCalls, partCalls int
	src := partitionedSource{ds: ds, cursorCalls: &cursorCalls, partCalls: &partCalls}
	spec := core.Spec{Task: core.TaskThreeLine, Workers: 4, Prefetch: core.PrefetchOff}
	got, err := Run(src, spec)
	if err != nil {
		t.Fatal(err)
	}
	if partCalls != 0 {
		t.Errorf("NewCursors called %d times under PrefetchOff, want 0", partCalls)
	}
	if cursorCalls != 1 {
		t.Errorf("NewCursor called %d times, want 1", cursorCalls)
	}
	want, err := core.RunReference(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

// TestPrefetchSerialFallbacks covers the paths that must not take the
// overlapped pipeline: one worker, a single-partition answer, and the
// similarity task.
func TestPrefetchSerialFallbacks(t *testing.T) {
	ds := makeDataset(t, 6, 20)

	t.Run("one_worker", func(t *testing.T) {
		var partCalls int
		src := partitionedSource{ds: ds, partCalls: &partCalls}
		if _, err := Run(src, core.Spec{Task: core.TaskHistogram, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if partCalls != 0 {
			t.Errorf("NewCursors called %d times with one worker, want 0", partCalls)
		}
	})

	t.Run("single_partition", func(t *testing.T) {
		var cursorCalls int
		src := partitionedSource{ds: ds, maxParts: 1, cursorCalls: &cursorCalls}
		got, err := Run(src, core.Spec{Task: core.TaskPAR, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if cursorCalls != 0 {
			t.Errorf("NewCursor called %d times when a partition cursor exists, want 0", cursorCalls)
		}
		want, err := core.RunReference(ds, core.Spec{Task: core.TaskPAR, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, got, want)
	})

	t.Run("similarity", func(t *testing.T) {
		var partCalls int
		src := partitionedSource{ds: ds, partCalls: &partCalls}
		if _, err := Run(src, core.Spec{Task: core.TaskSimilarity, K: 2, Workers: 4}); err != nil {
			t.Fatal(err)
		}
		if partCalls != 0 {
			t.Errorf("NewCursors called %d times for similarity, want 0", partCalls)
		}
	})
}

// TestPrefetchPhaseAccounting checks the busy-time counters: exact row
// counts per stage, non-zero busy sums, and volume matching the dataset.
func TestPrefetchPhaseAccounting(t *testing.T) {
	const consumers, days = 12, 30
	ds := makeDataset(t, consumers, days)
	src := partitionedSource{ds: ds}
	res, err := Run(src, core.Spec{Task: core.TaskThreeLine, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases
	if ph == nil {
		t.Fatal("Phases == nil")
	}
	if ph.Extract.Rows != consumers || ph.Compute.Rows != consumers || ph.Emit.Rows != consumers {
		t.Errorf("row counters = %d/%d/%d, want %d each",
			ph.Extract.Rows, ph.Compute.Rows, ph.Emit.Rows, consumers)
	}
	wantBytes := int64(consumers * days * 24 * 8)
	if ph.Extract.Bytes != wantBytes {
		t.Errorf("extract bytes = %d, want %d", ph.Extract.Bytes, wantBytes)
	}
	if ph.Extract.Wall <= 0 || ph.Compute.Wall <= 0 {
		t.Errorf("busy sums = extract %v, compute %v; want both > 0",
			ph.Extract.Wall, ph.Compute.Wall)
	}
	if ph.T1Quantiles+ph.T2Regression+ph.T3Adjust <= 0 {
		t.Error("3-line sub-phase timings are all zero")
	}
}

// failingCursor yields ok series then errors, for exercising pipeline
// shutdown without deadlock.
type failingCursor struct {
	series []*timeseries.Series
	failAt int
	i      int
}

var errBoom = errors.New("boom")

func (c *failingCursor) Next() (*timeseries.Series, error) {
	if c.i >= c.failAt {
		return nil, errBoom
	}
	if c.i >= len(c.series) {
		return nil, io.EOF
	}
	s := c.series[c.i]
	c.i++
	return s, nil
}

func (c *failingCursor) Reset() error { c.i = 0; return nil }
func (c *failingCursor) Close() error { return nil }

// failingPartSource hands out one healthy partition and one that errors
// after a few rows.
type failingPartSource struct {
	ds     *timeseries.Dataset
	failAt int
}

func (s failingPartSource) NewCursor() (core.Cursor, error) {
	return core.NewDatasetCursor(s.ds), nil
}

func (s failingPartSource) Temperature() (*timeseries.Temperature, error) {
	return s.ds.Temperature, nil
}

func (s failingPartSource) NewCursors(max int) ([]core.Cursor, error) {
	mid := len(s.ds.Series) / 2
	ok := s.ds.Series[:mid]
	return []core.Cursor{
		core.NewLazyCursor(func(context.Context) ([]*timeseries.Series, error) { return ok, nil }, nil),
		&failingCursor{series: s.ds.Series[mid:], failAt: s.failAt},
	}, nil
}

// TestPrefetchErrorPropagates checks that a mid-stream cursor error
// surfaces as the Run error and the pipeline unwinds (no goroutine
// deadlock — the test itself would time out on one).
func TestPrefetchErrorPropagates(t *testing.T) {
	ds := makeDataset(t, 10, 20)
	for _, failAt := range []int{0, 1, 3} {
		src := failingPartSource{ds: ds, failAt: failAt}
		_, err := Run(src, core.Spec{Task: core.TaskHistogram, Workers: 4})
		if !errors.Is(err, errBoom) {
			t.Fatalf("failAt=%d: err = %v, want errBoom", failAt, err)
		}
	}
}
