package exec_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/engine/colstore"
	"github.com/smartmeter/smartbench/internal/engine/rowstore"
	"github.com/smartmeter/smartbench/internal/exec"
	"github.com/smartmeter/smartbench/internal/exec/cursortest"
	"github.com/smartmeter/smartbench/internal/incr"
	"github.com/smartmeter/smartbench/internal/meterdata"
	"github.com/smartmeter/smartbench/internal/seed"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// datasetBatch returns the readings for one absolute hour of ds.
func datasetBatch(ds *timeseries.Dataset, hour int) []core.Reading {
	batch := make([]core.Reading, 0, len(ds.Series))
	for _, s := range ds.Series {
		batch = append(batch, core.Reading{
			ID:          s.ID,
			Hour:        hour,
			Consumption: s.Readings[hour],
			Temperature: ds.Temperature.Values[hour],
		})
	}
	return batch
}

// datasetPrefix copies the first n hours of ds into a fresh dataset.
func datasetPrefix(ds *timeseries.Dataset, n int) *timeseries.Dataset {
	out := &timeseries.Dataset{
		Temperature: &timeseries.Temperature{Values: append([]float64(nil), ds.Temperature.Values[:n]...)},
	}
	for _, s := range ds.Series {
		out.Series = append(out.Series, &timeseries.Series{
			ID:       s.ID,
			Readings: append([]float64(nil), s.Readings[:n]...),
		})
	}
	return out
}

// flakyStore wraps an Appender with a fault-injected Append.
type flakyStore struct {
	core.Appender
	fl *flaky
}

func (s flakyStore) Append(batch []core.Reading) error { return s.fl.offer(batch) }

// flaky fails deterministically on every failEvery-th call, otherwise
// delegates. It models a transient store/sink fault the Ingestor must
// absorb by re-offering the full batch.
type flaky struct {
	calls     int
	failEvery int
	f         func([]core.Reading) error
}

// offer applies the batch first and fails afterwards — the nastier
// partial-failure shape: the data landed but the caller saw an error,
// so the retry redelivers an already-applied batch.
func (fl *flaky) offer(batch []core.Reading) error {
	fl.calls++
	err := fl.f(batch)
	if err == nil && fl.failEvery > 0 && fl.calls%fl.failEvery == 0 {
		return fmt.Errorf("transient fault on call %d", fl.calls)
	}
	return err
}

func TestIngestorCommitsThenFansOut(t *testing.T) {
	ds := makeDataset(t, 4, 14)
	hours := len(ds.Temperature.Values)

	eng := colstore.New(t.TempDir())
	defer eng.Release()
	an := incr.New(incr.Config{K: 3, WindowDays: 10})
	ing := &exec.Ingestor{Store: eng, Sinks: []exec.ReadingSink{an}}

	ctx := context.Background()
	for h := 0; h < hours; h++ {
		if err := ing.Ingest(ctx, datasetBatch(ds, h)); err != nil {
			t.Fatalf("hour %d: %v", h, err)
		}
	}

	// The sink observed exactly the committed stream.
	if got := len(an.IDs()); got != len(ds.Series) {
		t.Fatalf("sink households = %d, want %d", got, len(ds.Series))
	}
	if st := an.Stats(); st.Readings != int64(hours*len(ds.Series)) {
		t.Fatalf("sink readings = %d, want %d", st.Readings, hours*len(ds.Series))
	}

	// The store committed every batch: one epoch per hour, and the
	// snapshot histogram matches the reference over the full dataset.
	spec := core.Spec{Task: core.TaskHistogram, Workers: 2}
	got, epoch, err := exec.RunSnapshot(ctx, eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != core.Epoch(hours) {
		t.Fatalf("epoch = %d, want %d", epoch, hours)
	}
	want, err := core.RunReference(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	cursortest.CompareResults(t, got, want)
}

func TestIngestorRetriesTransientFaults(t *testing.T) {
	ds := makeDataset(t, 3, 4)
	hours := len(ds.Temperature.Values)

	eng := colstore.New(t.TempDir())
	defer eng.Release()
	an := incr.New(incr.Config{K: 2, WindowDays: 10})

	// Both the store and the sink fail every 5th offer. Re-offered
	// batches hit the idempotent dedup path, so despite the retries
	// every reading applies exactly once.
	fstore := &flaky{failEvery: 5, f: eng.Append}
	fsink := &flaky{failEvery: 7, f: an.Consume}
	ing := &exec.Ingestor{
		Store: flakyStore{Appender: eng, fl: fstore},
		Sinks: []exec.ReadingSink{exec.SinkFunc(fsink.offer)},
	}

	ctx := context.Background()
	for h := 0; h < hours; h++ {
		if err := ing.Ingest(ctx, datasetBatch(ds, h)); err != nil {
			t.Fatalf("hour %d: %v", h, err)
		}
	}
	if fstore.calls <= hours || fsink.calls <= hours {
		t.Fatalf("faults never fired: store %d, sink %d calls over %d hours",
			fstore.calls, fsink.calls, hours)
	}
	// Exactly-once at the sink: total readings counts only fresh hours,
	// and the duplicate counter shows redelivery happened.
	st := an.Stats()
	if st.Readings != int64(hours*len(ds.Series)) {
		t.Fatalf("sink readings = %d, want %d", st.Readings, hours*len(ds.Series))
	}
	if st.Duplicates == 0 {
		t.Fatal("expected redelivered duplicates at the sink")
	}
	// Exactly-once at the store: the snapshot matches the reference.
	spec := core.Spec{Task: core.TaskHistogram}
	got, _, err := exec.RunSnapshot(ctx, eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunReference(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	cursortest.CompareResults(t, got, want)
}

func TestIngestorGivesUpAfterAttempts(t *testing.T) {
	eng := colstore.New(t.TempDir())
	defer eng.Release()
	fstore := &flaky{failEvery: 1, f: eng.Append} // always fails
	ing := &exec.Ingestor{Store: flakyStore{Appender: eng, fl: fstore}, Attempts: 3}
	err := ing.Ingest(context.Background(), datasetBatch(makeDataset(t, 2, 1), 0))
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if fstore.calls != 3 {
		t.Fatalf("store calls = %d, want 3", fstore.calls)
	}
}

// TestRunSnapshotLiveEngines runs every task over snapshots of both
// append-driven engines mid-ingestion and checks the results are
// bit-identical to the reference over the same prefix — i.e. a
// snapshot is exactly "the dataset as of its epoch", no matter how
// many appends land while the query runs.
func TestRunSnapshotLiveEngines(t *testing.T) {
	ds := makeDataset(t, 4, 14)
	hours := len(ds.Temperature.Values)
	baseN := hours / 2 // day-aligned: 14 days halves to 7

	// The rowstore starts from a loaded text-format base; text
	// round-tripping perturbs the last few ULPs, so its reference is
	// the round-tripped base spliced with the exact live tail.
	src, err := meterdata.WriteUnpartitioned(t.TempDir(), datasetPrefix(ds, baseN), meterdata.FormatReadingPerLine)
	if err != nil {
		t.Fatal(err)
	}
	baseDS, err := meterdata.ReadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	rowRef := datasetPrefix(baseDS, baseN)
	rowRef.Temperature.Values = append(rowRef.Temperature.Values, ds.Temperature.Values[baseN:]...)
	for i, s := range rowRef.Series {
		if s.ID != ds.Series[i].ID {
			t.Fatalf("series order: %d vs %d", s.ID, ds.Series[i].ID)
		}
		s.Readings = append(s.Readings, ds.Series[i].Readings[baseN:]...)
	}

	type liveEngine interface {
		core.Appender
		core.Engine
	}
	engines := []struct {
		name string
		mk   func(t *testing.T) liveEngine
		base int                 // hours already present before live appends
		ref  *timeseries.Dataset // what the engine should hold at hour n
	}{
		{"colstore", func(t *testing.T) liveEngine {
			return colstore.New(t.TempDir())
		}, 0, ds},
		{"rowstore", func(t *testing.T) liveEngine {
			e := rowstore.New(t.TempDir())
			if _, err := e.Load(src); err != nil {
				t.Fatal(err)
			}
			return e
		}, baseN, rowRef},
	}

	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			eng := tc.mk(t)
			defer eng.Release()
			ctx := context.Background()
			n := baseN // hours visible so far
			for h := tc.base; h < n; h++ {
				if err := eng.Append(datasetBatch(tc.ref, h)); err != nil {
					t.Fatal(err)
				}
			}
			for _, task := range core.Tasks {
				spec := core.Spec{Task: task, K: 3, Workers: 2}
				got, epoch, err := exec.RunSnapshot(ctx, eng, spec)
				if err != nil {
					t.Fatalf("%v: %v", task, err)
				}
				if epoch != core.Epoch(n-tc.base) {
					t.Fatalf("%v: epoch = %d, want %d", task, epoch, n-tc.base)
				}
				want, err := core.RunReference(datasetPrefix(tc.ref, n), spec)
				if err != nil {
					t.Fatal(err)
				}
				cursortest.CompareResults(t, got, want)

				// Appends racing the next snapshot move the epoch but
				// never leak into an already-taken one. Full days keep
				// the PAR task's day-alignment requirement intact.
				for h := n; h < n+timeseries.HoursPerDay; h++ {
					if err := eng.Append(datasetBatch(tc.ref, h)); err != nil {
						t.Fatal(err)
					}
				}
				got2, epoch2, err := exec.RunSnapshot(ctx, eng, spec)
				if err != nil {
					t.Fatal(err)
				}
				if epoch2 <= epoch {
					t.Fatalf("%v: epoch did not advance: %d -> %d", task, epoch, epoch2)
				}
				want2, err := core.RunReference(datasetPrefix(tc.ref, n+timeseries.HoursPerDay), spec)
				if err != nil {
					t.Fatal(err)
				}
				cursortest.CompareResults(t, got2, want2)
				n += timeseries.HoursPerDay
			}
		})
	}
}

// makeDataset mirrors the exec package's internal test helper; external
// test packages cannot share it.
func makeDataset(t *testing.T, consumers, days int) *timeseries.Dataset {
	t.Helper()
	ds, err := seed.Generate(seed.Config{Consumers: consumers, Days: days, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
