package exec

import (
	"context"
	"math"
	"testing"

	"github.com/smartmeter/smartbench/internal/core"
	"github.com/smartmeter/smartbench/internal/timeseries"
)

// parDataset builds a PAR-shaped dataset (whole days, temperature
// aligned) exercising every assembly branch: smooth consumers (decode),
// a bit-constant consumer (BlockConstant fills), a day-periodic
// consumer (pattern tiles), a NaN carrier (no lanes, full decode), and
// a near-constant consumer whose blocks mix branches.
func parDataset(t *testing.T) *timeseries.Dataset {
	t.Helper()
	ds := makeDataset(t, 4, 30)
	n := len(ds.Series[0].Readings)

	konst := make([]float64, n)
	for i := range konst {
		konst[i] = 1.25
	}

	tile := make([]float64, n)
	for i := range tile {
		tile[i] = 0.2 + 0.05*float64(i%24)
	}

	nan := make([]float64, n)
	copy(nan, ds.Series[1].Readings)
	nan[13] = math.NaN()
	nan[n-2] = math.NaN()

	mixed := make([]float64, n)
	for i := range mixed {
		mixed[i] = 0.5
	}
	copy(mixed[n/2:], ds.Series[2].Readings[n/2:])

	ds.Series = append(ds.Series,
		&timeseries.Series{ID: 900, Readings: konst},
		&timeseries.Series{ID: 901, Readings: tile},
		&timeseries.Series{ID: 902, Readings: nan},
		&timeseries.Series{ID: 903, Readings: mixed},
	)
	return ds
}

// TestSummaryPARBitIdentical proves the assembled-series fast path
// returns profiles and hourly models bit-identical to the generic
// cursor pipeline across sub-day, day-aligned, misaligned and
// whole-series block sizes, serial and fanned out.
func TestSummaryPARBitIdentical(t *testing.T) {
	ds := parDataset(t)
	want, err := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskPAR})
	if err != nil {
		t.Fatal(err)
	}
	for _, blockRows := range []int{1, 7, 24, 64, 1 << 20} {
		for _, workers := range []int{1, 3} {
			src := summarySource{datasetSource{ds: ds}, blockRows}
			got, err := Run(src, core.Spec{Task: core.TaskPAR, Workers: workers})
			if err != nil {
				t.Fatalf("blockRows=%d workers=%d: %v", blockRows, workers, err)
			}
			if len(got.Profiles) != len(ds.Series) {
				t.Fatalf("blockRows=%d: %d results, want %d", blockRows, len(got.Profiles), len(ds.Series))
			}
			compareProfiles(t, blockRows, workers, got, want)
		}
	}
}

// compareProfiles is a bit-level CompareResults for the PAR task: the
// NaN carrier legitimately produces NaN profile entries, which the
// shared helper's == comparison cannot accept, so this one compares
// float bits — a strictly stronger check.
func compareProfiles(t *testing.T, blockRows, workers int, got, want *core.Results) {
	t.Helper()
	if len(got.Profiles) != len(want.Profiles) {
		t.Fatalf("blockRows=%d: %d profiles, want %d", blockRows, len(got.Profiles), len(want.Profiles))
	}
	for i, w := range want.Profiles {
		g := got.Profiles[i]
		if g.ID != w.ID {
			t.Fatalf("blockRows=%d profile %d: ID %d vs %d", blockRows, i, g.ID, w.ID)
		}
		for h := range w.Profile {
			if math.Float64bits(g.Profile[h]) != math.Float64bits(w.Profile[h]) {
				t.Fatalf("blockRows=%d workers=%d consumer %d hour %d: profile %v want %v",
					blockRows, workers, g.ID, h, g.Profile[h], w.Profile[h])
			}
			gm, wm := g.Hours[h], w.Hours[h]
			if gm.Fallback != wm.Fallback ||
				math.Float64bits(gm.TempCoef) != math.Float64bits(wm.TempCoef) ||
				math.Float64bits(gm.Intercept) != math.Float64bits(wm.Intercept) ||
				math.Float64bits(gm.R2) != math.Float64bits(wm.R2) {
				t.Fatalf("blockRows=%d workers=%d consumer %d hour %d: model %+v want %+v",
					blockRows, workers, g.ID, h, gm, wm)
			}
			for j := range wm.ARCoef {
				if math.Float64bits(gm.ARCoef[j]) != math.Float64bits(wm.ARCoef[j]) {
					t.Fatalf("blockRows=%d consumer %d hour %d lag %d: AR coef %v want %v",
						blockRows, g.ID, h, j, gm.ARCoef[j], wm.ARCoef[j])
				}
			}
		}
	}
}

// TestSummaryPARErrorIdentical checks the fast path preserves the
// kernel's error contract: a ragged series (not whole days) aborts a
// FailFast run with the same error the generic path reports.
func TestSummaryPARErrorIdentical(t *testing.T) {
	ds := makeDataset(t, 2, 10)
	ragged := make([]float64, len(ds.Series[0].Readings)-5)
	copy(ragged, ds.Series[0].Readings)
	ds.Series = append(ds.Series, &timeseries.Series{ID: 950, Readings: ragged})
	src := summarySource{datasetSource{ds: ds}, 16}
	_, gotErr := Run(src, core.Spec{Task: core.TaskPAR})
	_, wantErr := Run(NewDatasetSource(ds), core.Spec{Task: core.TaskPAR})
	if gotErr == nil || wantErr == nil {
		t.Fatalf("errors: fast=%v generic=%v, want both non-nil", gotErr, wantErr)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("fast path error %q, generic %q", gotErr, wantErr)
	}
}

// TestSummaryPARGateScope checks the fast path stays off for other
// tasks, non-FailFast policies and summary-less sources.
func TestSummaryPARGateScope(t *testing.T) {
	src := summarySource{datasetSource{ds: makeDataset(t, 2, 10)}, 16}
	if _, ok := summaryPARApplies(src, core.Spec{Task: core.TaskHistogram, FailPolicy: core.FailFast}.WithDefaults()); ok {
		t.Fatal("fast path claimed a histogram run")
	}
	if _, ok := summaryPARApplies(src, core.Spec{Task: core.TaskPAR, FailPolicy: core.Repair}.WithDefaults()); ok {
		t.Fatal("fast path claimed a Repair run")
	}
	if _, ok := summaryPARApplies(NewDatasetSource(makeDataset(t, 2, 10)), core.Spec{Task: core.TaskPAR}.WithDefaults()); ok {
		t.Fatal("fast path claimed a source without summaries")
	}
	if _, ok := summaryPARApplies(src, core.Spec{Task: core.TaskPAR}.WithDefaults()); !ok {
		t.Fatal("fast path declined an eligible run")
	}
}

// TestSummaryPARPhases checks the three-stage counters and the new
// block-provenance counters: with day-sized blocks every NaN-free
// block reconstructs from lanes, so exactly the two NaN-bearing
// blocks decode.
func TestSummaryPARPhases(t *testing.T) {
	ds := parDataset(t)
	src := summarySource{datasetSource{ds: ds}, 24}
	res, err := Run(src, core.Spec{Task: core.TaskPAR})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases
	n := int64(len(ds.Series))
	if ph.Extract.Rows != n || ph.Compute.Rows != n || ph.Emit.Rows != n {
		t.Fatalf("phase rows = %d/%d/%d, want %d each",
			ph.Extract.Rows, ph.Compute.Rows, ph.Emit.Rows, n)
	}
	days := int64(len(ds.Series[0].Readings) / 24)
	wantSummary := n*days - 2 // the NaN carrier holds two dirty blocks
	if ph.SummaryBlocks != wantSummary || ph.DecodedBlocks != 2 {
		t.Fatalf("blocks: summary=%d decoded=%d, want %d/2",
			ph.SummaryBlocks, ph.DecodedBlocks, wantSummary)
	}
}

// TestSummaryPARCancel checks a cancelled context aborts the scan.
func TestSummaryPARCancel(t *testing.T) {
	src := summarySource{datasetSource{ds: makeDataset(t, 4, 20)}, 64}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, src, core.Spec{Task: core.TaskPAR}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
